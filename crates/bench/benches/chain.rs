//! Criterion benches for the transaction hot path: publish / call /
//! rollback micro-ops on one `Blockchain`, under both rollback modes and
//! two registry sizes.
//!
//! The chain carries a pre-minted registry of 10² or 10⁴ assets. A
//! *call* is a succeeding toggle (one escrow move + one sealed block); a
//! *rollback* is a call the contract rejects after validation fails — in
//! `Snapshot` mode that clones the whole registry first, in `Journal`
//! mode it costs one undo-log check. The timing delta between the two
//! modes at 10⁴ assets *is* the journal's win; the rigorous sweep
//! (10²–10⁵ with ≥5× and flatness gates) lives in experiment E22.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_chain::{
    AssetDescriptor, AssetId, Blockchain, ContractLogic, ExecCtx, Owner, RollbackMode,
};
use swap_crypto::{Address, Digest32};
use swap_sim::SimTime;

fn addr(b: u8) -> Address {
    Address::from_digest(Digest32([b; 32]))
}

/// A non-terminating escrow contract: `Toggle` moves its asset between
/// the home party and escrow (always succeeds), `Fail` rejects before
/// touching anything (the pure rollback path).
#[derive(Debug, Clone)]
struct Churn {
    asset: AssetId,
    home: Address,
    held: bool,
}

#[derive(Debug, Clone, Copy)]
enum ChurnCall {
    Toggle,
    Fail,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ChurnError;
impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "churn rejected")
    }
}
impl std::error::Error for ChurnError {}

impl ContractLogic for Churn {
    type Call = ChurnCall;
    type Event = ();
    type Error = ChurnError;

    fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<()>, ChurnError> {
        ctx.assets
            .transfer_from(self.asset, Owner::Party(ctx.caller), Owner::Escrow(ctx.this))
            .map_err(|_| ChurnError)?;
        self.held = true;
        Ok(vec![])
    }

    fn apply(&mut self, call: ChurnCall, ctx: &mut ExecCtx<'_>) -> Result<Vec<()>, ChurnError> {
        match call {
            ChurnCall::Toggle => {
                let (from, to) = if self.held {
                    (Owner::Escrow(ctx.this), Owner::Party(self.home))
                } else {
                    (Owner::Party(self.home), Owner::Escrow(ctx.this))
                };
                ctx.assets.transfer_from(self.asset, from, to).map_err(|_| ChurnError)?;
                self.held = !self.held;
                Ok(vec![])
            }
            ChurnCall::Fail => Err(ChurnError),
        }
    }

    fn storage_bytes(&self) -> usize {
        8 + 32 + 1
    }

    fn is_terminated(&self) -> bool {
        false
    }
}

/// A chain whose registry holds `assets` pre-minted assets, with one
/// churn contract already published on asset 0.
fn rigged_chain(mode: RollbackMode, assets: usize) -> (Blockchain<Churn>, swap_chain::ContractId) {
    let mut chain = Blockchain::new("bench", SimTime::ZERO);
    chain.set_rollback_mode(mode);
    let home = addr(1);
    let mut first = None;
    for _ in 0..assets {
        let id = chain.mint_asset(AssetDescriptor::unique("t"), home, SimTime::ZERO);
        first.get_or_insert(id);
    }
    let asset = first.expect("at least one asset");
    let contract = Churn { asset, home, held: false };
    let id = chain.publish_contract(contract, home, SimTime::from_ticks(1)).expect("publishes");
    (chain, id)
}

fn bench_chain_tx(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain");
    group.sample_size(10);
    for assets in [100usize, 10_000] {
        for mode in [RollbackMode::Journal, RollbackMode::Snapshot] {
            let tag = format!("{mode:?}");

            // publish: escrow a fresh asset + seal, on a fresh contract
            // each iteration (ids grow; per-iter cost stays flat).
            let (mut chain, _) = rigged_chain(mode, assets);
            let home = addr(1);
            let mut tick = 10u64;
            group.bench_with_input(
                BenchmarkId::new(format!("publish/{assets}"), &tag),
                &mode,
                |b, _| {
                    b.iter(|| {
                        tick += 1;
                        let asset = chain.mint_asset(
                            AssetDescriptor::unique("p"),
                            home,
                            SimTime::from_ticks(tick),
                        );
                        chain
                            .publish_contract(
                                Churn { asset, home, held: false },
                                home,
                                SimTime::from_ticks(tick),
                            )
                            .expect("publishes")
                    })
                },
            );

            // call: one succeeding escrow toggle + seal.
            let (mut chain, id) = rigged_chain(mode, assets);
            let mut tick = 10u64;
            group.bench_with_input(
                BenchmarkId::new(format!("call/{assets}"), &tag),
                &mode,
                |b, _| {
                    b.iter(|| {
                        tick += 1;
                        chain
                            .call_contract(
                                id,
                                home,
                                ChurnCall::Toggle,
                                SimTime::from_ticks(tick),
                                16,
                            )
                            .map(<[_]>::len)
                            .expect("toggles")
                    })
                },
            );

            // rollback: a failing call — Snapshot pays the registry clone,
            // Journal pays one undo-log check.
            let (mut chain, id) = rigged_chain(mode, assets);
            group.bench_with_input(
                BenchmarkId::new(format!("rollback/{assets}"), &tag),
                &mode,
                |b, _| {
                    b.iter(|| {
                        chain
                            .call_contract(id, home, ChurnCall::Fail, SimTime::from_ticks(5), 16)
                            .expect_err("rejects")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chain_tx);
criterion_main!(benches);
