//! Criterion benches for the clearing tier: one steady-state churn round
//! (submit a hot set, clear, settle) against prebuilt books of 1k and 10k
//! open offers, under both clearing modes.
//!
//! The book is a hot/cold split: the churn set forms mutual pairs and one
//! three-cycle each round, while an inert tail — offers whose kinds have
//! no counterparties — only sits in the open set. `FullRescan` re-examines
//! the whole tail every round, so its round time grows with the book;
//! `Indexed` walks only the active kinds, so its round time is flat. The
//! timing delta between the two rows of a size *is* the index's win; the
//! rigorous sweep (through 10⁵, with a 10⁶ smoke and a ≥10× gate) lives
//! in experiment E20.
//!
//! Identities are minted via `MssPublicKey::from_root` — real addresses
//! without the O(2ʰ) keygen — so book setup stays negligible next to the
//! measured rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_crypto::{Digest32, MssPublicKey, Secret};
use swap_market::{AssetKind, ClearingMode, ClearingService, Offer};
use swap_sim::{Delta, SimTime};

/// Mutual two-cycle pairs per churn round (plus one 3-cycle).
const PAIRS: usize = 8;

/// A synthetic offer: key minted from the tag, hashlock preimage derived
/// from the tag, no signing ability (clearing never signs).
fn synth(tag: u64, gives: AssetKind, wants: AssetKind) -> Offer {
    let mut root = [0u8; 32];
    root[..8].copy_from_slice(&tag.to_le_bytes());
    root[8] = 0xBC;
    let mut preimage = [0u8; 32];
    preimage[..8].copy_from_slice(&tag.to_be_bytes());
    preimage[8] = 0xBC;
    Offer {
        key: MssPublicKey::from_root(Digest32(root), 20),
        hashlock: Secret::from_bytes(preimage).hashlock(),
        gives,
        wants,
    }
}

/// A service holding `tail` open offers that can never clear: their kinds
/// are given but never wanted, so every churn round leaves them behind.
fn tailed_service(mode: ClearingMode, tail: usize) -> (ClearingService, u64) {
    let mut svc = ClearingService::new().with_mode(mode);
    for i in 0..tail {
        let shared = 1_000_000_000 + (i % 1_000) as u64;
        svc.submit(synth(shared, AssetKind::new("tail-gives"), AssetKind::new("tail-wants")));
    }
    (svc, 0)
}

/// One steady-state round: submit the hot set, clear it, settle every
/// emitted swap. The book returns to exactly the tail.
fn churn_round(svc: &mut ClearingService, tag: &mut u64) {
    let mut fresh = |gives: AssetKind, wants: AssetKind| {
        *tag += 1;
        synth(*tag, gives, wants)
    };
    for p in 0..PAIRS {
        let (a, b) = (AssetKind::new(format!("hot{p}a")), AssetKind::new(format!("hot{p}b")));
        svc.submit(fresh(a.clone(), b.clone()));
        svc.submit(fresh(b, a));
    }
    for t in 0..3 {
        svc.submit(fresh(
            AssetKind::new(format!("tri{t}")),
            AssetKind::new(format!("tri{}", (t + 1) % 3)),
        ));
    }
    let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).expect("churn clears");
    assert_eq!(swaps.len(), PAIRS + 1, "every pair and the tri-cycle match");
    for swap in &swaps {
        svc.settle_swap(swap.id).expect("fresh swap settles");
    }
}

fn bench_clearing_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("clearing");
    group.sample_size(10);
    for tail in [1_000usize, 10_000] {
        for mode in [ClearingMode::Indexed, ClearingMode::FullRescan] {
            let (mut svc, mut tag) = tailed_service(mode, tail);
            group.bench_with_input(
                BenchmarkId::new(format!("churn/{tail}"), mode),
                &mode,
                |b, _| b.iter(|| churn_round(&mut svc, &mut tag)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clearing_churn);
criterion_main!(benches);
