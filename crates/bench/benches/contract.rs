//! Criterion benches for contract-level operations: what one `unlock`,
//! `claim`, or `refund` transaction costs the hosting chain, and how
//! hashkey verification scales with path length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_chain::{AssetDescriptor, AssetRegistry, ContractLogic, ExecCtx};
use swap_contract::testkit::{keypair_for, leader_secret, spec_for};
use swap_contract::{SwapCall, SwapContract};
use swap_crypto::SigChain;
use swap_digraph::{generators, VertexId, VertexPath};

/// Builds a contract on the last arc of a cycle(n) plus a valid hashkey
/// whose path winds through the whole cycle (length n-1).
fn unlock_fixture(n: usize) -> (SwapContract, AssetRegistry, SwapCall, swap_crypto::Address) {
    let d = generators::cycle(n);
    let leader = VertexId::new(0);
    let spec = spec_for(d.clone(), vec![leader]);
    // Arc entering vertex 1 (head = leader): counterparty is vertex 1; its
    // path to the leader walks the rest of the cycle.
    let arc = d.arcs().find(|a| a.head == leader).expect("leader out-arc").id;
    let counterparty = d.tail(arc);
    let mut assets = AssetRegistry::new();
    let asset = assets.mint(AssetDescriptor::unique("x"), spec.address_of(leader));
    let mut contract = SwapContract::new(spec.clone(), arc, asset);
    let mut ctx = ExecCtx {
        caller: contract.party(),
        now: spec.start,
        this: swap_chain::ContractId::new(0),
        assets: &mut assets,
    };
    contract.on_publish(&mut ctx).expect("escrow");
    // Path: (counterparty, counterparty+1, …, leader).
    let mut vertices = Vec::new();
    let mut v = counterparty;
    loop {
        vertices.push(v);
        if v == leader {
            break;
        }
        v = d.successors(v)[0];
    }
    let path = VertexPath::from_vertices(vertices.clone()).expect("non-empty");
    let secret = leader_secret(leader);
    let mut chain = SigChain::sign_secret(&mut keypair_for(leader), &secret).expect("keys");
    for &signer in vertices.iter().rev().skip(1) {
        chain = chain.extend(&mut keypair_for(signer)).expect("keys");
    }
    let call = SwapCall::Unlock { index: 0, secret, path, sig: chain };
    let caller = spec.address_of(counterparty);
    (contract, assets, call, caller)
}

fn bench_unlock_verification(c: &mut Criterion) {
    // The dominant on-chain cost: verifying a hashkey whose signature chain
    // has n links.
    let mut group = c.benchmark_group("unlock_verify");
    group.sample_size(10);
    for n in [3usize, 5, 8] {
        let (contract, assets, call, caller) = unlock_fixture(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || (contract.clone(), assets.clone(), call.clone()),
                |(mut contract, mut assets, call)| {
                    let mut ctx = ExecCtx {
                        caller,
                        now: contract.spec().start,
                        this: swap_chain::ContractId::new(0),
                        assets: &mut assets,
                    };
                    contract.apply(call, &mut ctx).expect("valid hashkey")
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_contract_storage(c: &mut Criterion) {
    // storage_bytes is called on every metering pass; it must stay cheap.
    let mut group = c.benchmark_group("storage_bytes");
    for n in [3usize, 6, 10] {
        let d = generators::complete(n);
        let leaders: Vec<VertexId> = (0..n - 1).map(|i| VertexId::new(i as u32)).collect();
        let spec = spec_for(d, leaders);
        let contract =
            SwapContract::new(spec, swap_digraph::ArcId::new(0), swap_chain::AssetId::new(0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &contract, |b, contract| {
            b.iter(|| contract.storage_bytes())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_unlock_verification, bench_contract_storage
}
criterion_main!(benches);
