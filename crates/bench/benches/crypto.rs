//! Criterion benches for the hash-based crypto substrate: the cost of the
//! primitives every contract call ultimately pays for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use swap_crypto::sha256::sha256;
use swap_crypto::{lamport, sha256_pair, MssKeypair, Secret, SigChain};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(std::hint::black_box(data)))
        });
    }
    // The Merkle inner-node fast path: hashing two digests in a single
    // compression (padding block precomputed) vs the streaming path over
    // the concatenation.
    let (left, right) = (sha256(b"left"), sha256(b"right"));
    group.throughput(Throughput::Bytes(64));
    group.bench_function("pair", |b| {
        b.iter(|| sha256_pair(std::hint::black_box(&left), std::hint::black_box(&right)))
    });
    group.bench_function("pair_streaming_baseline", |b| {
        b.iter(|| {
            let mut buf = [0u8; 64];
            buf[..32].copy_from_slice(std::hint::black_box(&left).as_bytes());
            buf[32..].copy_from_slice(std::hint::black_box(&right).as_bytes());
            sha256(&buf)
        })
    });
    group.finish();
}

fn bench_lamport(c: &mut Criterion) {
    let mut group = c.benchmark_group("lamport");
    let seed = [7u8; 32];
    group.bench_function("keygen", |b| b.iter(|| lamport::keygen(std::hint::black_box(&seed), 0)));
    let msg = sha256(b"message");
    group.bench_function("sign", |b| {
        b.iter_batched(
            || lamport::keygen(&seed, 0).0,
            |sk| lamport::sign(sk, &msg),
            criterion::BatchSize::SmallInput,
        )
    });
    let (sk, pk) = lamport::keygen(&seed, 0);
    let sig = lamport::sign(sk, &msg);
    let pk_digest = pk.digest();
    group.bench_function("verify", |b| {
        b.iter(|| lamport::verify(std::hint::black_box(&sig), &msg, &pk_digest))
    });
    group.finish();
}

fn bench_mss(c: &mut Criterion) {
    let mut group = c.benchmark_group("mss");
    group.sample_size(10);
    for height in [2u32, 4, 6] {
        group.bench_with_input(BenchmarkId::new("keygen", height), &height, |b, &h| {
            b.iter(|| MssKeypair::from_seed_with_height([1u8; 32], h))
        });
    }
    let msg = sha256(b"message");
    group.bench_function("sign_h6", |b| {
        b.iter_batched(
            || MssKeypair::from_seed_with_height([1u8; 32], 6),
            |mut kp| kp.sign(&msg).expect("keys remain"),
            criterion::BatchSize::SmallInput,
        )
    });
    let mut kp = MssKeypair::from_seed_with_height([1u8; 32], 6);
    let pk = kp.public_key();
    let sig = kp.sign(&msg).unwrap();
    group.bench_function("verify_h6", |b| b.iter(|| pk.verify(&msg, std::hint::black_box(&sig))));
    group.finish();
}

fn bench_sigchain(c: &mut Criterion) {
    // Hashkey chains of growing path length — the per-arc unlock cost in
    // the general protocol.
    let mut group = c.benchmark_group("sigchain");
    group.sample_size(10);
    let secret = Secret::from_bytes([5u8; 32]);
    for links in [1usize, 3, 6] {
        group.bench_with_input(BenchmarkId::new("build", links), &links, |b, &links| {
            b.iter_batched(
                || {
                    (0..links)
                        .map(|i| MssKeypair::from_seed_with_height([i as u8 + 1; 32], 4))
                        .collect::<Vec<_>>()
                },
                |mut kps| {
                    let mut chain = SigChain::sign_secret(&mut kps[0], &secret).expect("keys");
                    for kp in kps.iter_mut().skip(1) {
                        chain = chain.extend(kp).expect("keys");
                    }
                    chain
                },
                criterion::BatchSize::SmallInput,
            )
        });
        // Verification cost (what the contract pays on `unlock`).
        let mut kps: Vec<MssKeypair> =
            (0..links).map(|i| MssKeypair::from_seed_with_height([i as u8 + 1; 32], 4)).collect();
        let mut chain = SigChain::sign_secret(&mut kps[0], &secret).expect("keys");
        for kp in kps.iter_mut().skip(1) {
            chain = chain.extend(kp).expect("keys");
        }
        // Path order: outermost signer first, leader last.
        let keys: Vec<_> = kps.iter().rev().map(|kp| kp.public_key()).collect();
        group.bench_with_input(BenchmarkId::new("verify", links), &links, |b, _| {
            b.iter(|| std::hint::black_box(&chain).verify(&secret, &keys).expect("valid chain"))
        });
    }
    // Extending a length-N chain copies O(1) links, not O(N) signature
    // bytes: every inherited link is shared by reference. Asserted here —
    // on a build where `extend` deep-copied, the Arc identity check fails
    // before any timing runs.
    for links in [1usize, 8, 64] {
        let mut kps: Vec<MssKeypair> =
            (0..links).map(|i| MssKeypair::from_seed_with_height([i as u8 + 1; 32], 4)).collect();
        let mut chain = SigChain::sign_secret(&mut kps[0], &secret).expect("keys");
        for kp in kps.iter_mut().skip(1) {
            chain = chain.extend(kp).expect("keys");
        }
        let mut signer = MssKeypair::from_seed_with_height([99; 32], 4);
        let extended = chain.extend(&mut signer).expect("keys");
        assert_eq!(extended.len(), links + 1);
        assert!(
            chain
                .links()
                .iter()
                .zip(extended.links())
                .all(|(inherited, copied)| std::sync::Arc::ptr_eq(inherited, copied)),
            "extend must share inherited links by reference, not clone them"
        );
        group.bench_with_input(BenchmarkId::new("extend", links), &links, |b, _| {
            b.iter_batched(
                || MssKeypair::from_seed_with_height([98; 32], 4),
                |mut kp| std::hint::black_box(&chain).extend(&mut kp).expect("keys"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_sha256, bench_lamport, bench_mss, bench_sigchain
}
criterion_main!(benches);
