//! Criterion benches for the graph layer: the paper's longest-path
//! diameter, feedback-vertex-set search (exact vs greedy — the §5 remark
//! that minimum FVS is NP-complete), and path enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_digraph::path::enumerate_paths;
use swap_digraph::{algo, generators, FeedbackVertexSet, VertexId};
use swap_sim::SimRng;

fn bench_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("diameter_exact");
    for n in [6usize, 9, 12] {
        let d = generators::random_strongly_connected(n, 0.3, &mut SimRng::from_seed(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| algo::diameter_exact(std::hint::black_box(d)))
        });
    }
    group.finish();
}

fn bench_fvs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fvs");
    group.sample_size(10);
    for n in [6usize, 9, 12] {
        let d = generators::random_strongly_connected(n, 0.3, &mut SimRng::from_seed(2));
        group.bench_with_input(BenchmarkId::new("exact", n), &d, |b, d| {
            b.iter(|| FeedbackVertexSet::minimum(std::hint::black_box(d)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &d, |b, d| {
            b.iter(|| FeedbackVertexSet::greedy(std::hint::black_box(d)))
        });
    }
    group.finish();
}

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("strongly_connected");
    for n in [10usize, 50, 200] {
        let d = generators::random_strongly_connected(n, 0.05, &mut SimRng::from_seed(3));
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| {
                assert!(d.is_strongly_connected());
            })
        });
    }
    group.finish();
}

fn bench_path_enumeration(c: &mut Criterion) {
    // Hashkey-path enumeration (Figure 7) on the worst case: complete
    // digraphs, where path counts explode factorially.
    let mut group = c.benchmark_group("enumerate_paths");
    for n in [4usize, 5, 6, 7] {
        let d = generators::complete(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| enumerate_paths(d, VertexId::new(1), VertexId::new(0)).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_diameter, bench_fvs, bench_scc, bench_path_enumeration
}
criterion_main!(benches);
