//! Criterion benches for the exchange pipeline: offers → epoch clearing →
//! concurrent swap execution, sequential vs sharded.
//!
//! One epoch over a book of 16 disjoint 3-party rings (48 offers) executes
//! 16 in-flight swaps. Cleared cycles are party- and chain-disjoint, so the
//! orchestrator shards them across worker threads; the `exchange/epoch`
//! group times the identical workload at 1, 2, 4, and 8 workers. The
//! aggregate report is asserted identical in every case — sharding is a
//! wall-clock knob only — so the timing delta *is* the speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
use swap_market::AssetKind;
use swap_sim::SimRng;

/// Concurrent 3-party rings per epoch — comfortably past the ≥ 8 in-flight
/// swaps where sharding must pay for its spawns.
const RINGS: usize = 16;
const KEY_HEIGHT: u32 = 4;

/// The benchmark book: `RINGS` disjoint 3-cycles over distinct kinds.
fn book() -> Vec<ExchangeParty> {
    let mut rng = SimRng::from_seed(0xEC);
    let mut parties = Vec::with_capacity(RINGS * 3);
    for r in 0..RINGS {
        for p in 0..3 {
            parties.push(ExchangeParty::generate(
                &mut rng,
                KEY_HEIGHT,
                AssetKind::new(format!("r{r}k{p}")),
                AssetKind::new(format!("r{r}k{}", (p + 1) % 3)),
            ));
        }
    }
    parties
}

/// One full epoch: submit the book, clear, execute, resolve.
fn run_epoch(parties: &[ExchangeParty], threads: usize) {
    let mut exchange = Exchange::new(ExchangeConfig { threads, ..Default::default() });
    for p in parties {
        exchange.submit(p.clone());
    }
    let executed = exchange.run_epoch().expect("epoch clears");
    assert_eq!(executed.len(), RINGS);
    assert_eq!(exchange.report().swaps_settled, RINGS as u64);
}

fn bench_exchange_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    group.sample_size(3);
    let parties = book();
    // Sharded-vs-sequential wall-clock needs host cores; say how many this
    // box has so the recorded numbers are interpretable.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("exchange: host parallelism = {cores} core(s)");
    // The pipeline's semantic throughput win, independent of host cores:
    // all in-flight swaps share one epoch wall in simulated time.
    {
        let config = ExchangeConfig::default();
        let delta_ticks = config.delta.ticks();
        let mut exchange = Exchange::new(config);
        for p in &parties {
            exchange.submit(p.clone());
        }
        exchange.run_epoch().expect("epoch clears");
        let report = exchange.report();
        let sequential: u64 = report.swaps.iter().map(|s| (s.rounds + 1) * delta_ticks).sum();
        println!(
            "exchange: {RINGS} in-flight swaps per epoch: {} sim ticks vs {sequential} \
             back-to-back ({:.1}x concurrency)",
            report.wall_ticks,
            sequential as f64 / report.wall_ticks as f64
        );
    }
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("epoch/{RINGS}x3"), threads),
            &threads,
            |b, &threads| b.iter(|| run_epoch(&parties, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exchange_throughput);
criterion_main!(benches);
