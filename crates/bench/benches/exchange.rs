//! Criterion benches for the exchange pipeline: offers → staged epochs →
//! concurrent swap execution, sequential vs pooled, batch vs pipelined.
//!
//! One epoch over a book of 16 disjoint 3-party rings (48 offers) executes
//! 16 in-flight swaps. Cleared cycles are party- and chain-disjoint, so the
//! orchestrator spreads them across pool workers; the `exchange/epoch`
//! group times the identical workload at 1, 2, 4, and 8 workers. The
//! aggregate report is asserted identical in every case — sharding is a
//! wall-clock knob only — so the timing delta *is* the speedup. The thread
//! sweep forces the hashkey protocol so the workload stays the heavyweight
//! one (and comparable with earlier recordings).
//!
//! The `exchange/protocol` group adds the protocol-choice axis: the same
//! book under `ForceHashkey` vs `Auto` (per-cycle §4.6 HTLC selection), so
//! the HTLC fast path's storage/wall win is *measured*, not asserted.
//!
//! The `exchange/drive` group adds the driving-mode axis on a 4-wave
//! rolling book: `batch` drains each epoch before submitting the next
//! wave; `pipelined` submits wave w+1 the instant epoch w starts
//! executing, so clearing/provisioning overlap execution. Host wall-clock
//! differences are modest (the stages are cheap host-side); the simulated
//! wall-tick win is printed alongside and measured rigorously by E18.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_core::exchange::{
    EpochStage, Exchange, ExchangeConfig, ExchangeParty, ProtocolPolicy, StageCosts, StepEvent,
};
use swap_market::AssetKind;
use swap_sim::SimRng;

/// Concurrent 3-party rings per epoch — comfortably past the ≥ 8 in-flight
/// swaps where sharding must pay for its spawns.
const RINGS: usize = 16;
const KEY_HEIGHT: u32 = 4;

/// The benchmark book: `RINGS` disjoint 3-cycles over distinct kinds.
fn book() -> Vec<ExchangeParty> {
    let mut rng = SimRng::from_seed(0xEC);
    let mut parties = Vec::with_capacity(RINGS * 3);
    for r in 0..RINGS {
        for p in 0..3 {
            parties.push(ExchangeParty::generate(
                &mut rng,
                KEY_HEIGHT,
                AssetKind::new(format!("r{r}k{p}")),
                AssetKind::new(format!("r{r}k{}", (p + 1) % 3)),
            ));
        }
    }
    parties
}

/// One full epoch through the staged pipeline: submit the book, drive the
/// stage machine dry, resolve.
fn drive_epoch(parties: &[ExchangeParty], threads: usize, protocol: ProtocolPolicy) {
    let mut exchange = Exchange::new(ExchangeConfig { threads, protocol, ..Default::default() });
    for p in parties {
        exchange.submit(p.clone());
    }
    let executed = exchange.drive_until_quiescent().expect("epoch clears");
    assert_eq!(executed.len(), RINGS);
    assert_eq!(exchange.report().swaps_settled, RINGS as u64);
}

fn bench_exchange_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    group.sample_size(3);
    let parties = book();
    // Sharded-vs-sequential wall-clock needs host cores; say how many this
    // box has so the recorded numbers are interpretable.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("exchange: host parallelism = {cores} core(s)");
    // The pipeline's semantic throughput win, independent of host cores:
    // all in-flight swaps share one epoch wall in simulated time.
    {
        let config =
            ExchangeConfig { protocol: ProtocolPolicy::ForceHashkey, ..ExchangeConfig::default() };
        let delta_ticks = config.delta.ticks();
        let mut exchange = Exchange::new(config);
        for p in &parties {
            exchange.submit(p.clone());
        }
        exchange.drive_until_quiescent().expect("epoch clears");
        let report = exchange.report();
        let sequential: u64 = report.swaps.iter().map(|s| (s.rounds + 1) * delta_ticks).sum();
        println!(
            "exchange: {RINGS} in-flight swaps per epoch: {} sim ticks vs {sequential} \
             back-to-back ({:.1}x concurrency)",
            report.wall_ticks,
            sequential as f64 / report.wall_ticks as f64
        );
    }
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("epoch/{RINGS}x3"), threads),
            &threads,
            |b, &threads| b.iter(|| drive_epoch(&parties, threads, ProtocolPolicy::ForceHashkey)),
        );
    }
    group.finish();
}

/// The protocol-choice axis: the same book forced through the general
/// hashkey protocol vs auto-selected (all-HTLC for simple cycles). The
/// timing delta is the §4.6 fast path's execution win; the storage delta
/// is printed alongside.
fn bench_protocol_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    group.sample_size(3);
    let parties = book();
    for (label, policy) in
        [("force-hashkey", ProtocolPolicy::ForceHashkey), ("auto-select", ProtocolPolicy::Auto)]
    {
        // Report the storage footprint once per policy so the bench output
        // carries the space axis too.
        let mut exchange = Exchange::new(ExchangeConfig { protocol: policy, ..Default::default() });
        for p in &parties {
            exchange.submit(p.clone());
        }
        exchange.drive_until_quiescent().expect("epoch clears");
        println!(
            "exchange/protocol/{label}: {} bytes on-chain across {} swaps",
            exchange.report().storage.total_bytes(),
            exchange.report().swaps_cleared
        );
        group.bench_with_input(
            BenchmarkId::new(format!("protocol/{RINGS}x3"), label),
            &policy,
            |b, &policy| b.iter(|| drive_epoch(&parties, 1, policy)),
        );
    }
    group.finish();
}

/// The driving-mode axis on a rolling book: batch (each wave waits for the
/// previous epoch to settle) vs pipelined (wave w+1 submitted as epoch w
/// starts executing, so clearing overlaps execution).
fn bench_driving_mode(c: &mut Criterion) {
    const WAVES: usize = 4;
    const WAVE_RINGS: usize = 4;
    let costs = StageCosts {
        clearing_base: 10,
        clearing_per_examined: 1,
        clearing_per_cycle: 1,
        provisioning_base: 5,
        provisioning_per_party: 1,
        settling_base: 5,
        settling_per_swap: 1,
    };
    let wave = |w: usize| -> Vec<ExchangeParty> {
        let mut rng = SimRng::from_seed(0xD0 + w as u64);
        let mut parties = Vec::with_capacity(WAVE_RINGS * 3);
        for r in 0..WAVE_RINGS {
            for p in 0..3 {
                parties.push(ExchangeParty::generate(
                    &mut rng,
                    KEY_HEIGHT,
                    AssetKind::new(format!("w{w}r{r}k{p}")),
                    AssetKind::new(format!("w{w}r{r}k{}", (p + 1) % 3)),
                ));
            }
        }
        parties
    };
    let run = |pipelined: bool| -> u64 {
        let mut exchange =
            Exchange::new(ExchangeConfig { threads: 2, stage_costs: costs, ..Default::default() });
        if pipelined {
            let mut next = 0usize;
            for p in wave(next) {
                exchange.submit(p);
            }
            next += 1;
            loop {
                match exchange.step().expect("pipeline advances") {
                    StepEvent::StageEntered { stage: EpochStage::Executing, .. }
                        if next < WAVES =>
                    {
                        for p in wave(next) {
                            exchange.submit(p);
                        }
                        next += 1;
                    }
                    StepEvent::Quiescent => break,
                    _ => {}
                }
            }
        } else {
            for w in 0..WAVES {
                for p in wave(w) {
                    exchange.submit(p);
                }
                exchange.drive_until_quiescent().expect("epoch settles");
            }
        }
        assert_eq!(exchange.report().swaps_settled, (WAVES * WAVE_RINGS) as u64);
        exchange.report().wall_ticks
    };
    println!(
        "exchange/drive: {WAVES}-wave rolling book, sim wall ticks: batch {} vs pipelined {}",
        run(false),
        run(true)
    );
    let mut group = c.benchmark_group("exchange");
    group.sample_size(3);
    for (label, pipelined) in [("batch", false), ("pipelined", true)] {
        group.bench_with_input(
            BenchmarkId::new(format!("drive/{WAVES}x{WAVE_RINGS}x3"), label),
            &pipelined,
            |b, &pipelined| b.iter(|| run(pipelined)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exchange_throughput, bench_protocol_choice, bench_driving_mode);
criterion_main!(benches);
