//! Criterion benches for the §4.4 pebble games (experiment E5's engine):
//! lazy (Phase One) and eager (Phase Two) coverage across families.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_digraph::{generators, Digraph, FeedbackVertexSet, VertexId};
use swap_pebble::{EagerPebbleGame, LazyPebbleGame};
use swap_sim::SimRng;

fn families() -> Vec<(String, Digraph)> {
    let mut out = Vec::new();
    for n in [10usize, 40, 160] {
        out.push((format!("cycle/{n}"), generators::cycle(n)));
    }
    for n in [5usize, 10, 20] {
        out.push((format!("complete/{n}"), generators::complete(n)));
    }
    for n in [10usize, 40] {
        out.push((
            format!("random/{n}"),
            generators::random_strongly_connected(n, 0.1, &mut SimRng::from_seed(5)),
        ));
    }
    out
}

fn bench_lazy(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_game");
    for (name, d) in families() {
        let leaders: BTreeSet<VertexId> =
            FeedbackVertexSet::greedy(&d).into_vertices().into_iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(&name), &d, |b, d| {
            b.iter(|| {
                let mut game = LazyPebbleGame::new(d, &leaders);
                game.run_to_completion().expect("covers")
            })
        });
    }
    group.finish();
}

fn bench_eager(c: &mut Criterion) {
    let mut group = c.benchmark_group("eager_game");
    for (name, d) in families() {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &d, |b, d| {
            b.iter(|| {
                let mut game = EagerPebbleGame::new(d, VertexId::new(0));
                game.run_to_completion().expect("covers")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_lazy, bench_eager
}
criterion_main!(benches);
