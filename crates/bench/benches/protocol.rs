//! Criterion benches for end-to-end protocol runs — the wall-clock cost of
//! simulating one full atomic swap, and the two DESIGN.md ablations:
//! single-leader timeouts vs general hashkeys, and the §4.5 broadcast
//! optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_bench::bench_setup_config;
use swap_core::runner::{RunConfig, SwapRunner};
use swap_core::setup::SwapSetup;
use swap_core::{ProtocolKind, SwapInstance};
use swap_digraph::{generators, Digraph};
use swap_sim::SimRng;

fn run_general(digraph: Digraph, broadcast: bool) {
    let mut setup = SwapSetup::generate(digraph, &bench_setup_config(), &mut SimRng::from_seed(1))
        .expect("valid");
    setup.spec.broadcast_arcs = broadcast;
    let report = SwapRunner::new(setup, RunConfig::default()).run();
    assert!(report.all_deal());
}

fn bench_full_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_run");
    group.sample_size(10);
    let cases: Vec<(String, Digraph)> = vec![
        ("cycle/3".into(), generators::herlihy_three_party()),
        ("cycle/5".into(), generators::cycle(5)),
        ("cycle/8".into(), generators::cycle(8)),
        ("two-leader/3".into(), generators::two_leader_triangle()),
        ("complete/4".into(), generators::complete(4)),
        ("star/5".into(), generators::star(5)),
    ];
    for (name, digraph) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &digraph, |b, d| {
            b.iter(|| run_general(d.clone(), false))
        });
    }
    group.finish();
}

fn bench_single_vs_multi(c: &mut Criterion) {
    // Ablation: §4.6 timeout-only protocol vs the general hashkey protocol
    // on the same single-leader digraphs.
    let mut group = c.benchmark_group("single_vs_multi");
    group.sample_size(10);
    for n in [3usize, 5, 8] {
        let digraph = generators::cycle(n);
        group.bench_with_input(BenchmarkId::new("htlc", n), &digraph, |b, d| {
            b.iter(|| {
                let setup = SwapSetup::generate(
                    d.clone(),
                    &bench_setup_config(),
                    &mut SimRng::from_seed(2),
                )
                .expect("valid");
                let report = SwapInstance::new(0, setup, RunConfig::default())
                    .with_protocol(ProtocolKind::Htlc)
                    .run_lockstep();
                assert!(report.all_deal());
            })
        });
        group.bench_with_input(BenchmarkId::new("hashkey", n), &digraph, |b, d| {
            b.iter(|| run_general(d.clone(), false))
        });
    }
    group.finish();
}

fn bench_broadcast_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast");
    group.sample_size(10);
    for n in [5usize, 8] {
        let digraph = generators::cycle(n);
        group.bench_with_input(BenchmarkId::new("plain", n), &digraph, |b, d| {
            b.iter(|| run_general(d.clone(), false))
        });
        group.bench_with_input(BenchmarkId::new("broadcast", n), &digraph, |b, d| {
            b.iter(|| run_general(d.clone(), true))
        });
    }
    group.finish();
}

fn bench_setup_cost(c: &mut Criterion) {
    // Provisioning cost alone (key generation dominates).
    let mut group = c.benchmark_group("setup");
    group.sample_size(10);
    for n in [3usize, 6] {
        let digraph = generators::cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &digraph, |b, d| {
            b.iter(|| {
                SwapSetup::generate(d.clone(), &bench_setup_config(), &mut SimRng::from_seed(3))
                    .expect("valid")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_protocol,
    bench_single_vs_multi,
    bench_broadcast_ablation,
    bench_setup_cost
);
criterion_main!(benches);
