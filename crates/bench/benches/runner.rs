//! Criterion benches for the event-driven runner.
//!
//! Two questions, benched separately:
//!
//! 1. `runner/*` — end-to-end cost of one conforming swap across the
//!    `cycle`/`complete`/`flower` families at n ∈ {8, 32, 128}. Setup
//!    (key generation) is provisioned once per case and cloned per
//!    iteration so the engine dominates the measurement.
//! 2. `runner_snapshot/*` — the snapshot-delta hot path against the
//!    classic per-boundary full rebuild, on `complete(32)` under a
//!    withholding leader with a long refund horizon: the run spends
//!    dozens of boundaries with every contract carrying ~|L| unlock
//!    records, which is exactly where re-cloning O(|A|) snapshots per
//!    round hurts and dirty-arc tracking pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swap_bench::bench_setup_config;
use swap_core::runner::{RunConfig, SnapshotMode, SwapRunner};
use swap_core::setup::SwapSetup;
use swap_core::Behavior;
use swap_digraph::{generators, Digraph};
use swap_sim::SimRng;

fn provision(digraph: Digraph) -> SwapSetup {
    SwapSetup::generate(digraph, &bench_setup_config(), &mut SimRng::from_seed(0xB0B))
        .expect("valid swap digraph")
}

fn run(setup: &SwapSetup, config: &RunConfig) {
    let report = SwapRunner::new(setup.clone(), config.clone()).run();
    assert!(report.metrics.contracts_published > 0);
}

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.sample_size(3);
    let mut cases: Vec<(String, Digraph)> = Vec::new();
    for n in [8usize, 32, 128] {
        cases.push((format!("cycle/{n}"), generators::cycle(n)));
    }
    for n in [8usize, 32, 128] {
        // flower(4, n/4): four petals, n arcs, one leader (the center).
        cases.push((format!("flower/{n}"), generators::flower(4, n / 4)));
    }
    for n in [8usize, 32] {
        cases.push((format!("complete/{n}"), generators::complete(n)));
    }
    // Not a silent cap: complete(128) means 16256 arcs × 127 leaders ≈ 2M
    // signature-chain verifications — hours per iteration, so the family
    // tops out at complete(32) here.
    println!("runner/complete/128               skipped (2M sig verifications per run)");
    for (name, digraph) in cases {
        let setup = provision(digraph);
        let config = RunConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(&name), &setup, |b, s| {
            b.iter(|| run(s, &config))
        });
    }
    group.finish();
}

fn bench_snapshot_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner_snapshot");
    group.sample_size(2);
    let setup = provision(generators::complete(32));
    let leader = setup.spec.leaders[0];
    for (name, mode) in
        [("delta", SnapshotMode::Delta), ("full-rebuild", SnapshotMode::FullRebuild)]
    {
        // One withholding leader: lock 0 never opens, so no contract
        // settles before the refund deadline at 2·diam·Δ — the run idles
        // through ~50 boundaries with fully populated snapshots.
        let mut config =
            RunConfig { snapshot_mode: mode, max_rounds: Some(60), ..RunConfig::default() };
        config.behaviors.insert(leader, Behavior::WithholdSecret);
        group.bench_with_input(BenchmarkId::new("complete/32", name), &setup, |b, s| {
            b.iter(|| {
                let report = SwapRunner::new(s.clone(), config.clone()).run();
                assert_eq!(report.metrics.rounds, 60);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_families, bench_snapshot_modes);
criterion_main!(benches);
