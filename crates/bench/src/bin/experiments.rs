//! `experiments` — regenerates every evaluation artifact of the paper.
//!
//! Herlihy's paper is analytical; its "tables and figures" are worked
//! examples and complexity/impossibility theorems. Each experiment below
//! reproduces one of them on the simulated substrate and prints a
//! paper-vs-measured comparison. Run them all:
//!
//! ```text
//! cargo run --release -p swap-bench --bin experiments          # all
//! cargo run --release -p swap-bench --bin experiments e6       # one
//! ```
//!
//! Experiment ids follow DESIGN.md's index (E1–E14), plus E15 for the
//! event-driven engine's per-chain latency timing model, E16 for the
//! exchange pipeline (continuous clearing + pooled concurrent execution),
//! E17 for per-cycle protocol selection (§4.6 single-leader HTLCs vs the
//! general hashkey protocol on the same cleared books), E18 for
//! multi-epoch pipelining (stage-overlapped vs batch driving of a rolling
//! book, with per-stage wall-tick attribution), and E19 for the
//! worker-pool execution tier (sustained rolling-book throughput as the
//! multi-slot `Executing` budget sweeps 1/2/8/16 simulated workers), and
//! E20 for the incremental clearing index (indexed vs full-rescan clearing
//! throughput on churn books of 10²–10⁵ offers, with a 10⁶ smoke), and E21
//! for the identity registry + crypto hot path (rolling-book swaps/sec:
//! fresh per-wave keygen vs pool-minted identities vs the amortized
//! registry, with keygen-overlap attribution), and E22 for the journaled
//! transaction hot path (undo-log vs clone-the-world rollback tx/sec as
//! the asset registry scales 10²–10⁵), and E23 for the durable exchange
//! (WAL-on vs WAL-off host overhead and snapshot-based crash-recovery
//! time as the resident book scales 10²–10⁴).

use std::collections::BTreeSet;

use swap_bench::{bench_setup_config, fmt_row, run_conforming};
use swap_contract::SwapSpec;
use swap_core::hashkey::HashkeyTable;
use swap_core::runner::{RunConfig, SwapRunner};
use swap_core::setup::SwapSetup;
use swap_core::single_leader::timeout_assignment_feasible;
use swap_core::timing::PerChainLatency;
use swap_core::{assign_timeouts, Behavior, Engine, Outcome, ProtocolKind, SwapInstance};
use swap_crypto::{MssKeypair, Secret};
use swap_digraph::{generators, Digraph, FeedbackVertexSet, VertexId};
use swap_pebble::{EagerPebbleGame, LazyPebbleGame};
use swap_sim::{Delta, SimRng, SimTime};

/// One named experiment: its id and entry point.
type Experiment = (&'static str, fn() -> bool);

/// A named adversary constructor, parameterized by halting round.
type AdversaryKind = (&'static str, fn(u64) -> Behavior);

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let mut results: Vec<(&str, bool)> = Vec::new();
    let experiments: Vec<Experiment> = vec![
        ("e1", e1_three_party_timeline),
        ("e2", e2_outcome_lattice),
        ("e3", e3_atomicity_under_adversaries),
        ("e4", e4_freeride_impossibility),
        ("e5", e5_pebble_games),
        ("e6", e6_completion_time),
        ("e7", e7_safety_sweep),
        ("e8", e8_space_complexity),
        ("e9", e9_communication),
        ("e10", e10_figure6_timeouts),
        ("e11", e11_figure7_hashkeys),
        ("e12", e12_figure8_propagation),
        ("e13", e13_deadlock_without_fvs),
        ("e14", e14_extensions),
        ("e15", e15_timing_models),
        ("e16", e16_exchange_pipeline),
        ("e17", e17_protocol_selection),
        ("e18", e18_multi_epoch_pipelining),
        ("e19", e19_rolling_book_worker_pool),
        ("e20", e20_incremental_clearing_index),
        ("e21", e21_identity_registry_throughput),
        ("e22", e22_journaled_tx_hot_path),
        ("e23", e23_durable_exchange),
    ];
    for &(id, run) in &experiments {
        if let Some(f) = &filter {
            if f != id && f != "all" {
                continue;
            }
        }
        println!("\n{}", "=".repeat(76));
        let ok = run();
        results.push((id, ok));
    }
    if results.is_empty() {
        let known: Vec<&str> = experiments.iter().map(|(id, _)| *id).collect();
        eprintln!(
            "unknown experiment `{}`; expected one of {}, or `all`",
            filter.as_deref().unwrap_or(""),
            known.join(", ")
        );
        std::process::exit(2);
    }
    println!("\n{}", "=".repeat(76));
    println!("SUMMARY");
    let mut all_ok = true;
    for (id, ok) in &results {
        println!("  {id:<5} {}", if *ok { "PASS" } else { "FAIL" });
        all_ok &= ok;
    }
    if !all_ok {
        std::process::exit(1);
    }
}

/// E1 (Figures 1–2): the three-way swap deploys contracts at Δ, 2Δ, 3Δ and
/// triggers arcs at 4Δ, 5Δ, 6Δ.
fn e1_three_party_timeline() -> bool {
    println!("E1  Figures 1-2: three-party swap timeline");
    println!("    paper: contracts at +1Δ,+2Δ,+3Δ; triggers at +4Δ,+5Δ,+6Δ\n");
    let report = run_conforming(generators::herlihy_three_party(), 2018);
    let delta = 10.0;
    let mut ok = true;
    println!("    event                measured   paper");
    for (kind, expected) in
        [("contract.published", [1.0, 2.0, 3.0]), ("arc.triggered", [4.0, 5.0, 6.0])]
    {
        for (entry, exp) in report.trace.entries_of_kind(kind).zip(expected) {
            // Transactions execute mid-round; they are *visible* at the
            // round boundary, which is the paper's instant.
            let visible = (entry.time.ticks() as f64 / delta).ceil();
            let hit = (visible - exp).abs() < f64::EPSILON;
            ok &= hit;
            println!(
                "    {kind:<20} +{visible:.0}Δ        +{exp:.0}Δ   {}",
                if hit { "✓" } else { "✗" }
            );
        }
    }
    ok &= report.all_deal();
    println!("\n    all parties end in Deal: {}", report.all_deal());
    ok
}

/// E2 (Figure 3): the outcome classification and its partial order.
fn e2_outcome_lattice() -> bool {
    println!("E2  Figure 3: outcome classes and preference order");
    let mut ok = true;
    println!("    entering  leaving   class");
    for (e, l, expected) in [
        ((2, 2), (2, 2), Outcome::Deal),
        ((0, 2), (0, 2), Outcome::NoDeal),
        ((1, 2), (0, 2), Outcome::FreeRide),
        ((2, 2), (1, 2), Outcome::Discount),
        ((1, 2), (2, 2), Outcome::Underwater),
    ] {
        let got = Outcome::classify(e, l);
        ok &= got == expected;
        println!("    {e:?}    {l:?}    {got:<10} (expect {expected})");
    }
    // Partial order generators + FreeRide incomparability.
    let order_ok = Outcome::Deal.is_better_than(Outcome::NoDeal)
        && Outcome::Discount.is_better_than(Outcome::Deal)
        && Outcome::FreeRide.is_better_than(Outcome::NoDeal)
        && Outcome::NoDeal.is_better_than(Outcome::Underwater)
        && !Outcome::FreeRide.is_comparable_with(Outcome::Deal);
    println!("    partial order (Underwater < NoDeal < Deal < Discount;");
    println!("    NoDeal < FreeRide; FreeRide ∥ Deal): {order_ok}");
    ok && order_ok
}

/// E3 (Theorem 3.5 ⇐): on strongly connected digraphs, every implemented
/// adversary leaves all conforming parties ≥ NoDeal.
fn e3_atomicity_under_adversaries() -> bool {
    println!("E3  Theorem 3.5 (atomicity, forward direction)");
    println!("    adversary sweep on random strongly connected digraphs\n");
    let kinds: [AdversaryKind; 5] = [
        ("halt", |r| Behavior::Halt { at_round: r % 8 }),
        ("withhold-secret", |_| Behavior::WithholdSecret),
        ("never-publish", |_| Behavior::NeverPublish { arcs: None }),
        ("premature-reveal", |_| Behavior::PrematureReveal),
        ("eager-publish", |_| Behavior::EagerPublish),
    ];
    let mut ok = true;
    println!("    adversary          runs   conforming-underwater");
    for (name, make) in kinds {
        let mut runs = 0;
        let mut violations = 0;
        for seed in 0..12u64 {
            let n = 3 + (seed % 3) as usize;
            let digraph =
                generators::random_strongly_connected(n, 0.3, &mut SimRng::from_seed(seed));
            let setup = SwapSetup::generate(
                digraph,
                &bench_setup_config(),
                &mut SimRng::from_seed(seed ^ 0xE3),
            )
            .expect("valid");
            let mut config = RunConfig::default();
            config.behaviors.insert(VertexId::new((seed % n as u64) as u32), make(seed));
            let report = SwapRunner::new(setup, config).run();
            runs += 1;
            if !report.no_conforming_underwater() {
                violations += 1;
            }
        }
        ok &= violations == 0;
        println!("    {name:<18} {runs:>4}   {violations}");
    }
    println!("\n    paper: zero conforming parties end Underwater — measured: {ok}");
    ok
}

/// E4 (Lemma 3.4 / Theorem 3.5 ⇒): on a non-strongly-connected digraph the
/// cut-off coalition free-rides profitably, so no uniform protocol is
/// atomic.
fn e4_freeride_impossibility() -> bool {
    println!("E4  Lemma 3.4: free ride on a non-strongly-connected digraph");
    let digraph = generators::bridged_cycles();
    println!("    digraph: two 3-cycles X={{x0,x1,x2}}, Y={{y0,y1,y2}}, bridge x0→y0");
    let n = digraph.vertex_count();
    let mut rng = SimRng::from_seed(0xE4);
    let keypairs: Vec<MssKeypair> =
        (0..n).map(|_| MssKeypair::from_seed_with_height(rng.bytes32(), 5)).collect();
    let secrets: Vec<Secret> = (0..n).map(|_| Secret::random(&mut rng)).collect();
    let x0 = digraph.vertex_by_name("x0").unwrap();
    let y0 = digraph.vertex_by_name("y0").unwrap();
    let delta = Delta::from_ticks(10);
    let spec = SwapSpec {
        leaders: vec![x0, y0],
        hashlocks: vec![secrets[x0.index()].hashlock(), secrets[y0.index()].hashlock()],
        addresses: keypairs.iter().map(|k| k.public_key().address()).collect(),
        keys: keypairs.iter().map(|k| k.public_key()).collect(),
        start: SimTime::ZERO + delta.times(1),
        delta,
        diam: digraph.diameter() as u64,
        broadcast_arcs: false,
        digraph: digraph.clone(),
    };
    println!("    honest validation rejects the swap: {}", spec.validate().is_err());
    let setup = SwapSetup::from_parts(spec, keypairs, secrets, SimTime::ZERO);
    let bridge = digraph.arcs_between(x0, y0)[0];
    let mut config = RunConfig::default();
    for name in ["x0", "x1", "x2"] {
        let v = digraph.vertex_by_name(name).unwrap();
        config.behaviors.insert(v, Behavior::Direct { skip_arcs: vec![bridge] });
    }
    let report = SwapRunner::new(setup, config).run();
    println!("\n    party   outcome      (X = deviating coalition)");
    let mut ok = true;
    for v in digraph.vertices() {
        let name = digraph.name(v);
        let o = report.outcomes[v.index()];
        println!("    {name:<7} {o}");
        if name.starts_with('x') {
            ok &= o == Outcome::Deal || o == Outcome::Discount || o == Outcome::FreeRide;
        } else {
            ok &= o == Outcome::NoDeal;
        }
    }
    ok &= report.outcomes[x0.index()] == Outcome::Discount;
    println!("\n    coalition ≥ Deal while withholding the bridge; Y stuck at NoDeal: {ok}");
    ok
}

/// E5 (Lemmas 4.1–4.3, Corollary 4.4): both pebble games cover every arc
/// within diam(D) rounds.
fn e5_pebble_games() -> bool {
    println!("E5  §4.4 pebble games: coverage within diam(D) rounds\n");
    let widths = [14, 4, 5, 5, 11, 11, 6];
    println!(
        "    {}",
        fmt_row(
            ["family", "n", "|A|", "diam", "lazy", "eager", "ok"].map(String::from).as_ref(),
            &widths
        )
    );
    let mut ok = true;
    let mut rng = SimRng::from_seed(0xE5);
    let mut families: Vec<(String, Digraph)> = Vec::new();
    for n in [3usize, 5, 8, 12] {
        families.push((format!("cycle({n})"), generators::cycle(n)));
    }
    for n in [3usize, 4, 5, 6] {
        families.push((format!("complete({n})"), generators::complete(n)));
    }
    for n in [3usize, 6, 9] {
        families.push((
            format!("random({n})"),
            generators::random_strongly_connected(n, 0.3, &mut rng),
        ));
    }
    families.push(("two-leader".into(), generators::two_leader_triangle()));
    families.push(("flower(3,4)".into(), generators::flower(3, 4)));
    for (name, d) in families {
        let diam = d.diameter() as u64;
        let leaders: BTreeSet<VertexId> =
            FeedbackVertexSet::greedy(&d).into_vertices().into_iter().collect();
        let mut lazy = LazyPebbleGame::new(&d, &leaders);
        let lazy_rounds = lazy.run_to_completion().expect("FVS leaders");
        let mut eager = EagerPebbleGame::new(&d, VertexId::new(0));
        let eager_rounds = eager.run_to_completion().expect("strongly connected");
        let row_ok = lazy_rounds <= diam && eager_rounds <= diam;
        ok &= row_ok;
        println!(
            "    {}",
            fmt_row(
                &[
                    name,
                    d.vertex_count().to_string(),
                    d.arc_count().to_string(),
                    diam.to_string(),
                    lazy_rounds.to_string(),
                    eager_rounds.to_string(),
                    if row_ok { "✓".into() } else { "✗".into() },
                ],
                &widths
            )
        );
    }
    println!("\n    paper: rounds ≤ diam(D) for both games — measured: {ok}");
    ok
}

/// E6 (Theorem 4.7): all-conforming completion within 2·diam(D)·Δ.
fn e6_completion_time() -> bool {
    println!("E6  Theorem 4.7: completion ≤ 2·diam(D)·Δ\n");
    let widths = [14, 4, 5, 10, 10, 7, 6];
    println!(
        "    {}",
        fmt_row(
            ["family", "n", "diam", "measured", "bound", "ratio", "ok"].map(String::from).as_ref(),
            &widths
        )
    );
    let mut ok = true;
    let mut cases: Vec<(String, Digraph)> = Vec::new();
    for n in [3usize, 5, 7, 9] {
        cases.push((format!("cycle({n})"), generators::cycle(n)));
    }
    for n in [3usize, 4, 5] {
        cases.push((format!("complete({n})"), generators::complete(n)));
    }
    cases.push(("star(5)".into(), generators::star(5)));
    cases.push(("two-leader".into(), generators::two_leader_triangle()));
    cases.push(("flower(2,4)".into(), generators::flower(2, 4)));
    let mut rng = SimRng::from_seed(0xE6);
    for n in [4usize, 7, 10] {
        cases.push((
            format!("random({n})"),
            generators::random_strongly_connected(n, 0.25, &mut rng),
        ));
    }
    for (name, digraph) in cases {
        let n = digraph.vertex_count();
        let setup =
            SwapSetup::generate(digraph, &bench_setup_config(), &mut SimRng::from_seed(0xE6))
                .expect("valid");
        let diam = setup.spec.diam;
        let start = setup.spec.start;
        let bound = setup.spec.worst_case_duration();
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        let completion = match report.completion {
            Some(c) => c - start,
            None => {
                ok = false;
                println!("    {name}: DID NOT COMPLETE");
                continue;
            }
        };
        let row_ok = report.all_deal() && completion <= bound;
        ok &= row_ok;
        println!(
            "    {}",
            fmt_row(
                &[
                    name,
                    n.to_string(),
                    diam.to_string(),
                    format!("{}", completion.ticks()),
                    format!("{}", bound.ticks()),
                    format!("{:.2}", completion.ticks() as f64 / bound.ticks() as f64),
                    if row_ok { "✓".into() } else { "✗".into() },
                ],
                &widths
            )
        );
    }
    println!("\n    paper: completion ≤ 2·diam·Δ — measured: {ok}");
    ok
}

/// E7 (Theorem 4.9): exhaustive halting-failure sweep; no conforming party
/// ever ends Underwater.
fn e7_safety_sweep() -> bool {
    println!("E7  Theorem 4.9: exhaustive halt injection\n");
    let mut total = 0u64;
    let mut violations = 0u64;
    for (name, digraph) in [
        ("three-party", generators::herlihy_three_party()),
        ("two-leader", generators::two_leader_triangle()),
        ("cycle(4)", generators::cycle(4)),
    ] {
        let n = digraph.vertex_count();
        let rounds = 2 * digraph.diameter() as u64 + 4;
        for victim in 0..n as u32 {
            for round in 0..rounds {
                let setup = SwapSetup::generate(
                    digraph.clone(),
                    &bench_setup_config(),
                    &mut SimRng::from_seed(0xE7),
                )
                .expect("valid");
                let mut config = RunConfig::default();
                config.behaviors.insert(VertexId::new(victim), Behavior::Halt { at_round: round });
                let report = SwapRunner::new(setup, config).run();
                total += 1;
                if !report.no_conforming_underwater() {
                    violations += 1;
                }
            }
        }
        println!("    {name:<12} swept {} halt schedules", n as u64 * rounds);
    }
    println!("\n    {total} runs, {violations} conforming-underwater violations");
    violations == 0
}

/// E8 (Theorem 4.10): bits stored on all blockchains grow as O(|A|²).
fn e8_space_complexity() -> bool {
    println!("E8  Theorem 4.10: O(|A|²) space\n");
    let widths = [14, 6, 12, 14];
    println!(
        "    {}",
        fmt_row(["family", "|A|", "bytes", "bytes/|A|^2"].map(String::from).as_ref(), &widths)
    );
    let mut ratios = Vec::new();
    for n in [3usize, 4, 5, 6, 7] {
        let digraph = generators::complete(n);
        let arcs = digraph.arc_count();
        let report = run_conforming(digraph, 0xE8);
        let bytes = report.storage.contract_bytes;
        let ratio = bytes as f64 / (arcs * arcs) as f64;
        ratios.push(ratio);
        println!(
            "    {}",
            fmt_row(
                &[
                    format!("complete({n})"),
                    arcs.to_string(),
                    bytes.to_string(),
                    format!("{ratio:.1}"),
                ],
                &widths
            )
        );
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    let ok = max / min < 4.0;
    println!("\n    bytes/|A|² ratio band: [{min:.1}, {max:.1}] — near-constant: {ok}");
    ok
}

/// E9: communication is |A|·|L| hashkey messages.
fn e9_communication() -> bool {
    println!("E9  Communication: |A|·|L| unlock messages\n");
    let widths = [14, 5, 4, 8, 8, 12];
    println!(
        "    {}",
        fmt_row(
            ["family", "|A|", "|L|", "|A|·|L|", "unlocks", "bytes"].map(String::from).as_ref(),
            &widths
        )
    );
    let mut ok = true;
    for (name, digraph) in [
        ("cycle(5)", generators::cycle(5)),
        ("cycle(8)", generators::cycle(8)),
        ("two-leader", generators::two_leader_triangle()),
        ("complete(4)", generators::complete(4)),
        ("complete(5)", generators::complete(5)),
        ("star(5)", generators::star(5)),
    ] {
        let arcs = digraph.arc_count() as u64;
        let setup =
            SwapSetup::generate(digraph, &bench_setup_config(), &mut SimRng::from_seed(0xE9))
                .expect("valid");
        let leaders = setup.spec.leaders.len() as u64;
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        let row_ok = report.metrics.unlock_calls == arcs * leaders;
        ok &= row_ok && report.all_deal();
        println!(
            "    {}",
            fmt_row(
                &[
                    name.to_string(),
                    arcs.to_string(),
                    leaders.to_string(),
                    (arcs * leaders).to_string(),
                    report.metrics.unlock_calls.to_string(),
                    report.metrics.unlock_bytes.to_string(),
                ],
                &widths
            )
        );
    }
    println!("\n    unlock calls = |A|·|L| in every conforming run: {ok}");
    ok
}

/// E10 (Figure 6 / §4.6): timeout assignment exists iff the follower
/// subdigraph is acyclic; the Lemma 4.13 ladder reproduces Figure 1.
fn e10_figure6_timeouts() -> bool {
    println!("E10 Figure 6: timeout feasibility\n");
    let tri = generators::herlihy_three_party();
    let alice = tri.vertex_by_name("alice").unwrap();
    let single: BTreeSet<VertexId> = [alice].into();
    let feasible_single = timeout_assignment_feasible(&tri, &single);
    let two = generators::two_leader_triangle();
    let one_claimed: BTreeSet<VertexId> = [VertexId::new(0)].into();
    let infeasible_two = !timeout_assignment_feasible(&two, &one_claimed);
    println!("    single-leader triangle, leader {{A}}: feasible = {feasible_single}");
    println!("    two-leader triangle, claiming only {{A}}: feasible = {}", !infeasible_two);
    let timeouts =
        assign_timeouts(&tri, alice, SimTime::ZERO, Delta::from_ticks(10)).expect("single leader");
    let ticks: Vec<u64> = timeouts.iter().map(|t| t.ticks() / 10).collect();
    println!("    Lemma 4.13 ladder on C₃ (in Δ): {ticks:?}  (paper: [6, 5, 4])");
    let ladder_ok = ticks == vec![6, 5, 4];
    // And the §4.6 protocol actually runs on it — through the same
    // event-driven engine as the hashkey protocol.
    let setup = SwapSetup::generate(tri, &bench_setup_config(), &mut SimRng::from_seed(0xE10))
        .expect("valid");
    let report = SwapInstance::new(0, setup, RunConfig::default())
        .with_protocol(ProtocolKind::Htlc)
        .run_lockstep();
    println!("    §4.6 protocol outcome: all Deal = {}", report.all_deal());
    feasible_single && infeasible_two && ladder_ok && report.all_deal()
}

/// E11 (Figure 7): hashkey path enumeration for the two-leader triangle.
fn e11_figure7_hashkeys() -> bool {
    println!("E11 Figure 7: hashkey paths of the two-leader digraph\n");
    let d = generators::two_leader_triangle();
    let leaders = [VertexId::new(0), VertexId::new(1)];
    let table = HashkeyTable::build(&d, &leaders);
    print!("{}", table.render(&d, &leaders));
    // Every arc must admit ≥1 hashkey per secret, and total counts match
    // the figure's enumeration.
    let mut ok = true;
    for row in &table.rows {
        for li in 0..leaders.len() {
            ok &= row.iter().any(|s| s.leader_index == li);
        }
    }
    println!("\n    every arc unlockable for every secret: {ok}");
    println!("    total admissible hashkeys: {}", table.total());
    ok
}

/// E12 (Figure 8): concurrent contract propagation from two leaders.
fn e12_figure8_propagation() -> bool {
    println!("E12 Figure 8: concurrent propagation, two leaders\n");
    let d = generators::two_leader_triangle();
    let leaders: BTreeSet<VertexId> = [VertexId::new(0), VertexId::new(1)].into();
    let mut game = LazyPebbleGame::new(&d, &leaders);
    let mut round = 1;
    let mut rounds_used = 0;
    loop {
        let placed = game.step();
        if placed.is_empty() {
            break;
        }
        let names: Vec<String> = placed
            .iter()
            .map(|&a| format!("{}→{}", d.name(d.head(a)), d.name(d.tail(a))))
            .collect();
        println!("    round {round}: {}", names.join(", "));
        rounds_used = round;
        round += 1;
        if game.all_pebbled() {
            break;
        }
    }
    // The protocol's observed publication rounds match.
    let report = run_conforming(generators::two_leader_triangle(), 0xE12);
    let publish_rounds: BTreeSet<u64> = report
        .trace
        .entries_of_kind("contract.published")
        .map(|e| e.time.ticks() / 10 + 1)
        .collect();
    println!(
        "    protocol publications visible at rounds: {publish_rounds:?} (pebbles: 1..={rounds_used})"
    );
    game.all_pebbled() && rounds_used == 2 && report.all_deal()
}

/// E13 (Theorem 4.12): leaders that are not an FVS deadlock Phase One.
fn e13_deadlock_without_fvs() -> bool {
    println!("E13 Theorem 4.12: non-FVS leader set deadlocks\n");
    let digraph = generators::two_leader_triangle();
    let n = digraph.vertex_count();
    let mut rng = SimRng::from_seed(0xE13);
    let keypairs: Vec<MssKeypair> =
        (0..n).map(|_| MssKeypair::from_seed_with_height(rng.bytes32(), 5)).collect();
    let secrets: Vec<Secret> = (0..n).map(|_| Secret::random(&mut rng)).collect();
    let alice = VertexId::new(0);
    let delta = Delta::from_ticks(10);
    let spec = SwapSpec {
        leaders: vec![alice],
        hashlocks: vec![secrets[0].hashlock()],
        addresses: keypairs.iter().map(|k| k.public_key().address()).collect(),
        keys: keypairs.iter().map(|k| k.public_key()).collect(),
        start: SimTime::ZERO + delta.times(1),
        delta,
        diam: digraph.diameter() as u64,
        broadcast_arcs: false,
        digraph: digraph.clone(),
    };
    println!("    honest validation rejects the spec: {}", spec.validate().is_err());
    let setup = SwapSetup::from_parts(spec, keypairs, secrets, SimTime::ZERO);
    let report = SwapRunner::new(setup, RunConfig::default()).run();
    let unpublished: Vec<String> = digraph
        .arcs()
        .filter(|a| !report.arc_triggered[a.id.index()])
        .map(|a| format!("{}→{}", digraph.name(a.head), digraph.name(a.tail)))
        .collect();
    println!("    arcs that never triggered (waits-for cycle): {unpublished:?}");
    println!("    published contracts: {}", report.metrics.contracts_published);
    let bob_carol_stuck = !report.arc_triggered.iter().all(|&t| t);
    let safe = report.no_conforming_underwater();
    println!("    deadlock observed: {bob_carol_stuck}; conforming safe: {safe}");
    bob_carol_stuck && safe
}

/// E14 (§5 remarks): extensions — multigraphs, broadcast short-circuit,
/// FVS heuristic quality, DoS lock-up cost.
fn e14_extensions() -> bool {
    println!("E14 §5 extensions\n");
    let mut ok = true;

    // Multigraph swap (Alice pays Bob on two distinct chains).
    let report = run_conforming(generators::multigraph_pair(), 0xE14);
    println!("    multigraph pair (parallel arcs): all Deal = {}", report.all_deal());
    ok &= report.all_deal();

    // Broadcast optimization: Phase Two span stays constant as n grows.
    let mut plain_spans = Vec::new();
    let mut broadcast_spans = Vec::new();
    for n in [4usize, 6, 8] {
        for broadcast in [false, true] {
            let mut setup = SwapSetup::generate(
                generators::cycle(n),
                &bench_setup_config(),
                &mut SimRng::from_seed(0xE14),
            )
            .expect("valid");
            setup.spec.broadcast_arcs = broadcast;
            let report = SwapRunner::new(setup, RunConfig::default()).run();
            let first = report.triggered_at.iter().filter_map(|&t| t).min().unwrap();
            let span = (report.completion.unwrap() - first).ticks();
            if broadcast {
                broadcast_spans.push(span);
            } else {
                plain_spans.push(span);
            }
        }
    }
    println!(
        "    phase-two span on cycles n=4,6,8: plain {plain_spans:?}, broadcast {broadcast_spans:?}"
    );
    let bc_ok = broadcast_spans.iter().all(|&s| s == broadcast_spans[0])
        && plain_spans.windows(2).all(|w| w[1] > w[0]);
    println!("    broadcast short-circuit keeps Phase Two constant: {bc_ok}");
    ok &= bc_ok;

    // FVS heuristic quality.
    println!("\n    FVS exact vs greedy:");
    let mut rng = SimRng::from_seed(0x14F);
    for n in [6usize, 8, 10] {
        let d = generators::random_strongly_connected(n, 0.3, &mut rng);
        let exact = FeedbackVertexSet::minimum(&d).map(|f| f.vertices().len());
        let greedy = FeedbackVertexSet::greedy(&d).vertices().len();
        println!("      random({n}): exact {exact:?}, greedy {greedy}");
        if let Some(e) = exact {
            ok &= greedy >= e;
        }
    }

    // DoS lock-up: an adversary who never completes ties up assets until
    // refund — measure the lock-up window.
    let setup = SwapSetup::generate(
        generators::herlihy_three_party(),
        &bench_setup_config(),
        &mut SimRng::from_seed(0xD05),
    )
    .expect("valid");
    let leader = setup.spec.leaders[0];
    let start = setup.spec.start;
    let dead = setup.spec.all_hashkeys_dead();
    let mut config = RunConfig::default();
    config.behaviors.insert(leader, Behavior::WithholdSecret);
    let report = SwapRunner::new(setup, config).run();
    let refund_time = report.trace.last_time_of_kind("arc.refunded");
    println!(
        "\n    DoS lock-up: assets escrowed from ~{start}, refundable at {dead}, refunded at {:?}",
        refund_time.map(|t| t.to_string())
    );
    ok &= refund_time.is_some() && report.no_conforming_underwater();
    ok
}

/// E15 (event-driven engine): the `PerChainLatency` timing model —
/// heterogeneous publish/confirm delays per chain under a dominating Δ.
/// Protocol outcomes and the Theorem 4.7 completion bound must survive
/// unchanged while trigger instants move off the lockstep mid-round grid,
/// and adversarial-timing schedules must stay safe (Theorem 4.9).
fn e15_timing_models() -> bool {
    println!("E15 Per-chain latency timing model (Δ dominates the worst chain)\n");
    let widths = [14, 10, 10, 8, 10, 6];
    println!(
        "    {}",
        fmt_row(
            ["family", "lockstep", "latency", "bound", "off-grid", "ok"].map(String::from).as_ref(),
            &widths
        )
    );
    let mut ok = true;
    for (name, digraph) in [
        ("cycle(6)", generators::cycle(6)),
        ("two-leader", generators::two_leader_triangle()),
        ("complete(4)", generators::complete(4)),
        ("flower(3,3)", generators::flower(3, 3)),
    ] {
        let rng = SimRng::from_seed(0xE15);
        let setup =
            SwapSetup::generate(digraph, &bench_setup_config(), &mut rng.clone()).expect("valid");
        let start = setup.spec.start;
        let delta = setup.spec.delta;
        let bound = setup.spec.worst_case_duration();
        let timing = PerChainLatency::sample(&setup, &rng);
        let lockstep = SwapRunner::new(setup.clone(), RunConfig::default()).run();
        let latency = Engine::new(setup, RunConfig::default(), timing).run();
        let lockstep_done = lockstep.completion.expect("conforming completes") - start;
        let latency_done = latency.completion.expect("conforming completes") - start;
        // Same protocol, different transaction instants: trigger times must
        // leave the lockstep mid-round grid somewhere. Offsets are taken
        // relative to round 0's opening (start − Δ) so the check holds for
        // any epoch alignment.
        let t0 = start - delta.duration();
        let off_grid = latency
            .triggered_at
            .iter()
            .flatten()
            .filter(|t| (**t - t0).ticks() % delta.ticks() != delta.ticks() / 2)
            .count();
        let row_ok = lockstep.all_deal()
            && latency.all_deal()
            && lockstep.outcomes == latency.outcomes
            && lockstep.metrics.unlock_calls == latency.metrics.unlock_calls
            && latency_done <= bound
            && off_grid > 0;
        ok &= row_ok;
        println!(
            "    {}",
            fmt_row(
                &[
                    name.to_string(),
                    lockstep_done.ticks().to_string(),
                    latency_done.ticks().to_string(),
                    bound.ticks().to_string(),
                    off_grid.to_string(),
                    if row_ok { "✓".into() } else { "✗".into() },
                ],
                &widths
            )
        );
    }

    // Adversarial timing sweep: halts and secret withholding under
    // heterogeneous latencies never drag a conforming party underwater.
    let mut runs = 0u64;
    let mut violations = 0u64;
    for seed in 0..8u64 {
        let digraph = generators::random_strongly_connected(
            3 + (seed % 3) as usize,
            0.3,
            &mut SimRng::from_seed(seed),
        );
        let n = digraph.vertex_count() as u64;
        let rng = SimRng::from_seed(seed ^ 0xE15);
        let setup =
            SwapSetup::generate(digraph, &bench_setup_config(), &mut rng.clone()).expect("valid");
        let timing = PerChainLatency::sample(&setup, &rng);
        let mut config = RunConfig::default();
        let behavior = if seed % 2 == 0 {
            Behavior::Halt { at_round: seed % 6 }
        } else {
            Behavior::WithholdSecret
        };
        config.behaviors.insert(VertexId::new((seed % n) as u32), behavior);
        let report = Engine::new(setup, config, timing).run();
        runs += 1;
        if !report.no_conforming_underwater() {
            violations += 1;
        }
    }
    ok &= violations == 0;
    println!("\n    adversarial-timing sweep: {runs} runs, {violations} conforming-underwater");
    println!("    outcomes invariant under chain heterogeneity, bounds hold: {ok}");
    ok
}

/// E16 (exchange pipeline): continuous clearing feeding parallel
/// multi-swap execution on the worker pool. Sweeps offer-book size ×
/// worker threads: every ring must clear and settle, and the aggregate
/// `ExchangeReport` must be byte-invariant under thread count (the pool is
/// a wall-clock knob, never a semantic one). Timings for the whole sweep
/// land in `target/BENCH_E16.json` via the hand-rolled JSON writer, for
/// the perf trajectory.
fn e16_exchange_pipeline() -> bool {
    use std::time::Instant;
    use swap_bench::json;
    use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
    use swap_market::AssetKind;

    println!("E16 Exchange pipeline: offers → epoch clearing → pooled execution\n");
    let widths = [8, 8, 8, 8, 10, 12, 4];
    println!(
        "    {}",
        fmt_row(
            ["rings", "threads", "offers", "settled", "ms", "swaps/sec", "ok"]
                .map(String::from)
                .as_ref(),
            &widths
        )
    );

    // A book of `rings` disjoint 3-party cycles, deterministic per size.
    let book = |rings: usize| -> Vec<ExchangeParty> {
        let mut rng = SimRng::from_seed(0xE16 + rings as u64);
        let mut parties = Vec::with_capacity(rings * 3);
        for r in 0..rings {
            for p in 0..3 {
                parties.push(ExchangeParty::generate(
                    &mut rng,
                    4,
                    AssetKind::new(format!("r{r}k{p}")),
                    AssetKind::new(format!("r{r}k{}", (p + 1) % 3)),
                ));
            }
        }
        parties
    };

    let mut ok = true;
    struct Row {
        rings: usize,
        threads: usize,
        offers: usize,
        settled: u64,
        elapsed_ms: f64,
        swaps_per_sec: f64,
        report: swap_core::exchange::ExchangeReport,
    }
    let mut rows: Vec<Row> = Vec::new();
    for rings in [4usize, 8, 16] {
        let parties = book(rings);
        let mut baseline: Option<swap_core::exchange::ExchangeReport> = None;
        for threads in [1usize, 2, 4, 8] {
            let clock = Instant::now();
            let mut exchange = Exchange::new(ExchangeConfig { threads, ..Default::default() });
            for p in &parties {
                exchange.submit(p.clone());
            }
            let executed = exchange.drive_until_quiescent().expect("honest book clears");
            let elapsed = clock.elapsed();
            let report = exchange.into_report();
            let elapsed_ms = elapsed.as_secs_f64() * 1e3;
            let swaps_per_sec = executed.len() as f64 / elapsed.as_secs_f64();
            let row_ok = report.swaps_settled == rings as u64
                && report.swaps_refunded == 0
                && baseline.as_ref().map_or(true, |b| *b == report);
            ok &= row_ok;
            println!(
                "    {}",
                fmt_row(
                    &[
                        rings.to_string(),
                        threads.to_string(),
                        parties.len().to_string(),
                        report.swaps_settled.to_string(),
                        format!("{elapsed_ms:.1}"),
                        format!("{swaps_per_sec:.1}"),
                        if row_ok { "✓".into() } else { "✗".into() },
                    ],
                    &widths
                )
            );
            baseline.get_or_insert_with(|| report.clone());
            rows.push(Row {
                rings,
                threads,
                offers: parties.len(),
                settled: report.swaps_settled,
                elapsed_ms,
                swaps_per_sec,
                report,
            });
        }
        // The pipeline's semantic concurrency, independent of host cores:
        // all in-flight swaps share one epoch wall, so the epoch costs one
        // swap's simulated duration instead of the sum.
        let report = &rows.last().expect("just pushed").report;
        let delta_ticks = ExchangeConfig::default().delta.ticks();
        let sequential_ticks: u64 = report.swaps.iter().map(|s| (s.rounds + 1) * delta_ticks).sum();
        println!(
            "    {rings} in-flight swaps: {} sim ticks per epoch vs {} run back-to-back ({:.1}×)",
            report.wall_ticks,
            sequential_ticks,
            sequential_ticks as f64 / report.wall_ticks as f64
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("    host parallelism: {cores} core(s) — thread-count wall-clock gains need > 1");

    let doc = json::object(|o| {
        o.field_str("experiment", "e16")
            .field_str("name", "exchange pipeline: book size × worker threads")
            .field_usize(
                "host_parallelism",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            )
            .field_array("rows", |arr| {
                for row in &rows {
                    arr.push_object(|o| {
                        o.field_usize("rings", row.rings)
                            .field_usize("threads", row.threads)
                            .field_usize("offers", row.offers)
                            .field_u64("swaps_settled", row.settled)
                            .field_f64("elapsed_ms", row.elapsed_ms)
                            .field_f64("swaps_per_sec", row.swaps_per_sec)
                            .field_object("report", |r| {
                                json::exchange_report_fields(r, &row.report)
                            });
                    });
                }
            });
    });
    match json::write_bench_json("E16", &doc) {
        Ok(path) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            println!("\n    could not write BENCH_E16.json: {e}");
            ok = false;
        }
    }
    println!("    reports invariant under thread count, all rings settled: {ok}");
    ok
}

/// E17 (protocol axis): single-leader HTLCs vs the general hashkey
/// protocol on the same cleared-book sweep. The exchange auto-selects per
/// cycle (every simple trade cycle is single-leader feasible, so auto
/// books run entirely on HTLCs); the forced-hashkey baseline runs the
/// identical books through the general protocol. Both must settle every
/// ring; the HTLC path must store and transmit strictly less. Timings and
/// byte counts land in `target/BENCH_E17.json`.
fn e17_protocol_selection() -> bool {
    use std::time::Instant;
    use swap_bench::json;
    use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty, ProtocolPolicy};
    use swap_core::ProtocolKind;
    use swap_market::AssetKind;

    println!("E17 Protocol selection: §4.6 HTLCs vs hashkeys on cleared books\n");
    let widths = [8, 14, 8, 12, 12, 10, 4];
    println!(
        "    {}",
        fmt_row(
            ["rings", "policy", "settled", "storage B", "unlock B", "ms", "ok"]
                .map(String::from)
                .as_ref(),
            &widths
        )
    );

    // Books of disjoint rings with mixed cycle lengths, deterministic per
    // size; ring r has 2 + (r mod 4) parties.
    let book = |rings: usize| -> Vec<ExchangeParty> {
        let mut rng = SimRng::from_seed(0xE17 + rings as u64);
        let mut parties = Vec::new();
        for r in 0..rings {
            let len = 2 + r % 4;
            for p in 0..len {
                parties.push(ExchangeParty::generate(
                    &mut rng,
                    4,
                    AssetKind::new(format!("r{r}k{p}")),
                    AssetKind::new(format!("r{r}k{}", (p + 1) % len)),
                ));
            }
        }
        parties
    };

    struct Row {
        rings: usize,
        policy: &'static str,
        settled: u64,
        storage_bytes: usize,
        unlock_bytes: u64,
        elapsed_ms: f64,
    }
    let mut ok = true;
    let mut rows: Vec<Row> = Vec::new();
    for rings in [4usize, 8, 16] {
        let parties = book(rings);
        let mut per_policy: Vec<swap_core::exchange::ExchangeReport> = Vec::new();
        for (policy, label) in
            [(ProtocolPolicy::Auto, "auto"), (ProtocolPolicy::ForceHashkey, "force-hashkey")]
        {
            let clock = Instant::now();
            let mut exchange =
                Exchange::new(ExchangeConfig { protocol: policy, ..Default::default() });
            for p in &parties {
                exchange.submit(p.clone());
            }
            exchange.drive_until_quiescent().expect("honest book clears");
            let elapsed_ms = clock.elapsed().as_secs_f64() * 1e3;
            let report = exchange.into_report();
            let expected = match policy {
                ProtocolPolicy::Auto => ProtocolKind::Htlc,
                ProtocolPolicy::ForceHashkey => ProtocolKind::Hashkey,
            };
            let unlock_bytes: u64 = report.swaps.iter().map(|s| s.metrics.unlock_bytes).sum();
            let row_ok = report.swaps_settled == rings as u64
                && report.swaps_refunded == 0
                && report.swaps.iter().all(|s| s.protocol == expected);
            ok &= row_ok;
            println!(
                "    {}",
                fmt_row(
                    &[
                        rings.to_string(),
                        label.to_string(),
                        report.swaps_settled.to_string(),
                        report.storage.total_bytes().to_string(),
                        unlock_bytes.to_string(),
                        format!("{elapsed_ms:.1}"),
                        if row_ok { "✓".into() } else { "✗".into() },
                    ],
                    &widths
                )
            );
            rows.push(Row {
                rings,
                policy: label,
                settled: report.swaps_settled,
                storage_bytes: report.storage.total_bytes(),
                unlock_bytes,
                elapsed_ms,
            });
            per_policy.push(report);
        }
        // The §4.6 win, measured: auto (all-HTLC) stores and transmits
        // strictly less than the forced-hashkey baseline on the same book.
        let auto = &per_policy[0];
        let forced = &per_policy[1];
        let cheaper = auto.storage.total_bytes() < forced.storage.total_bytes();
        ok &= cheaper;
        println!(
            "    {rings} rings: htlc/hashkey storage = {:.3}, settled {} = {}",
            auto.storage.total_bytes() as f64 / forced.storage.total_bytes() as f64,
            auto.swaps_settled,
            forced.swaps_settled,
        );
        ok &= auto.swaps_settled == forced.swaps_settled;
    }

    let doc = json::object(|o| {
        o.field_str("experiment", "e17")
            .field_str("name", "protocol selection: htlc auto-select vs forced hashkey")
            .field_array("rows", |arr| {
                for row in &rows {
                    arr.push_object(|o| {
                        o.field_usize("rings", row.rings)
                            .field_str("policy", row.policy)
                            .field_u64("swaps_settled", row.settled)
                            .field_usize("storage_bytes", row.storage_bytes)
                            .field_u64("unlock_bytes", row.unlock_bytes)
                            .field_f64("elapsed_ms", row.elapsed_ms);
                    });
                }
            });
    });
    match json::write_bench_json("E17", &doc) {
        Ok(path) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            println!("\n    could not write BENCH_E17.json: {e}");
            ok = false;
        }
    }
    println!("    auto-selection settles everything on HTLCs, strictly cheaper: {ok}");
    ok
}

/// E18 (multi-epoch pipelining): stage-overlapped vs batch driving of a
/// rolling book. Five submission waves roll through the exchange; batch
/// driving drains each epoch before the next wave is submitted, pipelined
/// driving submits wave w+1 the instant epoch w enters `Executing`, so
/// epoch w+1's clearing and provisioning run in the shadow of epoch w's
/// execution. Stage latencies are modeled explicitly (`StageCosts`), and
/// the per-stage wall-tick attribution must sum to the total in both
/// modes. The pipelined total must be *strictly* lower than batch at every
/// worker count {1, 2, 8}, and identical across worker counts (sharding
/// is host wall-clock only). Results land in `target/BENCH_E18.json`.
fn e18_multi_epoch_pipelining() -> bool {
    use std::time::Instant;
    use swap_bench::json;
    use swap_core::exchange::{
        EpochStage, Exchange, ExchangeConfig, ExchangeParty, ExchangeReport, StageCosts, StepEvent,
    };
    use swap_market::AssetKind;

    const WAVES: usize = 5;
    const WAVE_RINGS: usize = 3;

    println!("E18 Multi-epoch pipelining: overlapped vs batch driving, {WAVES}-wave book\n");
    let widths = [8, 11, 8, 8, 10, 26, 10, 4];
    println!(
        "    {}",
        fmt_row(
            ["workers", "mode", "epochs", "settled", "wall", "clear/prov/exec/settle", "ms", "ok"]
                .map(String::from)
                .as_ref(),
            &widths
        )
    );

    let costs = StageCosts {
        clearing_base: 10,
        clearing_per_examined: 1,
        clearing_per_cycle: 1,
        provisioning_base: 5,
        provisioning_per_party: 1,
        settling_base: 5,
        settling_per_swap: 1,
    };
    // Wave w: disjoint rings with mixed cycle lengths 2..=4, deterministic.
    let wave = |w: usize| -> Vec<ExchangeParty> {
        let mut rng = SimRng::from_seed(0xE18 + w as u64);
        let mut parties = Vec::new();
        for r in 0..WAVE_RINGS {
            let len = 2 + (w + r) % 3;
            for p in 0..len {
                parties.push(ExchangeParty::generate(
                    &mut rng,
                    4,
                    AssetKind::new(format!("w{w}r{r}k{p}")),
                    AssetKind::new(format!("w{w}r{r}k{}", (p + 1) % len)),
                ));
            }
        }
        parties
    };

    let drive = |threads: usize, pipelined: bool| -> ExchangeReport {
        let mut exchange =
            Exchange::new(ExchangeConfig { threads, stage_costs: costs, ..Default::default() });
        if pipelined {
            let mut next = 0usize;
            for p in wave(next) {
                exchange.submit(p);
            }
            next += 1;
            loop {
                match exchange.step().expect("pipeline advances") {
                    StepEvent::StageEntered { stage: EpochStage::Executing, .. }
                        if next < WAVES =>
                    {
                        for p in wave(next) {
                            exchange.submit(p);
                        }
                        next += 1;
                    }
                    StepEvent::Quiescent => break,
                    _ => {}
                }
            }
            assert_eq!(next, WAVES, "every wave injected");
        } else {
            for w in 0..WAVES {
                for p in wave(w) {
                    exchange.submit(p);
                }
                exchange.drive_until_quiescent().expect("honest book settles");
            }
        }
        exchange.into_report()
    };

    struct Row {
        workers: usize,
        mode: &'static str,
        epochs: u64,
        settled: u64,
        wall_ticks: u64,
        elapsed_ms: f64,
        report: ExchangeReport,
    }
    let mut ok = true;
    let mut rows: Vec<Row> = Vec::new();
    let total_swaps = (WAVES * WAVE_RINGS) as u64;
    let mut pipelined_fingerprint: Option<String> = None;
    for workers in [1usize, 2, 8] {
        let mut walls = [0u64; 2];
        for (slot, (mode, pipelined)) in
            [("batch", false), ("pipelined", true)].into_iter().enumerate()
        {
            let clock = Instant::now();
            let report = drive(workers, pipelined);
            let elapsed_ms = clock.elapsed().as_secs_f64() * 1e3;
            walls[slot] = report.wall_ticks;
            let attribution_sums = report.stage_ticks.total() == report.wall_ticks;
            let row_ok = report.swaps_settled == total_swaps
                && report.swaps_refunded == 0
                && attribution_sums;
            ok &= row_ok;
            if pipelined {
                // Sharding must not change the simulated pipeline at all.
                let fp = format!("{report:?}");
                match &pipelined_fingerprint {
                    None => pipelined_fingerprint = Some(fp),
                    Some(base) => ok &= *base == fp,
                }
            }
            println!(
                "    {}",
                fmt_row(
                    &[
                        workers.to_string(),
                        mode.to_string(),
                        report.epochs.to_string(),
                        report.swaps_settled.to_string(),
                        report.wall_ticks.to_string(),
                        format!(
                            "{}/{}/{}/{}",
                            report.stage_ticks.clearing,
                            report.stage_ticks.provisioning,
                            report.stage_ticks.executing,
                            report.stage_ticks.settling
                        ),
                        format!("{elapsed_ms:.1}"),
                        if row_ok { "✓".into() } else { "✗".into() },
                    ],
                    &widths
                )
            );
            rows.push(Row {
                workers,
                mode,
                epochs: report.epochs,
                settled: report.swaps_settled,
                wall_ticks: report.wall_ticks,
                elapsed_ms,
                report,
            });
        }
        let strictly_lower = walls[1] < walls[0];
        ok &= strictly_lower;
        println!(
            "    workers={workers}: pipelined {} vs batch {} sim ticks ({:.2}x) — strictly lower: \
             {strictly_lower}",
            walls[1],
            walls[0],
            walls[0] as f64 / walls[1] as f64
        );
    }

    let doc = json::object(|o| {
        o.field_str("experiment", "e18")
            .field_str("name", "multi-epoch pipelining: overlapped vs batch driving")
            .field_usize("waves", WAVES)
            .field_usize("rings_per_wave", WAVE_RINGS)
            .field_array("rows", |arr| {
                for row in &rows {
                    arr.push_object(|o| {
                        o.field_usize("workers", row.workers)
                            .field_str("mode", row.mode)
                            .field_u64("epochs", row.epochs)
                            .field_u64("swaps_settled", row.settled)
                            .field_u64("wall_ticks", row.wall_ticks)
                            .field_f64("elapsed_ms", row.elapsed_ms)
                            .field_object("report", |r| {
                                json::exchange_report_fields(r, &row.report)
                            });
                    });
                }
            });
    });
    match json::write_bench_json("E18", &doc) {
        Ok(path) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            println!("\n    could not write BENCH_E18.json: {e}");
            ok = false;
        }
    }
    println!("    pipelining strictly beats batch at every worker count, attribution sums: {ok}");
    ok
}

/// E19 (rolling-book worker pool): sustained throughput of the multi-slot
/// execution tier. Six submission waves roll through the exchange exactly
/// as in E18 (wave w+1 lands the instant epoch w enters `Executing`), and
/// the simulated execution budget — `executing_slots`, the tier's "sim
/// workers" — sweeps {1, 2, 8, 16}. More slots let more epochs reside in
/// `Executing` at once, so the simulated wall shrinks and sustained
/// swaps-per-kilotick rises monotonically from 1 → 8 (strictly at 1 → 2
/// and 2 → 8); at ≥ 2 slots at least two epochs are concurrently resident
/// (`executing_peak ≥ 2`). Host pool workers {1, 2, 8} are swept at every
/// slot count and must leave the report byte-identical — host threads buy
/// wall-clock only, never a different trace. Per-stage attribution must
/// sum to the wall everywhere. Results land in `target/BENCH_E19.json`.
fn e19_rolling_book_worker_pool() -> bool {
    use std::time::Instant;
    use swap_bench::json;
    use swap_core::exchange::{
        EpochStage, Exchange, ExchangeConfig, ExchangeParty, ExchangeReport, StageCosts, StepEvent,
    };
    use swap_market::AssetKind;

    const WAVES: usize = 6;
    const WAVE_RINGS: usize = 3;

    println!("E19 Rolling-book worker pool: execution slots × host threads, {WAVES}-wave book\n");
    let widths = [7, 9, 8, 8, 12, 6, 10, 8, 4];
    println!(
        "    {}",
        fmt_row(
            ["slots", "threads", "settled", "wall", "swaps/ktick", "peak", "occupancy", "ms", "ok"]
                .map(String::from)
                .as_ref(),
            &widths
        )
    );

    // Cheap stage latencies: clearing/provisioning/settling are visible in
    // the attribution but execution dominates, so epochs pile up behind
    // the `Executing` budget and the slot count is the bottleneck.
    let costs = StageCosts {
        clearing_base: 2,
        clearing_per_examined: 0,
        clearing_per_cycle: 0,
        provisioning_base: 2,
        provisioning_per_party: 0,
        settling_base: 2,
        settling_per_swap: 0,
    };
    // Wave w: disjoint rings with mixed cycle lengths 2..=4, deterministic.
    let wave = |w: usize| -> Vec<ExchangeParty> {
        let mut rng = SimRng::from_seed(0xE19 + w as u64);
        let mut parties = Vec::new();
        for r in 0..WAVE_RINGS {
            let len = 2 + (w + r) % 3;
            for p in 0..len {
                parties.push(ExchangeParty::generate(
                    &mut rng,
                    4,
                    AssetKind::new(format!("w{w}r{r}k{p}")),
                    AssetKind::new(format!("w{w}r{r}k{}", (p + 1) % len)),
                ));
            }
        }
        parties
    };

    let drive = |threads: usize, slots: usize| -> ExchangeReport {
        let mut exchange = Exchange::new(ExchangeConfig {
            threads,
            executing_slots: slots,
            stage_costs: costs,
            ..Default::default()
        });
        let mut next = 0usize;
        for p in wave(next) {
            exchange.submit(p);
        }
        next += 1;
        loop {
            match exchange.step().expect("pipeline advances") {
                StepEvent::StageEntered { stage: EpochStage::Executing, .. } if next < WAVES => {
                    for p in wave(next) {
                        exchange.submit(p);
                    }
                    next += 1;
                }
                StepEvent::Quiescent => break,
                _ => {}
            }
        }
        assert_eq!(next, WAVES, "every wave injected");
        exchange.into_report()
    };

    struct Row {
        slots: usize,
        threads: usize,
        settled: u64,
        wall_ticks: u64,
        swaps_per_ktick: f64,
        elapsed_ms: f64,
        swaps_per_sec: f64,
        report: ExchangeReport,
    }
    let mut ok = true;
    let mut rows: Vec<Row> = Vec::new();
    let total_swaps = (WAVES * WAVE_RINGS) as u64;
    let mut wall_of_slots: Vec<(usize, u64)> = Vec::new();
    for slots in [1usize, 2, 8, 16] {
        let mut fingerprint: Option<String> = None;
        for threads in [1usize, 2, 8] {
            let clock = Instant::now();
            let report = drive(threads, slots);
            let elapsed = clock.elapsed();
            let elapsed_ms = elapsed.as_secs_f64() * 1e3;
            let swaps_per_sec = report.swaps_settled as f64 / elapsed.as_secs_f64();
            let swaps_per_ktick = report.swaps_settled as f64 * 1e3 / report.wall_ticks as f64;
            let occupancy = report.executing_resident_ticks as f64 / report.wall_ticks as f64;
            let attribution_sums = report.stage_ticks.total() == report.wall_ticks;
            // Host workers must not change the simulated trace at all.
            let fp = format!("{report:?}");
            let invariant = fingerprint.get_or_insert_with(|| fp.clone()) == &fp;
            let row_ok = report.swaps_settled == total_swaps
                && report.swaps_refunded == 0
                && attribution_sums
                && (slots == 1 || report.executing_peak >= 2)
                && invariant;
            ok &= row_ok;
            println!(
                "    {}",
                fmt_row(
                    &[
                        slots.to_string(),
                        threads.to_string(),
                        report.swaps_settled.to_string(),
                        report.wall_ticks.to_string(),
                        format!("{swaps_per_ktick:.2}"),
                        report.executing_peak.to_string(),
                        format!("{occupancy:.2}"),
                        format!("{elapsed_ms:.1}"),
                        if row_ok { "✓".into() } else { "✗".into() },
                    ],
                    &widths
                )
            );
            rows.push(Row {
                slots,
                threads,
                settled: report.swaps_settled,
                wall_ticks: report.wall_ticks,
                swaps_per_ktick,
                elapsed_ms,
                swaps_per_sec,
                report,
            });
        }
        let wall = rows.last().expect("just pushed").wall_ticks;
        wall_of_slots.push((slots, wall));
    }

    // The acceptance curve: the same book settles the same swaps, so
    // sustained swaps/ktick improves exactly as the wall shrinks — it must
    // never regress as slots grow, and strictly improve through 1 → 2 → 8.
    let wall_at = |slots: usize| {
        wall_of_slots.iter().find(|&&(s, _)| s == slots).expect("swept slot count").1
    };
    let monotone = wall_of_slots.windows(2).all(|w| w[1].1 <= w[0].1);
    let strict = wall_at(2) < wall_at(1) && wall_at(8) < wall_at(2);
    ok &= monotone && strict;
    println!(
        "    sim walls by slots: {} — monotone: {monotone}, strict 1→2→8: {strict}",
        wall_of_slots.iter().map(|(s, w)| format!("{s}:{w}")).collect::<Vec<_>>().join("  ")
    );

    let doc = json::object(|o| {
        o.field_str("experiment", "e19")
            .field_str("name", "rolling-book worker pool: execution slots × host threads")
            .field_usize("waves", WAVES)
            .field_usize("rings_per_wave", WAVE_RINGS)
            .field_usize(
                "host_parallelism",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            )
            .field_array("rows", |arr| {
                for row in &rows {
                    arr.push_object(|o| {
                        o.field_usize("slots", row.slots)
                            .field_usize("threads", row.threads)
                            .field_u64("swaps_settled", row.settled)
                            .field_u64("wall_ticks", row.wall_ticks)
                            .field_f64("swaps_per_ktick", row.swaps_per_ktick)
                            .field_u64("executing_peak", row.report.executing_peak)
                            .field_f64("elapsed_ms", row.elapsed_ms)
                            .field_f64("swaps_per_sec", row.swaps_per_sec)
                            .field_object("report", |r| {
                                json::exchange_report_fields(r, &row.report)
                            });
                    });
                }
            });
    });
    match json::write_bench_json("E19", &doc) {
        Ok(path) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            println!("\n    could not write BENCH_E19.json: {e}");
            ok = false;
        }
    }
    println!("    throughput monotone in slots, ≥2 epochs resident, report thread-invariant: {ok}");
    ok
}

/// E20 (incremental clearing index): clearing throughput as the book
/// scales 10² → 10⁵ (plus a 10⁶ smoke). Each run buries a small hot churn
/// set — mutual pairs for the two-cycle fast path plus one three-cycle
/// for the general matcher — inside an inert tail of offers whose kinds
/// have no counterparties, then times `clear()` alone over repeated
/// submit/clear/settle rounds. `FullRescan` re-examines the whole open
/// book every epoch, so its throughput collapses linearly in the tail;
/// `Indexed` touches only the active kinds, so its per-epoch work is flat
/// and measured `offers_examined` stays at the churn size. Both modes
/// must emit byte-identical cycle sequences, and at 10⁵ the index must
/// clear ≥ 10× the offers/sec of the rescan. A second part threads the
/// measured work into the exchange pipeline: under per-examined stage
/// costs the same book is *priced* differently by mode (fewer simulated
/// clearing ticks for the index), while zero-cost reports stay
/// byte-identical across modes × host threads. Results land in
/// `target/BENCH_E20.json`.
fn e20_incremental_clearing_index() -> bool {
    use std::time::Instant;
    use swap_bench::json;
    use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty, StageCosts};
    use swap_crypto::{Digest32, MssPublicKey, Secret};
    use swap_market::{AssetKind, ClearingMode, ClearingService, Offer};

    const PAIRS: usize = 8;
    const TRI: usize = 3;
    const CHURN: usize = 2 * PAIRS + TRI;

    println!("E20 Incremental clearing index: churn throughput vs book size\n");
    let widths = [9, 12, 7, 10, 10, 7, 12, 11, 9, 4];
    println!(
        "    {}",
        fmt_row(
            [
                "book",
                "mode",
                "clears",
                "presented",
                "examined",
                "cycles",
                "offers/s",
                "cycles/s",
                "ms",
                "ok",
            ]
            .map(String::from)
            .as_ref(),
            &widths
        )
    );

    // Synthetic identity: a key minted straight from a root digest
    // (`MssPublicKey::from_root`) — valid address, no 2^h keygen, so
    // million-party books are buildable. Tail parties are shared mod 10⁴
    // to keep the per-address index compact at the smoke size.
    let synth = |tag: u64, gives: AssetKind, wants: AssetKind| -> Offer {
        let mut root = [0u8; 32];
        root[..8].copy_from_slice(&tag.to_le_bytes());
        root[8] = 0xE2;
        Offer {
            key: MssPublicKey::from_root(Digest32(root), 20),
            hashlock: Secret::from_bytes(preimage_tag(tag)).hashlock(),
            gives,
            wants,
        }
    };

    struct Row {
        book: usize,
        mode: ClearingMode,
        clears: u64,
        presented: u64,
        examined: u64,
        cycles: u64,
        elapsed_ms: f64,
        offers_per_sec: f64,
        cycles_per_sec: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    let speedup_at = |rows: &[Row], book: usize| -> f64 {
        let rate = |mode: ClearingMode| {
            rows.iter().find(|r| r.book == book && r.mode == mode).map_or(0.0, |r| r.offers_per_sec)
        };
        rate(ClearingMode::Indexed) / rate(ClearingMode::FullRescan).max(1e-12)
    };

    // One measured run: an inert tail of `book - CHURN` offers, then
    // `rounds` of submit-churn / clear / settle. Only `clear()` is timed.
    // Returns the cycle-sequence fingerprint for the cross-mode pin.
    let run = |book: usize, rounds: u64, mode: ClearingMode| -> (Row, Vec<String>) {
        let mut svc = ClearingService::new().with_mode(mode);
        let mut tag = 0u64;
        let mut fresh = |gives: AssetKind, wants: AssetKind| {
            tag += 1;
            synth(tag, gives, wants)
        };
        // Tail kinds are given but never wanted (and vice versa), so no
        // cycle can ever include them: the tail is open yet inert.
        for i in 0..book.saturating_sub(CHURN) {
            let shared = 1_000_000_000 + (i % 10_000) as u64;
            svc.submit(synth(shared, AssetKind::new("tail-gives"), AssetKind::new("tail-wants")));
        }
        let mut fingerprint = Vec::new();
        let (mut presented, mut examined, mut cycles) = (0u64, 0u64, 0u64);
        let mut elapsed = std::time::Duration::ZERO;
        for _ in 0..rounds {
            for p in 0..PAIRS {
                let (a, b) =
                    (AssetKind::new(format!("hot{p}a")), AssetKind::new(format!("hot{p}b")));
                svc.submit(fresh(a.clone(), b.clone()));
                svc.submit(fresh(b, a));
            }
            for t in 0..TRI {
                let gives = AssetKind::new(format!("tri{t}"));
                let wants = AssetKind::new(format!("tri{}", (t + 1) % TRI));
                svc.submit(fresh(gives, wants));
            }
            presented += svc.open_count() as u64;
            let clock = Instant::now();
            let swaps = svc.clear(Delta::from_ticks(10), SimTime::ZERO).expect("clears");
            elapsed += clock.elapsed();
            let stats = svc.last_clear_stats().expect("cleared once");
            examined += stats.offers_examined;
            cycles += stats.cycles_emitted;
            for swap in &swaps {
                fingerprint.push(format!("{:?}{:?}", swap.id, swap.offer_of_vertex));
                svc.settle_swap(swap.id).expect("fresh swap settles");
            }
        }
        let secs = elapsed.as_secs_f64().max(1e-9);
        let row = Row {
            book,
            mode,
            clears: rounds,
            presented,
            examined,
            cycles,
            elapsed_ms: secs * 1e3,
            offers_per_sec: presented as f64 / secs,
            cycles_per_sec: cycles as f64 / secs,
        };
        (row, fingerprint)
    };

    let print_row = |row: &Row, row_ok: bool| {
        println!(
            "    {}",
            fmt_row(
                &[
                    row.book.to_string(),
                    row.mode.to_string(),
                    row.clears.to_string(),
                    row.presented.to_string(),
                    row.examined.to_string(),
                    row.cycles.to_string(),
                    format!("{:.0}", row.offers_per_sec),
                    format!("{:.0}", row.cycles_per_sec),
                    format!("{:.2}", row.elapsed_ms),
                    if row_ok { "✓".into() } else { "✗".into() },
                ],
                &widths
            )
        );
    };

    let mut modes_agree = true;
    for (book, rounds) in
        [(100usize, 12u64), (1_000, 12), (10_000, 12), (100_000, 12), (1_000_000, 2)]
    {
        let (indexed, fp_indexed) = run(book, rounds, ClearingMode::Indexed);
        let (full, fp_full) = run(book, rounds, ClearingMode::FullRescan);
        let agree = fp_indexed == fp_full;
        modes_agree &= agree;
        // The index's measured work is the churn set, independent of the
        // tail; the rescan's grows with the book.
        let flat = indexed.examined < full.examined || book <= CHURN;
        let row_ok = agree && flat && indexed.cycles == full.cycles;
        ok &= row_ok;
        print_row(&indexed, row_ok);
        print_row(&full, row_ok);
        rows.push(indexed);
        rows.push(full);
    }
    let speedup = speedup_at(&rows, 100_000);
    let gate = speedup >= 10.0;
    ok &= gate;
    println!(
        "    indexed vs full-rescan offers/s at 10^5: {speedup:.0}x (target >= 10x): {}",
        if gate { "✓" } else { "✗" }
    );
    println!("    cycle sequences byte-identical across modes at every size: {modes_agree}");

    // Part two: the measured work priced into the pipeline. The same
    // dusted book costs the exchange `clearing_base + examined + cycles`
    // simulated ticks, so the mode choice is visible in the stage
    // attribution — while zero costs keep reports byte-identical across
    // modes and host pool widths.
    let dusted = |rng: &mut SimRng| -> Vec<ExchangeParty> {
        let mut parties = vec![
            ExchangeParty::generate(rng, 4, AssetKind::new("btc"), AssetKind::new("eth")),
            ExchangeParty::generate(rng, 4, AssetKind::new("eth"), AssetKind::new("btc")),
        ];
        for _ in 0..60 {
            parties.push(ExchangeParty::generate(
                rng,
                4,
                AssetKind::new("dust-gives"),
                AssetKind::new("dust-wants"),
            ));
        }
        parties
    };
    let drive = |mode: ClearingMode, threads: usize, costs: StageCosts| {
        let mut exchange = Exchange::new(ExchangeConfig {
            threads,
            clearing_mode: mode,
            stage_costs: costs,
            ..Default::default()
        });
        let mut rng = SimRng::from_seed(0xE20);
        for p in dusted(&mut rng) {
            exchange.submit(p);
        }
        exchange.drive_until_quiescent().expect("the pair settles");
        exchange.into_report()
    };
    let measured = StageCosts {
        clearing_base: 1,
        clearing_per_examined: 1,
        clearing_per_cycle: 1,
        ..Default::default()
    };
    let indexed_ticks = drive(ClearingMode::Indexed, 2, measured).stage_ticks.clearing;
    let full_ticks = drive(ClearingMode::FullRescan, 2, measured).stage_ticks.clearing;
    let priced = indexed_ticks < full_ticks;
    ok &= priced;
    println!(
        "    measured clearing ticks on the dusted book: indexed {indexed_ticks} < full-rescan {full_ticks}: {}",
        if priced { "✓" } else { "✗" }
    );
    let mut invariant = true;
    let mut baseline: Option<String> = None;
    for mode in [ClearingMode::Indexed, ClearingMode::FullRescan] {
        for threads in [1usize, 2, 8] {
            let fp = format!("{:?}", drive(mode, threads, StageCosts::default()));
            invariant &= baseline.get_or_insert_with(|| fp.clone()) == &fp;
        }
    }
    ok &= invariant;
    println!("    zero-cost reports byte-identical across modes x 1/2/8 threads: {invariant}");

    let doc = json::object(|o| {
        o.field_str("experiment", "e20")
            .field_str("name", "incremental clearing index: churn throughput vs book size")
            .field_usize("churn_offers_per_round", CHURN)
            .field_f64("speedup_at_1e5", speedup)
            .field_bool("modes_agree", modes_agree)
            .field_u64("indexed_clearing_ticks", indexed_ticks)
            .field_u64("full_rescan_clearing_ticks", full_ticks)
            .field_bool("zero_cost_reports_invariant", invariant)
            .field_usize(
                "host_parallelism",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            )
            .field_array("rows", |arr| {
                for row in &rows {
                    arr.push_object(|o| {
                        o.field_usize("book", row.book)
                            .field_str("mode", &row.mode.to_string())
                            .field_u64("clears", row.clears)
                            .field_u64("offers_presented", row.presented)
                            .field_u64("offers_examined", row.examined)
                            .field_u64("cycles", row.cycles)
                            .field_f64("elapsed_ms", row.elapsed_ms)
                            .field_f64("offers_per_sec", row.offers_per_sec)
                            .field_f64("cycles_per_sec", row.cycles_per_sec);
                    });
                }
            });
    });
    match json::write_bench_json("E20", &doc) {
        Ok(path) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            println!("\n    could not write BENCH_E20.json: {e}");
            ok = false;
        }
    }
    println!("    index flat in book size, modes byte-identical, >=10x at 10^5: {ok}");
    ok
}

/// A distinct 32-byte hashlock preimage per synthetic-offer tag.
fn preimage_tag(tag: u64) -> [u8; 32] {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&tag.to_be_bytes());
    bytes[8] = 0x20;
    bytes
}

/// E21 (identity registry + crypto hot path): host swaps/sec on the E19
/// six-wave rolling book, three arms over identical trade terms:
///
/// * `fresh-inline` — the pre-registry baseline shape: every wave
///   regenerates its parties on the driving thread, so each of the 54
///   submissions pays a full `2^h` MSS keygen inside the measured window.
/// * `fresh-pool` — same fresh addresses, but minted *by the exchange* on
///   the worker pool (`submit_seeded`): waves ≥ 1 queue their keygen while
///   the previous wave's swaps execute, so
///   `mints_overlapping_execution = 45` and the keygen hides under
///   execution.
/// * `registry` — wave 0 registers each of the 9 addresses once
///   (pool-minted); waves ≥ 1 `resubmit` the same identities with fresh
///   secrets and terms. Keygen is paid once per *identity* instead of once
///   per wave, and provisioning leases disjoint one-time leaf windows.
///
/// Gates: every arm settles the same 18 swaps with a thread-invariant
/// report; the two fresh arms share one byte-identical simulated trace
/// (where the keys come from is a host-side detail the simulation must not
/// notice); and the registry arm sustains ≥ 5× the fresh-inline baseline's
/// swaps/sec. The registry arm's simulated wall is *longer* — a reused
/// address is reserved while its swap is in flight, so each wave's
/// resubmissions defer to the clearing after the previous wave settles.
/// That epoch serialization is the semantic price of one identity per
/// trader (a party can't be mid-swap twice), and the host still comes out
/// far ahead because keygen dominates. Results land in
/// `target/BENCH_E21.json`.
fn e21_identity_registry_throughput() -> bool {
    use std::time::Instant;
    use swap_bench::json;
    use swap_core::exchange::{
        EpochStage, Exchange, ExchangeConfig, ExchangeParty, ExchangeReport, PartySeed, StageCosts,
        StepEvent,
    };
    use swap_crypto::Address;
    use swap_market::AssetKind;

    const WAVES: usize = 6;
    const WAVE_RINGS: usize = 3;
    const KEY_HEIGHT: u32 = 6;
    const GATE: f64 = 5.0;

    println!(
        "E21 Identity registry + crypto hot path: rolling-book swaps/sec, {WAVES}-wave book\n"
    );
    let widths = [13, 9, 8, 6, 7, 8, 8, 10, 4];
    println!(
        "    {}",
        fmt_row(
            ["arm", "threads", "settled", "wall", "minted", "overlap", "ms", "swaps/sec", "ok"]
                .map(String::from)
                .as_ref(),
            &widths
        )
    );

    let costs = StageCosts {
        clearing_base: 2,
        provisioning_base: 2,
        settling_base: 2,
        ..Default::default()
    };
    // The trade terms of wave w: three disjoint rings, mixed cycle lengths
    // 2..=4 — always 9 slots per wave, so the registry arm can map wave
    // slot i onto the same identity every wave.
    let kinds = |w: usize| -> Vec<(AssetKind, AssetKind)> {
        let mut out = Vec::new();
        for r in 0..WAVE_RINGS {
            let len = 2 + (w + r) % 3;
            for p in 0..len {
                out.push((
                    AssetKind::new(format!("w{w}r{r}k{p}")),
                    AssetKind::new(format!("w{w}r{r}k{}", (p + 1) % len)),
                ));
            }
        }
        out
    };
    let fresh_seeds = |w: usize| -> Vec<PartySeed> {
        let mut rng = SimRng::from_seed(0xE21 + w as u64);
        kinds(w)
            .into_iter()
            .map(|(gives, wants)| PartySeed {
                seed: rng.bytes32(),
                key_height: KEY_HEIGHT,
                secret: Secret::random(&mut rng),
                gives,
                wants,
            })
            .collect()
    };

    #[derive(Clone, Copy, PartialEq)]
    enum Arm {
        FreshInline,
        FreshPool,
        Registry,
    }
    let label = |arm: Arm| match arm {
        Arm::FreshInline => "fresh-inline",
        Arm::FreshPool => "fresh-pool",
        Arm::Registry => "registry",
    };

    let drive = |arm: Arm, threads: usize| -> ExchangeReport {
        let mut exchange = Exchange::new(ExchangeConfig {
            threads,
            executing_slots: 8,
            stage_costs: costs,
            ..Default::default()
        });
        let mut secret_rng = SimRng::from_seed(0x5EC2E2);
        let mut registered: Vec<Address> = Vec::new();
        let inject = |exchange: &mut Exchange,
                      registered: &mut Vec<Address>,
                      secret_rng: &mut SimRng,
                      w: usize| {
            match arm {
                Arm::FreshInline => {
                    let mut rng = SimRng::from_seed(0xE21 + w as u64);
                    for (gives, wants) in kinds(w) {
                        exchange
                            .submit(ExchangeParty::generate(&mut rng, KEY_HEIGHT, gives, wants));
                    }
                }
                Arm::FreshPool => {
                    exchange.submit_seeded(fresh_seeds(w));
                }
                Arm::Registry if w == 0 => {
                    registered
                        .extend(exchange.submit_seeded(fresh_seeds(0)).into_iter().map(|(_, a)| a));
                }
                Arm::Registry => {
                    for (i, (gives, wants)) in kinds(w).into_iter().enumerate() {
                        exchange
                            .resubmit(registered[i], Secret::random(secret_rng), gives, wants)
                            .expect("every identity registered in wave 0");
                    }
                }
            }
        };
        inject(&mut exchange, &mut registered, &mut secret_rng, 0);
        let mut next = 1usize;
        loop {
            match exchange.step().expect("pipeline advances") {
                StepEvent::StageEntered { stage: EpochStage::Executing, .. } if next < WAVES => {
                    inject(&mut exchange, &mut registered, &mut secret_rng, next);
                    next += 1;
                }
                StepEvent::Quiescent => break,
                _ => {}
            }
        }
        assert_eq!(next, WAVES, "every wave injected");
        exchange.into_report()
    };

    struct Row {
        arm: &'static str,
        threads: usize,
        elapsed_ms: f64,
        swaps_per_sec: f64,
        report: ExchangeReport,
    }
    let total_swaps = (WAVES * WAVE_RINGS) as u64;
    let mut ok = true;
    let mut rows: Vec<Row> = Vec::new();
    let mut best: Vec<(&'static str, f64)> = Vec::new();
    let mut walls: Vec<u64> = Vec::new();
    for arm in [Arm::FreshInline, Arm::FreshPool, Arm::Registry] {
        let mut fingerprint: Option<String> = None;
        let mut best_sps = 0f64;
        for threads in [1usize, 2, 8] {
            let clock = Instant::now();
            let report = drive(arm, threads);
            let elapsed = clock.elapsed();
            let elapsed_ms = elapsed.as_secs_f64() * 1e3;
            let swaps_per_sec = report.swaps_settled as f64 / elapsed.as_secs_f64();
            best_sps = best_sps.max(swaps_per_sec);
            let fp = format!("{report:?}");
            let invariant = fingerprint.get_or_insert_with(|| fp.clone()) == &fp;
            let arm_ok = match arm {
                // The baseline mints nothing through the exchange.
                Arm::FreshInline => {
                    report.identities_minted == 0 && report.identities_registered == total_swaps * 3
                }
                // Pool-minted fresh identities: every wave after the first
                // queues its keygen while the previous wave executes.
                Arm::FreshPool => {
                    report.identities_minted == total_swaps * 3
                        && report.mints_overlapping_execution == total_swaps * 3 - 9
                }
                // Nine identities, minted once, leased every wave.
                Arm::Registry => {
                    report.identities_minted == 9
                        && report.identities_registered == 9
                        && report.leaves_leased > 0
                }
            };
            let row_ok = report.swaps_settled == total_swaps
                && report.swaps_refunded == 0
                && report.swaps_exhausted == 0
                && report.stage_ticks.total() == report.wall_ticks
                && invariant
                && arm_ok;
            ok &= row_ok;
            println!(
                "    {}",
                fmt_row(
                    &[
                        label(arm).to_string(),
                        threads.to_string(),
                        report.swaps_settled.to_string(),
                        report.wall_ticks.to_string(),
                        report.identities_minted.to_string(),
                        report.mints_overlapping_execution.to_string(),
                        format!("{elapsed_ms:.1}"),
                        format!("{swaps_per_sec:.0}"),
                        if row_ok { "✓".into() } else { "✗".into() },
                    ],
                    &widths
                )
            );
            walls.push(report.wall_ticks);
            rows.push(Row { arm: label(arm), threads, elapsed_ms, swaps_per_sec, report });
        }
        best.push((label(arm), best_sps));
    }

    // Where fresh keys are minted (inline vs pool) is a host-side detail:
    // both fresh arms must produce one byte-identical simulated trace.
    let fresh_wall = walls[0];
    let fresh_walls_agree = walls[..6].iter().all(|&w| w == fresh_wall);
    ok &= fresh_walls_agree;
    // The registry arm reuses addresses, and a reserved address defers its
    // next offer to the clearing after its in-flight swap settles — so its
    // epochs serialize and its simulated wall is strictly longer. Assert
    // the direction so the trade-off stays visible in the artifact.
    let registry_wall = walls[6];
    let registry_serializes =
        walls[6..].iter().all(|&w| w == registry_wall) && registry_wall > fresh_wall;
    ok &= registry_serializes;

    // The headline gate: amortized identities beat per-wave fresh keygen
    // by at least 5× in sustained host throughput.
    let sps_of = |name: &str| best.iter().find(|(n, _)| *n == name).expect("arm measured").1;
    let speedup = sps_of("registry") / sps_of("fresh-inline");
    let gate_met = speedup >= GATE;
    ok &= gate_met;
    println!(
        "\n    fresh walls identical: {fresh_walls_agree}; registry serializes \
         ({registry_wall} > {fresh_wall} ticks): {registry_serializes}; registry vs \
         fresh-inline: {speedup:.1}x (gate ≥ {GATE:.0}x: {gate_met})"
    );

    let doc = json::object(|o| {
        o.field_str("experiment", "e21")
            .field_str("name", "identity registry + crypto hot path: rolling-book swaps/sec")
            .field_usize("waves", WAVES)
            .field_usize("rings_per_wave", WAVE_RINGS)
            .field_u64("key_height", KEY_HEIGHT as u64)
            .field_f64("gate", GATE)
            .field_f64("speedup_vs_fresh", speedup)
            .field_u64("fresh_wall_ticks", fresh_wall)
            .field_u64("registry_wall_ticks", registry_wall)
            .field_usize(
                "host_parallelism",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            )
            .field_array("rows", |arr| {
                for row in &rows {
                    arr.push_object(|o| {
                        o.field_str("arm", row.arm)
                            .field_usize("threads", row.threads)
                            .field_u64("swaps_settled", row.report.swaps_settled)
                            .field_u64("wall_ticks", row.report.wall_ticks)
                            .field_u64("identities_minted", row.report.identities_minted)
                            .field_u64(
                                "mints_overlapping_execution",
                                row.report.mints_overlapping_execution,
                            )
                            .field_u64("leaves_leased", row.report.leaves_leased)
                            .field_f64("elapsed_ms", row.elapsed_ms)
                            .field_f64("swaps_per_sec", row.swaps_per_sec)
                            .field_object("report", |r| {
                                json::exchange_report_fields(r, &row.report)
                            });
                    });
                }
            });
    });
    match json::write_bench_json("E21", &doc) {
        Ok(path) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            println!("\n    could not write BENCH_E21.json: {e}");
            ok = false;
        }
    }
    println!("    registry ≥ 5× fresh keygen, overlap attributed, traces thread-invariant: {ok}");
    ok
}

/// E22 (journaled transaction hot path): host tx/sec on one chain as the
/// asset registry scales 10² → 10⁵, under a fixed churn workload of
/// succeeding escrow toggles, failing calls (the rollback path), and
/// fresh contract publishes. `Snapshot` mode clones the whole registry
/// before every contract transaction, so its throughput collapses
/// linearly in registry size; `Journal` records an undo log of the ops a
/// transaction actually performs, so its per-tx cost is O(delta) and its
/// tx/sec stays flat across four decades. Gates: both modes replay the
/// same 240-op workload to byte-identical chain fingerprints (head block
/// hash, counters, storage) at every size; `Journal` tx/sec spreads ≤
/// 1.5× across sizes; and at 10⁴ assets `Journal` sustains ≥ 5× the
/// `Snapshot` rate. Rates are host-dependent; the fingerprint pin and
/// both gates are not. Results land in `target/BENCH_E22.json`.
fn e22_journaled_tx_hot_path() -> bool {
    use std::time::Instant;
    use swap_bench::json;
    use swap_chain::{
        AssetDescriptor, AssetId, Blockchain, ContractId, ContractLogic, ExecCtx, Owner,
        RollbackMode,
    };
    use swap_crypto::{Address, Digest32};

    /// A non-terminating escrow contract: `Toggle` moves its asset
    /// between the home party and escrow (always succeeds), `Fail`
    /// rejects before touching anything (the pure rollback path).
    #[derive(Debug, Clone)]
    struct Churn {
        asset: AssetId,
        home: Address,
        held: bool,
    }

    #[derive(Debug, Clone, Copy)]
    enum ChurnCall {
        Toggle,
        Fail,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct ChurnError;
    impl std::fmt::Display for ChurnError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "churn rejected")
        }
    }
    impl std::error::Error for ChurnError {}

    impl ContractLogic for Churn {
        type Call = ChurnCall;
        type Event = ();
        type Error = ChurnError;

        fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<()>, ChurnError> {
            ctx.assets
                .transfer_from(self.asset, Owner::Party(ctx.caller), Owner::Escrow(ctx.this))
                .map_err(|_| ChurnError)?;
            self.held = true;
            Ok(vec![])
        }

        fn apply(&mut self, call: ChurnCall, ctx: &mut ExecCtx<'_>) -> Result<Vec<()>, ChurnError> {
            match call {
                ChurnCall::Toggle => {
                    let (from, to) = if self.held {
                        (Owner::Escrow(ctx.this), Owner::Party(self.home))
                    } else {
                        (Owner::Party(self.home), Owner::Escrow(ctx.this))
                    };
                    ctx.assets.transfer_from(self.asset, from, to).map_err(|_| ChurnError)?;
                    self.held = !self.held;
                    Ok(vec![])
                }
                ChurnCall::Fail => Err(ChurnError),
            }
        }

        fn storage_bytes(&self) -> usize {
            8 + 32 + 1
        }

        fn is_terminated(&self) -> bool {
            false
        }
    }

    println!("E22 Journaled tx hot path: tx/sec vs registry size\n");
    let widths = [9, 10, 7, 10, 9, 9, 10, 4];
    println!(
        "    {}",
        fmt_row(
            ["assets", "mode", "ops", "tx/s", "executed", "rolled", "ms", "ok"]
                .map(String::from)
                .as_ref(),
            &widths
        )
    );

    let home = Address::from_digest(Digest32([0xE2; 32]));

    // A chain whose registry holds `assets` pre-minted assets, with one
    // churn contract already published on the first of them.
    let rigged = |mode: RollbackMode, assets: usize| -> (Blockchain<Churn>, ContractId) {
        let mut chain = Blockchain::new("e22", SimTime::ZERO);
        chain.set_rollback_mode(mode);
        let mut first = None;
        for _ in 0..assets {
            let id = chain.mint_asset(AssetDescriptor::unique("t"), home, SimTime::ZERO);
            first.get_or_insert(id);
        }
        let asset = first.expect("at least one asset");
        let id = chain
            .publish_contract(Churn { asset, home, held: false }, home, SimTime::from_ticks(1))
            .expect("publishes");
        (chain, id)
    };

    // The fixed churn workload: per 8 ops, six succeeding toggles, one
    // failing call (a rollback), one fresh publish (mint + escrow).
    let churn = |chain: &mut Blockchain<Churn>, id: ContractId, ops: u64| {
        let mut tick = 10u64;
        for i in 0..ops {
            tick += 1;
            let now = SimTime::from_ticks(tick);
            match i % 8 {
                3 => {
                    chain
                        .call_contract(id, home, ChurnCall::Fail, now, 16)
                        .expect_err("churn fail rejects");
                }
                7 => {
                    let asset = chain.mint_asset(AssetDescriptor::unique("c"), home, now);
                    chain
                        .publish_contract(Churn { asset, home, held: false }, home, now)
                        .expect("fresh churn publishes");
                }
                _ => {
                    chain
                        .call_contract(id, home, ChurnCall::Toggle, now, 16)
                        .map(<[_]>::len)
                        .expect("toggle succeeds");
                }
            }
        }
    };

    // Everything a mode choice must NOT change: the sealed head, every
    // counter, the event count, and the storage attribution.
    let fingerprint = |chain: &Blockchain<Churn>| -> String {
        format!(
            "{:?}|h{}|x{}|r{}|e{}|{:?}",
            chain.blocks().last().expect("chain is sealed").hash(),
            chain.height(),
            chain.txs_executed(),
            chain.txs_rolled_back(),
            chain.all_events().len(),
            chain.storage_report(),
        )
    };

    struct Row {
        assets: usize,
        mode: RollbackMode,
        ops: u64,
        elapsed_ms: f64,
        tx_per_sec: f64,
        executed: u64,
        rolled_back: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    let mut modes_agree = true;

    // `Journal` runs a fixed large op count everywhere (its cost is flat,
    // so this stays fast); `Snapshot` ops shrink with registry size to
    // keep the per-tx registry clone from dominating the wall clock.
    // Rates are per-tx, so the speedup gate is op-count-fair.
    const PIN_OPS: u64 = 240;
    const JOURNAL_OPS: u64 = 20_000;
    for (assets, snapshot_ops) in
        [(100usize, 5_000u64), (1_000, 2_000), (10_000, 500), (100_000, 80)]
    {
        // Cross-mode pin first: the identical 240-op workload must leave
        // byte-identical chains.
        let pins: Vec<String> = [RollbackMode::Journal, RollbackMode::Snapshot]
            .into_iter()
            .map(|mode| {
                let (mut chain, id) = rigged(mode, assets);
                churn(&mut chain, id, PIN_OPS);
                fingerprint(&chain)
            })
            .collect();
        let agree = pins[0] == pins[1];
        modes_agree &= agree;

        for (mode, ops) in
            [(RollbackMode::Journal, JOURNAL_OPS), (RollbackMode::Snapshot, snapshot_ops)]
        {
            let (mut chain, id) = rigged(mode, assets);
            churn(&mut chain, id, 256); // warm caches outside the window
            let (executed0, rolled0) = (chain.txs_executed(), chain.txs_rolled_back());
            let clock = Instant::now();
            churn(&mut chain, id, ops);
            let secs = clock.elapsed().as_secs_f64().max(1e-9);
            let row = Row {
                assets,
                mode,
                ops,
                elapsed_ms: secs * 1e3,
                tx_per_sec: ops as f64 / secs,
                executed: chain.txs_executed() - executed0,
                rolled_back: chain.txs_rolled_back() - rolled0,
            };
            ok &= agree;
            println!(
                "    {}",
                fmt_row(
                    &[
                        row.assets.to_string(),
                        format!("{:?}", row.mode),
                        row.ops.to_string(),
                        format!("{:.0}", row.tx_per_sec),
                        row.executed.to_string(),
                        row.rolled_back.to_string(),
                        format!("{:.2}", row.elapsed_ms),
                        if agree { "✓".into() } else { "✗".into() },
                    ],
                    &widths
                )
            );
            rows.push(row);
        }
    }

    let rate = |mode: RollbackMode, assets: usize| {
        rows.iter().find(|r| r.mode == mode && r.assets == assets).map_or(0.0, |r| r.tx_per_sec)
    };
    let speedup =
        rate(RollbackMode::Journal, 10_000) / rate(RollbackMode::Snapshot, 10_000).max(1e-12);
    let speedup_gate = speedup >= 5.0;
    ok &= speedup_gate;
    println!(
        "\n    journal vs snapshot tx/s at 10^4 assets: {speedup:.0}x (target >= 5x): {}",
        if speedup_gate { "✓" } else { "✗" }
    );

    let journal_rates: Vec<f64> =
        rows.iter().filter(|r| r.mode == RollbackMode::Journal).map(|r| r.tx_per_sec).collect();
    let (min, max) =
        journal_rates.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    let spread = max / min.max(1e-12);
    let flat_gate = spread <= 1.5;
    ok &= flat_gate;
    println!(
        "    journal tx/s spread across 10^2..10^5: {spread:.2}x (target <= 1.5x): {}",
        if flat_gate { "✓" } else { "✗" }
    );
    println!("    chain fingerprints byte-identical across modes at every size: {modes_agree}");
    ok &= modes_agree;

    let doc = json::object(|o| {
        o.field_str("experiment", "e22")
            .field_str("name", "journaled tx hot path: tx/sec vs registry size")
            .field_u64("pin_ops", PIN_OPS)
            .field_f64("speedup_at_1e4", speedup)
            .field_f64("journal_spread", spread)
            .field_bool("modes_agree", modes_agree)
            .field_usize(
                "host_parallelism",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            )
            .field_array("rows", |arr| {
                for row in &rows {
                    arr.push_object(|o| {
                        o.field_usize("assets", row.assets)
                            .field_str("mode", &format!("{:?}", row.mode))
                            .field_u64("ops", row.ops)
                            .field_f64("elapsed_ms", row.elapsed_ms)
                            .field_f64("tx_per_sec", row.tx_per_sec)
                            .field_u64("executed", row.executed)
                            .field_u64("rolled_back", row.rolled_back);
                    });
                }
            });
    });
    match json::write_bench_json("E22", &doc) {
        Ok(path) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            println!("\n    could not write BENCH_E22.json: {e}");
            ok = false;
        }
    }
    println!("    journal flat in registry size, modes byte-identical, >=5x at 10^4: {ok}");
    ok
}

/// E23 (durable exchange): WAL-on vs WAL-off host overhead and
/// crash-recovery time as the resident book scales 10² → 10⁴. Each size
/// drives the same rolling churn (8 waves of 4 mutual pairs resubmitting
/// over a dust book of `n` never-matching offers) three ways: plain,
/// journaled to a `swap-store` WAL with periodic snapshots, and recovered
/// from that store. All three must yield byte-identical reports; at
/// n = 10⁴ journaling must keep ≥ 0.5× the plain throughput and recovery
/// (snapshot + WAL tail, no keygen) must beat re-running from genesis.
fn e23_durable_exchange() -> bool {
    use std::time::Instant;
    use swap_bench::json;
    use swap_core::exchange::{
        EpochStage, Exchange, ExchangeConfig, ExchangeReport, JournalConfig, PartySeed, StageCosts,
        StepEvent,
    };
    use swap_crypto::Address;
    use swap_market::AssetKind;

    const SIZES: [usize; 3] = [100, 1_000, 10_000];
    const WAVES: usize = 8;
    const PAIRS: usize = 4;
    const CHURN_HEIGHT: u32 = 6;
    const DUST_HEIGHT: u32 = 2;
    const SNAPSHOT_EVERY: u64 = 4;
    const OVERHEAD_GATE: f64 = 2.0; // WAL-on wall ≤ 2× WAL-off (≥ 0.5× throughput)

    println!(
        "E23 Durable exchange: WAL overhead + recovery time, {WAVES}-wave churn over dust books\n"
    );
    let widths = [7, 8, 6, 8, 9, 9, 9, 9, 4];
    println!(
        "    {}",
        fmt_row(
            ["n", "settled", "tail", "snap_B", "off_ms", "on_ms", "rec_ms", "speedup", "ok"]
                .map(String::from)
                .as_ref(),
            &widths
        )
    );

    let costs = StageCosts {
        clearing_base: 2,
        provisioning_base: 2,
        settling_base: 2,
        ..Default::default()
    };
    let config = || ExchangeConfig {
        threads: 2,
        executing_slots: 4,
        stage_costs: costs,
        ..Default::default()
    };
    // The churn terms: 4 mutual pairs, so every wave clears 4 two-party
    // swaps while the dust book just sits in the index.
    let churn_kinds = || -> Vec<(AssetKind, AssetKind)> {
        (0..PAIRS)
            .flat_map(|p| {
                let a = AssetKind::new(format!("p{p}a"));
                let b = AssetKind::new(format!("p{p}b"));
                [(a.clone(), b.clone()), (b, a)]
            })
            .collect()
    };
    let churn_seeds = || -> Vec<PartySeed> {
        let mut rng = SimRng::from_seed(0xE23);
        churn_kinds()
            .into_iter()
            .map(|(gives, wants)| PartySeed {
                seed: rng.bytes32(),
                key_height: CHURN_HEIGHT,
                secret: Secret::random(&mut rng),
                gives,
                wants,
            })
            .collect()
    };
    let dust_seeds = |n: usize| -> Vec<PartySeed> {
        let mut rng = SimRng::from_seed(0xD057);
        (0..n)
            .map(|i| PartySeed {
                seed: rng.bytes32(),
                key_height: DUST_HEIGHT,
                secret: Secret::random(&mut rng),
                gives: AssetKind::new(format!("dust{i}")),
                wants: AssetKind::new("void".to_string()),
            })
            .collect()
    };

    let drive = |n: usize, journal: Option<JournalConfig>| -> Exchange {
        let mut exchange = match journal {
            Some(j) => Exchange::with_journal(config(), j).expect("journal store opens"),
            None => Exchange::new(config()),
        };
        exchange.submit_seeded(dust_seeds(n));
        let churn: Vec<Address> =
            exchange.submit_seeded(churn_seeds()).into_iter().map(|(_, a)| a).collect();
        let kinds = churn_kinds();
        let mut secret_rng = SimRng::from_seed(0x5EC23);
        let mut next = 1usize;
        loop {
            match exchange.step().expect("pipeline advances") {
                StepEvent::StageEntered { stage: EpochStage::Executing, .. } if next < WAVES => {
                    for (i, (gives, wants)) in kinds.iter().enumerate() {
                        exchange
                            .resubmit(
                                churn[i],
                                Secret::random(&mut secret_rng),
                                gives.clone(),
                                wants.clone(),
                            )
                            .expect("churn identity registered in wave 0");
                    }
                    next += 1;
                }
                StepEvent::Quiescent => break,
                _ => {}
            }
        }
        assert_eq!(next, WAVES, "every wave injected");
        exchange
    };

    struct Row {
        n: usize,
        tail_records: u64,
        commands_replayed: u64,
        snapshot_seq: Option<u64>,
        snapshot_bytes: u64,
        identical: bool,
        wal_off_ms: f64,
        wal_on_ms: f64,
        recover_ms: f64,
        report: ExchangeReport,
    }
    let total_swaps = (WAVES * PAIRS) as u64;
    let mut ok = true;
    let mut rows: Vec<Row> = Vec::new();
    for &n in &SIZES {
        let journal = || JournalConfig {
            snapshot_every: SNAPSHOT_EVERY,
            ..JournalConfig::new(format!("target/e23/n{n}"))
        };

        let clock = Instant::now();
        let plain = drive(n, None).into_report();
        let wal_off_ms = clock.elapsed().as_secs_f64() * 1e3;

        let clock = Instant::now();
        let mut durable = drive(n, Some(journal()));
        durable.sync_journal().expect("journal syncs");
        let wal_on_ms = clock.elapsed().as_secs_f64() * 1e3;
        let journaled = durable.report().clone();
        drop(durable);

        let clock = Instant::now();
        let recovered = Exchange::recover(config(), journal()).expect("store recovers");
        let recover_ms = clock.elapsed().as_secs_f64() * 1e3;

        let snapshot_bytes: u64 = std::fs::read_dir(&journal().dir)
            .map(|dir| {
                dir.flatten()
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0);
        let identical = plain == journaled && *recovered.exchange.report() == journaled;
        let row_ok = identical
            && journaled.swaps_settled == total_swaps
            && journaled.swaps_refunded == 0
            && journaled.swaps_exhausted == 0
            && journaled.offers_submitted >= n as u64 + total_swaps * 2
            && recovered.stats.snapshot_seq.is_some()
            && !recovered.stats.torn_tail;
        ok &= row_ok;
        println!(
            "    {}",
            fmt_row(
                &[
                    n.to_string(),
                    journaled.swaps_settled.to_string(),
                    recovered.stats.records_replayed.to_string(),
                    snapshot_bytes.to_string(),
                    format!("{wal_off_ms:.1}"),
                    format!("{wal_on_ms:.1}"),
                    format!("{recover_ms:.1}"),
                    format!("{:.1}x", wal_off_ms / recover_ms),
                    if row_ok { "✓".into() } else { "✗".into() },
                ],
                &widths
            )
        );
        rows.push(Row {
            n,
            tail_records: recovered.stats.records_replayed,
            commands_replayed: recovered.stats.commands_replayed,
            snapshot_seq: recovered.stats.snapshot_seq,
            snapshot_bytes,
            identical,
            wal_off_ms,
            wal_on_ms,
            recover_ms,
            report: journaled,
        });
    }

    // The headline gates, judged at the largest book only.
    let gate_row = rows.last().expect("sizes non-empty");
    let overhead = gate_row.wal_on_ms / gate_row.wal_off_ms;
    let speedup = gate_row.wal_off_ms / gate_row.recover_ms;
    let overhead_ok = overhead <= OVERHEAD_GATE;
    let recover_ok = gate_row.recover_ms < gate_row.wal_off_ms;
    ok &= overhead_ok && recover_ok;
    println!(
        "\n    at n = {}: WAL overhead {overhead:.2}x (gate ≤ {OVERHEAD_GATE:.0}x: {overhead_ok}); \
         recovery {speedup:.1}x faster than genesis re-run (gate > 1x: {recover_ok})",
        gate_row.n
    );

    let doc = json::object(|o| {
        o.field_str("experiment", "e23")
            .field_str("name", "durable exchange: WAL overhead + crash recovery time")
            .field_usize("waves", WAVES)
            .field_usize("churn_pairs", PAIRS)
            .field_u64("snapshot_every", SNAPSHOT_EVERY)
            .field_f64("overhead_gate", OVERHEAD_GATE)
            .field_f64("wal_overhead", overhead)
            .field_f64("recovery_speedup", speedup)
            .field_usize(
                "host_parallelism",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            )
            .field_array("rows", |arr| {
                for row in &rows {
                    arr.push_object(|o| {
                        o.field_usize("n", row.n)
                            .field_u64("epochs", row.report.epochs)
                            .field_u64("offers_submitted", row.report.offers_submitted)
                            .field_u64("swaps_settled", row.report.swaps_settled)
                            .field_u64("wal_tail_records", row.tail_records)
                            .field_u64("commands_replayed", row.commands_replayed)
                            .field_bool("snapshot_loaded", row.snapshot_seq.is_some())
                            .field_u64("snapshot_seq", row.snapshot_seq.unwrap_or(0))
                            .field_u64("snapshot_bytes", row.snapshot_bytes)
                            .field_bool("reports_identical", row.identical)
                            .field_f64("wal_off_ms", row.wal_off_ms)
                            .field_f64("wal_on_ms", row.wal_on_ms)
                            .field_f64("wal_overhead", row.wal_on_ms / row.wal_off_ms)
                            .field_f64("recover_ms", row.recover_ms)
                            .field_f64("recovery_speedup", row.wal_off_ms / row.recover_ms)
                            .field_object("report", |r| {
                                json::exchange_report_fields(r, &row.report)
                            });
                    });
                }
            });
    });
    match json::write_bench_json("E23", &doc) {
        Ok(path) => println!("\n    wrote {}", path.display()),
        Err(e) => {
            println!("\n    could not write BENCH_E23.json: {e}");
            ok = false;
        }
    }
    println!("    reports byte-identical, WAL ≤ 2x, recovery beats genesis re-run: {ok}");
    ok
}
