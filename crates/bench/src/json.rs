//! JSON output for experiments, on `swap-store`'s shared writer.
//!
//! The hand-rolled writer this module used to own moved to
//! [`swap_store::json`] (gaining a decoder on the way), so BENCH emission
//! and the durability store share one encoding stack. The generic builders
//! are re-exported here unchanged; what stays local are the report-shaped
//! encoders for [`RunMetrics`], [`StorageReport`], and [`ExchangeReport`],
//! plus the `target/BENCH_*.json` writer.

use std::path::PathBuf;

use swap_chain::StorageReport;
use swap_core::exchange::ExchangeReport;
use swap_core::runner::RunMetrics;

pub use swap_store::json::{object, parse, JsonArray, JsonObject, JsonValue};

/// Fills `obj` with a [`RunMetrics`]' counters.
pub fn run_metrics_fields(obj: &mut JsonObject, m: &RunMetrics) {
    obj.field_u64("rounds", m.rounds)
        .field_u64("contracts_published", m.contracts_published)
        .field_u64("unlock_calls", m.unlock_calls)
        .field_u64("unlock_bytes", m.unlock_bytes)
        .field_u64("claim_calls", m.claim_calls)
        .field_u64("refund_calls", m.refund_calls)
        .field_u64("direct_transfers", m.direct_transfers)
        .field_u64("rejected_calls", m.rejected_calls)
        .field_u64("announce_bytes", m.announce_bytes);
}

/// Renders a [`RunMetrics`] as one JSON object.
pub fn run_metrics_json(m: &RunMetrics) -> String {
    object(|o| run_metrics_fields(o, m))
}

/// Fills `obj` with a [`StorageReport`]'s byte accounting.
pub fn storage_fields(obj: &mut JsonObject, s: &StorageReport) {
    obj.field_u64("blocks", s.blocks)
        .field_usize("block_bytes", s.block_bytes)
        .field_usize("contract_bytes", s.contract_bytes)
        .field_usize("asset_bytes", s.asset_bytes)
        .field_usize("tx_bytes", s.tx_bytes)
        .field_usize("total_bytes", s.total_bytes());
}

/// Renders an [`ExchangeReport`] — aggregate counters, merged storage, and
/// one line per executed swap — as one JSON object.
pub fn exchange_report_json(r: &ExchangeReport) -> String {
    object(|o| exchange_report_fields(o, r))
}

/// Fills `obj` with an [`ExchangeReport`]'s fields (for nesting the report
/// inside a larger document).
pub fn exchange_report_fields(o: &mut JsonObject, r: &ExchangeReport) {
    {
        o.field_u64("epochs", r.epochs)
            .field_u64("offers_submitted", r.offers_submitted)
            .field_u64("offers_cancelled", r.offers_cancelled)
            .field_u64("swaps_cleared", r.swaps_cleared)
            .field_u64("swaps_settled", r.swaps_settled)
            .field_u64("swaps_refunded", r.swaps_refunded)
            .field_u64("swaps_exhausted", r.swaps_exhausted)
            .field_u64("identities_registered", r.identities_registered)
            .field_u64("identities_minted", r.identities_minted)
            .field_u64("mints_overlapping_execution", r.mints_overlapping_execution)
            .field_u64("leaves_leased", r.leaves_leased)
            .field_u64("wall_ticks", r.wall_ticks)
            .field_object("stage_ticks", |s| {
                s.field_u64("clearing", r.stage_ticks.clearing)
                    .field_u64("provisioning", r.stage_ticks.provisioning)
                    .field_u64("executing", r.stage_ticks.executing)
                    .field_u64("settling", r.stage_ticks.settling);
            })
            .field_u64("executing_peak", r.executing_peak)
            .field_u64("executing_resident_ticks", r.executing_resident_ticks)
            .field_u64("tx_executed", r.tx_executed)
            .field_u64("tx_rolled_back", r.tx_rolled_back)
            .field_object("storage", |s| storage_fields(s, &r.storage))
            .field_array("swaps", |arr| {
                for swap in &r.swaps {
                    arr.push_object(|o| {
                        o.field_u64("swap", swap.swap.raw())
                            .field_u64("epoch", swap.epoch)
                            .field_usize("parties", swap.parties)
                            .field_usize("leaders", swap.leaders)
                            .field_str("protocol", swap.protocol.label())
                            .field_bool("settled", swap.settled)
                            .field_bool("all_deal", swap.all_deal)
                            .field_u64("rounds", swap.rounds)
                            .field_object("metrics", |m| run_metrics_fields(m, &swap.metrics));
                    });
                }
            });
    }
}

/// Writes `json` to `target/BENCH_<name>.json` (creating `target/` if
/// needed) and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_metrics_round_trippable_shape() {
        let m = RunMetrics { rounds: 6, unlock_calls: 3, unlock_bytes: 900, ..Default::default() };
        let json = run_metrics_json(&m);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rounds\":6"));
        assert!(json.contains("\"unlock_calls\":3"));
        assert!(json.contains("\"unlock_bytes\":900"));
        // Every counter of the struct appears exactly once.
        assert_eq!(json.matches(':').count(), 9);
    }

    #[test]
    fn exchange_report_json_shape() {
        let report = ExchangeReport::default();
        let json = exchange_report_json(&report);
        assert!(json.contains("\"epochs\":0"));
        assert!(json.contains("\"storage\":{"));
        assert!(json.contains("\"swaps\":[]"));
    }

    #[test]
    fn report_json_parses_with_the_shared_decoder() {
        // The writer moved crates; the decoder next to it must read every
        // document these report encoders emit.
        let report = ExchangeReport { epochs: 4, swaps_settled: 2, ..Default::default() };
        let value = parse(&exchange_report_json(&report)).unwrap();
        assert_eq!(value.get("epochs").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(value.get("swaps_settled").and_then(JsonValue::as_u64), Some(2));
        assert!(value.get("storage").is_some());
    }
}
