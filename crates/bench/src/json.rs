//! A hand-rolled JSON writer for experiment output.
//!
//! The workspace builds offline against a no-op `serde` stub (see
//! `vendor/README.md`), so machine-readable experiment output is emitted by
//! this small, dependency-free writer instead of derived serialization.
//! It covers exactly what the perf trajectory needs: objects, arrays,
//! numbers, booleans, and escaped strings, plus ready-made encoders for
//! [`RunMetrics`], [`StorageReport`], and [`ExchangeReport`].

use std::fmt::Write as _;
use std::path::PathBuf;

use swap_chain::StorageReport;
use swap_core::exchange::ExchangeReport;
use swap_core::runner::RunMetrics;

/// Builds one JSON object; create with [`object`], add fields in insertion
/// order, and take the rendered text from the closure's return.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

/// Builds one JSON array; see [`JsonObject::field_array`].
#[derive(Debug)]
pub struct JsonArray {
    buf: String,
    first: bool,
}

/// Renders `{...}` with the fields `f` adds.
pub fn object(f: impl FnOnce(&mut JsonObject)) -> String {
    let mut obj = JsonObject { buf: String::from("{"), first: true };
    f(&mut obj);
    obj.buf.push('}');
    obj.buf
}

fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

impl JsonObject {
    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a `usize` field.
    pub fn field_usize(&mut self, key: &str, v: usize) -> &mut Self {
        self.field_u64(key, v as u64)
    }

    /// Adds a finite float field (rendered with up to 3 decimals; non-finite
    /// values become `null`, which JSON requires).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.3}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds an escaped string field.
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        escape_into(&mut self.buf, v);
        self
    }

    /// Adds a nested object field.
    pub fn field_object(&mut self, key: &str, f: impl FnOnce(&mut JsonObject)) -> &mut Self {
        self.key(key);
        self.buf.push_str(&object(f));
        self
    }

    /// Adds an array field.
    pub fn field_array(&mut self, key: &str, f: impl FnOnce(&mut JsonArray)) -> &mut Self {
        self.key(key);
        let mut arr = JsonArray { buf: String::from("["), first: true };
        f(&mut arr);
        arr.buf.push(']');
        self.buf.push_str(&arr.buf);
        self
    }
}

impl JsonArray {
    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Appends an object element.
    pub fn push_object(&mut self, f: impl FnOnce(&mut JsonObject)) -> &mut Self {
        self.sep();
        self.buf.push_str(&object(f));
        self
    }

    /// Appends an unsigned integer element.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Appends an escaped string element.
    pub fn push_str(&mut self, v: &str) -> &mut Self {
        self.sep();
        escape_into(&mut self.buf, v);
        self
    }
}

/// Fills `obj` with a [`RunMetrics`]' counters.
pub fn run_metrics_fields(obj: &mut JsonObject, m: &RunMetrics) {
    obj.field_u64("rounds", m.rounds)
        .field_u64("contracts_published", m.contracts_published)
        .field_u64("unlock_calls", m.unlock_calls)
        .field_u64("unlock_bytes", m.unlock_bytes)
        .field_u64("claim_calls", m.claim_calls)
        .field_u64("refund_calls", m.refund_calls)
        .field_u64("direct_transfers", m.direct_transfers)
        .field_u64("rejected_calls", m.rejected_calls)
        .field_u64("announce_bytes", m.announce_bytes);
}

/// Renders a [`RunMetrics`] as one JSON object.
pub fn run_metrics_json(m: &RunMetrics) -> String {
    object(|o| run_metrics_fields(o, m))
}

/// Fills `obj` with a [`StorageReport`]'s byte accounting.
pub fn storage_fields(obj: &mut JsonObject, s: &StorageReport) {
    obj.field_u64("blocks", s.blocks)
        .field_usize("block_bytes", s.block_bytes)
        .field_usize("contract_bytes", s.contract_bytes)
        .field_usize("asset_bytes", s.asset_bytes)
        .field_usize("tx_bytes", s.tx_bytes)
        .field_usize("total_bytes", s.total_bytes());
}

/// Renders an [`ExchangeReport`] — aggregate counters, merged storage, and
/// one line per executed swap — as one JSON object.
pub fn exchange_report_json(r: &ExchangeReport) -> String {
    object(|o| exchange_report_fields(o, r))
}

/// Fills `obj` with an [`ExchangeReport`]'s fields (for nesting the report
/// inside a larger document).
pub fn exchange_report_fields(o: &mut JsonObject, r: &ExchangeReport) {
    {
        o.field_u64("epochs", r.epochs)
            .field_u64("offers_submitted", r.offers_submitted)
            .field_u64("offers_cancelled", r.offers_cancelled)
            .field_u64("swaps_cleared", r.swaps_cleared)
            .field_u64("swaps_settled", r.swaps_settled)
            .field_u64("swaps_refunded", r.swaps_refunded)
            .field_u64("swaps_exhausted", r.swaps_exhausted)
            .field_u64("identities_registered", r.identities_registered)
            .field_u64("identities_minted", r.identities_minted)
            .field_u64("mints_overlapping_execution", r.mints_overlapping_execution)
            .field_u64("leaves_leased", r.leaves_leased)
            .field_u64("wall_ticks", r.wall_ticks)
            .field_object("stage_ticks", |s| {
                s.field_u64("clearing", r.stage_ticks.clearing)
                    .field_u64("provisioning", r.stage_ticks.provisioning)
                    .field_u64("executing", r.stage_ticks.executing)
                    .field_u64("settling", r.stage_ticks.settling);
            })
            .field_u64("executing_peak", r.executing_peak)
            .field_u64("executing_resident_ticks", r.executing_resident_ticks)
            .field_u64("tx_executed", r.tx_executed)
            .field_u64("tx_rolled_back", r.tx_rolled_back)
            .field_object("storage", |s| storage_fields(s, &r.storage))
            .field_array("swaps", |arr| {
                for swap in &r.swaps {
                    arr.push_object(|o| {
                        o.field_u64("swap", swap.swap.raw())
                            .field_u64("epoch", swap.epoch)
                            .field_usize("parties", swap.parties)
                            .field_usize("leaders", swap.leaders)
                            .field_str("protocol", swap.protocol.label())
                            .field_bool("settled", swap.settled)
                            .field_bool("all_deal", swap.all_deal)
                            .field_u64("rounds", swap.rounds)
                            .field_object("metrics", |m| run_metrics_fields(m, &swap.metrics));
                    });
                }
            });
    }
}

/// Writes `json` to `target/BENCH_<name>.json` (creating `target/` if
/// needed) and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_arrays_and_escaping() {
        let s = object(|o| {
            o.field_u64("n", 3)
                .field_bool("ok", true)
                .field_f64("rate", 1.5)
                .field_f64("bad", f64::NAN)
                .field_str("name", "a\"b\\c\nd\u{1}")
                .field_object("inner", |i| {
                    i.field_usize("k", 7);
                })
                .field_array("xs", |a| {
                    a.push_u64(1).push_str("two").push_object(|o| {
                        o.field_u64("three", 3);
                    });
                });
        });
        assert_eq!(
            s,
            "{\"n\":3,\"ok\":true,\"rate\":1.500,\"bad\":null,\
             \"name\":\"a\\\"b\\\\c\\nd\\u0001\",\"inner\":{\"k\":7},\
             \"xs\":[1,\"two\",{\"three\":3}]}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(object(|_| {}), "{}");
        assert_eq!(
            object(|o| {
                o.field_array("xs", |_| {});
            }),
            "{\"xs\":[]}"
        );
    }

    #[test]
    fn run_metrics_round_trippable_shape() {
        let m = RunMetrics { rounds: 6, unlock_calls: 3, unlock_bytes: 900, ..Default::default() };
        let json = run_metrics_json(&m);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rounds\":6"));
        assert!(json.contains("\"unlock_calls\":3"));
        assert!(json.contains("\"unlock_bytes\":900"));
        // Every counter of the struct appears exactly once.
        assert_eq!(json.matches(':').count(), 9);
    }

    #[test]
    fn exchange_report_json_shape() {
        let report = ExchangeReport::default();
        let json = exchange_report_json(&report);
        assert!(json.contains("\"epochs\":0"));
        assert!(json.contains("\"storage\":{"));
        assert!(json.contains("\"swaps\":[]"));
    }
}
