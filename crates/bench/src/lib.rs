//! Shared scaffolding for the benchmark suite and the `experiments` binary.
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems,
//! lemmas, and worked figures. The reproduction therefore validates each of
//! them *empirically* — `cargo run -p swap-bench --bin experiments` runs
//! every experiment in DESIGN.md's index (E1–E14) and prints the
//! paper-vs-measured comparison recorded in EXPERIMENTS.md, while
//! `cargo bench` times the building blocks (crypto, graph algorithms,
//! pebble games, full protocol runs) with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use swap_core::runner::{RunConfig, RunReport, SwapRunner};
use swap_core::setup::{SetupConfig, SwapSetup};
use swap_digraph::Digraph;
use swap_market::LeaderStrategy;
use swap_sim::SimRng;

/// Key height used across benches/experiments: 2^5 = 32 one-time keys,
/// enough for every leader count exercised while keeping keygen quick.
pub const BENCH_KEY_HEIGHT: u32 = 5;

/// A `SetupConfig` tuned for repeated experiment runs.
pub fn bench_setup_config() -> SetupConfig {
    SetupConfig {
        key_height: BENCH_KEY_HEIGHT,
        leader_strategy: LeaderStrategy::Greedy,
        ..SetupConfig::default()
    }
}

/// Provisions and runs one all-conforming swap over `digraph`.
///
/// # Panics
///
/// Panics if the digraph is not a valid swap (callers pass strongly
/// connected digraphs).
pub fn run_conforming(digraph: Digraph, seed: u64) -> RunReport {
    let setup = SwapSetup::generate(digraph, &bench_setup_config(), &mut SimRng::from_seed(seed))
        .expect("valid swap digraph");
    SwapRunner::new(setup, RunConfig::default()).run()
}

/// Formats a table row with right-aligned columns (helper for the
/// experiments binary).
pub fn fmt_row(cols: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (col, width) in cols.iter().zip(widths) {
        out.push_str(&format!("{col:>width$}  "));
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_digraph::generators;

    #[test]
    fn run_conforming_smoke() {
        let report = run_conforming(generators::herlihy_three_party(), 1);
        assert!(report.all_deal());
    }

    #[test]
    fn fmt_row_alignment() {
        let row = fmt_row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(row, "  a    bb");
    }
}
