//! Assets and ownership.
//!
//! An asset is anything a blockchain records title to — "a unit of
//! cryptocurrency or an automobile title" (§2.2). Each asset lives on
//! exactly one chain and has exactly one owner at a time: a party address or
//! a contract holding it in escrow.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use swap_crypto::Address;

use crate::contract::ContractId;

/// Identifies an asset within one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AssetId(u64);

impl AssetId {
    /// Creates an asset id.
    pub const fn new(v: u64) -> Self {
        AssetId(v)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AssetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asset{}", self.0)
    }
}

/// What an asset is: a label plus a quantity (1 for unique titles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssetDescriptor {
    /// Human-readable kind, e.g. `"altcoin"`, `"cadillac-title"`.
    pub kind: String,
    /// Number of units (1 for non-fungible titles).
    pub units: u64,
}

impl AssetDescriptor {
    /// Creates a descriptor.
    pub fn new(kind: impl Into<String>, units: u64) -> Self {
        AssetDescriptor { kind: kind.into(), units }
    }

    /// A one-unit (title-like) asset.
    pub fn unique(kind: impl Into<String>) -> Self {
        Self::new(kind, 1)
    }
}

/// Who currently controls an asset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Owner {
    /// A party, by address.
    Party(Address),
    /// A contract holding the asset in escrow.
    Escrow(ContractId),
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Party(a) => write!(f, "{a}"),
            Owner::Escrow(c) => write!(f, "escrow:{c}"),
        }
    }
}

/// Errors from asset operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssetError {
    /// The asset does not exist on this chain.
    Unknown(AssetId),
    /// The operation requires a different current owner.
    NotOwner {
        /// The asset involved.
        asset: AssetId,
        /// Who actually owns it.
        actual: Owner,
    },
}

impl fmt::Display for AssetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssetError::Unknown(a) => write!(f, "unknown asset {a}"),
            AssetError::NotOwner { asset, actual } => {
                write!(f, "{asset} is owned by {actual}, not the caller")
            }
        }
    }
}

impl std::error::Error for AssetError {}

/// One reversible ownership mutation, recorded by the registry's
/// [`UndoJournal`] while a journaled transaction executes. Each variant
/// captures exactly the *previous* owner, so popping ops in reverse order
/// restores the pre-transaction ledger without cloning it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalOp {
    /// A party's asset moved into escrow; revert hands it back to `owner`.
    Escrow {
        /// The asset that moved.
        asset: AssetId,
        /// The party that owned it before the escrow.
        owner: Address,
    },
    /// An escrowed asset was released (claimed or refunded); revert returns
    /// it to `escrow`.
    Release {
        /// The asset that moved.
        asset: AssetId,
        /// The contract that held it before the release.
        escrow: ContractId,
    },
    /// A direct party-to-party move; revert hands it back to `owner`.
    Transfer {
        /// The asset that moved.
        asset: AssetId,
        /// The party that owned it before the transfer.
        owner: Address,
    },
}

impl JournalOp {
    /// The owner this op's revert restores.
    fn previous_owner(self) -> (AssetId, Owner) {
        match self {
            JournalOp::Escrow { asset, owner } => (asset, Owner::Party(owner)),
            JournalOp::Release { asset, escrow } => (asset, Owner::Escrow(escrow)),
            JournalOp::Transfer { asset, owner } => (asset, Owner::Party(owner)),
        }
    }
}

/// The registry's undo log: a reusable `Vec` of [`JournalOp`]s that records
/// every ownership change made between [`AssetRegistry::begin_journal`] and
/// the matching commit/rollback.
///
/// This is the allocation-free half of `RollbackMode::Journal` (see
/// `swap_chain::Blockchain`): a transaction that succeeds pays one
/// `Vec::push` per transfer into a buffer whose capacity is reused across
/// transactions, and a transaction that fails pays one pop-and-restore per
/// transfer — in both cases O(ops in the transaction), independent of how
/// many assets the registry holds. The journal is always empty outside a
/// transaction, so registry equality and cloning are unaffected by it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UndoJournal {
    ops: Vec<JournalOp>,
    active: bool,
}

/// The per-chain asset ledger: mints assets and tracks every ownership
/// change.
///
/// # Example
///
/// ```
/// use swap_chain::{AssetDescriptor, AssetRegistry, Owner};
/// use swap_crypto::{Address, Digest32};
///
/// let alice = Address::from_digest(Digest32([1u8; 32]));
/// let bob = Address::from_digest(Digest32([2u8; 32]));
/// let mut reg = AssetRegistry::new();
/// let coin = reg.mint(AssetDescriptor::new("altcoin", 100), alice);
/// assert_eq!(reg.owner(coin), Some(Owner::Party(alice)));
/// reg.transfer_from(coin, Owner::Party(alice), Owner::Party(bob)).unwrap();
/// assert_eq!(reg.owner(coin), Some(Owner::Party(bob)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssetRegistry {
    records: BTreeMap<AssetId, AssetRecord>,
    next_id: u64,
    journal: UndoJournal,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct AssetRecord {
    descriptor: AssetDescriptor,
    owner: Owner,
}

impl AssetRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a new asset owned by `owner`, returning its id.
    ///
    /// Minting is a chain-level faucet operation, never performed inside a
    /// contract hook, so it is not journaled (and must not run while a
    /// journal is open — contracts only get [`AssetRegistry::transfer_from`]
    /// semantics).
    pub fn mint(&mut self, descriptor: AssetDescriptor, owner: Address) -> AssetId {
        debug_assert!(!self.journal.active, "mint inside a journaled transaction");
        let id = AssetId::new(self.next_id);
        self.next_id += 1;
        self.records.insert(id, AssetRecord { descriptor, owner: Owner::Party(owner) });
        id
    }

    /// Opens the undo journal: every subsequent ownership change is
    /// recorded until [`commit_journal`](AssetRegistry::commit_journal) or
    /// [`rollback_journal`](AssetRegistry::rollback_journal) closes it.
    /// Journals do not nest.
    pub fn begin_journal(&mut self) {
        debug_assert!(!self.journal.active, "journal already open");
        debug_assert!(self.journal.ops.is_empty(), "journal not drained");
        self.journal.active = true;
    }

    /// Closes the journal keeping every change, returning how many
    /// ownership changes the transaction made. The op buffer is cleared but
    /// keeps its capacity, so steady-state transactions allocate nothing.
    pub fn commit_journal(&mut self) -> usize {
        debug_assert!(self.journal.active, "no journal open");
        let ops = self.journal.ops.len();
        self.journal.ops.clear();
        self.journal.active = false;
        ops
    }

    /// Closes the journal reverting every recorded change, newest first,
    /// restoring the registry to its state at
    /// [`begin_journal`](AssetRegistry::begin_journal). Returns how many
    /// ops were reverted.
    pub fn rollback_journal(&mut self) -> usize {
        debug_assert!(self.journal.active, "no journal open");
        let mut reverted = 0;
        while let Some(op) = self.journal.ops.pop() {
            let (asset, previous) = op.previous_owner();
            let record = self.records.get_mut(&asset).expect("journaled asset exists");
            record.owner = previous;
            reverted += 1;
        }
        self.journal.active = false;
        reverted
    }

    /// The current owner of `asset`, if it exists.
    pub fn owner(&self, asset: AssetId) -> Option<Owner> {
        self.records.get(&asset).map(|r| r.owner)
    }

    /// The descriptor of `asset`, if it exists.
    pub fn descriptor(&self, asset: AssetId) -> Option<&AssetDescriptor> {
        self.records.get(&asset).map(|r| &r.descriptor)
    }

    /// Transfers `asset` from `expected_owner` to `new_owner`.
    ///
    /// # Errors
    ///
    /// Fails with [`AssetError::Unknown`] for missing assets and
    /// [`AssetError::NotOwner`] when `expected_owner` does not match — the
    /// compare-and-swap style rules out races and forged transfers.
    pub fn transfer_from(
        &mut self,
        asset: AssetId,
        expected_owner: Owner,
        new_owner: Owner,
    ) -> Result<(), AssetError> {
        let record = self.records.get_mut(&asset).ok_or(AssetError::Unknown(asset))?;
        if record.owner != expected_owner {
            return Err(AssetError::NotOwner { asset, actual: record.owner });
        }
        let previous = record.owner;
        record.owner = new_owner;
        if self.journal.active {
            self.journal.ops.push(match previous {
                Owner::Party(owner) => match new_owner {
                    Owner::Escrow(_) => JournalOp::Escrow { asset, owner },
                    Owner::Party(_) => JournalOp::Transfer { asset, owner },
                },
                Owner::Escrow(escrow) => JournalOp::Release { asset, escrow },
            });
        }
        Ok(())
    }

    /// All assets currently owned by `owner`, sorted by id.
    pub fn assets_of(&self, owner: Owner) -> Vec<AssetId> {
        self.records.iter().filter(|(_, r)| r.owner == owner).map(|(&id, _)| id).collect()
    }

    /// Number of minted assets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no assets exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate bytes stored for the registry (for storage metering).
    pub fn storage_bytes(&self) -> usize {
        self.records.values().map(|r| 8 + r.descriptor.kind.len() + 8 + 33).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_crypto::Digest32;

    fn addr(b: u8) -> Address {
        Address::from_digest(Digest32([b; 32]))
    }

    #[test]
    fn mint_assigns_sequential_ids() {
        let mut reg = AssetRegistry::new();
        let a = reg.mint(AssetDescriptor::unique("title"), addr(1));
        let b = reg.mint(AssetDescriptor::new("coin", 5), addr(1));
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.descriptor(a).unwrap().units, 1);
        assert_eq!(reg.descriptor(b).unwrap().units, 5);
    }

    #[test]
    fn transfer_happy_path() {
        let mut reg = AssetRegistry::new();
        let coin = reg.mint(AssetDescriptor::new("btc", 1), addr(1));
        reg.transfer_from(coin, Owner::Party(addr(1)), Owner::Party(addr(2))).unwrap();
        assert_eq!(reg.owner(coin), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn transfer_wrong_owner_rejected() {
        let mut reg = AssetRegistry::new();
        let coin = reg.mint(AssetDescriptor::new("btc", 1), addr(1));
        let err =
            reg.transfer_from(coin, Owner::Party(addr(2)), Owner::Party(addr(3))).unwrap_err();
        assert!(matches!(err, AssetError::NotOwner { .. }));
        // Ownership unchanged.
        assert_eq!(reg.owner(coin), Some(Owner::Party(addr(1))));
    }

    #[test]
    fn transfer_unknown_asset_rejected() {
        let mut reg = AssetRegistry::new();
        let err = reg
            .transfer_from(AssetId::new(99), Owner::Party(addr(1)), Owner::Party(addr(2)))
            .unwrap_err();
        assert_eq!(err, AssetError::Unknown(AssetId::new(99)));
        assert!(err.to_string().contains("asset99"));
    }

    #[test]
    fn escrow_roundtrip() {
        let mut reg = AssetRegistry::new();
        let car = reg.mint(AssetDescriptor::unique("cadillac"), addr(1));
        let contract = ContractId::new(7);
        reg.transfer_from(car, Owner::Party(addr(1)), Owner::Escrow(contract)).unwrap();
        assert_eq!(reg.owner(car), Some(Owner::Escrow(contract)));
        // Only the escrow owner matches now.
        assert!(reg.transfer_from(car, Owner::Party(addr(1)), Owner::Party(addr(2))).is_err());
        reg.transfer_from(car, Owner::Escrow(contract), Owner::Party(addr(2))).unwrap();
        assert_eq!(reg.owner(car), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn assets_of_filters_by_owner() {
        let mut reg = AssetRegistry::new();
        let a = reg.mint(AssetDescriptor::unique("x"), addr(1));
        let _b = reg.mint(AssetDescriptor::unique("y"), addr(2));
        let c = reg.mint(AssetDescriptor::unique("z"), addr(1));
        assert_eq!(reg.assets_of(Owner::Party(addr(1))), vec![a, c]);
        assert_eq!(reg.assets_of(Owner::Escrow(ContractId::new(0))), vec![]);
    }

    #[test]
    fn storage_bytes_nonzero() {
        let mut reg = AssetRegistry::new();
        assert_eq!(reg.storage_bytes(), 0);
        reg.mint(AssetDescriptor::unique("title"), addr(1));
        assert!(reg.storage_bytes() > 0);
    }

    #[test]
    fn journal_rollback_restores_every_owner() {
        let mut reg = AssetRegistry::new();
        let car = reg.mint(AssetDescriptor::unique("car"), addr(1));
        let coin = reg.mint(AssetDescriptor::new("coin", 5), addr(2));
        let contract = ContractId::new(3);
        let before = reg.clone();

        reg.begin_journal();
        reg.transfer_from(car, Owner::Party(addr(1)), Owner::Escrow(contract)).unwrap();
        reg.transfer_from(coin, Owner::Party(addr(2)), Owner::Party(addr(3))).unwrap();
        reg.transfer_from(car, Owner::Escrow(contract), Owner::Party(addr(9))).unwrap();
        assert_eq!(reg.owner(car), Some(Owner::Party(addr(9))));
        assert_eq!(reg.rollback_journal(), 3);

        assert_eq!(reg, before, "rollback must restore the exact pre-transaction registry");
        assert_eq!(reg.owner(car), Some(Owner::Party(addr(1))));
        assert_eq!(reg.owner(coin), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn journal_commit_keeps_changes_and_drains() {
        let mut reg = AssetRegistry::new();
        let car = reg.mint(AssetDescriptor::unique("car"), addr(1));
        reg.begin_journal();
        reg.transfer_from(car, Owner::Party(addr(1)), Owner::Escrow(ContractId::new(0))).unwrap();
        assert_eq!(reg.commit_journal(), 1);
        assert_eq!(reg.owner(car), Some(Owner::Escrow(ContractId::new(0))));
        // The drained journal leaves the registry equal to an unjournaled
        // twin — mode-agnostic equality is what pins Journal vs Snapshot.
        let mut twin = AssetRegistry::new();
        let t = twin.mint(AssetDescriptor::unique("car"), addr(1));
        twin.transfer_from(t, Owner::Party(addr(1)), Owner::Escrow(ContractId::new(0))).unwrap();
        assert_eq!(reg, twin);
    }

    #[test]
    fn journal_inactive_records_nothing() {
        let mut reg = AssetRegistry::new();
        let car = reg.mint(AssetDescriptor::unique("car"), addr(1));
        reg.transfer_from(car, Owner::Party(addr(1)), Owner::Party(addr(2))).unwrap();
        reg.begin_journal();
        assert_eq!(reg.commit_journal(), 0, "pre-journal transfers are not recorded");
    }

    #[test]
    fn owner_display() {
        assert!(Owner::Party(addr(1)).to_string().starts_with('@'));
        assert!(Owner::Escrow(ContractId::new(3)).to_string().contains("escrow"));
    }
}
