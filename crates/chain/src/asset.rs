//! Assets and ownership.
//!
//! An asset is anything a blockchain records title to — "a unit of
//! cryptocurrency or an automobile title" (§2.2). Each asset lives on
//! exactly one chain and has exactly one owner at a time: a party address or
//! a contract holding it in escrow.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use swap_crypto::Address;

use crate::contract::ContractId;

/// Identifies an asset within one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AssetId(u64);

impl AssetId {
    /// Creates an asset id.
    pub const fn new(v: u64) -> Self {
        AssetId(v)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AssetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asset{}", self.0)
    }
}

/// What an asset is: a label plus a quantity (1 for unique titles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssetDescriptor {
    /// Human-readable kind, e.g. `"altcoin"`, `"cadillac-title"`.
    pub kind: String,
    /// Number of units (1 for non-fungible titles).
    pub units: u64,
}

impl AssetDescriptor {
    /// Creates a descriptor.
    pub fn new(kind: impl Into<String>, units: u64) -> Self {
        AssetDescriptor { kind: kind.into(), units }
    }

    /// A one-unit (title-like) asset.
    pub fn unique(kind: impl Into<String>) -> Self {
        Self::new(kind, 1)
    }
}

/// Who currently controls an asset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Owner {
    /// A party, by address.
    Party(Address),
    /// A contract holding the asset in escrow.
    Escrow(ContractId),
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Party(a) => write!(f, "{a}"),
            Owner::Escrow(c) => write!(f, "escrow:{c}"),
        }
    }
}

/// Errors from asset operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssetError {
    /// The asset does not exist on this chain.
    Unknown(AssetId),
    /// The operation requires a different current owner.
    NotOwner {
        /// The asset involved.
        asset: AssetId,
        /// Who actually owns it.
        actual: Owner,
    },
}

impl fmt::Display for AssetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssetError::Unknown(a) => write!(f, "unknown asset {a}"),
            AssetError::NotOwner { asset, actual } => {
                write!(f, "{asset} is owned by {actual}, not the caller")
            }
        }
    }
}

impl std::error::Error for AssetError {}

/// The per-chain asset ledger: mints assets and tracks every ownership
/// change.
///
/// # Example
///
/// ```
/// use swap_chain::{AssetDescriptor, AssetRegistry, Owner};
/// use swap_crypto::{Address, Digest32};
///
/// let alice = Address::from_digest(Digest32([1u8; 32]));
/// let bob = Address::from_digest(Digest32([2u8; 32]));
/// let mut reg = AssetRegistry::new();
/// let coin = reg.mint(AssetDescriptor::new("altcoin", 100), alice);
/// assert_eq!(reg.owner(coin), Some(Owner::Party(alice)));
/// reg.transfer_from(coin, Owner::Party(alice), Owner::Party(bob)).unwrap();
/// assert_eq!(reg.owner(coin), Some(Owner::Party(bob)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssetRegistry {
    records: BTreeMap<AssetId, AssetRecord>,
    next_id: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct AssetRecord {
    descriptor: AssetDescriptor,
    owner: Owner,
}

impl AssetRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a new asset owned by `owner`, returning its id.
    pub fn mint(&mut self, descriptor: AssetDescriptor, owner: Address) -> AssetId {
        let id = AssetId::new(self.next_id);
        self.next_id += 1;
        self.records.insert(id, AssetRecord { descriptor, owner: Owner::Party(owner) });
        id
    }

    /// The current owner of `asset`, if it exists.
    pub fn owner(&self, asset: AssetId) -> Option<Owner> {
        self.records.get(&asset).map(|r| r.owner)
    }

    /// The descriptor of `asset`, if it exists.
    pub fn descriptor(&self, asset: AssetId) -> Option<&AssetDescriptor> {
        self.records.get(&asset).map(|r| &r.descriptor)
    }

    /// Transfers `asset` from `expected_owner` to `new_owner`.
    ///
    /// # Errors
    ///
    /// Fails with [`AssetError::Unknown`] for missing assets and
    /// [`AssetError::NotOwner`] when `expected_owner` does not match — the
    /// compare-and-swap style rules out races and forged transfers.
    pub fn transfer_from(
        &mut self,
        asset: AssetId,
        expected_owner: Owner,
        new_owner: Owner,
    ) -> Result<(), AssetError> {
        let record = self.records.get_mut(&asset).ok_or(AssetError::Unknown(asset))?;
        if record.owner != expected_owner {
            return Err(AssetError::NotOwner { asset, actual: record.owner });
        }
        record.owner = new_owner;
        Ok(())
    }

    /// All assets currently owned by `owner`, sorted by id.
    pub fn assets_of(&self, owner: Owner) -> Vec<AssetId> {
        self.records.iter().filter(|(_, r)| r.owner == owner).map(|(&id, _)| id).collect()
    }

    /// Number of minted assets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no assets exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate bytes stored for the registry (for storage metering).
    pub fn storage_bytes(&self) -> usize {
        self.records.values().map(|r| 8 + r.descriptor.kind.len() + 8 + 33).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_crypto::Digest32;

    fn addr(b: u8) -> Address {
        Address::from_digest(Digest32([b; 32]))
    }

    #[test]
    fn mint_assigns_sequential_ids() {
        let mut reg = AssetRegistry::new();
        let a = reg.mint(AssetDescriptor::unique("title"), addr(1));
        let b = reg.mint(AssetDescriptor::new("coin", 5), addr(1));
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.descriptor(a).unwrap().units, 1);
        assert_eq!(reg.descriptor(b).unwrap().units, 5);
    }

    #[test]
    fn transfer_happy_path() {
        let mut reg = AssetRegistry::new();
        let coin = reg.mint(AssetDescriptor::new("btc", 1), addr(1));
        reg.transfer_from(coin, Owner::Party(addr(1)), Owner::Party(addr(2))).unwrap();
        assert_eq!(reg.owner(coin), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn transfer_wrong_owner_rejected() {
        let mut reg = AssetRegistry::new();
        let coin = reg.mint(AssetDescriptor::new("btc", 1), addr(1));
        let err =
            reg.transfer_from(coin, Owner::Party(addr(2)), Owner::Party(addr(3))).unwrap_err();
        assert!(matches!(err, AssetError::NotOwner { .. }));
        // Ownership unchanged.
        assert_eq!(reg.owner(coin), Some(Owner::Party(addr(1))));
    }

    #[test]
    fn transfer_unknown_asset_rejected() {
        let mut reg = AssetRegistry::new();
        let err = reg
            .transfer_from(AssetId::new(99), Owner::Party(addr(1)), Owner::Party(addr(2)))
            .unwrap_err();
        assert_eq!(err, AssetError::Unknown(AssetId::new(99)));
        assert!(err.to_string().contains("asset99"));
    }

    #[test]
    fn escrow_roundtrip() {
        let mut reg = AssetRegistry::new();
        let car = reg.mint(AssetDescriptor::unique("cadillac"), addr(1));
        let contract = ContractId::new(7);
        reg.transfer_from(car, Owner::Party(addr(1)), Owner::Escrow(contract)).unwrap();
        assert_eq!(reg.owner(car), Some(Owner::Escrow(contract)));
        // Only the escrow owner matches now.
        assert!(reg.transfer_from(car, Owner::Party(addr(1)), Owner::Party(addr(2))).is_err());
        reg.transfer_from(car, Owner::Escrow(contract), Owner::Party(addr(2))).unwrap();
        assert_eq!(reg.owner(car), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn assets_of_filters_by_owner() {
        let mut reg = AssetRegistry::new();
        let a = reg.mint(AssetDescriptor::unique("x"), addr(1));
        let _b = reg.mint(AssetDescriptor::unique("y"), addr(2));
        let c = reg.mint(AssetDescriptor::unique("z"), addr(1));
        assert_eq!(reg.assets_of(Owner::Party(addr(1))), vec![a, c]);
        assert_eq!(reg.assets_of(Owner::Escrow(ContractId::new(0))), vec![]);
    }

    #[test]
    fn storage_bytes_nonzero() {
        let mut reg = AssetRegistry::new();
        assert_eq!(reg.storage_bytes(), 0);
        reg.mint(AssetDescriptor::unique("title"), addr(1));
        assert!(reg.storage_bytes() > 0);
    }

    #[test]
    fn owner_display() {
        assert!(Owner::Party(addr(1)).to_string().starts_with('@'));
        assert!(Owner::Escrow(ContractId::new(3)).to_string().contains("escrow"));
    }
}
