//! Hash-chained blocks.
//!
//! Tamper-evidence is the one blockchain property the paper leans on that a
//! plain `Vec` of transactions would not give us honestly, so blocks carry a
//! parent hash and a Merkle root over their transactions' digests, and
//! [`crate::Blockchain::verify_integrity`] re-derives the whole chain.

use serde::{Deserialize, Serialize};
use swap_crypto::merkle::{leaf_hash, MerkleTree};
use swap_crypto::sha256::{sha256_concat, Digest32};
use swap_sim::SimTime;

/// A sealed block: header fields plus the digests of its transactions.
///
/// Transaction *bodies* live in the ledger's typed transaction log; blocks
/// commit to them by digest, which is all integrity checking needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Hash of the previous block (all zeros for genesis).
    pub parent: Digest32,
    /// When the block was sealed.
    pub time: SimTime,
    /// Merkle root over `tx_digests` (all zeros when empty).
    pub tx_root: Digest32,
    /// Digest of each transaction included, in order.
    pub tx_digests: Vec<Digest32>,
}

impl Block {
    /// Creates the genesis block.
    pub fn genesis(time: SimTime) -> Self {
        Block {
            height: 0,
            parent: Digest32::ZERO,
            time,
            tx_root: Digest32::ZERO,
            tx_digests: Vec::new(),
        }
    }

    /// Seals a successor block over the given transaction digests.
    pub fn seal(parent: &Block, time: SimTime, tx_digests: Vec<Digest32>) -> Self {
        Block {
            height: parent.height + 1,
            parent: parent.hash(),
            time,
            tx_root: merkle_root(&tx_digests),
            tx_digests,
        }
    }

    /// The block's own hash, binding header and transaction root.
    pub fn hash(&self) -> Digest32 {
        sha256_concat(&[
            b"swap/block/v1",
            &self.height.to_be_bytes(),
            self.parent.as_bytes(),
            &self.time.ticks().to_be_bytes(),
            self.tx_root.as_bytes(),
        ])
    }

    /// Verifies this block's internal consistency (root matches digests).
    pub fn is_consistent(&self) -> bool {
        self.tx_root == merkle_root(&self.tx_digests)
    }

    /// Approximate on-chain bytes for the header (hashes + integers).
    pub const HEADER_BYTES: usize = 32 + 32 + 8 + 8;
}

/// Merkle root over transaction digests; zero for an empty block.
pub fn merkle_root(tx_digests: &[Digest32]) -> Digest32 {
    if tx_digests.is_empty() {
        return Digest32::ZERO;
    }
    let leaves: Vec<Digest32> = tx_digests.iter().map(|d| leaf_hash(d.as_bytes())).collect();
    *MerkleTree::from_leaves(leaves).expect("non-empty").root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_crypto::sha256::sha256;

    #[test]
    fn genesis_shape() {
        let g = Block::genesis(SimTime::ZERO);
        assert_eq!(g.height, 0);
        assert_eq!(g.parent, Digest32::ZERO);
        assert!(g.is_consistent());
    }

    #[test]
    fn seal_links_to_parent() {
        let g = Block::genesis(SimTime::ZERO);
        let txs = vec![sha256(b"tx1"), sha256(b"tx2")];
        let b1 = Block::seal(&g, SimTime::from_ticks(5), txs.clone());
        assert_eq!(b1.height, 1);
        assert_eq!(b1.parent, g.hash());
        assert!(b1.is_consistent());
        let b2 = Block::seal(&b1, SimTime::from_ticks(9), vec![]);
        assert_eq!(b2.parent, b1.hash());
        assert_eq!(b2.tx_root, Digest32::ZERO);
    }

    #[test]
    fn tampering_with_txs_breaks_consistency() {
        let g = Block::genesis(SimTime::ZERO);
        let mut b = Block::seal(&g, SimTime::from_ticks(1), vec![sha256(b"tx")]);
        b.tx_digests.push(sha256(b"injected"));
        assert!(!b.is_consistent());
    }

    #[test]
    fn hash_binds_every_header_field() {
        let g = Block::genesis(SimTime::ZERO);
        let base = Block::seal(&g, SimTime::from_ticks(1), vec![sha256(b"tx")]);
        let mut changed_height = base.clone();
        changed_height.height += 1;
        assert_ne!(base.hash(), changed_height.hash());
        let mut changed_time = base.clone();
        changed_time.time = SimTime::from_ticks(2);
        assert_ne!(base.hash(), changed_time.hash());
        let mut changed_parent = base.clone();
        changed_parent.parent = sha256(b"evil");
        assert_ne!(base.hash(), changed_parent.hash());
    }

    #[test]
    fn merkle_root_is_order_sensitive() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_ne!(merkle_root(&[a, b]), merkle_root(&[b, a]));
        assert_eq!(merkle_root(&[]), Digest32::ZERO);
    }
}
