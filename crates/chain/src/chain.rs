//! The [`Blockchain`] ledger: publish, call, observe, meter.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use swap_crypto::sha256::{sha256_concat, Digest32};
use swap_crypto::Address;
use swap_sim::SimTime;

use crate::asset::{AssetDescriptor, AssetError, AssetId, AssetRegistry, Owner};
use crate::block::Block;
use crate::contract::{ContractId, ContractLogic, ExecCtx};

/// How a chain restores state when a transaction's contract hook fails.
///
/// Both modes are externally indistinguishable — same ledgers, same events,
/// same reports, pinned byte-identical by proptests — they differ only in
/// what a transaction *costs*:
///
/// * [`Journal`](RollbackMode::Journal) (default): the hot path. The
///   [`AssetRegistry`] records each ownership change into a reusable undo
///   log ([`crate::asset::UndoJournal`]) and a failing hook pops-and-reverts
///   it — O(ops in the transaction), independent of registry size. Contract
///   state needs no restore because [`ContractLogic`] hooks are
///   validate-then-commit (reject before mutating `self`).
/// * [`Snapshot`](RollbackMode::Snapshot): the executable reference. Clones
///   the contract state and the whole asset registry up front and swaps the
///   clones back on failure — O(registry) per transaction, kept as the
///   obviously-correct baseline the journal is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RollbackMode {
    /// Undo-journal rollback: record reversible ops, revert on failure.
    #[default]
    Journal,
    /// Clone-the-world rollback: snapshot up front, restore on failure.
    Snapshot,
}

/// Typed seal payload for one transaction — what [`Blockchain`] digests
/// into the sealed block in place of the old per-transaction `format!`
/// string. Encoding goes through a per-chain scratch buffer, so sealing a
/// transaction allocates nothing in steady state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxTag {
    /// An asset was minted to a party.
    Mint {
        /// The minted asset.
        asset: AssetId,
        /// The initial owner.
        owner: Address,
    },
    /// A direct party-to-party transfer.
    Transfer {
        /// The transferred asset.
        asset: AssetId,
        /// The receiving party.
        to: Address,
    },
    /// A contract was published.
    Publish {
        /// The new contract's id.
        contract: ContractId,
    },
    /// A contract was called.
    Call {
        /// The called contract.
        contract: ContractId,
    },
}

impl TxTag {
    /// Serializes the tag into `buf`: one discriminant byte, then the
    /// fields (little-endian ids, raw 32-byte addresses).
    fn encode(self, buf: &mut Vec<u8>) {
        match self {
            TxTag::Mint { asset, owner } => {
                buf.push(0);
                buf.extend_from_slice(&asset.raw().to_le_bytes());
                buf.extend_from_slice(&owner.digest().0);
            }
            TxTag::Transfer { asset, to } => {
                buf.push(1);
                buf.extend_from_slice(&asset.raw().to_le_bytes());
                buf.extend_from_slice(&to.digest().0);
            }
            TxTag::Publish { contract } => {
                buf.push(2);
                buf.extend_from_slice(&contract.raw().to_le_bytes());
            }
            TxTag::Call { contract } => {
                buf.push(3);
                buf.extend_from_slice(&contract.raw().to_le_bytes());
            }
        }
    }
}

/// Why a transaction was rejected. Rejected transactions never reach the
/// ledger — like a mempool rejection, they leave no on-chain trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError<E> {
    /// No contract with that id on this chain.
    UnknownContract(ContractId),
    /// The contract has already terminated (claimed or refunded).
    ContractTerminated(ContractId),
    /// An asset-level failure (unknown asset, wrong owner).
    Asset(AssetError),
    /// The contract's own logic rejected the call.
    Contract(E),
}

impl<E: fmt::Display> fmt::Display for TxError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::UnknownContract(c) => write!(f, "unknown {c}"),
            TxError::ContractTerminated(c) => write!(f, "{c} has terminated"),
            TxError::Asset(e) => write!(f, "asset error: {e}"),
            TxError::Contract(e) => write!(f, "contract rejected: {e}"),
        }
    }
}

impl<E: std::error::Error> std::error::Error for TxError<E> {}

impl<E> From<AssetError> for TxError<E> {
    fn from(e: AssetError) -> Self {
        TxError::Asset(e)
    }
}

/// A timestamped contract event, as seen by observers polling the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEvent<E> {
    /// When the emitting transaction executed.
    pub time: SimTime,
    /// The contract that emitted the event.
    pub contract: ContractId,
    /// The event payload.
    pub event: E,
}

/// Position in a chain's event log; advance it with
/// [`Blockchain::events_since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventCursor(usize);

/// Byte-level accounting of everything stored on one chain — the measured
/// quantity in the Theorem 4.10 space experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageReport {
    /// Number of sealed blocks.
    pub blocks: u64,
    /// Header bytes across all blocks.
    pub block_bytes: usize,
    /// Persistent contract storage (`ContractLogic::storage_bytes`).
    pub contract_bytes: usize,
    /// Asset registry storage.
    pub asset_bytes: usize,
    /// Transaction payload bytes (publish payloads + call wire bytes).
    pub tx_bytes: usize,
}

impl StorageReport {
    /// Sum of all byte categories.
    pub fn total_bytes(&self) -> usize {
        self.block_bytes + self.contract_bytes + self.asset_bytes + self.tx_bytes
    }

    /// Component-wise sum, for aggregating across a [`crate::ChainSet`].
    pub fn merge(&self, other: &StorageReport) -> StorageReport {
        StorageReport {
            blocks: self.blocks + other.blocks,
            block_bytes: self.block_bytes + other.block_bytes,
            contract_bytes: self.contract_bytes + other.contract_bytes,
            asset_bytes: self.asset_bytes + other.asset_bytes,
            tx_bytes: self.tx_bytes + other.tx_bytes,
        }
    }
}

#[derive(Debug, Clone)]
struct ContractEntry<C> {
    state: C,
    publisher: Address,
    published_at: SimTime,
}

/// A single simulated blockchain hosting contracts of logic type `C`.
///
/// Every mutation is a transaction: it executes atomically (a failing hook
/// rolls state back — see [`RollbackMode`] for how), lands in its own
/// sealed block, and is publicly readable afterwards. Contracts are
/// irrevocable once published — there is deliberately no remove/replace
/// API, matching §2.2.
///
/// # Example
///
/// See the crate tests; `swap-contract` hosts the paper's swap contract on
/// this type.
#[derive(Debug, Clone)]
pub struct Blockchain<C: ContractLogic> {
    name: String,
    blocks: Vec<Block>,
    assets: AssetRegistry,
    contracts: BTreeMap<ContractId, ContractEntry<C>>,
    next_contract: u64,
    events: Vec<ChainEvent<C::Event>>,
    tx_bytes: usize,
    version: u64,
    last_mutation_at: SimTime,
    rollback: RollbackMode,
    txs_rolled_back: u64,
    scratch: Vec<u8>,
}

impl<C: ContractLogic> Blockchain<C> {
    /// Creates a chain with a genesis block at `genesis_time`, rolling back
    /// failed transactions in the default [`RollbackMode::Journal`].
    pub fn new(name: impl Into<String>, genesis_time: SimTime) -> Self {
        Blockchain {
            name: name.into(),
            blocks: vec![Block::genesis(genesis_time)],
            assets: AssetRegistry::new(),
            contracts: BTreeMap::new(),
            next_contract: 0,
            events: Vec::new(),
            tx_bytes: 0,
            version: 0,
            last_mutation_at: genesis_time,
            rollback: RollbackMode::default(),
            txs_rolled_back: 0,
            scratch: Vec::new(),
        }
    }

    /// Switches how failed transactions roll back. Safe at any point — the
    /// modes are externally indistinguishable — but typically set once
    /// right after creation.
    pub fn set_rollback_mode(&mut self, mode: RollbackMode) {
        self.rollback = mode;
    }

    /// The active [`RollbackMode`].
    pub fn rollback_mode(&self) -> RollbackMode {
        self.rollback
    }

    /// Number of sealed (successful) transactions — an alias of
    /// [`Blockchain::version`] under its metering name.
    pub fn txs_executed(&self) -> u64 {
        self.version
    }

    /// Number of transactions whose contract hook failed after starting to
    /// execute, forcing a rollback. Mempool-style rejections (unknown or
    /// terminated contract, direct transfer by a non-owner) never start
    /// executing and are not counted.
    pub fn txs_rolled_back(&self) -> u64 {
        self.txs_rolled_back
    }

    /// The chain's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotone state-version counter: bumps once per sealed transaction
    /// (rejected transactions leave it untouched). Observers compare
    /// versions to decide whether a cached view of this chain is stale —
    /// the substrate that makes dirty-state tracking O(changed chains)
    /// instead of O(all chains).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// When the last transaction sealed (the genesis time if none has).
    /// Paired with [`Blockchain::version`], this timestamps the state a
    /// cached observation of this chain reflects.
    pub fn last_mutation_at(&self) -> SimTime {
        self.last_mutation_at
    }

    /// Current height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.blocks.last().expect("genesis always present").height
    }

    /// The sealed blocks, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mints an asset owned by `owner` (a genesis-style faucet operation —
    /// real chains would have richer issuance, the swap protocol only needs
    /// assets to exist).
    pub fn mint_asset(
        &mut self,
        descriptor: AssetDescriptor,
        owner: Address,
        now: SimTime,
    ) -> AssetId {
        let id = self.assets.mint(descriptor, owner);
        self.seal_tag(now, TxTag::Mint { asset: id, owner }, 48);
        id
    }

    /// Direct owner-to-owner transfer (no contract involved).
    ///
    /// # Errors
    ///
    /// Fails if `caller` does not own `asset`.
    pub fn transfer_asset(
        &mut self,
        asset: AssetId,
        caller: Address,
        to: Address,
        now: SimTime,
    ) -> Result<(), TxError<C::Error>> {
        self.assets.transfer_from(asset, Owner::Party(caller), Owner::Party(to))?;
        self.seal_tag(now, TxTag::Transfer { asset, to }, 48);
        Ok(())
    }

    /// Publishes a contract. Its `on_publish` hook runs atomically (escrow
    /// typically happens there); failure aborts publication with no trace —
    /// no id is consumed, no block seals, no event lands in the log (see
    /// the `failed_publish_*` regression tests).
    ///
    /// # Errors
    ///
    /// Propagates the contract's own publication error.
    pub fn publish_contract(
        &mut self,
        mut contract: C,
        publisher: Address,
        now: SimTime,
    ) -> Result<ContractId, TxError<C::Error>> {
        let id = ContractId::new(self.next_contract);
        let result = match self.rollback {
            RollbackMode::Journal => {
                self.assets.begin_journal();
                let mut ctx =
                    ExecCtx { caller: publisher, now, this: id, assets: &mut self.assets };
                let result = contract.on_publish(&mut ctx);
                match &result {
                    Ok(_) => self.assets.commit_journal(),
                    // The not-yet-inserted contract value is simply dropped;
                    // only its asset ops need reverting.
                    Err(_) => self.assets.rollback_journal(),
                };
                result
            }
            RollbackMode::Snapshot => {
                let assets_snapshot = self.assets.clone();
                let mut ctx =
                    ExecCtx { caller: publisher, now, this: id, assets: &mut self.assets };
                let result = contract.on_publish(&mut ctx);
                if result.is_err() {
                    self.assets = assets_snapshot;
                }
                result
            }
        };
        match result {
            Ok(events) => {
                self.next_contract += 1;
                let storage = contract.storage_bytes();
                self.contracts
                    .insert(id, ContractEntry { state: contract, publisher, published_at: now });
                for event in events {
                    self.events.push(ChainEvent { time: now, contract: id, event });
                }
                self.seal_tag(now, TxTag::Publish { contract: id }, storage);
                Ok(id)
            }
            Err(e) => {
                self.txs_rolled_back += 1;
                Err(TxError::Contract(e))
            }
        }
    }

    /// Calls a contract. Execution is atomic: on error, contract state and
    /// asset registry roll back and nothing is recorded.
    ///
    /// The emitted events are moved into the chain's log and returned as a
    /// borrowed slice of that log — observers poll the same entries through
    /// [`Blockchain::events_since`], so nothing is cloned per caller.
    ///
    /// `wire_bytes` is the size of the call as transmitted — hashkey calls
    /// carry multi-kilobyte signature chains, and the communication
    /// experiment (O(|A|·|L|)) sums exactly these.
    ///
    /// # Errors
    ///
    /// Fails for unknown/terminated contracts or when the logic rejects.
    pub fn call_contract(
        &mut self,
        id: ContractId,
        caller: Address,
        call: C::Call,
        now: SimTime,
        wire_bytes: usize,
    ) -> Result<&[ChainEvent<C::Event>], TxError<C::Error>> {
        let rollback = self.rollback;
        let entry = self.contracts.get_mut(&id).ok_or(TxError::UnknownContract(id))?;
        if entry.state.is_terminated() {
            return Err(TxError::ContractTerminated(id));
        }
        let result = match rollback {
            RollbackMode::Journal => {
                // Contract state needs no snapshot: `ContractLogic::apply`
                // is validate-then-commit (rejects before mutating), and
                // any asset op a failing hook did make is undone by the
                // journal.
                self.assets.begin_journal();
                let mut ctx = ExecCtx { caller, now, this: id, assets: &mut self.assets };
                let result = entry.state.apply(call, &mut ctx);
                match &result {
                    Ok(_) => self.assets.commit_journal(),
                    Err(_) => self.assets.rollback_journal(),
                };
                result
            }
            RollbackMode::Snapshot => {
                let state_snapshot = entry.state.clone();
                let assets_snapshot = self.assets.clone();
                let mut ctx = ExecCtx { caller, now, this: id, assets: &mut self.assets };
                let result = entry.state.apply(call, &mut ctx);
                if result.is_err() {
                    entry.state = state_snapshot;
                    self.assets = assets_snapshot;
                }
                result
            }
        };
        match result {
            Ok(events) => {
                let logged_from = self.events.len();
                for event in events {
                    self.events.push(ChainEvent { time: now, contract: id, event });
                }
                self.seal_tag(now, TxTag::Call { contract: id }, wire_bytes);
                Ok(&self.events[logged_from..])
            }
            Err(e) => {
                self.txs_rolled_back += 1;
                Err(TxError::Contract(e))
            }
        }
    }

    /// Public read of a contract's current state.
    pub fn contract(&self, id: ContractId) -> Option<&C> {
        self.contracts.get(&id).map(|e| &e.state)
    }

    /// Who published a contract, and when.
    pub fn contract_provenance(&self, id: ContractId) -> Option<(Address, SimTime)> {
        self.contracts.get(&id).map(|e| (e.publisher, e.published_at))
    }

    /// Iterator over `(id, state)` for all published contracts.
    pub fn contracts(&self) -> impl Iterator<Item = (ContractId, &C)> {
        self.contracts.iter().map(|(&id, e)| (id, &e.state))
    }

    /// The asset registry (read-only; mutation goes through transactions).
    pub fn assets(&self) -> &AssetRegistry {
        &self.assets
    }

    /// Events recorded at or after `cursor`; returns the slice and the new
    /// cursor. Polling with the returned cursor yields each event exactly
    /// once.
    pub fn events_since(&self, cursor: EventCursor) -> (&[ChainEvent<C::Event>], EventCursor) {
        let start = cursor.0.min(self.events.len());
        (&self.events[start..], EventCursor(self.events.len()))
    }

    /// All events ever recorded.
    pub fn all_events(&self) -> &[ChainEvent<C::Event>] {
        &self.events
    }

    /// Byte-level storage accounting.
    pub fn storage_report(&self) -> StorageReport {
        StorageReport {
            blocks: self.blocks.len() as u64,
            block_bytes: self.blocks.len() * Block::HEADER_BYTES
                + self.blocks.iter().map(|b| 32 * b.tx_digests.len()).sum::<usize>(),
            contract_bytes: self.contracts.values().map(|e| e.state.storage_bytes()).sum(),
            asset_bytes: self.assets.storage_bytes(),
            tx_bytes: self.tx_bytes,
        }
    }

    /// Re-derives every block hash link and Merkle root. `true` iff the
    /// ledger is internally consistent — the "tamper-proof" property made
    /// checkable.
    pub fn verify_integrity(&self) -> bool {
        let mut prev: Option<&Block> = None;
        for block in &self.blocks {
            if !block.is_consistent() {
                return false;
            }
            match prev {
                None => {
                    if block.height != 0 || block.parent != Digest32::ZERO {
                        return false;
                    }
                }
                Some(p) => {
                    if block.height != p.height + 1 || block.parent != p.hash() {
                        return false;
                    }
                }
            }
            prev = Some(block);
        }
        true
    }

    /// Seals one transaction tagged by `tag`, serializing it through the
    /// chain's scratch buffer — no per-transaction allocation once the
    /// buffer has grown to the largest tag (41 bytes).
    fn seal_tag(&mut self, now: SimTime, tag: TxTag, wire_bytes: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        tag.encode(&mut scratch);
        self.seal_tx(now, &scratch, wire_bytes);
        self.scratch = scratch;
    }

    /// Seals one transaction into its own block and meters its bytes.
    fn seal_tx(&mut self, now: SimTime, payload: &[u8], wire_bytes: usize) {
        let digest = sha256_concat(&[b"swap/tx/v1", payload]);
        let parent = self.blocks.last().expect("genesis always present");
        let block = Block::seal(parent, now, vec![digest]);
        self.blocks.push(block);
        self.tx_bytes += wire_bytes;
        self.version += 1;
        self.last_mutation_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy escrow contract: locks an asset at publish, releases it to a
    /// named beneficiary when called with the right PIN.
    #[derive(Debug, Clone)]
    struct PinLock {
        asset: AssetId,
        beneficiary: Address,
        pin: u32,
        done: bool,
    }

    #[derive(Debug, Clone)]
    enum PinCall {
        Open { pin: u32 },
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum PinEvent {
        Escrowed,
        Released,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum PinError {
        WrongPin,
        NotAssetOwner,
    }

    impl fmt::Display for PinError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                PinError::WrongPin => write!(f, "wrong pin"),
                PinError::NotAssetOwner => write!(f, "publisher does not own the asset"),
            }
        }
    }
    impl std::error::Error for PinError {}

    impl ContractLogic for PinLock {
        type Call = PinCall;
        type Event = PinEvent;
        type Error = PinError;

        fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<PinEvent>, PinError> {
            ctx.assets
                .transfer_from(self.asset, Owner::Party(ctx.caller), Owner::Escrow(ctx.this))
                .map_err(|_| PinError::NotAssetOwner)?;
            Ok(vec![PinEvent::Escrowed])
        }

        fn apply(
            &mut self,
            call: PinCall,
            ctx: &mut ExecCtx<'_>,
        ) -> Result<Vec<PinEvent>, PinError> {
            match call {
                PinCall::Open { pin } => {
                    if pin != self.pin {
                        return Err(PinError::WrongPin);
                    }
                    ctx.assets
                        .transfer_from(
                            self.asset,
                            Owner::Escrow(ctx.this),
                            Owner::Party(self.beneficiary),
                        )
                        .expect("escrowed at publish");
                    self.done = true;
                    Ok(vec![PinEvent::Released])
                }
            }
        }

        fn storage_bytes(&self) -> usize {
            8 + 32 + 4 + 1
        }

        fn is_terminated(&self) -> bool {
            self.done
        }
    }

    fn addr(b: u8) -> Address {
        Address::from_digest(swap_crypto::Digest32([b; 32]))
    }

    fn setup() -> (Blockchain<PinLock>, AssetId) {
        let mut chain = Blockchain::new("testnet", SimTime::ZERO);
        let asset = chain.mint_asset(AssetDescriptor::unique("car"), addr(1), SimTime::ZERO);
        (chain, asset)
    }

    #[test]
    fn publish_escrows_asset() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 1234, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        assert_eq!(chain.assets().owner(asset), Some(Owner::Escrow(id)));
        assert_eq!(chain.contract_provenance(id), Some((addr(1), SimTime::from_ticks(1))));
        assert_eq!(chain.all_events().len(), 1);
        assert!(chain.contract(id).is_some());
    }

    #[test]
    fn publish_by_non_owner_fails_without_trace() {
        let (mut chain, asset) = setup();
        let height_before = chain.height();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 1, done: false };
        let err = chain.publish_contract(lock, addr(9), SimTime::from_ticks(1)).unwrap_err();
        assert_eq!(err, TxError::Contract(PinError::NotAssetOwner));
        assert_eq!(chain.height(), height_before);
        assert_eq!(chain.assets().owner(asset), Some(Owner::Party(addr(1))));
        assert_eq!(chain.contracts().count(), 0);
    }

    #[test]
    fn failed_publish_bumps_no_id_seals_no_tx_leaves_no_events() {
        // Regression: a failing `on_publish` must not consume a contract
        // id, seal a block, bump the version, count as executed, or leave
        // any event in the log — in either rollback mode.
        for mode in [RollbackMode::Journal, RollbackMode::Snapshot] {
            let (mut chain, asset) = setup();
            chain.set_rollback_mode(mode);
            assert_eq!(chain.rollback_mode(), mode);
            let height = chain.height();
            let version = chain.version();
            let bad = PinLock { asset, beneficiary: addr(2), pin: 1, done: false };
            chain.publish_contract(bad, addr(9), SimTime::from_ticks(1)).unwrap_err();
            assert_eq!(chain.height(), height, "{mode:?}: no block sealed");
            assert_eq!(chain.version(), version, "{mode:?}: no version bump");
            assert_eq!(chain.txs_executed(), version, "{mode:?}: not executed");
            assert_eq!(chain.txs_rolled_back(), 1, "{mode:?}: rollback counted");
            assert!(chain.all_events().is_empty(), "{mode:?}: zero event trace");
            // The failed publish consumed no id: the next publish gets the
            // id the failed one would have had.
            let good = PinLock { asset, beneficiary: addr(2), pin: 1, done: false };
            let id = chain.publish_contract(good, addr(1), SimTime::from_ticks(2)).unwrap();
            assert_eq!(id, ContractId::new(0), "{mode:?}: id not bumped by failure");
        }
    }

    #[test]
    fn rollback_modes_agree_on_mixed_stream() {
        // The same succeed/fail publish+call stream must leave byte-equal
        // chains in both modes.
        let drive = |mode: RollbackMode| {
            let (mut chain, asset) = setup();
            chain.set_rollback_mode(mode);
            let bad = PinLock { asset, beneficiary: addr(2), pin: 7, done: false };
            chain.publish_contract(bad, addr(9), SimTime::from_ticks(1)).unwrap_err();
            let lock = PinLock { asset, beneficiary: addr(2), pin: 7, done: false };
            let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(2)).unwrap();
            chain
                .call_contract(id, addr(2), PinCall::Open { pin: 0 }, SimTime::from_ticks(3), 16)
                .unwrap_err();
            chain
                .call_contract(id, addr(2), PinCall::Open { pin: 7 }, SimTime::from_ticks(4), 16)
                .unwrap();
            (
                format!("{:?}", chain.assets()),
                format!("{:?}", chain.all_events()),
                format!("{:?}", chain.storage_report()),
                chain.txs_executed(),
                chain.txs_rolled_back(),
                chain.blocks().last().unwrap().hash(),
            )
        };
        assert_eq!(drive(RollbackMode::Journal), drive(RollbackMode::Snapshot));
    }

    #[test]
    fn correct_call_releases_escrow() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        let events = chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(2), 16)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, PinEvent::Released);
        assert_eq!(events[0].contract, id);
        assert_eq!(chain.assets().owner(asset), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn failed_call_rolls_back_atomically() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        let height = chain.height();
        let err = chain
            .call_contract(id, addr(2), PinCall::Open { pin: 1 }, SimTime::from_ticks(2), 16)
            .unwrap_err();
        assert_eq!(err, TxError::Contract(PinError::WrongPin));
        assert_eq!(chain.height(), height, "rejected tx must not seal a block");
        assert_eq!(chain.assets().owner(asset), Some(Owner::Escrow(id)));
        assert!(!chain.contract(id).unwrap().is_terminated());
    }

    #[test]
    fn terminated_contract_rejects_calls() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(2), 16)
            .unwrap();
        let err = chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(3), 16)
            .unwrap_err();
        assert_eq!(err, TxError::ContractTerminated(id));
    }

    #[test]
    fn unknown_contract_rejected() {
        let (mut chain, _) = setup();
        let err = chain
            .call_contract(ContractId::new(9), addr(1), PinCall::Open { pin: 0 }, SimTime::ZERO, 1)
            .unwrap_err();
        assert_eq!(err, TxError::UnknownContract(ContractId::new(9)));
        assert!(err.to_string().contains("contract9"));
    }

    #[test]
    fn event_cursor_sees_each_event_once() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        let (events, cursor) = chain.events_since(EventCursor::default());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, PinEvent::Escrowed);
        let (none_yet, cursor) = chain.events_since(cursor);
        assert!(none_yet.is_empty());
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(2), 16)
            .unwrap();
        let (more, _) = chain.events_since(cursor);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].event, PinEvent::Released);
        assert_eq!(more[0].contract, id);
        assert_eq!(more[0].time, SimTime::from_ticks(2));
    }

    #[test]
    fn integrity_verifies_and_detects_tampering() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        assert!(chain.verify_integrity());
        // Tamper with a sealed block.
        chain.blocks[1].time = SimTime::from_ticks(999);
        assert!(!chain.verify_integrity());
    }

    #[test]
    fn storage_report_accounts_for_contracts_and_calls() {
        let (mut chain, asset) = setup();
        let before = chain.storage_report();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        let mid = chain.storage_report();
        assert!(mid.contract_bytes > before.contract_bytes);
        assert!(mid.total_bytes() > before.total_bytes());
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(2), 1000)
            .unwrap();
        let after = chain.storage_report();
        assert_eq!(after.tx_bytes, mid.tx_bytes + 1000);
        let merged = before.merge(&after);
        assert_eq!(merged.blocks, before.blocks + after.blocks);
    }

    #[test]
    fn version_counts_sealed_transactions_only() {
        let (mut chain, asset) = setup();
        // Mint sealed one transaction already.
        assert_eq!(chain.version(), 1);
        assert_eq!(chain.last_mutation_at(), SimTime::ZERO);
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        assert_eq!(chain.version(), 2);
        assert_eq!(chain.last_mutation_at(), SimTime::from_ticks(1));
        // Rejected calls leave version and timestamp untouched.
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 1 }, SimTime::from_ticks(2), 16)
            .unwrap_err();
        assert_eq!(chain.version(), 2);
        assert_eq!(chain.last_mutation_at(), SimTime::from_ticks(1));
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(3), 16)
            .unwrap();
        assert_eq!(chain.version(), 3);
        assert_eq!(chain.last_mutation_at(), SimTime::from_ticks(3));
    }

    #[test]
    fn direct_transfer_checks_ownership() {
        let (mut chain, asset) = setup();
        assert!(chain.transfer_asset(asset, addr(9), addr(2), SimTime::ZERO).is_err());
        chain.transfer_asset(asset, addr(1), addr(2), SimTime::ZERO).unwrap();
        assert_eq!(chain.assets().owner(asset), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn chain_metadata() {
        let (chain, _) = setup();
        assert_eq!(chain.name(), "testnet");
        assert_eq!(chain.blocks().len() as u64, chain.height() + 1);
    }
}
