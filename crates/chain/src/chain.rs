//! The [`Blockchain`] ledger: publish, call, observe, meter.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use swap_crypto::sha256::{sha256_concat, Digest32};
use swap_crypto::Address;
use swap_sim::SimTime;

use crate::asset::{AssetDescriptor, AssetError, AssetId, AssetRegistry, Owner};
use crate::block::Block;
use crate::contract::{ContractId, ContractLogic, ExecCtx};

/// Why a transaction was rejected. Rejected transactions never reach the
/// ledger — like a mempool rejection, they leave no on-chain trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError<E> {
    /// No contract with that id on this chain.
    UnknownContract(ContractId),
    /// The contract has already terminated (claimed or refunded).
    ContractTerminated(ContractId),
    /// An asset-level failure (unknown asset, wrong owner).
    Asset(AssetError),
    /// The contract's own logic rejected the call.
    Contract(E),
}

impl<E: fmt::Display> fmt::Display for TxError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::UnknownContract(c) => write!(f, "unknown {c}"),
            TxError::ContractTerminated(c) => write!(f, "{c} has terminated"),
            TxError::Asset(e) => write!(f, "asset error: {e}"),
            TxError::Contract(e) => write!(f, "contract rejected: {e}"),
        }
    }
}

impl<E: std::error::Error> std::error::Error for TxError<E> {}

impl<E> From<AssetError> for TxError<E> {
    fn from(e: AssetError) -> Self {
        TxError::Asset(e)
    }
}

/// A timestamped contract event, as seen by observers polling the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEvent<E> {
    /// When the emitting transaction executed.
    pub time: SimTime,
    /// The contract that emitted the event.
    pub contract: ContractId,
    /// The event payload.
    pub event: E,
}

/// Position in a chain's event log; advance it with
/// [`Blockchain::events_since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventCursor(usize);

/// Byte-level accounting of everything stored on one chain — the measured
/// quantity in the Theorem 4.10 space experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageReport {
    /// Number of sealed blocks.
    pub blocks: u64,
    /// Header bytes across all blocks.
    pub block_bytes: usize,
    /// Persistent contract storage (`ContractLogic::storage_bytes`).
    pub contract_bytes: usize,
    /// Asset registry storage.
    pub asset_bytes: usize,
    /// Transaction payload bytes (publish payloads + call wire bytes).
    pub tx_bytes: usize,
}

impl StorageReport {
    /// Sum of all byte categories.
    pub fn total_bytes(&self) -> usize {
        self.block_bytes + self.contract_bytes + self.asset_bytes + self.tx_bytes
    }

    /// Component-wise sum, for aggregating across a [`crate::ChainSet`].
    pub fn merge(&self, other: &StorageReport) -> StorageReport {
        StorageReport {
            blocks: self.blocks + other.blocks,
            block_bytes: self.block_bytes + other.block_bytes,
            contract_bytes: self.contract_bytes + other.contract_bytes,
            asset_bytes: self.asset_bytes + other.asset_bytes,
            tx_bytes: self.tx_bytes + other.tx_bytes,
        }
    }
}

#[derive(Debug, Clone)]
struct ContractEntry<C> {
    state: C,
    publisher: Address,
    published_at: SimTime,
}

/// A single simulated blockchain hosting contracts of logic type `C`.
///
/// Every mutation is a transaction: it executes atomically (state snapshots
/// roll back on failure), lands in its own sealed block, and is publicly
/// readable afterwards. Contracts are irrevocable once published — there is
/// deliberately no remove/replace API, matching §2.2.
///
/// # Example
///
/// See the crate tests; `swap-contract` hosts the paper's swap contract on
/// this type.
#[derive(Debug, Clone)]
pub struct Blockchain<C: ContractLogic> {
    name: String,
    blocks: Vec<Block>,
    assets: AssetRegistry,
    contracts: BTreeMap<ContractId, ContractEntry<C>>,
    next_contract: u64,
    events: Vec<ChainEvent<C::Event>>,
    tx_bytes: usize,
    version: u64,
    last_mutation_at: SimTime,
}

impl<C: ContractLogic> Blockchain<C> {
    /// Creates a chain with a genesis block at `genesis_time`.
    pub fn new(name: impl Into<String>, genesis_time: SimTime) -> Self {
        Blockchain {
            name: name.into(),
            blocks: vec![Block::genesis(genesis_time)],
            assets: AssetRegistry::new(),
            contracts: BTreeMap::new(),
            next_contract: 0,
            events: Vec::new(),
            tx_bytes: 0,
            version: 0,
            last_mutation_at: genesis_time,
        }
    }

    /// The chain's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotone state-version counter: bumps once per sealed transaction
    /// (rejected transactions leave it untouched). Observers compare
    /// versions to decide whether a cached view of this chain is stale —
    /// the substrate that makes dirty-state tracking O(changed chains)
    /// instead of O(all chains).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// When the last transaction sealed (the genesis time if none has).
    /// Paired with [`Blockchain::version`], this timestamps the state a
    /// cached observation of this chain reflects.
    pub fn last_mutation_at(&self) -> SimTime {
        self.last_mutation_at
    }

    /// Current height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.blocks.last().expect("genesis always present").height
    }

    /// The sealed blocks, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mints an asset owned by `owner` (a genesis-style faucet operation —
    /// real chains would have richer issuance, the swap protocol only needs
    /// assets to exist).
    pub fn mint_asset(
        &mut self,
        descriptor: AssetDescriptor,
        owner: Address,
        now: SimTime,
    ) -> AssetId {
        let payload = format!("mint:{}:{}", descriptor.kind, owner);
        let id = self.assets.mint(descriptor, owner);
        self.seal_tx(now, payload.as_bytes(), 48);
        id
    }

    /// Direct owner-to-owner transfer (no contract involved).
    ///
    /// # Errors
    ///
    /// Fails if `caller` does not own `asset`.
    pub fn transfer_asset(
        &mut self,
        asset: AssetId,
        caller: Address,
        to: Address,
        now: SimTime,
    ) -> Result<(), TxError<C::Error>> {
        self.assets.transfer_from(asset, Owner::Party(caller), Owner::Party(to))?;
        self.seal_tx(now, format!("xfer:{asset}:{to}").as_bytes(), 48);
        Ok(())
    }

    /// Publishes a contract. Its `on_publish` hook runs atomically (escrow
    /// typically happens there); failure aborts publication with no trace.
    ///
    /// # Errors
    ///
    /// Propagates the contract's own publication error.
    pub fn publish_contract(
        &mut self,
        mut contract: C,
        publisher: Address,
        now: SimTime,
    ) -> Result<ContractId, TxError<C::Error>> {
        let id = ContractId::new(self.next_contract);
        let assets_snapshot = self.assets.clone();
        let mut ctx = ExecCtx { caller: publisher, now, this: id, assets: &mut self.assets };
        match contract.on_publish(&mut ctx) {
            Ok(events) => {
                self.next_contract += 1;
                let storage = contract.storage_bytes();
                self.contracts
                    .insert(id, ContractEntry { state: contract, publisher, published_at: now });
                for event in events {
                    self.events.push(ChainEvent { time: now, contract: id, event });
                }
                self.seal_tx(now, format!("publish:{id}").as_bytes(), storage);
                Ok(id)
            }
            Err(e) => {
                self.assets = assets_snapshot;
                Err(TxError::Contract(e))
            }
        }
    }

    /// Calls a contract. Execution is atomic: on error, contract state and
    /// asset registry roll back and nothing is recorded.
    ///
    /// `wire_bytes` is the size of the call as transmitted — hashkey calls
    /// carry multi-kilobyte signature chains, and the communication
    /// experiment (O(|A|·|L|)) sums exactly these.
    ///
    /// # Errors
    ///
    /// Fails for unknown/terminated contracts or when the logic rejects.
    pub fn call_contract(
        &mut self,
        id: ContractId,
        caller: Address,
        call: C::Call,
        now: SimTime,
        wire_bytes: usize,
    ) -> Result<Vec<C::Event>, TxError<C::Error>> {
        let entry = self.contracts.get_mut(&id).ok_or(TxError::UnknownContract(id))?;
        if entry.state.is_terminated() {
            return Err(TxError::ContractTerminated(id));
        }
        let state_snapshot = entry.state.clone();
        let assets_snapshot = self.assets.clone();
        let mut ctx = ExecCtx { caller, now, this: id, assets: &mut self.assets };
        match entry.state.apply(call, &mut ctx) {
            Ok(events) => {
                for event in &events {
                    self.events.push(ChainEvent { time: now, contract: id, event: event.clone() });
                }
                self.seal_tx(now, format!("call:{id}").as_bytes(), wire_bytes);
                Ok(events)
            }
            Err(e) => {
                let entry = self.contracts.get_mut(&id).expect("entry still present");
                entry.state = state_snapshot;
                self.assets = assets_snapshot;
                Err(TxError::Contract(e))
            }
        }
    }

    /// Public read of a contract's current state.
    pub fn contract(&self, id: ContractId) -> Option<&C> {
        self.contracts.get(&id).map(|e| &e.state)
    }

    /// Who published a contract, and when.
    pub fn contract_provenance(&self, id: ContractId) -> Option<(Address, SimTime)> {
        self.contracts.get(&id).map(|e| (e.publisher, e.published_at))
    }

    /// Iterator over `(id, state)` for all published contracts.
    pub fn contracts(&self) -> impl Iterator<Item = (ContractId, &C)> {
        self.contracts.iter().map(|(&id, e)| (id, &e.state))
    }

    /// The asset registry (read-only; mutation goes through transactions).
    pub fn assets(&self) -> &AssetRegistry {
        &self.assets
    }

    /// Events recorded at or after `cursor`; returns the slice and the new
    /// cursor. Polling with the returned cursor yields each event exactly
    /// once.
    pub fn events_since(&self, cursor: EventCursor) -> (&[ChainEvent<C::Event>], EventCursor) {
        let start = cursor.0.min(self.events.len());
        (&self.events[start..], EventCursor(self.events.len()))
    }

    /// All events ever recorded.
    pub fn all_events(&self) -> &[ChainEvent<C::Event>] {
        &self.events
    }

    /// Byte-level storage accounting.
    pub fn storage_report(&self) -> StorageReport {
        StorageReport {
            blocks: self.blocks.len() as u64,
            block_bytes: self.blocks.len() * Block::HEADER_BYTES
                + self.blocks.iter().map(|b| 32 * b.tx_digests.len()).sum::<usize>(),
            contract_bytes: self.contracts.values().map(|e| e.state.storage_bytes()).sum(),
            asset_bytes: self.assets.storage_bytes(),
            tx_bytes: self.tx_bytes,
        }
    }

    /// Re-derives every block hash link and Merkle root. `true` iff the
    /// ledger is internally consistent — the "tamper-proof" property made
    /// checkable.
    pub fn verify_integrity(&self) -> bool {
        let mut prev: Option<&Block> = None;
        for block in &self.blocks {
            if !block.is_consistent() {
                return false;
            }
            match prev {
                None => {
                    if block.height != 0 || block.parent != Digest32::ZERO {
                        return false;
                    }
                }
                Some(p) => {
                    if block.height != p.height + 1 || block.parent != p.hash() {
                        return false;
                    }
                }
            }
            prev = Some(block);
        }
        true
    }

    /// Seals one transaction into its own block and meters its bytes.
    fn seal_tx(&mut self, now: SimTime, payload: &[u8], wire_bytes: usize) {
        let digest = sha256_concat(&[b"swap/tx/v1", payload]);
        let parent = self.blocks.last().expect("genesis always present");
        let block = Block::seal(parent, now, vec![digest]);
        self.blocks.push(block);
        self.tx_bytes += wire_bytes;
        self.version += 1;
        self.last_mutation_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy escrow contract: locks an asset at publish, releases it to a
    /// named beneficiary when called with the right PIN.
    #[derive(Debug, Clone)]
    struct PinLock {
        asset: AssetId,
        beneficiary: Address,
        pin: u32,
        done: bool,
    }

    #[derive(Debug, Clone)]
    enum PinCall {
        Open { pin: u32 },
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum PinEvent {
        Escrowed,
        Released,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum PinError {
        WrongPin,
        NotAssetOwner,
    }

    impl fmt::Display for PinError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                PinError::WrongPin => write!(f, "wrong pin"),
                PinError::NotAssetOwner => write!(f, "publisher does not own the asset"),
            }
        }
    }
    impl std::error::Error for PinError {}

    impl ContractLogic for PinLock {
        type Call = PinCall;
        type Event = PinEvent;
        type Error = PinError;

        fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<PinEvent>, PinError> {
            ctx.assets
                .transfer_from(self.asset, Owner::Party(ctx.caller), Owner::Escrow(ctx.this))
                .map_err(|_| PinError::NotAssetOwner)?;
            Ok(vec![PinEvent::Escrowed])
        }

        fn apply(
            &mut self,
            call: PinCall,
            ctx: &mut ExecCtx<'_>,
        ) -> Result<Vec<PinEvent>, PinError> {
            match call {
                PinCall::Open { pin } => {
                    if pin != self.pin {
                        return Err(PinError::WrongPin);
                    }
                    ctx.assets
                        .transfer_from(
                            self.asset,
                            Owner::Escrow(ctx.this),
                            Owner::Party(self.beneficiary),
                        )
                        .expect("escrowed at publish");
                    self.done = true;
                    Ok(vec![PinEvent::Released])
                }
            }
        }

        fn storage_bytes(&self) -> usize {
            8 + 32 + 4 + 1
        }

        fn is_terminated(&self) -> bool {
            self.done
        }
    }

    fn addr(b: u8) -> Address {
        Address::from_digest(swap_crypto::Digest32([b; 32]))
    }

    fn setup() -> (Blockchain<PinLock>, AssetId) {
        let mut chain = Blockchain::new("testnet", SimTime::ZERO);
        let asset = chain.mint_asset(AssetDescriptor::unique("car"), addr(1), SimTime::ZERO);
        (chain, asset)
    }

    #[test]
    fn publish_escrows_asset() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 1234, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        assert_eq!(chain.assets().owner(asset), Some(Owner::Escrow(id)));
        assert_eq!(chain.contract_provenance(id), Some((addr(1), SimTime::from_ticks(1))));
        assert_eq!(chain.all_events().len(), 1);
        assert!(chain.contract(id).is_some());
    }

    #[test]
    fn publish_by_non_owner_fails_without_trace() {
        let (mut chain, asset) = setup();
        let height_before = chain.height();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 1, done: false };
        let err = chain.publish_contract(lock, addr(9), SimTime::from_ticks(1)).unwrap_err();
        assert_eq!(err, TxError::Contract(PinError::NotAssetOwner));
        assert_eq!(chain.height(), height_before);
        assert_eq!(chain.assets().owner(asset), Some(Owner::Party(addr(1))));
        assert_eq!(chain.contracts().count(), 0);
    }

    #[test]
    fn correct_call_releases_escrow() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        let events = chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(2), 16)
            .unwrap();
        assert_eq!(events, vec![PinEvent::Released]);
        assert_eq!(chain.assets().owner(asset), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn failed_call_rolls_back_atomically() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        let height = chain.height();
        let err = chain
            .call_contract(id, addr(2), PinCall::Open { pin: 1 }, SimTime::from_ticks(2), 16)
            .unwrap_err();
        assert_eq!(err, TxError::Contract(PinError::WrongPin));
        assert_eq!(chain.height(), height, "rejected tx must not seal a block");
        assert_eq!(chain.assets().owner(asset), Some(Owner::Escrow(id)));
        assert!(!chain.contract(id).unwrap().is_terminated());
    }

    #[test]
    fn terminated_contract_rejects_calls() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(2), 16)
            .unwrap();
        let err = chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(3), 16)
            .unwrap_err();
        assert_eq!(err, TxError::ContractTerminated(id));
    }

    #[test]
    fn unknown_contract_rejected() {
        let (mut chain, _) = setup();
        let err = chain
            .call_contract(ContractId::new(9), addr(1), PinCall::Open { pin: 0 }, SimTime::ZERO, 1)
            .unwrap_err();
        assert_eq!(err, TxError::UnknownContract(ContractId::new(9)));
        assert!(err.to_string().contains("contract9"));
    }

    #[test]
    fn event_cursor_sees_each_event_once() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        let (events, cursor) = chain.events_since(EventCursor::default());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, PinEvent::Escrowed);
        let (none_yet, cursor) = chain.events_since(cursor);
        assert!(none_yet.is_empty());
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(2), 16)
            .unwrap();
        let (more, _) = chain.events_since(cursor);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].event, PinEvent::Released);
        assert_eq!(more[0].contract, id);
        assert_eq!(more[0].time, SimTime::from_ticks(2));
    }

    #[test]
    fn integrity_verifies_and_detects_tampering() {
        let (mut chain, asset) = setup();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        assert!(chain.verify_integrity());
        // Tamper with a sealed block.
        chain.blocks[1].time = SimTime::from_ticks(999);
        assert!(!chain.verify_integrity());
    }

    #[test]
    fn storage_report_accounts_for_contracts_and_calls() {
        let (mut chain, asset) = setup();
        let before = chain.storage_report();
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        let mid = chain.storage_report();
        assert!(mid.contract_bytes > before.contract_bytes);
        assert!(mid.total_bytes() > before.total_bytes());
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(2), 1000)
            .unwrap();
        let after = chain.storage_report();
        assert_eq!(after.tx_bytes, mid.tx_bytes + 1000);
        let merged = before.merge(&after);
        assert_eq!(merged.blocks, before.blocks + after.blocks);
    }

    #[test]
    fn version_counts_sealed_transactions_only() {
        let (mut chain, asset) = setup();
        // Mint sealed one transaction already.
        assert_eq!(chain.version(), 1);
        assert_eq!(chain.last_mutation_at(), SimTime::ZERO);
        let lock = PinLock { asset, beneficiary: addr(2), pin: 42, done: false };
        let id = chain.publish_contract(lock, addr(1), SimTime::from_ticks(1)).unwrap();
        assert_eq!(chain.version(), 2);
        assert_eq!(chain.last_mutation_at(), SimTime::from_ticks(1));
        // Rejected calls leave version and timestamp untouched.
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 1 }, SimTime::from_ticks(2), 16)
            .unwrap_err();
        assert_eq!(chain.version(), 2);
        assert_eq!(chain.last_mutation_at(), SimTime::from_ticks(1));
        chain
            .call_contract(id, addr(2), PinCall::Open { pin: 42 }, SimTime::from_ticks(3), 16)
            .unwrap();
        assert_eq!(chain.version(), 3);
        assert_eq!(chain.last_mutation_at(), SimTime::from_ticks(3));
    }

    #[test]
    fn direct_transfer_checks_ownership() {
        let (mut chain, asset) = setup();
        assert!(chain.transfer_asset(asset, addr(9), addr(2), SimTime::ZERO).is_err());
        chain.transfer_asset(asset, addr(1), addr(2), SimTime::ZERO).unwrap();
        assert_eq!(chain.assets().owner(asset), Some(Owner::Party(addr(2))));
    }

    #[test]
    fn chain_metadata() {
        let (chain, _) = setup();
        assert_eq!(chain.name(), "testnet");
        assert_eq!(chain.blocks().len() as u64, chain.height() + 1);
    }
}
