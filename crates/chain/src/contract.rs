//! The contract-hosting interface.
//!
//! A smart contract here is "a script published on the blockchain that
//! establishes and enforces conditions necessary to transfer an asset"
//! (§1). The ledger is generic over a [`ContractLogic`] implementation:
//! `swap-contract` provides the paper's hashed-timelock swap contract, and
//! tests use small toy contracts. The chain enforces the blockchain-level
//! guarantees (irrevocability, public readability, atomic state
//! transitions); the logic decides what calls mean.

use std::fmt;

use serde::{Deserialize, Serialize};
use swap_crypto::Address;
use swap_sim::SimTime;

use crate::asset::AssetRegistry;

/// Identifies a published contract within one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContractId(u64);

impl ContractId {
    /// Creates a contract id.
    pub const fn new(v: u64) -> Self {
        ContractId(v)
    }

    /// The raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ContractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contract{}", self.0)
    }
}

/// Everything a contract may touch while executing: who called it, when,
/// its own identity, and the chain's asset registry (for escrow moves).
///
/// Execution is atomic either way the ledger is configured (see
/// [`crate::RollbackMode`]): a failed call leaves no trace. Asset moves
/// made before the failure are undone by the registry's undo journal (or
/// a registry snapshot, in the reference mode), so contract authors can
/// bail with an error at any point — but must follow the
/// validate-then-commit rule on their *own* state (see [`ContractLogic`]).
#[derive(Debug)]
pub struct ExecCtx<'a> {
    /// The transaction sender.
    pub caller: Address,
    /// Chain time at execution.
    pub now: SimTime,
    /// The executing contract's own id.
    pub this: ContractId,
    /// The chain's asset registry.
    pub assets: &'a mut AssetRegistry,
}

/// Deterministic contract state machines hosted by a [`Blockchain`].
///
/// Implementations must be pure state machines over `(state, call, ctx)`:
/// no interior mutability, no ambient time — everything comes through
/// [`ExecCtx`]. That is what makes the simulated ledgers tamper-proof in
/// the sense the paper needs: replaying the transaction log always
/// reproduces the same state.
///
/// # Validate, then commit
///
/// Hooks must perform **all** validation (and return any error) *before*
/// mutating `self`: first check every precondition, then perform asset
/// moves and state writes that can no longer fail. This is what lets the
/// default [`crate::RollbackMode::Journal`] skip cloning contract state —
/// a hook that errors is guaranteed not to have touched `self`, and any
/// asset moves it did make are reverted by the registry's undo journal.
/// [`crate::RollbackMode::Snapshot`] does not rely on the rule and serves
/// as the executable reference the journal path is pinned against.
///
/// [`Blockchain`]: crate::Blockchain
pub trait ContractLogic: Clone + fmt::Debug {
    /// The call (method + arguments) type.
    type Call: Clone + fmt::Debug;
    /// Events emitted for observers.
    type Event: Clone + fmt::Debug;
    /// Rejection reasons.
    type Error: std::error::Error + Clone;

    /// Runs when the contract is published. Typically escrows the asset the
    /// contract controls. Returning an error aborts publication entirely.
    /// Must validate before mutating (see the trait-level rule).
    ///
    /// # Errors
    ///
    /// Implementation-defined; a publication that errors is not recorded.
    fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<Self::Event>, Self::Error>;

    /// Applies a call. State changes and asset moves are atomic: if this
    /// returns an error the ledger restores the pre-call state. Must
    /// validate before mutating (see the trait-level rule).
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn apply(
        &mut self,
        call: Self::Call,
        ctx: &mut ExecCtx<'_>,
    ) -> Result<Vec<Self::Event>, Self::Error>;

    /// Bytes of persistent storage this contract occupies on-chain — the
    /// quantity Theorem 4.10 sums over all contracts.
    fn storage_bytes(&self) -> usize;

    /// Whether the contract has reached a terminal state (claimed or
    /// refunded). Terminal contracts reject further calls at the ledger
    /// level.
    fn is_terminated(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_id_display_and_raw() {
        let id = ContractId::new(5);
        assert_eq!(id.to_string(), "contract5");
        assert_eq!(id.raw(), 5);
        assert!(ContractId::new(1) < ContractId::new(2));
    }
}
