//! Simulated blockchains for the atomic swap system.
//!
//! The paper's analysis is deliberately "independent of the particular
//! blockchain algorithm" (§2.2): all it requires of a blockchain is that it
//! is a distributed service where clients publish transactions to a
//! publicly-readable, tamper-proof ledger, that published contracts are
//! irrevocable, and that a publish-then-confirm round trip fits in Δ. This
//! crate supplies exactly that contract-hosting ledger abstraction:
//!
//! * [`Blockchain`] — an append-only, hash-chained ledger of sealed blocks,
//!   generic over the [`ContractLogic`] it hosts; everything on it is
//!   publicly readable and timestamped with [`swap_sim::SimTime`],
//! * [`AssetRegistry`] — per-chain asset ownership, including *escrow to a
//!   contract* (a published swap contract "assumes temporary control" of the
//!   asset, §4.1),
//! * [`ChainSet`] — one blockchain per swap arc, as the paper assumes,
//! * storage metering — byte counts per contract/transaction/block feeding
//!   the Theorem 4.10 space-complexity experiment.
//!
//! Tamper-evidence is real: blocks chain by hash and
//! [`Blockchain::verify_integrity`] re-derives every link.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asset;
pub mod block;
pub mod chain;
pub mod contract;
pub mod multichain;

pub use asset::{AssetDescriptor, AssetId, AssetRegistry, JournalOp, Owner, UndoJournal};
pub use chain::{Blockchain, ChainEvent, EventCursor, RollbackMode, StorageReport, TxError, TxTag};
pub use contract::{ContractId, ContractLogic, ExecCtx};
pub use multichain::{ChainId, ChainSet};
