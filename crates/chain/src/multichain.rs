//! Multiple blockchains: one per swap arc.
//!
//! The paper treats "blockchain and arc interchangeably" (§3): each proposed
//! transfer lives on its own shared blockchain. [`ChainSet`] is the handful
//! of independent ledgers a swap runs across, addressed by [`ChainId`].

use std::fmt;

use serde::{Deserialize, Serialize};
use swap_sim::SimTime;

use crate::chain::{Blockchain, RollbackMode, StorageReport};
use crate::contract::ContractLogic;

/// Identifies one blockchain in a [`ChainSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChainId(u32);

impl ChainId {
    /// Creates a chain id.
    pub const fn new(v: u32) -> Self {
        ChainId(v)
    }

    /// The raw value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ChainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain{}", self.0)
    }
}

/// A set of independent blockchains sharing a contract logic type.
///
/// Ids are dense — the `n`th created (or absorbed) chain is `ChainId(n)` —
/// so the set stores chains in a `Vec` indexed directly by id: O(1)
/// unchecked access, and [`ChainSet::absorb`] is a reserve-and-move append
/// instead of a per-chain re-keyed map insert.
///
/// Typical setup (`C` is your [`ContractLogic`] type): create the set,
/// `create_chain` per arc, then drive each chain's `publish_contract` /
/// `call_contract` through [`ChainSet::get_mut`]. `swap-core`'s
/// provisioning (`SwapSetup`) and the crate tests are worked examples.
#[derive(Debug, Clone, Default)]
pub struct ChainSet<C: ContractLogic> {
    chains: Vec<Blockchain<C>>,
    rollback: RollbackMode,
}

impl<C: ContractLogic> ChainSet<C> {
    /// Creates an empty set rolling back in the default
    /// [`RollbackMode::Journal`].
    pub fn new() -> Self {
        ChainSet { chains: Vec::new(), rollback: RollbackMode::default() }
    }

    /// Sets the [`RollbackMode`] for every existing chain and every chain
    /// created in this set afterwards.
    pub fn set_rollback_mode(&mut self, mode: RollbackMode) {
        self.rollback = mode;
        for chain in &mut self.chains {
            chain.set_rollback_mode(mode);
        }
    }

    /// The mode stamped onto newly created chains.
    pub fn rollback_mode(&self) -> RollbackMode {
        self.rollback
    }

    /// Creates a new chain, returning its id.
    pub fn create_chain(&mut self, name: impl Into<String>, genesis_time: SimTime) -> ChainId {
        let id = ChainId::new(self.chains.len() as u32);
        let mut chain = Blockchain::new(name, genesis_time);
        chain.set_rollback_mode(self.rollback);
        self.chains.push(chain);
        id
    }

    /// Read access to one chain.
    pub fn get(&self, id: ChainId) -> Option<&Blockchain<C>> {
        self.chains.get(id.raw() as usize)
    }

    /// Write access to one chain (to submit transactions).
    pub fn get_mut(&mut self, id: ChainId) -> Option<&mut Blockchain<C>> {
        self.chains.get_mut(id.raw() as usize)
    }

    /// Iterator over `(id, chain)`.
    pub fn iter(&self) -> impl Iterator<Item = (ChainId, &Blockchain<C>)> {
        self.chains.iter().enumerate().map(|(i, c)| (ChainId::new(i as u32), c))
    }

    /// Number of chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Absorbs every chain of `other` into this set, renumbering them with
    /// fresh ids, and returns the `(old, new)` id mapping in `other`'s
    /// iteration order.
    ///
    /// This is the merge half of concurrent execution: each worker runs a
    /// swap on a [`ChainSet`] it exclusively owns, and the orchestrator
    /// folds those sets back into one global ledger view afterwards. Because
    /// ids are dense, renumbering is pure address arithmetic: one reserve
    /// plus a move of `other`'s chains — amortized O(chains moved), no
    /// per-chain re-keying or copying. Block histories, contracts, and
    /// assets are untouched, so integrity verification and storage
    /// accounting survive the merge.
    pub fn absorb(&mut self, mut other: ChainSet<C>) -> Vec<(ChainId, ChainId)> {
        let base = self.chains.len() as u32;
        let mapping = (0..other.chains.len() as u32)
            .map(|i| (ChainId::new(i), ChainId::new(base + i)))
            .collect();
        self.chains.reserve(other.chains.len());
        self.chains.append(&mut other.chains);
        mapping
    }

    /// Aggregated storage across all chains — "bits stored on all
    /// blockchains", the exact phrase of Theorem 4.10.
    pub fn storage_report(&self) -> StorageReport {
        self.chains
            .iter()
            .map(Blockchain::storage_report)
            .fold(StorageReport::default(), |acc, r| acc.merge(&r))
    }

    /// Whether every chain passes integrity verification.
    pub fn verify_integrity(&self) -> bool {
        self.chains.iter().all(Blockchain::verify_integrity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asset::AssetDescriptor;
    use crate::contract::ExecCtx;
    use swap_crypto::{Address, Digest32};

    #[derive(Debug, Clone)]
    struct Nop;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct NopError;
    impl fmt::Display for NopError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "nop")
        }
    }
    impl std::error::Error for NopError {}

    impl ContractLogic for Nop {
        type Call = ();
        type Event = ();
        type Error = NopError;
        fn on_publish(&mut self, _ctx: &mut ExecCtx<'_>) -> Result<Vec<()>, NopError> {
            Ok(vec![])
        }
        fn apply(&mut self, _call: (), _ctx: &mut ExecCtx<'_>) -> Result<Vec<()>, NopError> {
            Ok(vec![])
        }
        fn storage_bytes(&self) -> usize {
            10
        }
        fn is_terminated(&self) -> bool {
            false
        }
    }

    fn addr(b: u8) -> Address {
        Address::from_digest(Digest32([b; 32]))
    }

    #[test]
    fn create_and_access_chains() {
        let mut set: ChainSet<Nop> = ChainSet::new();
        assert!(set.is_empty());
        let a = set.create_chain("bitcoin", SimTime::ZERO);
        let b = set.create_chain("altcoin", SimTime::ZERO);
        assert_ne!(a, b);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(a).unwrap().name(), "bitcoin");
        assert_eq!(set.get(b).unwrap().name(), "altcoin");
        assert!(set.get(ChainId::new(99)).is_none());
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn storage_aggregates_across_chains() {
        let mut set: ChainSet<Nop> = ChainSet::new();
        let a = set.create_chain("a", SimTime::ZERO);
        let b = set.create_chain("b", SimTime::ZERO);
        set.get_mut(a).unwrap().publish_contract(Nop, addr(1), SimTime::from_ticks(1)).unwrap();
        set.get_mut(b).unwrap().mint_asset(
            AssetDescriptor::unique("t"),
            addr(1),
            SimTime::from_ticks(1),
        );
        let report = set.storage_report();
        assert_eq!(report.contract_bytes, 10);
        assert!(report.asset_bytes > 0);
        assert!(report.blocks >= 4); // 2 genesis + 2 txs
    }

    #[test]
    fn integrity_across_chains() {
        let mut set: ChainSet<Nop> = ChainSet::new();
        set.create_chain("a", SimTime::ZERO);
        set.create_chain("b", SimTime::ZERO);
        assert!(set.verify_integrity());
    }

    #[test]
    fn absorb_renumbers_and_preserves_state() {
        let mut left: ChainSet<Nop> = ChainSet::new();
        let a = left.create_chain("a", SimTime::ZERO);
        left.get_mut(a).unwrap().publish_contract(Nop, addr(1), SimTime::from_ticks(1)).unwrap();

        let mut right: ChainSet<Nop> = ChainSet::new();
        let b = right.create_chain("b", SimTime::ZERO);
        let c = right.create_chain("c", SimTime::ZERO);
        right.get_mut(b).unwrap().publish_contract(Nop, addr(2), SimTime::from_ticks(2)).unwrap();
        right.get_mut(c).unwrap().mint_asset(
            AssetDescriptor::unique("t"),
            addr(3),
            SimTime::from_ticks(3),
        );
        let left_report = left.storage_report();
        let right_report = right.storage_report();

        let mapping = left.absorb(right);
        assert_eq!(mapping.len(), 2);
        // Fresh, collision-free ids in `other`'s iteration order.
        assert_eq!(mapping[0].0, b);
        assert_eq!(mapping[1].0, c);
        assert_eq!(left.len(), 3);
        assert_ne!(mapping[0].1, a);
        assert_ne!(mapping[1].1, a);
        assert_ne!(mapping[0].1, mapping[1].1);
        // Chain state crossed over untouched.
        assert_eq!(left.get(mapping[0].1).unwrap().name(), "b");
        assert_eq!(left.get(mapping[1].1).unwrap().name(), "c");
        assert!(left.verify_integrity());
        // Storage is the exact sum of the two sides.
        let merged = left.storage_report();
        assert_eq!(merged, left_report.merge(&right_report));
        // Chains created after the merge keep getting fresh ids.
        let d = left.create_chain("d", SimTime::ZERO);
        assert_eq!(left.len(), 4);
        assert_ne!(d, a);
        assert!(mapping.iter().all(|&(_, new)| new != d));
    }

    #[test]
    fn rollback_mode_broadcasts_to_existing_and_future_chains() {
        let mut set: ChainSet<Nop> = ChainSet::new();
        let a = set.create_chain("a", SimTime::ZERO);
        assert_eq!(set.get(a).unwrap().rollback_mode(), RollbackMode::Journal);
        set.set_rollback_mode(RollbackMode::Snapshot);
        assert_eq!(set.rollback_mode(), RollbackMode::Snapshot);
        assert_eq!(set.get(a).unwrap().rollback_mode(), RollbackMode::Snapshot);
        let b = set.create_chain("b", SimTime::ZERO);
        assert_eq!(set.get(b).unwrap().rollback_mode(), RollbackMode::Snapshot);
    }

    #[test]
    fn chain_id_display() {
        assert_eq!(ChainId::new(2).to_string(), "chain2");
        assert_eq!(ChainId::new(2).raw(), 2);
    }
}
