//! Property tests for the ledger substrate: ownership is conserved,
//! integrity survives arbitrary operation sequences, and tampering is
//! always detected.

use proptest::prelude::*;
use swap_chain::{
    AssetDescriptor, AssetId, AssetRegistry, Blockchain, ContractLogic, ExecCtx, Owner,
    RollbackMode,
};
use swap_crypto::{Address, Digest32};
use swap_sim::SimTime;

fn addr(b: u8) -> Address {
    Address::from_digest(Digest32([b; 32]))
}

/// A trivial contract so we can instantiate `Blockchain` in tests.
#[derive(Debug, Clone)]
struct Nop;

#[derive(Debug, Clone, PartialEq, Eq)]
struct NopError;
impl std::fmt::Display for NopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nop")
    }
}
impl std::error::Error for NopError {}

impl ContractLogic for Nop {
    type Call = ();
    type Event = ();
    type Error = NopError;
    fn on_publish(&mut self, _ctx: &mut ExecCtx<'_>) -> Result<Vec<()>, NopError> {
        Ok(vec![])
    }
    fn apply(&mut self, _call: (), _ctx: &mut ExecCtx<'_>) -> Result<Vec<()>, NopError> {
        Ok(vec![])
    }
    fn storage_bytes(&self) -> usize {
        1
    }
    fn is_terminated(&self) -> bool {
        false
    }
}

/// An escrow contract whose calls can succeed, fail before mutating, or
/// fail *after* moving an asset — the "rare mid-apply failure" the undo
/// journal exists to revert.
#[derive(Debug, Clone)]
struct Vault {
    asset: AssetId,
    beneficiary: Address,
    done: bool,
}

#[derive(Debug, Clone, Copy)]
enum VaultCall {
    /// Release the escrow to the beneficiary and terminate.
    Release,
    /// Reject before touching anything (validate-then-commit reject path).
    FailClean,
    /// Move the escrowed asset, then error anyway (mid-apply failure; the
    /// ledger must revert the move in either rollback mode).
    FailAfterMove,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum VaultEvent {
    Escrowed,
    Released,
}

impl ContractLogic for Vault {
    type Call = VaultCall;
    type Event = VaultEvent;
    type Error = NopError;

    fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<VaultEvent>, NopError> {
        ctx.assets
            .transfer_from(self.asset, Owner::Party(ctx.caller), Owner::Escrow(ctx.this))
            .map_err(|_| NopError)?;
        Ok(vec![VaultEvent::Escrowed])
    }

    fn apply(
        &mut self,
        call: VaultCall,
        ctx: &mut ExecCtx<'_>,
    ) -> Result<Vec<VaultEvent>, NopError> {
        match call {
            VaultCall::Release => {
                ctx.assets
                    .transfer_from(
                        self.asset,
                        Owner::Escrow(ctx.this),
                        Owner::Party(self.beneficiary),
                    )
                    .map_err(|_| NopError)?;
                self.done = true;
                Ok(vec![VaultEvent::Released])
            }
            VaultCall::FailClean => Err(NopError),
            VaultCall::FailAfterMove => {
                ctx.assets
                    .transfer_from(
                        self.asset,
                        Owner::Escrow(ctx.this),
                        Owner::Party(self.beneficiary),
                    )
                    .map_err(|_| NopError)?;
                Err(NopError)
            }
        }
    }

    fn storage_bytes(&self) -> usize {
        8 + 32 + 1
    }

    fn is_terminated(&self) -> bool {
        self.done
    }
}

/// One randomized ledger operation.
#[derive(Debug, Clone)]
enum Op {
    Mint { owner: u8 },
    Transfer { asset: usize, from: u8, to: u8 },
    Publish { publisher: u8 },
}

/// One randomized operation for the rollback-equivalence stream, mixing
/// succeeding and failing publishes, calls, and transfers.
#[derive(Debug, Clone)]
enum MixedOp {
    Mint { owner: u8 },
    Transfer { asset: usize, from: u8, to: u8 },
    Publish { asset: usize, publisher: u8, beneficiary: u8 },
    Call { contract: usize, caller: u8, kind: u8 },
}

fn arb_mixed_op() -> impl Strategy<Value = MixedOp> {
    prop_oneof![
        (1u8..5).prop_map(|owner| MixedOp::Mint { owner }),
        (0usize..16, 1u8..5, 1u8..5).prop_map(|(asset, from, to)| MixedOp::Transfer {
            asset,
            from,
            to
        }),
        (0usize..16, 1u8..5, 1u8..5).prop_map(|(asset, publisher, beneficiary)| {
            MixedOp::Publish { asset, publisher, beneficiary }
        }),
        (0usize..16, 1u8..5, 0u8..3).prop_map(|(contract, caller, kind)| MixedOp::Call {
            contract,
            caller,
            kind
        }),
    ]
}

/// Drives one op stream against a chain in `mode`, returning a full
/// fingerprint of everything observable: assets, contracts, events,
/// storage, counters, and the head block hash.
fn drive_mixed(ops: &[MixedOp], mode: RollbackMode) -> String {
    let mut chain: Blockchain<Vault> = Blockchain::new("equiv", SimTime::ZERO);
    chain.set_rollback_mode(mode);
    let mut minted: Vec<AssetId> = Vec::new();
    let mut published: Vec<swap_chain::ContractId> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        let now = SimTime::from_ticks(step as u64 + 1);
        match *op {
            MixedOp::Mint { owner } => {
                minted.push(chain.mint_asset(AssetDescriptor::unique("t"), addr(owner), now));
            }
            MixedOp::Transfer { asset, from, to } => {
                if minted.is_empty() {
                    continue;
                }
                let id = minted[asset % minted.len()];
                let _ = chain.transfer_asset(id, addr(from), addr(to), now);
            }
            MixedOp::Publish { asset, publisher, beneficiary } => {
                if minted.is_empty() {
                    continue;
                }
                let vault = Vault {
                    asset: minted[asset % minted.len()],
                    beneficiary: addr(beneficiary),
                    done: false,
                };
                if let Ok(id) = chain.publish_contract(vault, addr(publisher), now) {
                    published.push(id);
                }
            }
            MixedOp::Call { contract, caller, kind } => {
                if published.is_empty() {
                    continue;
                }
                let id = published[contract % published.len()];
                let call = match kind {
                    0 => VaultCall::Release,
                    1 => VaultCall::FailClean,
                    _ => VaultCall::FailAfterMove,
                };
                let _ = chain.call_contract(id, addr(caller), call, now, 16);
            }
        }
    }
    let contracts: Vec<_> = chain.contracts().collect();
    format!(
        "{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}",
        chain.assets(),
        contracts,
        chain.all_events(),
        chain.storage_report(),
        chain.txs_executed(),
        chain.txs_rolled_back(),
        chain.blocks().last().unwrap().hash(),
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..5).prop_map(|owner| Op::Mint { owner }),
        (0usize..16, 1u8..5, 1u8..5).prop_map(|(asset, from, to)| Op::Transfer { asset, from, to }),
        (1u8..5).prop_map(|publisher| Op::Publish { publisher }),
    ]
}

proptest! {
    /// Every asset has exactly one owner at all times, transfers only
    /// succeed from the true owner, and chain integrity holds after any
    /// operation sequence.
    #[test]
    fn ledger_invariants_under_random_ops(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut chain: Blockchain<Nop> = Blockchain::new("prop", SimTime::ZERO);
        let mut minted: Vec<(swap_chain::AssetId, u8)> = Vec::new(); // (asset, owner)
        for (step, op) in ops.into_iter().enumerate() {
            let now = SimTime::from_ticks(step as u64 + 1);
            match op {
                Op::Mint { owner } => {
                    let id = chain.mint_asset(
                        AssetDescriptor::unique("t"),
                        addr(owner),
                        now,
                    );
                    minted.push((id, owner));
                }
                Op::Transfer { asset, from, to } => {
                    if minted.is_empty() {
                        continue;
                    }
                    let slot = asset % minted.len();
                    let (id, true_owner) = minted[slot];
                    let result = chain.transfer_asset(id, addr(from), addr(to), now);
                    if from == true_owner {
                        prop_assert!(result.is_ok());
                        minted[slot].1 = to;
                    } else {
                        prop_assert!(result.is_err(), "transfer from non-owner succeeded");
                    }
                }
                Op::Publish { publisher } => {
                    chain
                        .publish_contract(Nop, addr(publisher), now)
                        .expect("nop publishes");
                }
            }
        }
        // Final ownership agrees with the model.
        for (id, owner) in &minted {
            prop_assert_eq!(chain.assets().owner(*id), Some(Owner::Party(addr(*owner))));
        }
        prop_assert!(chain.verify_integrity());
        // Heights line up: genesis + one block per successful tx.
        prop_assert_eq!(chain.height() + 1, chain.blocks().len() as u64);
    }

    /// Tampering with any *interior* sealed block breaks verification (the
    /// head block's own header is pinned only once a successor links to it,
    /// exactly as on real chains).
    #[test]
    fn any_block_tamper_detected(n_txs in 2usize..20, victim in 0usize..20, field in 0u8..3) {
        let mut chain: Blockchain<Nop> = Blockchain::new("prop", SimTime::ZERO);
        for i in 0..n_txs {
            chain.mint_asset(AssetDescriptor::unique("t"), addr(1), SimTime::from_ticks(i as u64));
        }
        prop_assert!(chain.verify_integrity());
        let copy = chain.clone();
        // Skip genesis and ensure a successor exists to anchor the victim.
        let idx = 1 + victim % (n_txs - 1);
        // Reach in through the public surface: rebuild blocks with a tweak.
        // (Blockchain fields are private; simulate tampering by serializing
        // the block list through its public accessor and checking that any
        // single-field change is caught via a fresh chain comparison.)
        let blocks = copy.blocks().to_vec();
        let mut tampered = blocks.clone();
        match field {
            0 => tampered[idx].height += 1,
            1 => tampered[idx].time = SimTime::from_ticks(9_999),
            _ => tampered[idx].parent = swap_crypto::sha256::sha256(b"evil"),
        }
        // A fresh chain with the tampered block list must fail the same
        // checks verify_integrity performs.
        let mut consistent = true;
        let mut prev: Option<&swap_chain::block::Block> = None;
        for b in &tampered {
            if !b.is_consistent() {
                consistent = false;
            }
            if let Some(p) = prev {
                if b.height != p.height + 1 || b.parent != p.hash() {
                    consistent = false;
                }
            }
            prev = Some(b);
        }
        prop_assert!(!consistent, "tampering with field {field} went undetected");
    }

    /// `RollbackMode::Journal` and `RollbackMode::Snapshot` are
    /// byte-identical over random interleavings of succeeding and failing
    /// publish/call/transfer streams — including calls that move an asset
    /// and *then* fail, the case only the undo journal (or a full clone)
    /// can revert.
    #[test]
    fn rollback_modes_byte_identical(ops in prop::collection::vec(arb_mixed_op(), 0..80)) {
        let journal = drive_mixed(&ops, RollbackMode::Journal);
        let snapshot = drive_mixed(&ops, RollbackMode::Snapshot);
        prop_assert_eq!(journal, snapshot);
    }

    /// The registry's compare-and-swap refuses stale expected owners.
    #[test]
    fn registry_compare_and_swap(owners in prop::collection::vec(1u8..6, 1..10)) {
        let mut reg = AssetRegistry::new();
        let id = reg.mint(AssetDescriptor::unique("x"), addr(owners[0]));
        let mut current = owners[0];
        for &next in &owners[1..] {
            // Stale transfer attempt from a random non-owner.
            let stale = if current == 1 { 2 } else { 1 };
            if stale != current {
                prop_assert!(reg
                    .transfer_from(id, Owner::Party(addr(stale)), Owner::Party(addr(next)))
                    .is_err());
            }
            reg.transfer_from(id, Owner::Party(addr(current)), Owner::Party(addr(next)))
                .expect("owner-initiated transfer");
            current = next;
        }
        prop_assert_eq!(reg.owner(id), Some(Owner::Party(addr(current))));
    }
}
