//! [`AnyContract`]: one chain type hosting either contract flavor.
//!
//! Simulated chains are generic over a single [`ContractLogic`]; this enum
//! lets a runner mix the general swap contract and plain HTLCs in one
//! [`swap_chain::ChainSet`] (e.g. when comparing the two protocols on the
//! same scenario).

use std::fmt;

use swap_chain::{ContractLogic, ExecCtx};

use crate::htlc::{HtlcCall, HtlcContract, HtlcError, HtlcEvent};
use crate::swap::{SwapCall, SwapContract, SwapError, SwapEvent};

/// Either contract flavor.
#[derive(Debug, Clone)]
pub enum AnyContract {
    /// Classic two-party HTLC.
    Htlc(HtlcContract),
    /// General multi-leader swap contract.
    Swap(SwapContract),
}

/// A call to either contract flavor.
#[derive(Debug, Clone)]
pub enum AnyCall {
    /// A call to an [`HtlcContract`].
    Htlc(HtlcCall),
    /// A call to a [`SwapContract`].
    Swap(SwapCall),
}

/// An event from either contract flavor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnyEvent {
    /// From an [`HtlcContract`].
    Htlc(HtlcEvent),
    /// From a [`SwapContract`].
    Swap(SwapEvent),
}

/// An error from either contract flavor, or a flavor mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnyError {
    /// From an [`HtlcContract`].
    Htlc(HtlcError),
    /// From a [`SwapContract`].
    Swap(SwapError),
    /// An HTLC call was sent to a swap contract or vice versa.
    WrongFlavor,
}

impl fmt::Display for AnyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyError::Htlc(e) => write!(f, "{e}"),
            AnyError::Swap(e) => write!(f, "{e}"),
            AnyError::WrongFlavor => write!(f, "call flavor does not match contract flavor"),
        }
    }
}

impl std::error::Error for AnyError {}

impl From<HtlcContract> for AnyContract {
    fn from(c: HtlcContract) -> Self {
        AnyContract::Htlc(c)
    }
}

impl From<SwapContract> for AnyContract {
    fn from(c: SwapContract) -> Self {
        AnyContract::Swap(c)
    }
}

impl From<HtlcCall> for AnyCall {
    fn from(c: HtlcCall) -> Self {
        AnyCall::Htlc(c)
    }
}

impl From<SwapCall> for AnyCall {
    fn from(c: SwapCall) -> Self {
        AnyCall::Swap(c)
    }
}

impl AnyContract {
    /// The inner HTLC, if that is the flavor.
    pub fn as_htlc(&self) -> Option<&HtlcContract> {
        match self {
            AnyContract::Htlc(c) => Some(c),
            AnyContract::Swap(_) => None,
        }
    }

    /// The inner swap contract, if that is the flavor.
    pub fn as_swap(&self) -> Option<&SwapContract> {
        match self {
            AnyContract::Swap(c) => Some(c),
            AnyContract::Htlc(_) => None,
        }
    }

    /// Whether this contract's transfer has irrevocably happened, in the
    /// flavor's own terms: an HTLC *triggered* (secret revealed in time); a
    /// swap contract *fully unlocked or claimed* (once every hashlock is
    /// open, only the counterparty can ever take the asset).
    pub fn transfer_triggered(&self) -> bool {
        match self {
            AnyContract::Htlc(c) => c.is_triggered(),
            AnyContract::Swap(c) => c.fully_unlocked() || c.is_claimed(),
        }
    }

    /// Whether the contract reached a terminal state: the escrowed asset
    /// left escrow, either toward the counterparty or back to the party.
    pub fn settled(&self) -> bool {
        match self {
            AnyContract::Htlc(c) => c.is_terminated(),
            AnyContract::Swap(c) => c.is_claimed() || c.is_refunded(),
        }
    }
}

impl ContractLogic for AnyContract {
    type Call = AnyCall;
    type Event = AnyEvent;
    type Error = AnyError;

    fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<AnyEvent>, AnyError> {
        match self {
            AnyContract::Htlc(c) => c
                .on_publish(ctx)
                .map(|es| es.into_iter().map(AnyEvent::Htlc).collect())
                .map_err(AnyError::Htlc),
            AnyContract::Swap(c) => c
                .on_publish(ctx)
                .map(|es| es.into_iter().map(AnyEvent::Swap).collect())
                .map_err(AnyError::Swap),
        }
    }

    fn apply(&mut self, call: AnyCall, ctx: &mut ExecCtx<'_>) -> Result<Vec<AnyEvent>, AnyError> {
        match (self, call) {
            (AnyContract::Htlc(c), AnyCall::Htlc(call)) => c
                .apply(call, ctx)
                .map(|es| es.into_iter().map(AnyEvent::Htlc).collect())
                .map_err(AnyError::Htlc),
            (AnyContract::Swap(c), AnyCall::Swap(call)) => c
                .apply(call, ctx)
                .map(|es| es.into_iter().map(AnyEvent::Swap).collect())
                .map_err(AnyError::Swap),
            _ => Err(AnyError::WrongFlavor),
        }
    }

    fn storage_bytes(&self) -> usize {
        match self {
            AnyContract::Htlc(c) => c.storage_bytes(),
            AnyContract::Swap(c) => c.storage_bytes(),
        }
    }

    fn is_terminated(&self) -> bool {
        match self {
            AnyContract::Htlc(c) => c.is_terminated(),
            AnyContract::Swap(c) => c.is_terminated(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_chain::{AssetDescriptor, AssetRegistry, ContractId};
    use swap_crypto::{Address, Digest32, Secret};
    use swap_sim::SimTime;

    fn addr(b: u8) -> Address {
        Address::from_digest(Digest32([b; 32]))
    }

    fn htlc_any() -> (AnyContract, AssetRegistry) {
        let mut assets = AssetRegistry::new();
        let asset = assets.mint(AssetDescriptor::new("x", 1), addr(1));
        let secret = Secret::from_bytes([5u8; 32]);
        let htlc =
            HtlcContract::new(asset, addr(1), addr(2), secret.hashlock(), SimTime::from_ticks(60));
        let mut any: AnyContract = htlc.into();
        let mut ctx = ExecCtx {
            caller: addr(1),
            now: SimTime::ZERO,
            this: ContractId::new(0),
            assets: &mut assets,
        };
        any.on_publish(&mut ctx).unwrap();
        (any, assets)
    }

    #[test]
    fn htlc_flavor_roundtrip() {
        let (mut any, mut assets) = htlc_any();
        assert!(any.as_htlc().is_some());
        assert!(any.as_swap().is_none());
        let mut ctx = ExecCtx {
            caller: addr(2),
            now: SimTime::from_ticks(10),
            this: ContractId::new(0),
            assets: &mut assets,
        };
        let events = any
            .apply(
                AnyCall::Htlc(HtlcCall::Reveal { secret: Secret::from_bytes([5u8; 32]) }),
                &mut ctx,
            )
            .unwrap();
        assert_eq!(events, vec![AnyEvent::Htlc(HtlcEvent::Triggered)]);
        assert!(any.is_terminated());
        assert!(any.storage_bytes() > 0);
    }

    #[test]
    fn htlc_trigger_and_settle_semantics() {
        let (mut any, mut assets) = htlc_any();
        assert!(!any.transfer_triggered());
        assert!(!any.settled());
        let mut ctx = ExecCtx {
            caller: addr(2),
            now: SimTime::from_ticks(10),
            this: ContractId::new(0),
            assets: &mut assets,
        };
        any.apply(
            AnyCall::Htlc(HtlcCall::Reveal { secret: Secret::from_bytes([5u8; 32]) }),
            &mut ctx,
        )
        .unwrap();
        assert!(any.transfer_triggered());
        assert!(any.settled());
    }

    #[test]
    fn htlc_refund_settles_without_triggering() {
        let (mut any, mut assets) = htlc_any();
        let mut ctx = ExecCtx {
            caller: addr(1),
            now: SimTime::from_ticks(99),
            this: ContractId::new(0),
            assets: &mut assets,
        };
        any.apply(AnyCall::Htlc(HtlcCall::Refund), &mut ctx).unwrap();
        assert!(!any.transfer_triggered());
        assert!(any.settled());
    }

    #[test]
    fn flavor_mismatch_rejected() {
        let (mut any, mut assets) = htlc_any();
        let mut ctx = ExecCtx {
            caller: addr(2),
            now: SimTime::from_ticks(10),
            this: ContractId::new(0),
            assets: &mut assets,
        };
        let err = any.apply(AnyCall::Swap(SwapCall::Claim), &mut ctx).unwrap_err();
        assert_eq!(err, AnyError::WrongFlavor);
        assert!(err.to_string().contains("flavor"));
    }
}
