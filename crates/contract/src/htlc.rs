//! The classic two-party hashed timelock contract (HTLC).
//!
//! This is the contract of the paper's §1 worked example and §4.6
//! single-leader protocol: **one** hashlock `h`, **one** absolute timeout
//! `t`. If the counterparty presents `s` with `H(s) = h` before `t`, the
//! asset transfers irrevocably; otherwise the party can reclaim it after
//! `t`. No paths, no signatures — which is exactly why it only works when
//! the follower subdigraph is acyclic (Figure 6).

use std::fmt;

use swap_chain::{AssetId, ContractLogic, ExecCtx, Owner};
use swap_crypto::{Address, Hashlock, Secret};
use swap_sim::SimTime;

/// Calls accepted by an [`HtlcContract`].
#[derive(Debug, Clone)]
pub enum HtlcCall {
    /// Present the secret before the timeout, triggering the transfer.
    Reveal {
        /// The claimed preimage of the hashlock.
        secret: Secret,
    },
    /// Reclaim the asset after the timeout.
    Refund,
}

/// Events emitted by an [`HtlcContract`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtlcEvent {
    /// Contract published, asset escrowed.
    Escrowed {
        /// The escrowed asset.
        asset: AssetId,
    },
    /// Secret revealed; asset transferred to the counterparty. The secret
    /// is now public on this chain.
    Triggered,
    /// Asset refunded to the party after timeout.
    Refunded,
}

/// Rejection reasons for [`HtlcContract`] calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtlcError {
    /// Only the counterparty may reveal.
    NotCounterparty,
    /// Only the party may refund.
    NotParty,
    /// The timeout has already passed; revealing no longer works.
    Expired {
        /// The timeout that passed.
        timeout: SimTime,
    },
    /// The timeout has not passed yet; refunding is premature.
    NotYetExpired {
        /// The pending timeout.
        timeout: SimTime,
    },
    /// The secret does not hash to the hashlock.
    WrongSecret,
    /// The publisher does not own the asset to escrow.
    PublisherNotOwner,
    /// The contract already triggered or refunded; no further calls apply.
    Terminated,
}

impl fmt::Display for HtlcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HtlcError::NotCounterparty => write!(f, "caller is not the counterparty"),
            HtlcError::NotParty => write!(f, "caller is not the party"),
            HtlcError::Expired { timeout } => write!(f, "timelock {timeout} has expired"),
            HtlcError::NotYetExpired { timeout } => {
                write!(f, "timelock {timeout} has not expired yet")
            }
            HtlcError::WrongSecret => write!(f, "secret does not match hashlock"),
            HtlcError::PublisherNotOwner => write!(f, "publisher does not own the asset"),
            HtlcError::Terminated => write!(f, "contract has already terminated"),
        }
    }
}

impl std::error::Error for HtlcError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HtlcState {
    Pending,
    Triggered,
    Refunded,
}

/// A hashed timelock contract: `(h, t)` protecting one asset transfer.
///
/// # Example
///
/// ```
/// use swap_contract::HtlcContract;
/// use swap_chain::AssetId;
/// use swap_crypto::{Address, Digest32, Secret};
/// use swap_sim::SimTime;
///
/// let party = Address::from_digest(Digest32([1u8; 32]));
/// let counterparty = Address::from_digest(Digest32([2u8; 32]));
/// let s = Secret::from_bytes([9u8; 32]);
/// let htlc = HtlcContract::new(
///     AssetId::new(0),
///     party,
///     counterparty,
///     s.hashlock(),
///     SimTime::from_ticks(60),
/// );
/// assert!(!htlc.is_triggered());
/// ```
#[derive(Debug, Clone)]
pub struct HtlcContract {
    asset: AssetId,
    party: Address,
    counterparty: Address,
    hashlock: Hashlock,
    timeout: SimTime,
    state: HtlcState,
    revealed: Option<Secret>,
}

impl HtlcContract {
    /// Creates an HTLC transferring `asset` from `party` to `counterparty`
    /// if the preimage of `hashlock` appears before `timeout`.
    pub fn new(
        asset: AssetId,
        party: Address,
        counterparty: Address,
        hashlock: Hashlock,
        timeout: SimTime,
    ) -> Self {
        HtlcContract {
            asset,
            party,
            counterparty,
            hashlock,
            timeout,
            state: HtlcState::Pending,
            revealed: None,
        }
    }

    /// The escrowed asset.
    pub fn asset(&self) -> AssetId {
        self.asset
    }

    /// The party (asset origin).
    pub fn party(&self) -> Address {
        self.party
    }

    /// The counterparty (asset destination).
    pub fn counterparty(&self) -> Address {
        self.counterparty
    }

    /// The hashlock.
    pub fn hashlock(&self) -> Hashlock {
        self.hashlock
    }

    /// The absolute timeout.
    pub fn timeout(&self) -> SimTime {
        self.timeout
    }

    /// Whether the transfer fired.
    pub fn is_triggered(&self) -> bool {
        self.state == HtlcState::Triggered
    }

    /// Whether the asset was refunded.
    pub fn is_refunded(&self) -> bool {
        self.state == HtlcState::Refunded
    }

    /// The revealed secret, if the contract has triggered. Publicly
    /// readable — this is how secrets propagate in the timeout protocol.
    pub fn revealed_secret(&self) -> Option<&Secret> {
        self.revealed.as_ref()
    }
}

impl ContractLogic for HtlcContract {
    type Call = HtlcCall;
    type Event = HtlcEvent;
    type Error = HtlcError;

    fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<HtlcEvent>, HtlcError> {
        if ctx.caller != self.party {
            return Err(HtlcError::NotParty);
        }
        ctx.assets
            .transfer_from(self.asset, Owner::Party(ctx.caller), Owner::Escrow(ctx.this))
            .map_err(|_| HtlcError::PublisherNotOwner)?;
        Ok(vec![HtlcEvent::Escrowed { asset: self.asset }])
    }

    /// Applies a call under the validate-then-commit rule the journaled
    /// rollback mode relies on (see [`ContractLogic`]): each arm runs all
    /// of its guards before the escrow move and state write, so an error
    /// here guarantees untouched contract state.
    fn apply(
        &mut self,
        call: HtlcCall,
        ctx: &mut ExecCtx<'_>,
    ) -> Result<Vec<HtlcEvent>, HtlcError> {
        // Hosting chains already refuse calls to terminated contracts; this
        // guard keeps the state machine safe when driven directly.
        if self.is_terminated() {
            return Err(HtlcError::Terminated);
        }
        match call {
            HtlcCall::Reveal { secret } => {
                if ctx.caller != self.counterparty {
                    return Err(HtlcError::NotCounterparty);
                }
                if ctx.now >= self.timeout {
                    return Err(HtlcError::Expired { timeout: self.timeout });
                }
                if !self.hashlock.matches(&secret) {
                    return Err(HtlcError::WrongSecret);
                }
                ctx.assets
                    .transfer_from(self.asset, Owner::Escrow(ctx.this), Owner::Party(ctx.caller))
                    .expect("asset escrowed at publication");
                self.state = HtlcState::Triggered;
                self.revealed = Some(secret);
                Ok(vec![HtlcEvent::Triggered])
            }
            HtlcCall::Refund => {
                if ctx.caller != self.party {
                    return Err(HtlcError::NotParty);
                }
                if ctx.now < self.timeout {
                    return Err(HtlcError::NotYetExpired { timeout: self.timeout });
                }
                ctx.assets
                    .transfer_from(self.asset, Owner::Escrow(ctx.this), Owner::Party(ctx.caller))
                    .expect("asset escrowed at publication");
                self.state = HtlcState::Refunded;
                Ok(vec![HtlcEvent::Refunded])
            }
        }
    }

    fn storage_bytes(&self) -> usize {
        // asset id + two addresses + hashlock + timeout + state + optional
        // revealed secret.
        8 + 32 + 32 + 32 + 8 + 1 + if self.revealed.is_some() { 32 } else { 0 }
    }

    fn is_terminated(&self) -> bool {
        self.state != HtlcState::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_chain::{AssetDescriptor, AssetRegistry, ContractId};
    use swap_crypto::Digest32;

    fn addr(b: u8) -> Address {
        Address::from_digest(Digest32([b; 32]))
    }

    const THIS: ContractId = ContractId::new(0);

    struct Rig {
        htlc: HtlcContract,
        assets: AssetRegistry,
        asset: AssetId,
        secret: Secret,
    }

    impl Rig {
        fn new(timeout: u64) -> Rig {
            let mut assets = AssetRegistry::new();
            let asset = assets.mint(AssetDescriptor::new("btc", 1), addr(1));
            let secret = Secret::from_bytes([5u8; 32]);
            let mut htlc = HtlcContract::new(
                asset,
                addr(1),
                addr(2),
                secret.hashlock(),
                SimTime::from_ticks(timeout),
            );
            let mut ctx =
                ExecCtx { caller: addr(1), now: SimTime::ZERO, this: THIS, assets: &mut assets };
            htlc.on_publish(&mut ctx).unwrap();
            Rig { htlc, assets, asset, secret }
        }

        fn call(
            &mut self,
            caller: Address,
            call: HtlcCall,
            now: u64,
        ) -> Result<Vec<HtlcEvent>, HtlcError> {
            let mut ctx = ExecCtx {
                caller,
                now: SimTime::from_ticks(now),
                this: THIS,
                assets: &mut self.assets,
            };
            self.htlc.apply(call, &mut ctx)
        }
    }

    #[test]
    fn reveal_before_timeout_transfers() {
        let mut rig = Rig::new(60);
        let events = rig.call(addr(2), HtlcCall::Reveal { secret: rig.secret }, 59).unwrap();
        assert_eq!(events, vec![HtlcEvent::Triggered]);
        assert!(rig.htlc.is_triggered());
        assert!(rig.htlc.is_terminated());
        assert_eq!(rig.assets.owner(rig.asset), Some(Owner::Party(addr(2))));
        // The secret is now public.
        assert_eq!(rig.htlc.revealed_secret(), Some(&rig.secret));
    }

    #[test]
    fn reveal_at_timeout_rejected() {
        let mut rig = Rig::new(60);
        let err = rig.call(addr(2), HtlcCall::Reveal { secret: rig.secret }, 60).unwrap_err();
        assert_eq!(err, HtlcError::Expired { timeout: SimTime::from_ticks(60) });
        assert!(!rig.htlc.is_triggered());
    }

    #[test]
    fn wrong_secret_rejected() {
        let mut rig = Rig::new(60);
        let err = rig
            .call(addr(2), HtlcCall::Reveal { secret: Secret::from_bytes([0u8; 32]) }, 10)
            .unwrap_err();
        assert_eq!(err, HtlcError::WrongSecret);
    }

    #[test]
    fn only_counterparty_reveals() {
        let mut rig = Rig::new(60);
        let err = rig.call(addr(3), HtlcCall::Reveal { secret: rig.secret }, 10).unwrap_err();
        assert_eq!(err, HtlcError::NotCounterparty);
        let err = rig.call(addr(1), HtlcCall::Reveal { secret: rig.secret }, 10).unwrap_err();
        assert_eq!(err, HtlcError::NotCounterparty);
    }

    #[test]
    fn refund_after_timeout() {
        let mut rig = Rig::new(60);
        let events = rig.call(addr(1), HtlcCall::Refund, 60).unwrap();
        assert_eq!(events, vec![HtlcEvent::Refunded]);
        assert!(rig.htlc.is_refunded());
        assert_eq!(rig.assets.owner(rig.asset), Some(Owner::Party(addr(1))));
    }

    #[test]
    fn refund_before_timeout_rejected() {
        let mut rig = Rig::new(60);
        let err = rig.call(addr(1), HtlcCall::Refund, 59).unwrap_err();
        assert_eq!(err, HtlcError::NotYetExpired { timeout: SimTime::from_ticks(60) });
    }

    #[test]
    fn only_party_refunds() {
        let mut rig = Rig::new(60);
        let err = rig.call(addr(2), HtlcCall::Refund, 99).unwrap_err();
        assert_eq!(err, HtlcError::NotParty);
    }

    #[test]
    fn publish_requires_asset_ownership() {
        let mut assets = AssetRegistry::new();
        let asset = assets.mint(AssetDescriptor::new("btc", 1), addr(7));
        let secret = Secret::from_bytes([5u8; 32]);
        let mut htlc =
            HtlcContract::new(asset, addr(1), addr(2), secret.hashlock(), SimTime::from_ticks(9));
        let mut ctx =
            ExecCtx { caller: addr(1), now: SimTime::ZERO, this: THIS, assets: &mut assets };
        assert_eq!(htlc.on_publish(&mut ctx), Err(HtlcError::PublisherNotOwner));
    }

    #[test]
    fn publish_requires_party_caller() {
        let mut assets = AssetRegistry::new();
        let asset = assets.mint(AssetDescriptor::new("btc", 1), addr(2));
        let secret = Secret::from_bytes([5u8; 32]);
        let mut htlc =
            HtlcContract::new(asset, addr(1), addr(2), secret.hashlock(), SimTime::from_ticks(9));
        // addr(2) owns the asset but is not the contract's party.
        let mut ctx =
            ExecCtx { caller: addr(2), now: SimTime::ZERO, this: THIS, assets: &mut assets };
        assert_eq!(htlc.on_publish(&mut ctx), Err(HtlcError::NotParty));
    }

    #[test]
    fn storage_accounts_revealed_secret() {
        let mut rig = Rig::new(60);
        let before = rig.htlc.storage_bytes();
        rig.call(addr(2), HtlcCall::Reveal { secret: rig.secret }, 10).unwrap();
        assert_eq!(rig.htlc.storage_bytes(), before + 32);
    }

    #[test]
    fn accessors() {
        let rig = Rig::new(60);
        assert_eq!(rig.htlc.asset(), rig.asset);
        assert_eq!(rig.htlc.party(), addr(1));
        assert_eq!(rig.htlc.counterparty(), addr(2));
        assert_eq!(rig.htlc.timeout(), SimTime::from_ticks(60));
        assert!(rig.htlc.hashlock().matches(&rig.secret));
    }

    #[test]
    fn error_display() {
        assert!(HtlcError::WrongSecret.to_string().contains("secret"));
        assert!(HtlcError::Expired { timeout: SimTime::from_ticks(5) }.to_string().contains("t=5"));
    }
}
