//! Hashed timelock swap contracts — the on-chain half of Herlihy's protocol.
//!
//! Three contract flavors, all hosted on [`swap_chain::Blockchain`]:
//!
//! * [`HtlcContract`] — the classic two-party hashed timelock contract of
//!   §1 and §4.6: one hashlock, one absolute timeout. Used by the worked
//!   three-way swap of Figures 1–2 and by the single-leader protocol, where
//!   plain timeouts replace hashkeys entirely.
//! * [`SwapContract`] — the general multi-leader contract of Figures 4–5:
//!   a *vector* of hashlocks (one per leader), unlocked by *hashkeys*
//!   `(s, p, σ)` whose timeout `(diam(D) + |p|)·Δ` depends on the presented
//!   path, with nested signature chains proving provenance.
//! * [`AnyContract`] — an enum over both, so one simulated chain can host
//!   either flavor.
//!
//! The `SwapContract` implementation follows the paper's pseudocode
//! line-for-line where it is precise, and documents the one place it is
//! not: the `refund` predicate (Figure 5, line 37) reads "any hashlock
//! unlocked and timed out", which we implement as *"some hashlock can no
//! longer be unlocked"* — a hashlock is dead once every candidate hashkey
//! for it has timed out, i.e. after `start + 2·diam(D)·Δ` (every path
//! satisfies `|p| ≤ diam(D)`). That is the reading consistent with
//! Theorem 4.9's proof and with the claim that conforming parties' assets
//! "will be refunded by `T + 2·diam(D)·Δ`".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod any;
pub mod htlc;
pub mod spec;
pub mod swap;
pub mod testkit;

pub use any::{AnyCall, AnyContract, AnyError, AnyEvent};
pub use htlc::{HtlcCall, HtlcContract, HtlcError, HtlcEvent};
pub use spec::SwapSpec;
pub use swap::{SwapCall, SwapContract, SwapError, SwapEvent, UnlockRecord};
