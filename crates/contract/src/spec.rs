//! The swap specification: what the market-clearing service publishes and
//! every contract embeds.
//!
//! §4.2: the clearing service combines offers and publishes a swap digraph
//! `D`, a leader vector `L` forming a feedback vertex set, the leaders'
//! hashlocks, and a starting time `T`. The service is *not trusted* — every
//! party re-validates the spec with [`SwapSpec::validate`], and every
//! published contract carries the spec so counterparties can check published
//! contracts against their own copy (§4.5 Phase One: "verifies that contract
//! is a correct swap contract").

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};
use swap_crypto::{Address, Hashlock, MssPublicKey};
use swap_digraph::algo::EXACT_DIAMETER_LIMIT;
use swap_digraph::{encode, Digraph, FeedbackVertexSet, VertexId};
use swap_sim::{Delta, SimDuration, SimTime};

/// Why a [`SwapSpec`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The swap digraph is not strongly connected (Theorem 3.5 forbids the
    /// swap outright).
    NotStronglyConnected,
    /// The leader set is not a feedback vertex set (Theorem 4.12 forbids
    /// the protocol).
    LeadersNotFeedbackVertexSet,
    /// A leader vertex id is out of range.
    UnknownLeaderVertex(VertexId),
    /// The same leader appears twice.
    DuplicateLeader(VertexId),
    /// Hashlock / leader vector lengths differ.
    HashlockCountMismatch {
        /// Number of leaders.
        leaders: usize,
        /// Number of hashlocks.
        hashlocks: usize,
    },
    /// Address or key tables do not cover every vertex.
    IdentityTableMismatch {
        /// Number of vertexes.
        vertices: usize,
        /// Number of addresses provided.
        addresses: usize,
        /// Number of keys provided.
        keys: usize,
    },
    /// The declared diameter is smaller than the digraph requires, which
    /// would make hashkey timeouts unsound.
    DiameterTooSmall {
        /// Declared value.
        declared: u64,
        /// Minimum acceptable value.
        required: u64,
    },
    /// The swap has no leaders at all on a cyclic digraph.
    NoLeaders,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NotStronglyConnected => {
                write!(f, "swap digraph is not strongly connected")
            }
            SpecError::LeadersNotFeedbackVertexSet => {
                write!(f, "leader set is not a feedback vertex set")
            }
            SpecError::UnknownLeaderVertex(v) => write!(f, "leader {v} is not a vertex"),
            SpecError::DuplicateLeader(v) => write!(f, "leader {v} listed twice"),
            SpecError::HashlockCountMismatch { leaders, hashlocks } => {
                write!(f, "{leaders} leaders but {hashlocks} hashlocks")
            }
            SpecError::IdentityTableMismatch { vertices, addresses, keys } => {
                write!(f, "{vertices} vertexes but {addresses} addresses / {keys} keys")
            }
            SpecError::DiameterTooSmall { declared, required } => {
                write!(f, "declared diameter {declared} below required {required}")
            }
            SpecError::NoLeaders => write!(f, "cyclic digraph with no leaders"),
        }
    }
}

impl std::error::Error for SpecError {}

/// The published swap specification.
///
/// Constructed by the market-clearing service; see `swap-market`'s
/// `SpecBuilder` for assembly and the crate tests for worked examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapSpec {
    /// The swap digraph `D = (V, A)`.
    pub digraph: Digraph,
    /// Leader vertexes `L ⊂ V` (sorted, deduplicated).
    pub leaders: Vec<VertexId>,
    /// Leader hashlocks, parallel to `leaders`.
    pub hashlocks: Vec<Hashlock>,
    /// On-chain address per vertex.
    pub addresses: Vec<Address>,
    /// Signature-verification key per vertex.
    pub keys: Vec<MssPublicKey>,
    /// Protocol start time `T`.
    pub start: SimTime,
    /// The synchrony parameter Δ.
    pub delta: Delta,
    /// The agreed diameter value used in every timeout formula.
    pub diam: u64,
    /// The §4.5 broadcast optimization: when `true`, a logical arc runs from
    /// every vertex directly to every leader, so contracts accept
    /// length-one hashkey paths `(v, ℓ)` even where `D` has no such arc.
    /// Phase Two then completes in constant time when all parties conform.
    #[serde(default)]
    pub broadcast_arcs: bool,
}

impl SwapSpec {
    /// Validates every structural requirement the protocol's theorems rest
    /// on. Conforming parties run this before publishing anything (§4.2:
    /// "the parties can check the consistency of the clearing service's
    /// responses").
    ///
    /// # Errors
    ///
    /// The first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        let n = self.digraph.vertex_count();
        if !self.digraph.is_strongly_connected() {
            return Err(SpecError::NotStronglyConnected);
        }
        let mut seen = BTreeSet::new();
        for &l in &self.leaders {
            if l.index() >= n {
                return Err(SpecError::UnknownLeaderVertex(l));
            }
            if !seen.insert(l) {
                return Err(SpecError::DuplicateLeader(l));
            }
        }
        if self.leaders.is_empty() && !self.digraph.is_acyclic() {
            return Err(SpecError::NoLeaders);
        }
        if !FeedbackVertexSet::is_feedback_vertex_set(&self.digraph, &seen) {
            return Err(SpecError::LeadersNotFeedbackVertexSet);
        }
        if self.hashlocks.len() != self.leaders.len() {
            return Err(SpecError::HashlockCountMismatch {
                leaders: self.leaders.len(),
                hashlocks: self.hashlocks.len(),
            });
        }
        if self.addresses.len() != n || self.keys.len() != n {
            return Err(SpecError::IdentityTableMismatch {
                vertices: n,
                addresses: self.addresses.len(),
                keys: self.keys.len(),
            });
        }
        // Timeout soundness requires diam ≥ |p| for every path p. For small
        // digraphs we check against the exact longest path; beyond the
        // exact-computation limit, the safe |V| bound is required.
        let required = if n <= EXACT_DIAMETER_LIMIT {
            swap_digraph::algo::diameter_exact(&self.digraph).expect("within limit") as u64
        } else {
            n as u64
        };
        if self.diam < required {
            return Err(SpecError::DiameterTooSmall { declared: self.diam, required });
        }
        Ok(())
    }

    /// The address of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range (specs are validated before use).
    pub fn address_of(&self, v: VertexId) -> Address {
        self.addresses[v.index()]
    }

    /// The verification key of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn key_of(&self, v: VertexId) -> &MssPublicKey {
        &self.keys[v.index()]
    }

    /// The vertex with address `a`, if any.
    pub fn vertex_of_address(&self, a: Address) -> Option<VertexId> {
        self.addresses.iter().position(|&x| x == a).map(|i| VertexId::new(i as u32))
    }

    /// The index of `v` within the leader vector, if `v` is a leader.
    pub fn leader_index(&self, v: VertexId) -> Option<usize> {
        self.leaders.iter().position(|&l| l == v)
    }

    /// Whether `v` is a leader.
    pub fn is_leader(&self, v: VertexId) -> bool {
        self.leader_index(v).is_some()
    }

    /// The hashkey deadline for a path of length `path_len`:
    /// `T + (diam(D) + |p|)·Δ` (§4.1).
    pub fn hashkey_deadline(&self, path_len: usize) -> SimTime {
        self.start + self.delta.times(self.diam + path_len as u64)
    }

    /// When every conceivable hashkey has expired: `T + 2·diam(D)·Δ`
    /// (`|p| ≤ diam(D)` always). After this instant any still-locked
    /// hashlock is dead and refunds are enabled.
    pub fn all_hashkeys_dead(&self) -> SimTime {
        self.start + self.delta.times(2 * self.diam)
    }

    /// The worst-case protocol duration `2·diam(D)·Δ` (Theorem 4.7).
    pub fn worst_case_duration(&self) -> SimDuration {
        self.delta.times(2 * self.diam)
    }

    /// Persistent bytes this spec occupies inside one contract: the digraph
    /// copy — the `O(|A|)` per-contract term of Theorem 4.10 — plus the
    /// hashlock/address/key tables and scalars.
    pub fn storage_bytes(&self) -> usize {
        encode::encoded_len(&self.digraph)
            + 32 * self.hashlocks.len()
            + 32 * self.addresses.len()
            + 32 * self.keys.len()
            + 4 * self.leaders.len()
            + 8 * 3 // start, delta, diam
            + 1 // broadcast flag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::spec_for;
    use swap_digraph::generators;

    #[test]
    fn valid_three_party_spec() {
        let d = generators::herlihy_three_party();
        let a = d.vertex_by_name("alice").unwrap();
        let spec = spec_for(d, vec![a]);
        spec.validate().unwrap();
        assert!(spec.is_leader(a));
        assert_eq!(spec.leader_index(a), Some(0));
        assert_eq!(spec.vertex_of_address(spec.address_of(a)), Some(a));
    }

    #[test]
    fn not_strongly_connected_rejected() {
        let d = generators::one_way_pair();
        let spec = spec_for(d, vec![VertexId::new(0)]);
        assert_eq!(spec.validate(), Err(SpecError::NotStronglyConnected));
    }

    #[test]
    fn non_fvs_leaders_rejected() {
        // Two-leader triangle with only one leader: deleting it leaves a
        // 2-cycle.
        let d = generators::two_leader_triangle();
        let spec = spec_for(d, vec![VertexId::new(0)]);
        assert_eq!(spec.validate(), Err(SpecError::LeadersNotFeedbackVertexSet));
    }

    #[test]
    fn no_leaders_on_cyclic_rejected() {
        let d = generators::herlihy_three_party();
        let spec = spec_for(d, vec![]);
        assert_eq!(spec.validate(), Err(SpecError::NoLeaders));
    }

    #[test]
    fn unknown_and_duplicate_leaders_rejected() {
        let d = generators::herlihy_three_party();
        let spec = spec_for(d.clone(), vec![VertexId::new(9)]);
        assert_eq!(spec.validate(), Err(SpecError::UnknownLeaderVertex(VertexId::new(9))));
        let spec = spec_for(d, vec![VertexId::new(0), VertexId::new(0)]);
        assert_eq!(spec.validate(), Err(SpecError::DuplicateLeader(VertexId::new(0))));
    }

    #[test]
    fn hashlock_mismatch_rejected() {
        let d = generators::herlihy_three_party();
        let mut spec = spec_for(d, vec![VertexId::new(0)]);
        spec.hashlocks.clear();
        assert_eq!(
            spec.validate(),
            Err(SpecError::HashlockCountMismatch { leaders: 1, hashlocks: 0 })
        );
    }

    #[test]
    fn identity_table_mismatch_rejected() {
        let d = generators::herlihy_three_party();
        let mut spec = spec_for(d, vec![VertexId::new(0)]);
        spec.addresses.pop();
        assert!(matches!(spec.validate(), Err(SpecError::IdentityTableMismatch { .. })));
    }

    #[test]
    fn undersized_diameter_rejected() {
        let d = generators::herlihy_three_party();
        let mut spec = spec_for(d, vec![VertexId::new(0)]);
        spec.diam = 2; // true diameter is 3
        assert_eq!(spec.validate(), Err(SpecError::DiameterTooSmall { declared: 2, required: 3 }));
    }

    #[test]
    fn oversized_diameter_accepted() {
        // Looser diameters are sound (just slower to refund).
        let d = generators::herlihy_three_party();
        let mut spec = spec_for(d, vec![VertexId::new(0)]);
        spec.diam = 100;
        spec.validate().unwrap();
    }

    #[test]
    fn timeout_formulas() {
        let d = generators::herlihy_three_party();
        let spec = spec_for(d, vec![VertexId::new(0)]);
        // start = 10, Δ = 10, diam = 3.
        assert_eq!(spec.hashkey_deadline(0), SimTime::from_ticks(10 + 30));
        assert_eq!(spec.hashkey_deadline(2), SimTime::from_ticks(10 + 50));
        assert_eq!(spec.all_hashkeys_dead(), SimTime::from_ticks(10 + 60));
        assert_eq!(spec.worst_case_duration().ticks(), 60);
    }

    #[test]
    fn storage_includes_digraph_copy() {
        let d3 = spec_for(generators::herlihy_three_party(), vec![VertexId::new(0)]);
        let d6 = spec_for(
            generators::complete(4),
            vec![VertexId::new(0), VertexId::new(1), VertexId::new(2)],
        );
        // More arcs → strictly more storage per contract.
        assert!(d6.storage_bytes() > d3.storage_bytes());
    }

    #[test]
    fn error_display_messages() {
        assert!(SpecError::NotStronglyConnected.to_string().contains("strongly"));
        assert!(SpecError::DiameterTooSmall { declared: 1, required: 3 }
            .to_string()
            .contains("below"));
    }
}
