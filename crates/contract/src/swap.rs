//! The general multi-leader swap contract (Figures 4–5 of the paper).
//!
//! One `SwapContract` instance sits on each arc `(u, v)` of the swap
//! digraph, escrows `u`'s asset at publication, and exposes three methods:
//!
//! * [`SwapCall::Unlock`] — `unlock(i, s, p, σ)`: the counterparty presents
//!   a hashkey for hashlock `i`. The contract checks (Figure 5, lines
//!   28–31): the hashkey has not timed out (`now < T + (diam + |p|)·Δ`),
//!   the secret matches (`hashlock[i] = H(s)`), the path runs from the
//!   counterparty to the leader who generated `s_i`, and the nested
//!   signature chain is valid.
//! * [`SwapCall::Refund`] — the party recovers the asset once some hashlock
//!   is dead (still locked after every possible hashkey expired).
//! * [`SwapCall::Claim`] — the counterparty takes the asset once *every*
//!   hashlock is unlocked (the arc "triggers").
//!
//! Unlocking also *publishes* the hashkey: the secret, path, and signature
//! chain become publicly readable [`UnlockRecord`]s, which is how secrets
//! propagate backwards through the digraph in Phase Two.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use swap_chain::{AssetId, ContractLogic, ExecCtx, Owner};
use swap_crypto::{Secret, SigChain, SigChainError};
use swap_digraph::{ArcId, VertexPath};
use swap_sim::SimTime;

use crate::spec::SwapSpec;

/// Calls accepted by a [`SwapContract`].
#[derive(Debug, Clone)]
pub enum SwapCall {
    /// `unlock(i, s, path, sig)` — Figure 5, line 26.
    Unlock {
        /// Hashlock index `i` (position in the spec's leader vector).
        index: usize,
        /// The claimed secret `s` with `H(s) = hashlock[i]`.
        secret: Secret,
        /// Path from the counterparty to the leader who generated `s`.
        path: VertexPath,
        /// Nested signature chain `sig(···sig(s, u_k)···, u₀)`.
        sig: SigChain,
    },
    /// `refund()` — Figure 5, line 35.
    Refund,
    /// `claim()` — Figure 5, line 42.
    Claim,
}

/// Events emitted by a [`SwapContract`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapEvent {
    /// The contract was published and the asset escrowed.
    Escrowed {
        /// The escrowed asset.
        asset: AssetId,
    },
    /// Hashlock `index` was unlocked. The full hashkey is readable via
    /// [`SwapContract::unlock_record`].
    Unlocked {
        /// Hashlock index.
        index: usize,
    },
    /// The arc triggered: every hashlock unlocked and the counterparty
    /// claimed the asset.
    Claimed,
    /// The asset was refunded to the party.
    Refunded,
}

/// Rejection reasons for [`SwapContract`] calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// `unlock`/`claim` must come from the counterparty (lines 27, 43).
    NotCounterparty,
    /// `refund` must come from the party (line 36).
    NotParty,
    /// No hashlock with that index.
    UnknownHashlockIndex(usize),
    /// The hashkey's timeout `T + (diam + |p|)·Δ` has passed (line 28).
    HashkeyExpired {
        /// The deadline that passed.
        deadline: SimTime,
        /// The call's arrival time.
        now: SimTime,
    },
    /// `H(s)` does not match the hashlock (line 29).
    WrongSecret,
    /// The path is not a valid digraph path from the counterparty to the
    /// generating leader (line 30).
    InvalidPath,
    /// The signature chain failed verification (line 31).
    BadSignature(SigChainError),
    /// `claim` requires every hashlock unlocked (line 44).
    NotAllUnlocked {
        /// How many of the hashlocks are currently unlocked.
        unlocked: usize,
        /// Total number of hashlocks.
        total: usize,
    },
    /// `refund` requires some hashlock to be dead (unlockable no longer).
    NothingRefundable,
    /// The publisher does not own the asset to escrow.
    PublisherNotOwner,
    /// The contract already settled (claimed or refunded).
    AlreadySettled,
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::NotCounterparty => write!(f, "caller is not the counterparty"),
            SwapError::NotParty => write!(f, "caller is not the party"),
            SwapError::UnknownHashlockIndex(i) => write!(f, "no hashlock {i}"),
            SwapError::HashkeyExpired { deadline, now } => {
                write!(f, "hashkey expired at {deadline}, call arrived at {now}")
            }
            SwapError::WrongSecret => write!(f, "secret does not match hashlock"),
            SwapError::InvalidPath => write!(f, "path is not valid for this hashkey"),
            SwapError::BadSignature(e) => write!(f, "signature chain invalid: {e}"),
            SwapError::NotAllUnlocked { unlocked, total } => {
                write!(f, "only {unlocked}/{total} hashlocks unlocked")
            }
            SwapError::NothingRefundable => write!(f, "no hashlock is dead yet"),
            SwapError::PublisherNotOwner => write!(f, "publisher does not own the asset"),
            SwapError::AlreadySettled => write!(f, "contract has already settled"),
        }
    }
}

impl std::error::Error for SwapError {}

/// A publicly readable record of a successful `unlock` — the hashkey as it
/// now exists on-chain. Observers copy `secret`/`path`/`sig` to build their
/// own extended hashkeys (`unlock(s, v + p, sig(σ, v))`).
#[derive(Debug, Clone)]
pub struct UnlockRecord {
    /// The revealed secret.
    pub secret: Secret,
    /// The path the presenter used.
    pub path: VertexPath,
    /// The signature chain the presenter used.
    pub sig: SigChain,
    /// When the unlock happened.
    pub at: SimTime,
}

/// Terminal state of a swap contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Settlement {
    /// Asset still in escrow.
    Pending,
    /// Counterparty claimed (the arc triggered).
    Claimed,
    /// Party refunded.
    Refunded,
}

/// The per-arc hashed timelock swap contract of Figures 4–5.
///
/// Logically every contract stores its own copy of the spec — that *is* the
/// O(|A|) per-contract storage Theorem 4.10 charges, and
/// [`SwapContract::storage_bytes`] still meters it per contract. In the
/// simulator's memory, though, the spec is held behind an [`Arc`] so the
/// |A| contracts of one swap share a single allocation instead of each
/// cloning an O(|A|)-sized spec at publication.
#[derive(Debug, Clone)]
pub struct SwapContract {
    spec: Arc<SwapSpec>,
    arc: ArcId,
    asset: AssetId,
    /// Per-hashlock unlock records (`unlocked[]` of Figure 4, enriched with
    /// the hashkey that did the unlocking).
    unlocked: Vec<Option<UnlockRecord>>,
    settlement: Settlement,
}

impl SwapContract {
    /// Creates a contract for `arc` of the spec's digraph, escrowing
    /// `asset`. Accepts an owned [`SwapSpec`] or an [`Arc`] handle —
    /// publishers deploying one contract per arc should share one `Arc`
    /// rather than cloning the spec per contract.
    ///
    /// # Panics
    ///
    /// Panics if `arc` is not an arc of the spec's digraph. Specs are
    /// validated upstream; an out-of-range arc is a programming error.
    pub fn new(spec: impl Into<Arc<SwapSpec>>, arc: ArcId, asset: AssetId) -> Self {
        let spec = spec.into();
        assert!(arc.index() < spec.digraph.arc_count(), "arc out of range");
        let locks = spec.hashlocks.len();
        SwapContract {
            spec,
            arc,
            asset,
            unlocked: vec![None; locks],
            settlement: Settlement::Pending,
        }
    }

    /// The embedded spec (public readability).
    pub fn spec(&self) -> &SwapSpec {
        &self.spec
    }

    /// The shared handle to the embedded spec. Observers holding their own
    /// handle can verify a contract embeds the expected spec with a pointer
    /// comparison ([`Arc::ptr_eq`]) before falling back to a deep equality
    /// check.
    pub fn spec_handle(&self) -> &Arc<SwapSpec> {
        &self.spec
    }

    /// The arc this contract implements.
    pub fn arc(&self) -> ArcId {
        self.arc
    }

    /// The escrowed asset.
    pub fn asset(&self) -> AssetId {
        self.asset
    }

    /// The party (arc head, asset origin) address.
    pub fn party(&self) -> swap_crypto::Address {
        self.spec.address_of(self.spec.digraph.head(self.arc))
    }

    /// The counterparty (arc tail, asset destination) address.
    pub fn counterparty(&self) -> swap_crypto::Address {
        self.spec.address_of(self.spec.digraph.tail(self.arc))
    }

    /// Whether hashlock `index` is unlocked.
    pub fn is_unlocked(&self, index: usize) -> bool {
        self.unlocked.get(index).is_some_and(Option::is_some)
    }

    /// The hashkey that unlocked hashlock `index`, if any.
    pub fn unlock_record(&self, index: usize) -> Option<&UnlockRecord> {
        self.unlocked.get(index).and_then(Option::as_ref)
    }

    /// Number of unlocked hashlocks.
    pub fn unlocked_count(&self) -> usize {
        self.unlocked.iter().filter(|u| u.is_some()).count()
    }

    /// Whether every hashlock is unlocked (the arc is ready to trigger).
    pub fn fully_unlocked(&self) -> bool {
        self.unlocked.iter().all(Option::is_some)
    }

    /// Whether the counterparty claimed the asset (the arc *triggered*).
    pub fn is_claimed(&self) -> bool {
        self.settlement == Settlement::Claimed
    }

    /// Whether the party was refunded.
    pub fn is_refunded(&self) -> bool {
        self.settlement == Settlement::Refunded
    }

    /// Whether some hashlock can no longer ever be unlocked at `now`: it is
    /// locked and even the longest path's hashkey (`|p| = diam`) has timed
    /// out. This is the refund-enabling predicate.
    pub fn some_hashlock_dead(&self, now: SimTime) -> bool {
        let dead_after = self.spec.all_hashkeys_dead();
        now >= dead_after && !self.fully_unlocked()
    }

    fn check_unlock(
        &self,
        index: usize,
        secret: &Secret,
        path: &VertexPath,
        sig: &SigChain,
        now: SimTime,
    ) -> Result<(), SwapError> {
        let hashlock =
            self.spec.hashlocks.get(index).ok_or(SwapError::UnknownHashlockIndex(index))?;
        // Line 28: hashkey still valid?
        let deadline = self.spec.hashkey_deadline(path.len());
        if now >= deadline {
            return Err(SwapError::HashkeyExpired { deadline, now });
        }
        // Line 29: secret correct?
        if !hashlock.matches(secret) {
            return Err(SwapError::WrongSecret);
        }
        // Line 30: path valid? From the counterparty vertex to the leader
        // that generated s_i. With the §4.5 broadcast optimization, a
        // logical arc runs from every vertex to every leader, so a
        // length-one path is accepted even if D lacks the arc.
        let counterparty_vertex = self.spec.digraph.tail(self.arc);
        let leader_vertex = self.spec.leaders[index];
        let endpoint_ok = path.start() == counterparty_vertex && path.end() == leader_vertex;
        let route_ok =
            path.is_valid_in(&self.spec.digraph) || (self.spec.broadcast_arcs && path.len() == 1);
        if !endpoint_ok || !route_ok {
            return Err(SwapError::InvalidPath);
        }
        // Line 31: signatures valid? Keys in path order.
        let keys: Vec<_> = path.vertices().iter().map(|&v| *self.spec.key_of(v)).collect();
        sig.verify(secret, &keys).map_err(SwapError::BadSignature)?;
        Ok(())
    }
}

impl ContractLogic for SwapContract {
    type Call = SwapCall;
    type Event = SwapEvent;
    type Error = SwapError;

    /// Publication escrows the party's asset (the contract "assumes
    /// temporary control", §4.1). The publisher must be the arc's party and
    /// own the asset.
    fn on_publish(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Vec<SwapEvent>, SwapError> {
        if ctx.caller != self.party() {
            return Err(SwapError::NotParty);
        }
        ctx.assets
            .transfer_from(self.asset, Owner::Party(ctx.caller), Owner::Escrow(ctx.this))
            .map_err(|_| SwapError::PublisherNotOwner)?;
        Ok(vec![SwapEvent::Escrowed { asset: self.asset }])
    }

    /// Applies a call under the validate-then-commit rule the journaled
    /// rollback mode relies on (see [`ContractLogic`]): every arm checks
    /// all of its Figure 5 guard lines first and only then touches
    /// `self`/escrow, so an error here guarantees untouched contract state.
    fn apply(
        &mut self,
        call: SwapCall,
        ctx: &mut ExecCtx<'_>,
    ) -> Result<Vec<SwapEvent>, SwapError> {
        // Hosting chains already refuse calls to terminated contracts; this
        // guard keeps the state machine safe when driven directly.
        if self.is_terminated() {
            return Err(SwapError::AlreadySettled);
        }
        match call {
            SwapCall::Unlock { index, secret, path, sig } => {
                // Line 27: only the counterparty may unlock.
                if ctx.caller != self.counterparty() {
                    return Err(SwapError::NotCounterparty);
                }
                self.check_unlock(index, &secret, &path, &sig, ctx.now)?;
                // Idempotent: re-unlocking an open lock keeps the first
                // record (its hashkey already circulates).
                if self.unlocked[index].is_none() {
                    self.unlocked[index] = Some(UnlockRecord { secret, path, sig, at: ctx.now });
                    Ok(vec![SwapEvent::Unlocked { index }])
                } else {
                    Ok(vec![])
                }
            }
            SwapCall::Refund => {
                // Line 36: only the party may refund.
                if ctx.caller != self.party() {
                    return Err(SwapError::NotParty);
                }
                if !self.some_hashlock_dead(ctx.now) {
                    return Err(SwapError::NothingRefundable);
                }
                ctx.assets
                    .transfer_from(self.asset, Owner::Escrow(ctx.this), Owner::Party(ctx.caller))
                    .expect("asset escrowed at publication");
                self.settlement = Settlement::Refunded;
                Ok(vec![SwapEvent::Refunded])
            }
            SwapCall::Claim => {
                // Line 43: only the counterparty may claim.
                if ctx.caller != self.counterparty() {
                    return Err(SwapError::NotCounterparty);
                }
                if !self.fully_unlocked() {
                    return Err(SwapError::NotAllUnlocked {
                        unlocked: self.unlocked_count(),
                        total: self.unlocked.len(),
                    });
                }
                ctx.assets
                    .transfer_from(self.asset, Owner::Escrow(ctx.this), Owner::Party(ctx.caller))
                    .expect("asset escrowed at publication");
                self.settlement = Settlement::Claimed;
                Ok(vec![SwapEvent::Claimed])
            }
        }
    }

    fn storage_bytes(&self) -> usize {
        // Long-lived state of Figure 4: the spec (with its O(|A|) digraph
        // copy), the asset/arc scalars, the unlocked vector, and any stored
        // hashkeys (secret + path + signature chain).
        let records: usize = self
            .unlocked
            .iter()
            .flatten()
            .map(|r| 32 + r.path.to_bytes().len() + r.sig.byte_len() + 8)
            .sum();
        self.spec.storage_bytes() + 8 + 4 + self.unlocked.len() + records
    }

    fn is_terminated(&self) -> bool {
        self.settlement != Settlement::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{keypair_for, leader_secret, spec_for};
    use swap_chain::{AssetDescriptor, AssetRegistry};
    use swap_crypto::MssKeypair;
    use swap_digraph::{generators, VertexId};

    /// Harness around one contract on the alice→bob arc of the 3-cycle,
    /// with alice as the single leader.
    struct Rig {
        contract: SwapContract,
        assets: AssetRegistry,
        alice: VertexId,
        bob: VertexId,
        carol: VertexId,
        asset: AssetId,
    }

    const CONTRACT_ID: swap_chain::ContractId = swap_chain::ContractId::new(0);

    impl Rig {
        fn new() -> Rig {
            let d = generators::herlihy_three_party();
            let alice = d.vertex_by_name("alice").unwrap();
            let bob = d.vertex_by_name("bob").unwrap();
            let carol = d.vertex_by_name("carol").unwrap();
            let spec = spec_for(d, vec![alice]);
            let arc = spec.digraph.arcs_between(alice, bob)[0];
            let mut assets = AssetRegistry::new();
            let asset = assets.mint(AssetDescriptor::new("altcoin", 10), spec.address_of(alice));
            let mut contract = SwapContract::new(spec, arc, asset);
            // Publish (escrow) directly against the registry.
            let mut ctx = ExecCtx {
                caller: contract.party(),
                now: SimTime::from_ticks(10),
                this: CONTRACT_ID,
                assets: &mut assets,
            };
            let events = contract.on_publish(&mut ctx).unwrap();
            assert_eq!(events, vec![SwapEvent::Escrowed { asset }]);
            Rig { contract, assets, alice, bob, carol, asset }
        }

        fn call(
            &mut self,
            caller_vertex: VertexId,
            call: SwapCall,
            now_ticks: u64,
        ) -> Result<Vec<SwapEvent>, SwapError> {
            let caller = self.contract.spec().address_of(caller_vertex);
            let mut ctx = ExecCtx {
                caller,
                now: SimTime::from_ticks(now_ticks),
                this: CONTRACT_ID,
                assets: &mut self.assets,
            };
            self.contract.apply(call, &mut ctx)
        }

        /// Bob's legitimate hashkey: path (bob, carol, alice), chain signed
        /// alice → carol → bob.
        fn bob_hashkey(&self) -> (Secret, VertexPath, SigChain) {
            let secret = leader_secret(self.alice);
            let mut alice_kp = keypair_for(self.alice);
            let mut carol_kp = keypair_for(self.carol);
            let mut bob_kp = keypair_for(self.bob);
            let sig = SigChain::sign_secret(&mut alice_kp, &secret)
                .unwrap()
                .extend(&mut carol_kp)
                .unwrap()
                .extend(&mut bob_kp)
                .unwrap();
            let path = VertexPath::from_vertices(vec![self.bob, self.carol, self.alice]).unwrap();
            (secret, path, sig)
        }
    }

    #[test]
    fn full_unlock_then_claim() {
        let mut rig = Rig::new();
        let (secret, path, sig) = rig.bob_hashkey();
        // Timeout for |p| = 2: start(10) + (3 + 2)·10 = 60.
        let events =
            rig.call(rig.bob, SwapCall::Unlock { index: 0, secret, path, sig }, 59).unwrap();
        assert_eq!(events, vec![SwapEvent::Unlocked { index: 0 }]);
        assert!(rig.contract.fully_unlocked());
        let events = rig.call(rig.bob, SwapCall::Claim, 60).unwrap();
        assert_eq!(events, vec![SwapEvent::Claimed]);
        assert!(rig.contract.is_claimed());
        assert!(rig.contract.is_terminated());
        // Asset now belongs to bob.
        let bob_addr = rig.contract.spec().address_of(rig.bob);
        assert_eq!(rig.assets.owner(rig.asset), Some(Owner::Party(bob_addr)));
    }

    #[test]
    fn unlock_after_deadline_rejected() {
        let mut rig = Rig::new();
        let (secret, path, sig) = rig.bob_hashkey();
        let err =
            rig.call(rig.bob, SwapCall::Unlock { index: 0, secret, path, sig }, 60).unwrap_err();
        assert!(matches!(err, SwapError::HashkeyExpired { .. }));
        assert!(!rig.contract.is_unlocked(0));
    }

    #[test]
    fn longer_paths_get_later_deadlines() {
        // The leader's own degenerate path (|p| = 0) expires at start +
        // diam·Δ = 40; Bob's |p| = 2 path at 60. This asymmetry is the whole
        // point of hashkeys (§4.1).
        let rig = Rig::new();
        assert_eq!(rig.contract.spec().hashkey_deadline(0), SimTime::from_ticks(40));
        assert_eq!(rig.contract.spec().hashkey_deadline(2), SimTime::from_ticks(60));
    }

    #[test]
    fn wrong_secret_rejected() {
        let mut rig = Rig::new();
        let (_, path, sig) = rig.bob_hashkey();
        let wrong = Secret::from_bytes([0u8; 32]);
        let err = rig
            .call(rig.bob, SwapCall::Unlock { index: 0, secret: wrong, path, sig }, 30)
            .unwrap_err();
        assert_eq!(err, SwapError::WrongSecret);
    }

    #[test]
    fn non_counterparty_unlock_rejected() {
        let mut rig = Rig::new();
        let (secret, path, sig) = rig.bob_hashkey();
        let err =
            rig.call(rig.carol, SwapCall::Unlock { index: 0, secret, path, sig }, 30).unwrap_err();
        assert_eq!(err, SwapError::NotCounterparty);
    }

    #[test]
    fn invalid_path_rejected() {
        let mut rig = Rig::new();
        let (secret, _, sig) = rig.bob_hashkey();
        // Path starting at carol, not the counterparty bob.
        let bad = VertexPath::from_vertices(vec![rig.carol, rig.alice]).unwrap();
        let err = rig
            .call(rig.bob, SwapCall::Unlock { index: 0, secret, path: bad, sig }, 30)
            .unwrap_err();
        assert_eq!(err, SwapError::InvalidPath);
    }

    #[test]
    fn forged_signature_rejected() {
        let mut rig = Rig::new();
        let (secret, path, _) = rig.bob_hashkey();
        // Chain signed by the wrong parties (mallory twice + alice).
        let mut mallory = MssKeypair::from_seed_with_height([99u8; 32], 2);
        let mut alice_kp = keypair_for(rig.alice);
        let forged = SigChain::sign_secret(&mut alice_kp, &secret)
            .unwrap()
            .extend(&mut mallory)
            .unwrap()
            .extend(&mut mallory)
            .unwrap();
        let err = rig
            .call(rig.bob, SwapCall::Unlock { index: 0, secret, path, sig: forged }, 30)
            .unwrap_err();
        assert!(matches!(err, SwapError::BadSignature(_)));
    }

    #[test]
    fn signature_path_length_mismatch_rejected() {
        let mut rig = Rig::new();
        let (secret, path, _) = rig.bob_hashkey();
        // A chain with only the leader's link for a 3-vertex path.
        let mut alice_kp = keypair_for(rig.alice);
        let short = SigChain::sign_secret(&mut alice_kp, &secret).unwrap();
        let err = rig
            .call(rig.bob, SwapCall::Unlock { index: 0, secret, path, sig: short }, 30)
            .unwrap_err();
        assert!(matches!(err, SwapError::BadSignature(SigChainError::LengthMismatch { .. })));
    }

    #[test]
    fn unknown_index_rejected() {
        let mut rig = Rig::new();
        let (secret, path, sig) = rig.bob_hashkey();
        let err =
            rig.call(rig.bob, SwapCall::Unlock { index: 5, secret, path, sig }, 30).unwrap_err();
        assert_eq!(err, SwapError::UnknownHashlockIndex(5));
    }

    #[test]
    fn reunlock_is_idempotent() {
        let mut rig = Rig::new();
        let (secret, path, sig) = rig.bob_hashkey();
        rig.call(
            rig.bob,
            SwapCall::Unlock { index: 0, secret, path: path.clone(), sig: sig.clone() },
            30,
        )
        .unwrap();
        let first = rig.contract.unlock_record(0).unwrap().at;
        let events =
            rig.call(rig.bob, SwapCall::Unlock { index: 0, secret, path, sig }, 35).unwrap();
        assert!(events.is_empty());
        assert_eq!(rig.contract.unlock_record(0).unwrap().at, first);
    }

    #[test]
    fn claim_before_all_unlocked_rejected() {
        let mut rig = Rig::new();
        let err = rig.call(rig.bob, SwapCall::Claim, 30).unwrap_err();
        assert_eq!(err, SwapError::NotAllUnlocked { unlocked: 0, total: 1 });
    }

    #[test]
    fn refund_before_deadline_rejected() {
        let mut rig = Rig::new();
        // All hashkeys dead at start + 2·diam·Δ = 10 + 60 = 70.
        let err = rig.call(rig.alice, SwapCall::Refund, 69).unwrap_err();
        assert_eq!(err, SwapError::NothingRefundable);
    }

    #[test]
    fn refund_after_deadline_succeeds() {
        let mut rig = Rig::new();
        let events = rig.call(rig.alice, SwapCall::Refund, 70).unwrap();
        assert_eq!(events, vec![SwapEvent::Refunded]);
        assert!(rig.contract.is_refunded());
        let alice_addr = rig.contract.spec().address_of(rig.alice);
        assert_eq!(rig.assets.owner(rig.asset), Some(Owner::Party(alice_addr)));
    }

    #[test]
    fn refund_blocked_when_fully_unlocked() {
        let mut rig = Rig::new();
        let (secret, path, sig) = rig.bob_hashkey();
        rig.call(rig.bob, SwapCall::Unlock { index: 0, secret, path, sig }, 30).unwrap();
        // Even after the global deadline, a fully unlocked contract cannot
        // be refunded out from under the counterparty.
        let err = rig.call(rig.alice, SwapCall::Refund, 1000).unwrap_err();
        assert_eq!(err, SwapError::NothingRefundable);
        // The counterparty can still claim (no timeout on claim).
        rig.call(rig.bob, SwapCall::Claim, 1000).unwrap();
    }

    #[test]
    fn refund_by_non_party_rejected() {
        let mut rig = Rig::new();
        let err = rig.call(rig.bob, SwapCall::Refund, 70).unwrap_err();
        assert_eq!(err, SwapError::NotParty);
    }

    #[test]
    fn unlock_record_exposes_hashkey_publicly() {
        let mut rig = Rig::new();
        let (secret, path, sig) = rig.bob_hashkey();
        rig.call(
            rig.bob,
            SwapCall::Unlock { index: 0, secret, path: path.clone(), sig: sig.clone() },
            30,
        )
        .unwrap();
        let record = rig.contract.unlock_record(0).unwrap();
        assert_eq!(record.path, path);
        assert_eq!(record.secret, secret);
        assert_eq!(record.sig.len(), 3);
        assert_eq!(record.at, SimTime::from_ticks(30));
        assert_eq!(rig.contract.unlocked_count(), 1);
    }

    #[test]
    fn storage_grows_with_unlock_records() {
        let mut rig = Rig::new();
        let before = rig.contract.storage_bytes();
        let (secret, path, sig) = rig.bob_hashkey();
        rig.call(rig.bob, SwapCall::Unlock { index: 0, secret, path, sig }, 30).unwrap();
        assert!(rig.contract.storage_bytes() > before);
    }

    #[test]
    fn accessors() {
        let rig = Rig::new();
        assert_eq!(rig.contract.asset(), rig.asset);
        assert_eq!(rig.contract.arc().index(), 0);
        assert_eq!(rig.contract.party(), rig.contract.spec().address_of(rig.alice));
        assert_eq!(rig.contract.counterparty(), rig.contract.spec().address_of(rig.bob));
        assert!(!rig.contract.is_terminated());
    }

    #[test]
    fn shared_spec_is_one_allocation_with_unchanged_accounting() {
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let spec = Arc::new(spec_for(d, vec![alice]));
        let a = SwapContract::new(Arc::clone(&spec), ArcId::new(0), AssetId::new(0));
        let b = SwapContract::new(Arc::clone(&spec), ArcId::new(1), AssetId::new(1));
        assert!(Arc::ptr_eq(a.spec_handle(), b.spec_handle()), "contracts share the allocation");
        // Theorem 4.10 accounting is per contract regardless of sharing: a
        // contract built from an owned spec clone meters identically.
        let owned = SwapContract::new((*spec).clone(), ArcId::new(0), AssetId::new(0));
        assert_eq!(a.storage_bytes(), owned.storage_bytes());
        assert!(!Arc::ptr_eq(a.spec_handle(), owned.spec_handle()));
    }

    #[test]
    #[should_panic(expected = "arc out of range")]
    fn out_of_range_arc_panics() {
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let spec = spec_for(d, vec![alice]);
        let _ = SwapContract::new(spec, ArcId::new(9), AssetId::new(0));
    }

    #[test]
    fn error_display() {
        assert!(SwapError::WrongSecret.to_string().contains("secret"));
        assert!(SwapError::NotAllUnlocked { unlocked: 1, total: 2 }.to_string().contains("1/2"));
    }
}
