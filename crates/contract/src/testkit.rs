//! Test fixtures shared by this crate's tests and downstream crates'
//! tests/benches. Not part of the stable public API.
#![doc(hidden)]
#![allow(missing_docs)]

use swap_crypto::{Address, MssKeypair, MssPublicKey, Secret};
use swap_digraph::{Digraph, VertexId};
use swap_sim::{Delta, SimTime};

use crate::spec::SwapSpec;

/// Builds a minimal valid spec over the given digraph with the given
/// leaders; key material is derived from tiny deterministic seeds. Leader
/// `l`'s secret is `[l.raw() as u8 + 100; 32]` — see [`leader_secret`].
pub fn spec_for(digraph: Digraph, leaders: Vec<VertexId>) -> SwapSpec {
    let n = digraph.vertex_count();
    let keys: Vec<MssPublicKey> =
        (0..n).map(|i| keypair_for(VertexId::new(i as u32)).public_key()).collect();
    let addresses: Vec<Address> = keys.iter().map(|k| k.address()).collect();
    let hashlocks = leaders.iter().map(|&l| leader_secret(l).hashlock()).collect();
    let diam = digraph.diameter() as u64;
    SwapSpec {
        digraph,
        leaders,
        hashlocks,
        addresses,
        keys,
        start: SimTime::from_ticks(10),
        delta: Delta::from_ticks(10),
        diam,
        broadcast_arcs: false,
    }
}

/// The deterministic keypair backing vertex `v` in [`spec_for`] specs.
pub fn keypair_for(v: VertexId) -> MssKeypair {
    MssKeypair::from_seed_with_height([v.raw() as u8 + 1; 32], 2)
}

/// The deterministic secret leader `l` holds in [`spec_for`] specs.
pub fn leader_secret(l: VertexId) -> Secret {
    Secret::from_bytes([l.raw() as u8 + 100; 32])
}
