//! Property tests for the contracts: no sequence of invalid inputs may
//! ever move an escrowed asset.

use proptest::prelude::*;
use swap_chain::{AssetDescriptor, AssetRegistry, ContractId, ContractLogic, ExecCtx, Owner};
use swap_contract::testkit::{keypair_for, leader_secret, spec_for};
use swap_contract::{HtlcCall, HtlcContract, SwapCall, SwapContract};
use swap_crypto::{Address, Digest32, Secret, SigChain};
use swap_digraph::{generators, VertexPath};
use swap_sim::SimTime;

fn addr(b: u8) -> Address {
    Address::from_digest(Digest32([b; 32]))
}

proptest! {
    /// HTLC: arbitrary wrong secrets never trigger, regardless of timing,
    /// and the escrow stays intact.
    #[test]
    fn htlc_rejects_wrong_secrets(
        real in any::<[u8; 32]>(),
        guess in any::<[u8; 32]>(),
        when in 0u64..200,
    ) {
        prop_assume!(real != guess);
        let mut assets = AssetRegistry::new();
        let asset = assets.mint(AssetDescriptor::unique("x"), addr(1));
        let secret = Secret::from_bytes(real);
        let mut htlc = HtlcContract::new(
            asset, addr(1), addr(2), secret.hashlock(), SimTime::from_ticks(100),
        );
        let this = ContractId::new(0);
        let mut ctx = ExecCtx { caller: addr(1), now: SimTime::ZERO, this, assets: &mut assets };
        htlc.on_publish(&mut ctx).expect("escrow");
        let mut ctx = ExecCtx {
            caller: addr(2),
            now: SimTime::from_ticks(when),
            this,
            assets: &mut assets,
        };
        let result = htlc.apply(HtlcCall::Reveal { secret: Secret::from_bytes(guess) }, &mut ctx);
        prop_assert!(result.is_err());
        prop_assert!(!htlc.is_triggered());
        prop_assert_eq!(assets.owner(asset), Some(Owner::Escrow(this)));
    }

    /// HTLC: reveal succeeds iff before the timeout; refund succeeds iff
    /// at/after — and the two are mutually exclusive forever after.
    #[test]
    fn htlc_timeout_dichotomy(timeout in 1u64..100, when in 0u64..200) {
        let mut assets = AssetRegistry::new();
        let asset = assets.mint(AssetDescriptor::unique("x"), addr(1));
        let secret = Secret::from_bytes([9u8; 32]);
        let mut htlc = HtlcContract::new(
            asset, addr(1), addr(2), secret.hashlock(), SimTime::from_ticks(timeout),
        );
        let this = ContractId::new(0);
        let mut ctx = ExecCtx { caller: addr(1), now: SimTime::ZERO, this, assets: &mut assets };
        htlc.on_publish(&mut ctx).expect("escrow");
        let now = SimTime::from_ticks(when);
        let mut ctx = ExecCtx { caller: addr(2), now, this, assets: &mut assets };
        let revealed = htlc.apply(HtlcCall::Reveal { secret }, &mut ctx).is_ok();
        prop_assert_eq!(revealed, when < timeout);
        if !revealed {
            let mut ctx = ExecCtx { caller: addr(1), now, this, assets: &mut assets };
            let refunded = htlc.apply(HtlcCall::Refund, &mut ctx).is_ok();
            prop_assert_eq!(refunded, when >= timeout);
        } else {
            // Triggered contracts never refund.
            let mut ctx = ExecCtx {
                caller: addr(1),
                now: SimTime::from_ticks(when + 1000),
                this,
                assets: &mut assets,
            };
            prop_assert!(htlc.apply(HtlcCall::Refund, &mut ctx).is_err());
        }
    }

    /// Swap contract: random (index, secret, path-shape) garbage never
    /// unlocks anything.
    #[test]
    fn swap_rejects_garbage_unlocks(
        index in 0usize..4,
        guess in any::<[u8; 32]>(),
        path_pick in 0usize..3,
        when in 0u64..100,
    ) {
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let bob = d.vertex_by_name("bob").unwrap();
        let carol = d.vertex_by_name("carol").unwrap();
        let spec = spec_for(d, vec![alice]);
        let arc = spec.digraph.arcs_between(alice, bob)[0];
        let mut assets = AssetRegistry::new();
        let asset = assets.mint(AssetDescriptor::unique("x"), spec.address_of(alice));
        let mut contract = SwapContract::new(spec.clone(), arc, asset);
        let this = ContractId::new(0);
        let mut ctx = ExecCtx {
            caller: contract.party(),
            now: SimTime::from_ticks(10),
            this,
            assets: &mut assets,
        };
        contract.on_publish(&mut ctx).expect("escrow");

        // The guess differs from the leader's real secret by assumption.
        prop_assume!(Secret::from_bytes(guess) != leader_secret(alice));
        let path = match path_pick {
            0 => VertexPath::single(bob),
            1 => VertexPath::from_vertices(vec![bob, carol]).unwrap(),
            _ => VertexPath::from_vertices(vec![bob, carol, alice]).unwrap(),
        };
        // A syntactically fine chain signed by the wrong story.
        let mut mallory = keypair_for(carol);
        let sig = SigChain::sign_secret(&mut mallory, &Secret::from_bytes(guess)).unwrap();
        let mut ctx = ExecCtx {
            caller: contract.counterparty(),
            now: SimTime::from_ticks(when),
            this,
            assets: &mut assets,
        };
        let result = contract.apply(
            SwapCall::Unlock { index, secret: Secret::from_bytes(guess), path, sig },
            &mut ctx,
        );
        prop_assert!(result.is_err());
        prop_assert!(!contract.is_unlocked(0));
        prop_assert_eq!(assets.owner(asset), Some(Owner::Escrow(this)));
    }

    /// Swap contract: claims before full unlocking and refunds before the
    /// global deadline always fail, at any instant.
    #[test]
    fn swap_claim_refund_guards(when in 0u64..69) {
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let bob = d.vertex_by_name("bob").unwrap();
        let spec = spec_for(d, vec![alice]);
        let arc = spec.digraph.arcs_between(alice, bob)[0];
        let mut assets = AssetRegistry::new();
        let asset = assets.mint(AssetDescriptor::unique("x"), spec.address_of(alice));
        let mut contract = SwapContract::new(spec.clone(), arc, asset);
        let this = ContractId::new(0);
        let mut ctx = ExecCtx {
            caller: contract.party(),
            now: SimTime::from_ticks(10),
            this,
            assets: &mut assets,
        };
        contract.on_publish(&mut ctx).expect("escrow");
        let now = SimTime::from_ticks(when);
        let mut ctx = ExecCtx { caller: contract.counterparty(), now, this, assets: &mut assets };
        prop_assert!(contract.apply(SwapCall::Claim, &mut ctx).is_err());
        // all_hashkeys_dead = start(10) + 2·3·10 = 70 > when.
        let mut ctx = ExecCtx { caller: contract.party(), now, this, assets: &mut assets };
        prop_assert!(contract.apply(SwapCall::Refund, &mut ctx).is_err());
        prop_assert_eq!(assets.owner(asset), Some(Owner::Escrow(this)));
    }
}
