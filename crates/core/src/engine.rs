//! The event-driven protocol engine.
//!
//! Protocol activity is a stream of scheduled events popped from
//! [`swap_sim::Simulation`] in deterministic `(time, seq)` order:
//!
//! * `Ev::Boundary` — a round boundary opens: stale snapshots are
//!   refreshed (full-rebuild mode) or already fresh (delta mode), newly
//!   confirmed bulletin entries are promoted, and one wake-up per party is
//!   scheduled.
//! * `Ev::Wake` — one party observes its [`View`] and emits actions; each
//!   action is scheduled to execute at the instant the [`TimingModel`]
//!   assigns to its target chain.
//! * `Ev::Exec` — an action executes as a transaction; successful
//!   mutations schedule a visibility event for the touched arc.
//! * `Ev::Visible` — a chain change reaches observers: the arc's cached
//!   snapshot is re-built *only if* the chain's state-version moved — the
//!   snapshot-delta hot path that replaces the classic per-round O(|A|)
//!   full rebuild.
//! * `Ev::Close` — the round's bookkeeping: scan arcs whose chain
//!   version moved for new triggers, check settlement, and either finish or
//!   open the next round.
//!
//! The engine is generic over a [`TimingModel`]: [`crate::timing::Lockstep`]
//! reproduces the paper's Δ-round loop byte-for-byte
//! (`tests/engine_equivalence.rs` pins this against recorded seed-runner
//! reports), while [`crate::timing::PerChainLatency`] gives each chain its
//! own publish/confirm latency under a dominating Δ.
//!
//! It is also generic over the *protocol*: everything protocol-specific —
//! party strategies, the contract flavor published on
//! [`swap_contract::AnyContract`] chains, snapshot
//! construction, and call translation — lives behind
//! [`crate::protocol::SwapProtocol`]. The same event loop therefore runs
//! the general §4.5 hashkey protocol and the §4.6 single-leader HTLC
//! protocol, and the [`crate::exchange::Exchange`] picks per cleared cycle
//! via [`crate::protocol::ProtocolKind::select`].

use std::sync::Arc;

use swap_chain::{ChainId, ContractId, Owner};
use swap_contract::{AnyContract, SwapSpec};
use swap_digraph::{ArcId, VertexId};
use swap_sim::{SimTime, Simulation, TraceLog};

use crate::instance::SwapInstance;
use crate::outcome::Outcome;
use crate::party::{Action, ArcSnapshot, Behavior, BulletinEntry, View};
use crate::protocol::{build_protocol, SwapProtocol};
use crate::runner::{RunConfig, RunMetrics, RunReport, SnapshotMode};
use crate::setup::SwapSetup;
use crate::timing::TimingModel;

/// One scheduled unit of protocol activity.
#[derive(Debug, Clone)]
enum Ev {
    /// A round boundary opens.
    Boundary(u64),
    /// One party wakes at a round boundary.
    Wake { round: u64, vertex: VertexId },
    /// An action executes as a transaction.
    Exec { round: u64, vertex: VertexId, action: Action },
    /// A chain change becomes visible: refresh the arc's snapshot.
    Visible { arc: ArcId },
    /// The round's bookkeeping runs.
    Close(u64),
}

/// The trace/metering facts of an on-chain action, copied out before the
/// owned [`Action`] moves into the protocol's call translation.
#[derive(Debug, Clone, Copy)]
enum OnChainMeta {
    Unlock { index: usize, path_len: usize },
    Claim,
    Refund,
    Reveal,
}

/// Executes one swap instance as a discrete-event simulation under a
/// pluggable [`TimingModel`].
#[derive(Debug)]
pub struct Engine<T: TimingModel> {
    setup: SwapSetup,
    config: RunConfig,
    timing: T,
    sim: Simulation<Ev>,
    /// The spec, shared with the protocol (and, for the hashkey protocol,
    /// with every honestly published contract).
    shared_spec: Arc<SwapSpec>,
    /// The protocol strategy: party machines, contract flavor, snapshots.
    protocol: Box<dyn SwapProtocol>,
    conforming: Vec<bool>,
    contract_of_arc: Vec<Option<ContractId>>,
    triggered_at: Vec<Option<SimTime>>,
    /// All bulletin entries, tagged with the round they were announced in.
    /// Entries are `Arc`-shared with `visible_bulletin`: promotion is a
    /// refcount bump, not a copy of the entry's multi-KB base signature.
    bulletin: Vec<(u64, Arc<BulletinEntry>)>,
    /// Entries already promoted to visibility (announced before the current
    /// boundary), plus the promotion cursor into `bulletin`.
    visible_bulletin: Vec<Arc<BulletinEntry>>,
    bulletin_cursor: usize,
    /// Per-arc contract snapshots as observers currently see them.
    visible: Vec<Option<ArcSnapshot>>,
    /// Chain state-version each cached snapshot reflects.
    visible_version: Vec<Option<u64>>,
    /// Chain state-version as of each arc's last bookkeeping scan.
    scan_version: Vec<Option<u64>>,
    settled_arcs: Vec<bool>,
    settled_count: usize,
    pending_wakes: usize,
    finished: bool,
    t0: SimTime,
    max_rounds: u64,
    trace: TraceLog,
    metrics: RunMetrics,
}

impl<T: TimingModel> Engine<T> {
    /// Builds an engine; parties take their keypairs and secrets from the
    /// setup and their behavior from the config.
    ///
    /// # Panics
    ///
    /// Panics if Δ is smaller than 2 ticks (timing models need at least one
    /// tick each for execution and confirmation) or if the spec starts less
    /// than Δ after the epoch.
    pub fn new(setup: SwapSetup, config: RunConfig, timing: T) -> Self {
        Engine::from_instance(SwapInstance::new(0, setup, config), timing)
    }

    /// Builds an engine from a provisioned [`SwapInstance`]. The instance's
    /// provisioning state (setup + config) becomes the engine's; everything
    /// else — event queue, party machines, snapshot caches — is execution
    /// state created here.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Engine::new`].
    pub fn from_instance(instance: SwapInstance, timing: T) -> Self {
        let SwapInstance { id: _, mut setup, config, protocol } = instance;
        setup.chains.set_rollback_mode(config.rollback_mode);
        let spec = &setup.spec;
        assert!(spec.delta.ticks() >= 2, "delta must be at least 2 ticks");
        assert!(
            spec.start >= SimTime::ZERO + spec.delta.times(1),
            "spec must start at least one delta after the epoch"
        );
        let conforming: Vec<bool> = spec
            .digraph
            .vertices()
            .map(|v| matches!(config.behaviors.get(&v), None | Some(Behavior::Conforming)))
            .collect();
        let arc_count = spec.digraph.arc_count();
        let t0 = spec.start - spec.delta.times(1);
        let max_rounds = config.max_rounds.unwrap_or(2 * spec.diam + 6);
        let shared_spec = Arc::new(spec.clone());
        let protocol = build_protocol(protocol, &setup, &config, Arc::clone(&shared_spec));
        let mut sim = Simulation::new();
        sim.schedule(t0, Ev::Boundary(0));
        Engine {
            setup,
            config,
            timing,
            sim,
            shared_spec,
            protocol,
            conforming,
            contract_of_arc: vec![None; arc_count],
            triggered_at: vec![None; arc_count],
            bulletin: Vec::new(),
            visible_bulletin: Vec::new(),
            bulletin_cursor: 0,
            visible: vec![None; arc_count],
            visible_version: vec![None; arc_count],
            scan_version: vec![None; arc_count],
            settled_arcs: vec![false; arc_count],
            settled_count: 0,
            pending_wakes: 0,
            finished: false,
            t0,
            max_rounds,
            trace: TraceLog::new(),
            metrics: RunMetrics::default(),
        }
    }

    /// Runs to settlement (or the round limit) and reports.
    pub fn run(self) -> RunReport {
        self.run_full().0
    }

    /// Runs to settlement (or the round limit) and returns both the report
    /// and the post-run setup — the chains carry the full block histories,
    /// so an orchestrator can absorb them into a merged ledger view (see
    /// [`swap_chain::ChainSet::absorb`]).
    pub fn run_full(mut self) -> (RunReport, SwapSetup) {
        while !self.finished {
            let ev = match self.sim.poll() {
                Ok(ev) => ev,
                Err(_) => break,
            };
            let now = ev.time;
            match ev.payload {
                Ev::Boundary(round) => self.on_boundary(round),
                Ev::Wake { round, vertex } => self.on_wake(now, round, vertex),
                Ev::Exec { round, vertex, action } => self.on_exec(now, round, vertex, action),
                Ev::Visible { arc } => self.refresh_arc(arc.index(), false),
                Ev::Close(round) => self.on_close(round),
            }
        }
        self.finish()
    }

    /// A round boundary: refresh what observers see, then wake everyone.
    fn on_boundary(&mut self, round: u64) {
        self.metrics.rounds = round;
        if self.config.snapshot_mode == SnapshotMode::FullRebuild {
            for arc in 0..self.visible.len() {
                self.refresh_arc(arc, true);
            }
        }
        // Promote bulletin entries announced before this boundary. Rounds
        // are tagged in nondecreasing order, so a cursor suffices.
        while self.bulletin_cursor < self.bulletin.len()
            && self.bulletin[self.bulletin_cursor].0 < round
        {
            self.visible_bulletin.push(Arc::clone(&self.bulletin[self.bulletin_cursor].1));
            self.bulletin_cursor += 1;
        }
        self.pending_wakes = self.shared_spec.digraph.vertex_count();
        let now = self.sim.now();
        for vertex in self.shared_spec.digraph.vertices() {
            self.sim.schedule(now, Ev::Wake { round, vertex });
        }
    }

    /// One party observes and acts; its actions are scheduled to execute at
    /// model-assigned instants. The last wake of the boundary schedules the
    /// round's close.
    fn on_wake(&mut self, now: SimTime, round: u64, vertex: VertexId) {
        let view = View {
            spec: &self.shared_spec,
            round,
            now,
            contracts: &self.visible,
            bulletin: &self.visible_bulletin,
        };
        let actions = self.protocol.step(vertex, &view);
        for action in actions {
            let chain = self.chain_of_action(&action);
            let exec_at = self.timing.exec_time(now, chain);
            self.sim.schedule(exec_at, Ev::Exec { round, vertex, action });
        }
        self.pending_wakes -= 1;
        if self.pending_wakes == 0 {
            let close_at = self.timing.close_time(now);
            self.sim.schedule(close_at, Ev::Close(round));
        }
    }

    /// The chain an action's transaction lands on (`None`: off-chain).
    fn chain_of_action(&self, action: &Action) -> Option<ChainId> {
        match action {
            Action::Publish { arc }
            | Action::Unlock { arc, .. }
            | Action::Claim { arc }
            | Action::Refund { arc }
            | Action::Reveal { arc, .. }
            | Action::DirectTransfer { arc } => Some(self.setup.chain_of_arc[arc.index()]),
            Action::Announce { .. } => None,
        }
    }

    fn chain_mut(&mut self, arc: ArcId) -> &mut swap_chain::Blockchain<AnyContract> {
        let chain_id = self.setup.chain_of_arc[arc.index()];
        self.setup.chains.get_mut(chain_id).expect("chain exists")
    }

    /// Schedules the visibility event for a successful mutation of `arc`'s
    /// chain at `exec`. Full-rebuild mode skips it: boundaries rebuild
    /// everything anyway.
    fn schedule_visibility(&mut self, exec: SimTime, arc: ArcId) {
        if self.config.snapshot_mode == SnapshotMode::FullRebuild {
            return;
        }
        let chain = self.setup.chain_of_arc[arc.index()];
        let at = self.timing.visible_time(exec, chain);
        self.sim.schedule(at, Ev::Visible { arc });
    }

    /// Re-builds one arc's cached snapshot if (or unless `force`d, only if)
    /// the hosting chain's state-version moved since the cache was built.
    fn refresh_arc(&mut self, arc: usize, force: bool) {
        let chain_id = self.setup.chain_of_arc[arc];
        let chain = self.setup.chains.get(chain_id).expect("chain exists");
        let version = chain.version();
        if !force && self.visible_version[arc] == Some(version) {
            return;
        }
        self.visible_version[arc] = Some(version);
        let snapshot = self.contract_of_arc[arc].and_then(|id| {
            let contract = chain.contract(id)?;
            Some(self.protocol.snapshot(
                contract,
                ArcId::new(arc as u32),
                self.setup.asset_of_arc[arc],
            ))
        });
        self.visible[arc] = snapshot;
    }

    /// An action executes as a transaction at `exec_time`.
    fn on_exec(&mut self, exec_time: SimTime, round: u64, actor: VertexId, action: Action) {
        let actor_addr = self.shared_spec.address_of(actor);
        let actor_name = self.shared_spec.digraph.name(actor).to_string();
        match action {
            Action::Publish { arc } => {
                if self.contract_of_arc[arc.index()].is_some() {
                    self.metrics.rejected_calls += 1;
                    return;
                }
                let asset = self.setup.asset_of_arc[arc.index()];
                // The protocol decides the contract flavor and what it
                // embeds (for the hashkey protocol, "its own" spec copy —
                // that *is* the O(|A|) per-contract storage of
                // Theorem 4.10; a corrupt publisher substitutes hashlocks
                // nobody can open).
                let corrupt = self.config.corrupt_arcs.contains(&arc);
                let contract = self.protocol.contract_for(arc, asset, corrupt);
                let chain = self.chain_mut(arc);
                match chain.publish_contract(contract, actor_addr, exec_time) {
                    Ok(id) => {
                        self.contract_of_arc[arc.index()] = Some(id);
                        self.metrics.contracts_published += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "contract.published",
                            format!("arc {arc} round {round}"),
                        );
                        self.schedule_visibility(exec_time, arc);
                    }
                    Err(e) => {
                        self.metrics.rejected_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "tx.rejected",
                            format!("publish {arc}: {e}"),
                        );
                    }
                }
            }
            action @ (Action::Unlock { .. }
            | Action::Claim { .. }
            | Action::Refund { .. }
            | Action::Reveal { .. }) => {
                // Copy out everything the traces need, then hand the action
                // to the protocol *by value* so the multi-kilobyte unlock
                // payloads (path + signature chain) move instead of clone.
                let (arc, meta) = match &action {
                    Action::Unlock { arc, index, path, .. } => {
                        (*arc, OnChainMeta::Unlock { index: *index, path_len: path.len() })
                    }
                    Action::Claim { arc } => (*arc, OnChainMeta::Claim),
                    Action::Refund { arc } => (*arc, OnChainMeta::Refund),
                    Action::Reveal { arc, .. } => (*arc, OnChainMeta::Reveal),
                    _ => unreachable!("outer match narrows the variants"),
                };
                let Some(id) = self.contract_of_arc[arc.index()] else {
                    self.metrics.rejected_calls += 1;
                    return;
                };
                let (call, wire) =
                    self.protocol.call_of(action).expect("unlock/claim/refund/reveal are on-chain");
                let chain = self.chain_mut(arc);
                match chain.call_contract(id, actor_addr, call, exec_time, wire) {
                    Ok(_) => {
                        let (kind, detail) = match meta {
                            OnChainMeta::Unlock { index, path_len } => {
                                self.metrics.unlock_calls += 1;
                                self.metrics.unlock_bytes += wire as u64;
                                (
                                    "hashlock.unlocked",
                                    format!("arc {arc} index {index} path_len {path_len}"),
                                )
                            }
                            OnChainMeta::Claim => {
                                self.metrics.claim_calls += 1;
                                ("arc.claimed", format!("arc {arc}"))
                            }
                            OnChainMeta::Refund => {
                                self.metrics.refund_calls += 1;
                                ("arc.refunded", format!("arc {arc}"))
                            }
                            OnChainMeta::Reveal => {
                                // The §4.6 analogue of an unlock: metered in
                                // the same counters so wire-size comparisons
                                // across protocols read off one field.
                                self.metrics.unlock_calls += 1;
                                self.metrics.unlock_bytes += wire as u64;
                                ("secret.revealed", format!("arc {arc}"))
                            }
                        };
                        self.trace.record(exec_time, actor_name, kind, detail);
                        self.schedule_visibility(exec_time, arc);
                    }
                    Err(e) => {
                        self.metrics.rejected_calls += 1;
                        let verb = match meta {
                            OnChainMeta::Unlock { index, .. } => format!("unlock {arc}[{index}]"),
                            OnChainMeta::Claim => format!("claim {arc}"),
                            OnChainMeta::Refund => format!("refund {arc}"),
                            OnChainMeta::Reveal => format!("reveal {arc}"),
                        };
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "tx.rejected",
                            format!("{verb}: {e}"),
                        );
                    }
                }
            }
            Action::DirectTransfer { arc } => {
                let asset = self.setup.asset_of_arc[arc.index()];
                let tail = self.shared_spec.digraph.tail(arc);
                let tail_addr = self.shared_spec.address_of(tail);
                let chain = self.chain_mut(arc);
                match chain.transfer_asset(asset, actor_addr, tail_addr, exec_time) {
                    Ok(()) => {
                        self.metrics.direct_transfers += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "asset.direct_transfer",
                            format!("arc {arc}"),
                        );
                        if self.triggered_at[arc.index()].is_none() {
                            self.triggered_at[arc.index()] = Some(exec_time);
                        }
                    }
                    Err(e) => {
                        self.metrics.rejected_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "tx.rejected",
                            format!("direct {arc}: {e}"),
                        );
                    }
                }
            }
            Action::Announce { leader_index, secret, base_sig } => {
                self.metrics.announce_bytes += 32 + base_sig.byte_len() as u64;
                self.bulletin
                    .push((round, Arc::new(BulletinEntry { leader_index, secret, base_sig })));
                self.trace.record(
                    exec_time,
                    actor_name,
                    "secret.announced",
                    format!("leader index {leader_index}"),
                );
            }
        }
    }

    /// The round's bookkeeping: scan arcs whose chain state moved for new
    /// triggers and settlement, then finish or open the next round.
    fn on_close(&mut self, round: u64) {
        for arc in 0..self.triggered_at.len() {
            let chain_id = self.setup.chain_of_arc[arc];
            let chain = self.setup.chains.get(chain_id).expect("chain exists");
            let version = chain.version();
            if self.scan_version[arc] == Some(version) {
                continue;
            }
            self.scan_version[arc] = Some(version);
            let Some(id) = self.contract_of_arc[arc] else { continue };
            let Some(contract) = chain.contract(id) else { continue };
            if self.triggered_at[arc].is_none() && contract.transfer_triggered() {
                // The arc triggered when its chain last moved — in lockstep
                // that is the round's shared execution instant.
                let at = chain.last_mutation_at();
                self.triggered_at[arc] = Some(at);
                self.trace.record(at, "sim", "arc.triggered", format!("arc a{arc}"));
            }
            if !self.settled_arcs[arc] && contract.settled() {
                self.settled_arcs[arc] = true;
                self.settled_count += 1;
            }
        }
        if self.settled_count == self.settled_arcs.len() || round >= self.max_rounds {
            self.finished = true;
        } else {
            let next = self.t0 + self.shared_spec.delta.times(round + 1);
            self.sim.schedule(next, Ev::Boundary(round + 1));
        }
    }

    fn finish(self) -> (RunReport, SwapSetup) {
        let spec = &*self.shared_spec;
        let n = spec.digraph.vertex_count();
        // An arc triggered iff its transfer irrevocably happened: the asset
        // reached the counterparty, or the contract says so in its flavor's
        // own terms (an HTLC triggered; a swap contract fully unlocked —
        // only the counterparty can ever take the asset then).
        let arc_triggered: Vec<bool> = spec
            .digraph
            .arcs()
            .map(|arc| {
                let chain = self
                    .setup
                    .chains
                    .get(self.setup.chain_of_arc[arc.id.index()])
                    .expect("chain exists");
                let asset = self.setup.asset_of_arc[arc.id.index()];
                let tail_addr = spec.address_of(arc.tail);
                if chain.assets().owner(asset) == Some(Owner::Party(tail_addr)) {
                    return true;
                }
                self.contract_of_arc[arc.id.index()]
                    .and_then(|id| chain.contract(id))
                    .is_some_and(AnyContract::transfer_triggered)
            })
            .collect();
        let outcomes: Vec<Outcome> = (0..n)
            .map(|i| {
                let v = VertexId::new(i as u32);
                let entering = {
                    let total = spec.digraph.in_degree(v);
                    let triggered =
                        spec.digraph.in_arcs(v).filter(|a| arc_triggered[a.id.index()]).count();
                    (triggered, total)
                };
                let leaving = {
                    let total = spec.digraph.out_degree(v);
                    let triggered =
                        spec.digraph.out_arcs(v).filter(|a| arc_triggered[a.id.index()]).count();
                    (triggered, total)
                };
                Outcome::classify(entering, leaving)
            })
            .collect();
        let completion = if arc_triggered.iter().all(|&t| t) {
            self.triggered_at.iter().filter_map(|&t| t).max()
        } else {
            None
        };
        // Settlement is monotone and every round's close scan updates the
        // counter before the engine can finish, so it is current here.
        let settled = self.settled_count == self.settled_arcs.len();
        let abandoned = spec.digraph.vertices().filter(|&v| self.protocol.abandoned(v)).collect();
        let report = RunReport {
            outcomes,
            arc_triggered,
            triggered_at: self.triggered_at,
            completion,
            settled,
            conforming: self.conforming,
            abandoned,
            trace: self.trace,
            metrics: self.metrics,
            storage: self.setup.chains.storage_report(),
        };
        (report, self.setup)
    }
}

/// Deviation configurations still used by [`Engine`] tests live in
/// `crate::runner`; engine-specific behavior is covered by
/// `tests/engine_equivalence.rs` and `tests/determinism.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{SetupConfig, SwapSetup};
    use crate::timing::{Lockstep, PerChainLatency};
    use swap_digraph::generators;
    use swap_sim::SimRng;

    fn setup(seed: u64) -> SwapSetup {
        let config = SetupConfig { key_height: 4, ..SetupConfig::default() };
        SwapSetup::generate(
            generators::two_leader_triangle(),
            &config,
            &mut SimRng::from_seed(seed),
        )
        .unwrap()
    }

    #[test]
    fn delta_and_full_rebuild_snapshots_agree() {
        let run = |mode: SnapshotMode| {
            let config = RunConfig { snapshot_mode: mode, ..RunConfig::default() };
            let s = setup(44);
            let delta = s.spec.delta;
            Engine::new(s, config, Lockstep::new(delta)).run()
        };
        let delta_report = run(SnapshotMode::Delta);
        let rebuild_report = run(SnapshotMode::FullRebuild);
        assert_eq!(format!("{delta_report:?}"), format!("{rebuild_report:?}"));
        assert!(delta_report.all_deal());
    }

    #[test]
    fn per_chain_latency_preserves_outcomes_within_delta_bounds() {
        let s = setup(45);
        let rng = SimRng::from_seed(45);
        let timing = PerChainLatency::sample(&s, &rng);
        let start = s.spec.start;
        let bound = s.spec.delta.times(2 * s.spec.diam);
        let report = Engine::new(s, RunConfig::default(), timing).run();
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        assert!(report.settled);
        let completion = report.completion.expect("all triggered");
        assert!(completion <= start + bound, "Theorem 4.7 bound must survive chain latencies");
    }

    #[test]
    fn per_chain_latency_trigger_instants_reflect_chain_delays() {
        let s = setup(46);
        let rng = SimRng::from_seed(46);
        let timing = PerChainLatency::sample(&s, &rng);
        let delta = s.spec.delta;
        // Round 0 opens one Δ before the spec start; measure grid offsets
        // from there so the check is alignment-independent.
        let t0 = s.spec.start - delta.duration();
        let lockstep = {
            let s = setup(46);
            Engine::new(s, RunConfig::default(), Lockstep::new(delta)).run()
        };
        let latency = Engine::new(s, RunConfig::default(), timing).run();
        // Same protocol decisions, different transaction instants: at least
        // one arc triggers at an off-mid-round instant.
        assert_eq!(lockstep.metrics.unlock_calls, latency.metrics.unlock_calls);
        let off_grid = latency
            .triggered_at
            .iter()
            .flatten()
            .any(|t| (*t - t0).ticks() % delta.ticks() != delta.ticks() / 2);
        assert!(off_grid, "per-chain latencies should move execution off the mid-round grid");
    }
}
