//! The exchange pipeline: continuous clearing feeding parallel multi-swap
//! execution on sharded chain sets.
//!
//! The paper assumes "the swap digraph is constructed by a (possibly
//! centralized) market-clearing service" (§4.2) and then analyzes *one*
//! swap. [`Exchange`] is the layer above: it runs the whole market loop —
//!
//! 1. **Offers in.** Parties [`submit`](Exchange::submit) (or
//!    [`cancel`](Exchange::cancel)) offers carrying their key material and
//!    trade terms; the exchange forwards them to the untrusted
//!    [`ClearingService`], which owns the offer lifecycle.
//! 2. **Epoch clearing.** [`run_epoch`](Exchange::run_epoch) consumes the
//!    open book into disjoint trade cycles, one [`ClearedSwap`] each.
//! 3. **Party-side verification.** Before anything is escrowed, every
//!    party's slot is re-checked against its original offer
//!    ([`swap_market::verify_cleared_swap`]) — the service is untrusted.
//! 4. **Provisioning + protocol choice.** Each cleared swap becomes a
//!    [`SwapInstance`]: chains and assets created for its spec, key
//!    material in vertex order — and, under [`ProtocolPolicy::Auto`], the
//!    cheapest feasible protocol per cycle: §4.6 single-leader HTLCs when
//!    the timeout assignment exists (every simple trade cycle qualifies),
//!    the general §4.5 hashkey protocol otherwise. The choice is recorded
//!    per swap in [`SwapSummary::protocol`].
//! 5. **Sharded execution.** Cleared cycles are party- and chain-disjoint,
//!    so in-flight swaps run *concurrently*: instances are round-robin
//!    sharded across `threads` scoped workers, each worker exclusively
//!    owning its instances' chain sets.
//! 6. **Deterministic merge.** Results are merged in swap-id order — the
//!    aggregate [`ExchangeReport`] is byte-identical for 1, 2, or N worker
//!    threads — swaps settle or refund back into the offer lifecycle, and
//!    every shard's chains are absorbed into one global ledger
//!    ([`ChainSet::absorb`]) whose merged storage the report carries.
//!
//! Within an epoch every swap runs on its own simulated timeline starting
//! at the epoch's `now`; the epoch's simulated *wall* duration is the
//! slowest in-flight swap's duration (they run concurrently), and the next
//! epoch's book opens at `now + wall`.

use std::collections::BTreeMap;
use std::fmt;
use std::thread;

use swap_chain::ChainSet;
use swap_contract::AnyContract;
use swap_crypto::{MssKeypair, Secret};
use swap_digraph::VertexId;
use swap_market::{
    verify_cleared_swap, AssetKind, CancelError, ClearError, ClearedSwap, ClearingService,
    LeaderStrategy, Offer, OfferId, SwapId, VerifyError,
};
use swap_sim::{Delta, SimDuration, SimRng, SimTime};

use crate::instance::SwapInstance;
use crate::protocol::ProtocolKind;
use crate::runner::{RunConfig, RunMetrics, RunReport};
use crate::setup::SwapSetup;
use crate::timing::Lockstep;

/// Configuration for an [`Exchange`].
#[derive(Debug, Clone)]
pub struct ExchangeConfig {
    /// The synchrony parameter Δ every cleared swap runs under.
    pub delta: Delta,
    /// Worker threads for in-flight swap execution (clamped to ≥ 1).
    /// Results are invariant under this knob; only wall-clock changes.
    pub threads: usize,
    /// Per-swap run configuration template (behaviors are keyed by vertex
    /// id within each swap, so they apply to every cleared swap alike —
    /// useful for adversarial sweeps).
    pub run: RunConfig,
    /// Leader-election strategy for cleared swaps.
    pub leader_strategy: LeaderStrategy,
    /// How the exchange picks the protocol executing each cleared cycle.
    pub protocol: ProtocolPolicy,
}

/// Per-cycle protocol selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolPolicy {
    /// Pick the cheapest feasible protocol per cleared cycle: §4.6
    /// single-leader HTLCs when the timeout assignment exists (the common
    /// case — every simple trade cycle qualifies), the general §4.5
    /// hashkey protocol otherwise. The choice lands in
    /// [`SwapSummary::protocol`].
    #[default]
    Auto,
    /// Run everything on the general hashkey protocol (the pre-selection
    /// behavior; useful as a benchmark baseline).
    ForceHashkey,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            delta: Delta::from_ticks(10),
            threads: 1,
            run: RunConfig::default(),
            leader_strategy: LeaderStrategy::MinimumExact,
            protocol: ProtocolPolicy::Auto,
        }
    }
}

/// A simulation-side market participant: key material plus trade terms.
/// (Real deployments would hold only the public half; the simulation owns
/// every party, so it keeps the signing keys and secrets it needs to drive
/// them through the protocol.)
#[derive(Debug, Clone)]
pub struct ExchangeParty {
    /// The party's signing keypair.
    pub keypair: MssKeypair,
    /// The party's secret (hashlock preimage, §4.2: every party sends one).
    pub secret: Secret,
    /// The asset kind the party relinquishes.
    pub gives: AssetKind,
    /// The asset kind the party demands.
    pub wants: AssetKind,
}

impl ExchangeParty {
    /// Generates a party with deterministic key material drawn from `rng`.
    pub fn generate(
        rng: &mut SimRng,
        key_height: u32,
        gives: AssetKind,
        wants: AssetKind,
    ) -> ExchangeParty {
        let keypair = MssKeypair::from_seed_with_height(rng.bytes32(), key_height);
        let secret = Secret::random(rng);
        ExchangeParty { keypair, secret, gives, wants }
    }

    /// The offer this party submits to the clearing service.
    pub fn offer(&self) -> Offer {
        Offer {
            key: self.keypair.public_key(),
            hashlock: self.secret.hashlock(),
            gives: self.gives.clone(),
            wants: self.wants.clone(),
        }
    }
}

/// Errors from [`Exchange::run_epoch`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeError {
    /// The clearing service failed to assemble a matched cycle.
    Clear(ClearError),
    /// A published swap failed a party's consistency re-check — the
    /// untrusted service misbehaved, and nothing was escrowed.
    Verify {
        /// The swap that failed verification.
        swap: SwapId,
        /// The vertex whose party detected the inconsistency.
        vertex: VertexId,
        /// What the party detected.
        error: VerifyError,
    },
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::Clear(e) => write!(f, "{e}"),
            ExchangeError::Verify { swap, vertex, error } => {
                write!(f, "party at vertex {vertex} rejected {swap}: {error}")
            }
        }
    }
}

impl std::error::Error for ExchangeError {}

impl From<ClearError> for ExchangeError {
    fn from(e: ClearError) -> Self {
        ExchangeError::Clear(e)
    }
}

/// One swap the pipeline executed, with its full per-run report.
#[derive(Debug)]
pub struct ExecutedSwap {
    /// The market-issued swap id.
    pub id: SwapId,
    /// The epoch whose clearing produced the swap.
    pub epoch: u64,
    /// The complete protocol run report.
    pub report: RunReport,
}

/// The aggregate per-swap line of an [`ExchangeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapSummary {
    /// The market-issued swap id.
    pub swap: SwapId,
    /// The epoch whose clearing produced the swap.
    pub epoch: u64,
    /// Parties (vertices) in the cycle.
    pub parties: usize,
    /// Elected leaders.
    pub leaders: usize,
    /// The protocol that executed the swap (per-cycle auto-selection, or
    /// the forced baseline — see [`ProtocolPolicy`]).
    pub protocol: ProtocolKind,
    /// Whether every published contract reached a terminal state.
    pub settled: bool,
    /// Whether every party ended in `Deal` (the offers settled iff so).
    pub all_deal: bool,
    /// Rounds the run took.
    pub rounds: u64,
    /// The run's counters.
    pub metrics: RunMetrics,
}

/// The exchange pipeline's top-level observable: aggregate counters over
/// every epoch so far, plus one [`SwapSummary`] per executed swap in
/// swap-id order. Deterministic — invariant under
/// [`ExchangeConfig::threads`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangeReport {
    /// Clearing epochs run.
    pub epochs: u64,
    /// Offers submitted.
    pub offers_submitted: u64,
    /// Offers cancelled before matching.
    pub offers_cancelled: u64,
    /// Swaps cleared (and executed).
    pub swaps_cleared: u64,
    /// Swaps whose offers settled (every party ended in `Deal`).
    pub swaps_settled: u64,
    /// Swaps whose offers were refunded.
    pub swaps_refunded: u64,
    /// Total simulated wall ticks across epochs (each epoch contributes
    /// its slowest in-flight swap, since in-flight swaps run concurrently).
    pub wall_ticks: u64,
    /// Merged storage across every chain of every executed swap —
    /// Theorem 4.10's "bits stored on all blockchains", at exchange scale.
    pub storage: swap_chain::StorageReport,
    /// One line per executed swap, ordered by swap id.
    pub swaps: Vec<SwapSummary>,
}

/// The orchestrator: offers in, epochs of concurrent atomic swaps out.
///
/// # Example
///
/// ```
/// use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
/// use swap_market::AssetKind;
/// use swap_sim::SimRng;
///
/// let mut rng = SimRng::from_seed(9);
/// let mut exchange = Exchange::new(ExchangeConfig { threads: 2, ..Default::default() });
/// for (gives, wants) in [("btc", "eth"), ("eth", "btc"), ("usd", "gbp"), ("gbp", "usd")] {
///     exchange.submit(ExchangeParty::generate(
///         &mut rng,
///         4,
///         AssetKind::new(gives),
///         AssetKind::new(wants),
///     ));
/// }
/// let executed = exchange.run_epoch().unwrap();
/// assert_eq!(executed.len(), 2);
/// assert!(executed.iter().all(|s| s.report.all_deal()));
/// assert_eq!(exchange.report().swaps_settled, 2);
/// ```
#[derive(Debug)]
pub struct Exchange {
    config: ExchangeConfig,
    service: ClearingService,
    /// Key material per submitted offer, needed to drive the offer's party
    /// through the protocol once it is matched.
    material: BTreeMap<OfferId, (MssKeypair, Secret)>,
    /// The exchange's clock: when the next epoch's book closes.
    now: SimTime,
    /// The merged global ledger: every executed swap's chains, absorbed.
    ledger: ChainSet<AnyContract>,
    report: ExchangeReport,
}

impl Exchange {
    /// Creates an exchange with an empty book at `t = 0`.
    pub fn new(config: ExchangeConfig) -> Exchange {
        let service = ClearingService::new().with_leader_strategy(config.leader_strategy);
        Exchange {
            config,
            service,
            material: BTreeMap::new(),
            now: SimTime::ZERO,
            ledger: ChainSet::new(),
            report: ExchangeReport::default(),
        }
    }

    /// Submits a party's offer to the book, returning its id.
    pub fn submit(&mut self, party: ExchangeParty) -> OfferId {
        let id = self.service.submit(party.offer());
        self.material.insert(id, (party.keypair, party.secret));
        self.report.offers_submitted += 1;
        id
    }

    /// Withdraws an open offer (see [`ClearingService::cancel`]).
    ///
    /// # Errors
    ///
    /// [`CancelError`] if the offer is unknown or no longer open.
    pub fn cancel(&mut self, id: OfferId) -> Result<(), CancelError> {
        self.service.cancel(id)?;
        self.material.remove(&id);
        self.report.offers_cancelled += 1;
        Ok(())
    }

    /// The exchange's simulated clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlying clearing service (offer statuses, epoch counter).
    pub fn service(&self) -> &ClearingService {
        &self.service
    }

    /// The merged global ledger across every executed swap.
    pub fn ledger(&self) -> &ChainSet<AnyContract> {
        &self.ledger
    }

    /// The aggregate report so far.
    pub fn report(&self) -> &ExchangeReport {
        &self.report
    }

    /// Consumes the exchange, yielding the final aggregate report.
    pub fn into_report(self) -> ExchangeReport {
        self.report
    }

    /// Runs one full epoch of the pipeline: clear the open book, verify
    /// every cleared slot party-side, provision a [`SwapInstance`] per
    /// cleared swap, execute all of them concurrently across
    /// [`ExchangeConfig::threads`] shards, merge deterministically in
    /// swap-id order, resolve the offer lifecycle
    /// (settle on all-`Deal`, refund otherwise), and absorb every shard's
    /// chains into the global ledger.
    ///
    /// Returns the executed swaps (with full [`RunReport`]s) in swap-id
    /// order; the aggregate [`ExchangeReport`] accumulates.
    ///
    /// # Errors
    ///
    /// [`ExchangeError::Clear`] if cycle assembly fails;
    /// [`ExchangeError::Verify`] if a published swap betrays an offer. In
    /// both cases nothing is escrowed; on a verification failure every swap
    /// the epoch cleared is torn down (its offers become `Refunded`), so
    /// the book is never wedged with permanently-`Matched` offers.
    pub fn run_epoch(&mut self) -> Result<Vec<ExecutedSwap>, ExchangeError> {
        let cleared = self.service.clear(self.config.delta, self.now)?;
        self.report.epochs += 1;

        // The service is untrusted: every party re-checks its slot before
        // anything is provisioned, let alone escrowed (§4.2).
        if let Err(error) = self.verify_epoch(&cleared) {
            // Nothing was escrowed, but `clear` already consumed the
            // matched offers — tear every cleared swap down so the
            // lifecycle resolves instead of wedging in `Matched`.
            for swap in &cleared {
                self.service.refund_swap(swap.id).expect("issued this epoch");
                for oid in &swap.offer_of_vertex {
                    self.material.remove(oid);
                }
                self.report.swaps_refunded += 1;
            }
            self.report.swaps_cleared += cleared.len() as u64;
            return Err(error);
        }

        // Provision on the main thread, in clearing order (ascending swap
        // id): one instance per cleared swap, key material in vertex order.
        let instances: Vec<(SwapId, u64, SwapInstance)> =
            cleared.iter().map(|swap| (swap.id, swap.epoch, self.provision(swap))).collect();

        let executed = execute_sharded(instances, self.config.threads);

        // Deterministic merge: `executed` is in swap-id order whatever the
        // shard layout was.
        let delta = self.config.delta;
        let mut epoch_wall = delta.ticks();
        let mut out = Vec::with_capacity(executed.len());
        for (id, epoch, protocol, report, setup) in executed {
            let spec = &setup.spec;
            let all_deal = report.all_deal();
            // The swap is over either way: drop its parties' key material.
            if let Some(offers) = self.service.offers_of_swap(id) {
                for oid in offers {
                    self.material.remove(oid);
                }
            }
            if all_deal {
                self.service.settle_swap(id).expect("issued this epoch");
                self.report.swaps_settled += 1;
            } else {
                self.service.refund_swap(id).expect("issued this epoch");
                self.report.swaps_refunded += 1;
            }
            // The swap occupied rounds 0..=rounds, each Δ long, starting at
            // the epoch's `now`.
            epoch_wall = epoch_wall.max(delta.ticks() * (report.metrics.rounds + 1));
            self.report.swaps.push(SwapSummary {
                swap: id,
                epoch,
                parties: spec.digraph.vertex_count(),
                leaders: spec.leaders.len(),
                protocol,
                settled: report.settled,
                all_deal,
                rounds: report.metrics.rounds,
                metrics: report.metrics,
            });
            self.ledger.absorb(setup.chains);
            out.push(ExecutedSwap { id, epoch, report });
        }
        self.report.swaps_cleared += out.len() as u64;
        self.report.wall_ticks += epoch_wall;
        self.report.storage = self.ledger.storage_report();
        self.now += SimDuration::from_ticks(epoch_wall);
        Ok(out)
    }

    /// Re-checks every cleared slot against the party's original offer.
    fn verify_epoch(&self, cleared: &[ClearedSwap]) -> Result<(), ExchangeError> {
        for swap in cleared {
            for (pos, oid) in swap.offer_of_vertex.iter().enumerate() {
                let vertex = VertexId::new(pos as u32);
                let offer = self.service.offer(*oid).expect("cleared offers exist");
                verify_cleared_swap(swap, vertex, offer, self.now)
                    .map_err(|error| ExchangeError::Verify { swap: swap.id, vertex, error })?;
            }
        }
        Ok(())
    }

    /// Provisions one cleared swap: key material in cleared-vertex order,
    /// chains and assets per arc. Under [`ProtocolPolicy::Auto`] the
    /// instance carries the per-cycle protocol choice
    /// ([`SwapInstance::from_cleared`] reads the market's
    /// [`ClearedSwap::single_leader_feasible`] hint); `ForceHashkey`
    /// overrides it.
    fn provision(&self, swap: &ClearedSwap) -> SwapInstance {
        let keypairs: Vec<MssKeypair> =
            swap.offer_of_vertex.iter().map(|oid| self.material[oid].0.clone()).collect();
        let secrets: Vec<Secret> =
            swap.offer_of_vertex.iter().map(|oid| self.material[oid].1).collect();
        let instance =
            SwapInstance::from_cleared(swap, keypairs, secrets, self.now, self.config.run.clone());
        match self.config.protocol {
            ProtocolPolicy::Auto => instance,
            ProtocolPolicy::ForceHashkey => instance.with_protocol(ProtocolKind::Hashkey),
        }
    }
}

/// One executed swap as it comes back from a shard.
type ShardResult = (SwapId, u64, ProtocolKind, RunReport, SwapSetup);

/// Runs one instance to completion under lockstep timing.
fn run_instance((id, epoch, instance): (SwapId, u64, SwapInstance)) -> ShardResult {
    let delta = instance.setup.spec.delta;
    let protocol = instance.protocol;
    let (report, setup) = instance.engine(Lockstep::new(delta)).run_full();
    (id, epoch, protocol, report, setup)
}

/// Executes instances across `threads` scoped workers and merges the
/// results in swap-id order. Cleared cycles are party- and chain-disjoint,
/// and each instance exclusively owns its chains, so shards share nothing;
/// round-robin assignment keeps shard loads balanced without any
/// cross-thread coordination.
fn execute_sharded(
    instances: Vec<(SwapId, u64, SwapInstance)>,
    threads: usize,
) -> Vec<ShardResult> {
    let threads = threads.max(1).min(instances.len().max(1));
    let mut results: Vec<ShardResult> = if threads <= 1 {
        instances.into_iter().map(run_instance).collect()
    } else {
        let mut shards: Vec<Vec<(SwapId, u64, SwapInstance)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, item) in instances.into_iter().enumerate() {
            shards[i % threads].push(item);
        }
        thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(move || shard.into_iter().map(run_instance).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("swap worker panicked")).collect()
        })
    };
    results.sort_by_key(|&(id, ..)| id);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_market::OfferStatus;

    /// A book of `cycles` disjoint 3-cycles over distinct kind alphabets.
    fn book(cycles: usize, rng: &mut SimRng) -> Vec<ExchangeParty> {
        let mut parties = Vec::new();
        for c in 0..cycles {
            for p in 0..3 {
                parties.push(ExchangeParty::generate(
                    rng,
                    4,
                    AssetKind::new(format!("c{c}k{p}")),
                    AssetKind::new(format!("c{c}k{}", (p + 1) % 3)),
                ));
            }
        }
        parties
    }

    fn run_book(cycles: usize, threads: usize, seed: u64) -> ExchangeReport {
        let mut rng = SimRng::from_seed(seed);
        let mut exchange = Exchange::new(ExchangeConfig { threads, ..Default::default() });
        for party in book(cycles, &mut rng) {
            exchange.submit(party);
        }
        let executed = exchange.run_epoch().unwrap();
        assert_eq!(executed.len(), cycles);
        exchange.into_report()
    }

    #[test]
    fn epoch_settles_disjoint_cycles() {
        let report = run_book(3, 1, 100);
        assert_eq!(report.epochs, 1);
        assert_eq!(report.offers_submitted, 9);
        assert_eq!(report.swaps_cleared, 3);
        assert_eq!(report.swaps_settled, 3);
        assert_eq!(report.swaps_refunded, 0);
        assert!(report.storage.total_bytes() > 0);
        assert_eq!(report.swaps.len(), 3);
        assert!(report.swaps.windows(2).all(|w| w[0].swap < w[1].swap));
        // Concurrent execution: the epoch's wall time is one swap's
        // duration, not three.
        let per_swap = report.swaps[0].rounds + 1;
        assert_eq!(report.wall_ticks, per_swap * ExchangeConfig::default().delta.ticks());
    }

    #[test]
    fn report_invariant_under_thread_count() {
        let sequential = run_book(5, 1, 200);
        for threads in [2, 3, 8, 64] {
            let sharded = run_book(5, threads, 200);
            assert_eq!(sequential, sharded, "threads = {threads}");
        }
    }

    #[test]
    fn lifecycle_resolves_and_ledger_merges() {
        let mut rng = SimRng::from_seed(300);
        let mut exchange = Exchange::new(ExchangeConfig { threads: 2, ..Default::default() });
        let ids: Vec<OfferId> = book(2, &mut rng).into_iter().map(|p| exchange.submit(p)).collect();
        let straggler = exchange.submit(ExchangeParty::generate(
            &mut rng,
            4,
            AssetKind::new("orphan"),
            AssetKind::new("nobody-gives-this"),
        ));
        let executed = exchange.run_epoch().unwrap();
        assert_eq!(executed.len(), 2);
        for id in &ids {
            assert_eq!(exchange.service().status(*id), Some(OfferStatus::Settled));
        }
        assert_eq!(exchange.service().status(straggler), Some(OfferStatus::Open));
        // 2 swaps × 3 arcs, one chain per arc, all absorbed.
        assert_eq!(exchange.ledger().len(), 6);
        assert!(exchange.ledger().verify_integrity());
        // The merged storage equals the sum of the per-swap reports.
        let summed = executed
            .iter()
            .fold(swap_chain::StorageReport::default(), |acc, s| acc.merge(&s.report.storage));
        assert_eq!(exchange.report().storage, summed);
    }

    #[test]
    fn cancelled_offer_never_executes() {
        let mut rng = SimRng::from_seed(400);
        let mut exchange = Exchange::new(ExchangeConfig::default());
        let parties = book(1, &mut rng);
        let first = exchange.submit(parties[0].clone());
        for p in &parties[1..] {
            exchange.submit(p.clone());
        }
        exchange.cancel(first).unwrap();
        let executed = exchange.run_epoch().unwrap();
        assert!(executed.is_empty(), "the 3-cycle is broken by the cancellation");
        assert_eq!(exchange.report().offers_cancelled, 1);
        assert_eq!(exchange.service().status(first), Some(OfferStatus::Cancelled));
    }

    #[test]
    fn multiple_epochs_advance_the_clock() {
        let mut rng = SimRng::from_seed(500);
        let mut exchange = Exchange::new(ExchangeConfig::default());
        for party in book(1, &mut rng) {
            exchange.submit(party);
        }
        exchange.run_epoch().unwrap();
        let after_first = exchange.now();
        assert!(after_first > SimTime::ZERO);
        // A second ring arrives later; it clears in epoch 1 on the advanced
        // clock.
        for party in book(1, &mut SimRng::from_seed(501)) {
            exchange.submit(party);
        }
        let executed = exchange.run_epoch().unwrap();
        assert_eq!(executed.len(), 1);
        assert_eq!(executed[0].epoch, 1);
        assert!(executed[0].report.all_deal());
        assert_eq!(exchange.report().epochs, 2);
        assert!(exchange.now() > after_first);
    }
}
