//! The exchange pipeline: continuous clearing feeding multi-epoch parallel
//! execution on a persistent work-stealing worker pool.
//!
//! The paper assumes "the swap digraph is constructed by a (possibly
//! centralized) market-clearing service" (§4.2) and then analyzes *one*
//! swap. [`Exchange`] is the layer above: a continuous market whose top
//! surface is a **stage-based pipeline**, not a blocking batch call. Each
//! epoch moves through the [`EpochStage`] state machine
//!
//! ```text
//!   Clearing ──▶ Provisioning ──▶ Executing ──▶ Settling ──▶ (retired)
//! ```
//!
//! The clearing, provisioning, and settling slots hold one epoch each, but
//! **`Executing` holds up to [`ExchangeConfig::executing_slots`] epochs at
//! once**: cleared cycles are party- and chain-disjoint across epochs (the
//! clearing reservation set guarantees it), so nothing in the theory
//! forces execution to serialize per epoch. Epoch `k+1`'s clearing and
//! provisioning run while epoch `k` executes, and with more than one
//! execution slot epoch `k+1`'s *execution* overlaps it too.
//! [`submit`](Exchange::submit) and [`cancel`](Exchange::cancel) are
//! accepted at any time — an offer submitted mid-epoch lands in the next
//! clearing delta instead of waiting for settlement — and
//! [`step`](Exchange::step) advances the pipeline by exactly one stage
//! transition ([`Exchange::drive_until_quiescent`] loops it dry).
//!
//! The four stages:
//!
//! 1. **Clearing.** A new epoch is admitted whenever the clearing slot is
//!    free and the book has submissions no clearing has seen. The untrusted
//!    [`ClearingService`] consumes the open book into disjoint trade
//!    cycles, *skipping offers whose parties are reserved by in-flight
//!    swaps* ([`ClearingService::reserved_addresses`]).
//! 2. **Provisioning.** Every cleared slot is re-verified against the
//!    party's original offer ([`swap_market::verify_cleared_swap`] — the
//!    service is untrusted), then each cycle *leases* its signing material
//!    from the identity registry ([`crate::identity::IdentityStore`]):
//!    every party's master keypair — minted once, at first submit — hands
//!    the swap a disjoint window of unused one-time leaves, so the `2^h`
//!    keygen is amortized across swaps and no `(address, leaf)` pair ever
//!    signs twice. An identity with too few leaves left fails only its own
//!    swap ([`ExchangeError::KeysExhausted`], its offers refunded, a
//!    checked path); siblings provision into [`ProvisionedSwap`]s and the
//!    protocol is chosen per cycle (under [`ProtocolPolicy::Auto`], §4.6
//!    single-leader HTLCs when feasible, the general §4.5 hashkey protocol
//!    otherwise). Identities can also be minted *by* the exchange, on the
//!    worker pool, overlapping execution
//!    ([`Exchange::submit_seeded`]).
//! 3. **Executing.** The moment an execution slot frees up, each of the
//!    epoch's provisioned swaps is stamped onto the timeline
//!    ([`ProvisionedSwap::admit`] rebases its start to `now + Δ`) and
//!    **queued onto the long-lived [`WorkerPool`]** shared by every epoch
//!    in flight. Workers return per-swap results over a channel; the merge
//!    is swap-id-ordered, so the [`ExchangeReport`] is byte-identical for
//!    1, 2, or N pool workers ([`ExchangeConfig::threads`] is a host
//!    wall-clock knob, never a semantic one). A swap engine that panics is
//!    caught at the worker boundary: only that swap fails
//!    ([`ExchangeError::WorkerPanicked`], its offers refunded) and every
//!    sibling's finished result still settles.
//! 4. **Settling.** Offers resolve (settle on all-`Deal`, refund
//!    otherwise), every swap's chains are absorbed into the global ledger
//!    ([`ChainSet::absorb`]), and the epoch retires. Epochs retire in
//!    admission order even when their executions overlapped.
//!
//! # Simulated time and per-stage attribution
//!
//! Stages cost simulated ticks ([`StageCosts`]; zero by default, so
//! single-epoch workloads behave exactly like the historical batch path).
//! Epochs advance in order through the exclusive slots, which yields the
//! classic pipeline recurrence: a stage starts at the later of its own
//! epoch's previous-stage completion and the moment a slot frees up. An
//! epoch's simulated execution wall is its slowest swap's run — a function
//! of the deterministic per-swap reports alone, never of host scheduling —
//! so the pipeline's simulated trace is identical however many pool
//! workers raced over the jobs. Every advance of the pipeline frontier is
//! attributed to the stage that completed across it
//! ([`ExchangeReport::stage_ticks`]), and the attribution sums exactly to
//! [`ExchangeReport::wall_ticks`] even while several epochs execute at
//! once: each frontier advance is charged to exactly one completing stage.
//! Executing-stage *occupancy* is tracked alongside
//! ([`ExchangeReport::executing_peak`],
//! [`ExchangeReport::executing_resident_ticks`]) — the observable form of
//! multi-epoch overlap.
//!
//! # Durability
//!
//! An exchange created with [`Exchange::with_journal`] write-ahead-logs
//! every public operation to a `swap-store` WAL before returning from it.
//! Each operation appends one **record group**: a single authoritative
//! *command* record first (the operation and its inputs — enough to re-run
//! it), followed by the *audit* records of everything the operation did to
//! the offer/swap lifecycle (plan commits, settlements, refunds, identity
//! registrations, leaf leases). All lifecycle mutations funnel through one
//! internal choke point (`Exchange::apply_transition`), so the audit
//! trail cannot silently miss a mutation path. Periodic snapshots at
//! pipeline-empty points truncate the log; [`Exchange::recover`] loads the
//! latest snapshot, replays the WAL tail in *lockstep* — each command is
//! re-run and the records it regenerates are compared one-to-one against
//! the log, so divergence is detected at the exact record — and resumes
//! with a byte-identical [`ExchangeReport`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::io;
use std::path::PathBuf;

use swap_chain::{ChainSet, StorageReport};
use swap_contract::AnyContract;
use swap_crypto::{Address, Digest32, MssKeypair, Secret};
use swap_digraph::VertexId;
use swap_market::{
    verify_cleared_swap, AssetKind, CancelError, ClearError, ClearedSwap, ClearingMode,
    ClearingService, LeaderStrategy, Offer, OfferId, SwapId, VerifyError,
};
use swap_sim::{Delta, SimDuration, SimRng, SimTime};
use swap_store::{
    load_latest_snapshot, read_wal, write_snapshot, ExchangeSnapshot, IdentityRecord,
    MaterialRecord, SeedRecord, Wal, WalRecord, WAL_FILE,
};

use crate::durability::{
    book_from_record, book_record, config_digest, fail_tag, report_from_record, report_record,
    stage_tag,
};
use crate::identity::IdentityStore;
use crate::instance::{ProvisionedSwap, SwapRunOutput};
use crate::pool::{Completed, WorkerPool};
use crate::protocol::ProtocolKind;
use crate::runner::{RunConfig, RunMetrics, RunReport};

/// Configuration for an [`Exchange`].
#[derive(Debug, Clone)]
pub struct ExchangeConfig {
    /// The synchrony parameter Δ every cleared swap runs under.
    pub delta: Delta,
    /// Host worker threads in the long-lived execution pool (clamped to
    /// ≥ 1). Results are invariant under this knob; only host wall-clock
    /// changes.
    pub threads: usize,
    /// How many epochs may be concurrently resident in
    /// [`EpochStage::Executing`] (clamped to ≥ 1). This is the *simulated*
    /// execution-parallelism budget: with one slot epochs execute strictly
    /// in series (the historical pipeline); with `k` slots up to `k`
    /// epochs' swaps run side by side on the shared worker pool and the
    /// simulated frontier reflects the overlap. Unlike
    /// [`threads`](ExchangeConfig::threads) this knob *does* change the
    /// simulated trace (wall ticks, occupancy) — deterministically, the
    /// same for every host worker count.
    pub executing_slots: usize,
    /// Per-swap run configuration template (behaviors are keyed by vertex
    /// id within each swap, so they apply to every cleared swap alike —
    /// useful for adversarial sweeps).
    pub run: RunConfig,
    /// Leader-election strategy for cleared swaps.
    pub leader_strategy: LeaderStrategy,
    /// How the exchange picks the protocol executing each cleared cycle.
    pub protocol: ProtocolPolicy,
    /// How the clearing service matches the book
    /// ([`ClearingMode::Indexed`] by default — the incremental index;
    /// `FullRescan` is the reference matcher). Both modes publish
    /// byte-identical swaps; under *measured* stage costs
    /// ([`StageCosts::clearing_per_examined`]) they attribute different
    /// clearing ticks, because they do different amounts of work.
    pub clearing_mode: ClearingMode,
    /// Simulated cost of the non-execution pipeline stages. Zero by
    /// default: stage latencies are negligible next to protocol rounds at
    /// small book sizes, and zero costs keep single-epoch workloads
    /// byte-identical to the historical batch path. Experiments model them
    /// explicitly to measure the pipelining win (see E18/E19) and, since
    /// the clearing coefficients are driven by *measured* per-clear work,
    /// the clearing index's win (see E20).
    pub stage_costs: StageCosts,
}

/// Per-cycle protocol selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolPolicy {
    /// Pick the cheapest feasible protocol per cleared cycle: §4.6
    /// single-leader HTLCs when the timeout assignment exists (the common
    /// case — every simple trade cycle qualifies), the general §4.5
    /// hashkey protocol otherwise. The choice lands in
    /// [`SwapSummary::protocol`].
    #[default]
    Auto,
    /// Run everything on the general hashkey protocol (the pre-selection
    /// behavior; useful as a benchmark baseline).
    ForceHashkey,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            delta: Delta::from_ticks(10),
            threads: 1,
            executing_slots: 1,
            run: RunConfig::default(),
            leader_strategy: LeaderStrategy::MinimumExact,
            protocol: ProtocolPolicy::Auto,
            clearing_mode: ClearingMode::default(),
            stage_costs: StageCosts::default(),
        }
    }
}

/// The pipeline's per-epoch state machine. Every admitted epoch moves
/// through the stages strictly in order:
///
/// ```text
/// Clearing ──▶ Provisioning ──▶ Executing ──▶ Settling ──▶ (retired)
/// ```
///
/// One epoch occupies each of `Clearing`, `Provisioning`, and `Settling`;
/// `Executing` holds up to [`ExchangeConfig::executing_slots`] epochs at
/// once. Epochs advance (and retire) in admission order — so epoch `k+1`
/// clears and provisions while epoch `k` executes, and with multiple
/// execution slots their executions overlap too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EpochStage {
    /// The clearing service is consuming the open book into trade cycles.
    Clearing,
    /// Cleared slots verified party-side; key material and protocol choice
    /// captured per cycle ([`ProvisionedSwap`]).
    Provisioning,
    /// All of the epoch's swaps are queued on the shared worker pool,
    /// running concurrently — with each other and with every other
    /// executing epoch's swaps.
    Executing,
    /// Offers resolving and shard chains merging into the global ledger.
    Settling,
}

impl EpochStage {
    /// All stages, in pipeline order.
    pub const ALL: [EpochStage; 4] = [
        EpochStage::Clearing,
        EpochStage::Provisioning,
        EpochStage::Executing,
        EpochStage::Settling,
    ];

    /// The stage after this one; `None` after [`EpochStage::Settling`]
    /// (the epoch retires).
    pub fn next(self) -> Option<EpochStage> {
        match self {
            EpochStage::Clearing => Some(EpochStage::Provisioning),
            EpochStage::Provisioning => Some(EpochStage::Executing),
            EpochStage::Executing => Some(EpochStage::Settling),
            EpochStage::Settling => None,
        }
    }

    fn index(self) -> usize {
        match self {
            EpochStage::Clearing => 0,
            EpochStage::Provisioning => 1,
            EpochStage::Executing => 2,
            EpochStage::Settling => 3,
        }
    }
}

impl fmt::Display for EpochStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochStage::Clearing => write!(f, "clearing"),
            EpochStage::Provisioning => write!(f, "provisioning"),
            EpochStage::Executing => write!(f, "executing"),
            EpochStage::Settling => write!(f, "settling"),
        }
    }
}

/// Simulated tick costs of the non-execution stages (the execution stage's
/// duration is the slowest in-flight swap's run, exactly as before). Each
/// stage costs `base + per_item × items`:
///
/// * clearing: per offer the matcher *actually examined* and per cycle it
///   emitted — **measured** from the clearing service's
///   [`swap_market::ClearStats`] for the epoch, not from a synthetic book
///   size. Under [`ClearingMode::FullRescan`] every open offer is
///   examined; under [`ClearingMode::Indexed`] only the matchable region
///   is, so the same coefficients price the two modes differently —
///   exactly the reality the attribution is meant to reflect,
/// * provisioning: per *party* across the epoch's cleared cycles,
/// * settling: per *swap* the epoch resolves.
///
/// All zero by default (see [`ExchangeConfig::stage_costs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCosts {
    /// Fixed ticks per clearing stage.
    pub clearing_base: u64,
    /// Ticks per offer the epoch's matcher examined (measured:
    /// [`swap_market::ClearStats::offers_examined`]).
    pub clearing_per_examined: u64,
    /// Ticks per cycle the epoch's clearing emitted (measured:
    /// [`swap_market::ClearStats::cycles_emitted`]).
    pub clearing_per_cycle: u64,
    /// Fixed ticks per provisioning stage.
    pub provisioning_base: u64,
    /// Ticks per party across the epoch's cleared swaps.
    pub provisioning_per_party: u64,
    /// Fixed ticks per settling stage.
    pub settling_base: u64,
    /// Ticks per swap the epoch resolves.
    pub settling_per_swap: u64,
}

/// Wall-tick attribution per pipeline stage: every advance of the pipeline
/// frontier is charged to the stage whose completion carried it, so the
/// four counters sum exactly to [`ExchangeReport::wall_ticks`]. Under
/// batch driving each epoch pays clearing + provisioning + executing +
/// settling in full; under pipelined driving the non-execution stages of
/// epoch `k+1` hide beneath epoch `k`'s execution and contribute (almost)
/// nothing — which is precisely the observable form of the overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTicks {
    /// Frontier ticks spent completing clearing stages.
    pub clearing: u64,
    /// Frontier ticks spent completing provisioning stages.
    pub provisioning: u64,
    /// Frontier ticks spent completing execution stages.
    pub executing: u64,
    /// Frontier ticks spent completing settling stages.
    pub settling: u64,
}

impl StageTicks {
    /// Sum over the four stages; always equals the report's `wall_ticks`.
    pub fn total(&self) -> u64 {
        self.clearing + self.provisioning + self.executing + self.settling
    }

    fn charge(&mut self, stage: EpochStage, ticks: u64) {
        match stage {
            EpochStage::Clearing => self.clearing += ticks,
            EpochStage::Provisioning => self.provisioning += ticks,
            EpochStage::Executing => self.executing += ticks,
            EpochStage::Settling => self.settling += ticks,
        }
    }
}

/// What one [`Exchange::step`] call did.
#[derive(Debug)]
pub enum StepEvent {
    /// An epoch entered `stage` at simulated time `at` (entering
    /// [`EpochStage::Clearing`] is the admission of a new epoch).
    StageEntered {
        /// The epoch that advanced.
        epoch: u64,
        /// The stage it entered.
        stage: EpochStage,
        /// The simulated instant it entered.
        at: SimTime,
    },
    /// An epoch finished settling and retired: its offers are resolved,
    /// its chains absorbed, and its swaps' full reports are here, in
    /// swap-id order.
    EpochSettled {
        /// The retired epoch.
        epoch: u64,
        /// The simulated instant settlement completed.
        at: SimTime,
        /// The epoch's executed swaps, ascending swap id.
        executed: Vec<ExecutedSwap>,
    },
    /// Nothing to do: no epoch is in flight and no submission has arrived
    /// since the last clearing.
    Quiescent,
}

/// A simulation-side market participant: key material plus trade terms.
/// (Real deployments would hold only the public half; the simulation owns
/// every party, so it keeps the signing keys and secrets it needs to drive
/// them through the protocol.)
#[derive(Debug, Clone)]
pub struct ExchangeParty {
    /// The party's signing keypair.
    pub keypair: MssKeypair,
    /// The party's secret (hashlock preimage, §4.2: every party sends one).
    pub secret: Secret,
    /// The asset kind the party relinquishes.
    pub gives: AssetKind,
    /// The asset kind the party demands.
    pub wants: AssetKind,
}

/// Seed-level material for a party whose identity the *exchange* mints:
/// [`Exchange::submit_seeded`] queues the `2^h` one-time keygen onto the
/// worker pool instead of paying it on the caller's thread.
#[derive(Debug, Clone)]
pub struct PartySeed {
    /// Seed for the party's deterministic MSS keypair.
    pub seed: [u8; 32],
    /// Merkle tree height: the identity can sign `2^h` times, total.
    pub key_height: u32,
    /// The party's secret (hashlock preimage, §4.2).
    pub secret: Secret,
    /// The asset kind the party relinquishes.
    pub gives: AssetKind,
    /// The asset kind the party demands.
    pub wants: AssetKind,
}

impl ExchangeParty {
    /// Generates a party with deterministic key material drawn from `rng`.
    pub fn generate(
        rng: &mut SimRng,
        key_height: u32,
        gives: AssetKind,
        wants: AssetKind,
    ) -> ExchangeParty {
        let keypair = MssKeypair::from_seed_with_height(rng.bytes32(), key_height);
        let secret = Secret::random(rng);
        ExchangeParty { keypair, secret, gives, wants }
    }

    /// The offer this party submits to the clearing service.
    pub fn offer(&self) -> Offer {
        Offer {
            key: self.keypair.public_key(),
            hashlock: self.secret.hashlock(),
            gives: self.gives.clone(),
            wants: self.wants.clone(),
        }
    }
}

/// Errors from advancing the pipeline ([`Exchange::step`] and friends).
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeError {
    /// The clearing service failed to assemble a matched cycle.
    Clear(ClearError),
    /// A published swap failed a party's consistency re-check — the
    /// untrusted service misbehaved, and nothing was escrowed.
    Verify {
        /// The swap that failed verification.
        swap: SwapId,
        /// The vertex whose party detected the inconsistency.
        vertex: VertexId,
        /// What the party detected.
        error: VerifyError,
    },
    /// A swap's engine panicked on a pool worker. The panic was caught at
    /// the worker boundary, so only this swap failed — its offers are
    /// refunded, every sibling swap's finished result still settles, and
    /// further `step` calls keep driving the pipeline. (If several swaps
    /// of one epoch panicked, the lowest swap id is reported; all of them
    /// are refunded.)
    WorkerPanicked(SwapId),
    /// A swap was refunded at provisioning because a party's identity had
    /// fewer unused one-time leaves than the swap's signing budget. The
    /// refund is checked — no leaves were consumed, sibling swaps
    /// provision and settle normally, and further `step` calls keep
    /// driving the pipeline. (If several swaps of one epoch hit
    /// exhaustion, the lowest swap id is reported; all of them are
    /// refunded.)
    KeysExhausted {
        /// The refunded swap.
        swap: SwapId,
        /// The address whose identity ran out of one-time leaves.
        address: Address,
    },
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::Clear(e) => write!(f, "{e}"),
            ExchangeError::Verify { swap, vertex, error } => {
                write!(f, "party at vertex {vertex} rejected {swap}: {error}")
            }
            ExchangeError::WorkerPanicked(swap) => {
                write!(f, "{swap}'s engine panicked on a pool worker; its offers were refunded")
            }
            ExchangeError::KeysExhausted { swap, address } => {
                write!(
                    f,
                    "{swap} needs more one-time keys than identity {address} has left; \
                     its offers were refunded"
                )
            }
        }
    }
}

impl std::error::Error for ExchangeError {}

impl From<ClearError> for ExchangeError {
    fn from(e: ClearError) -> Self {
        ExchangeError::Clear(e)
    }
}

/// Error from [`Exchange::drive_until_quiescent`]: the pipeline error plus
/// every swap that had already settled during the drive — partial results
/// are returned, never dropped.
#[derive(Debug)]
pub struct DriveError {
    /// The error the failing step raised.
    pub error: ExchangeError,
    /// Swaps settled by this drive before the error struck (each retiring
    /// epoch's swaps in ascending swap-id order).
    pub executed: Vec<ExecutedSwap>,
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)?;
        if !self.executed.is_empty() {
            write!(f, " ({} swap(s) had already settled)", self.executed.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for DriveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Configuration of a durable exchange's journal (see
/// [`Exchange::with_journal`] and [`Exchange::recover`]).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding the write-ahead log ([`swap_store::WAL_FILE`])
    /// and snapshots (`snap-*.snap`).
    pub dir: PathBuf,
    /// Records buffered before the WAL flushes to the OS (group commit).
    /// `0` behaves as `1` (write-through). Buffered records survive a
    /// clean drop but can be lost to a crash — the recovery protocol
    /// tolerates exactly that: a lost suffix of whole records, plus at
    /// most one torn record at the end.
    pub group_commit: usize,
    /// Settled epochs between snapshots; `0` disables snapshotting (the
    /// WAL then grows without bound and recovery replays from genesis).
    /// Snapshots are only taken at pipeline-empty points, so a busy
    /// pipeline may stretch the interval.
    pub snapshot_every: u64,
}

impl JournalConfig {
    /// A journal in `dir` with the default group-commit buffer (64
    /// records) and snapshot interval (every 8 settled epochs).
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig { dir: dir.into(), group_commit: 64, snapshot_every: 8 }
    }
}

/// Why [`Exchange::recover`] refused a store.
#[derive(Debug)]
pub enum RecoverError {
    /// Filesystem or store-layer failure (including a checksum-valid
    /// record this build cannot interpret).
    Io(io::Error),
    /// The store was written under a different *semantic* configuration
    /// (`threads` excluded — it never changes results). Replaying a log
    /// against changed clearing rules would diverge silently; refusing is
    /// the only safe answer.
    ConfigMismatch,
    /// Lockstep replay produced a record different from the logged one at
    /// `seq`: the store and the code disagree about what the exchange did.
    Diverged {
        /// Sequence number of the first mismatching record.
        seq: u64,
    },
    /// The record at `seq` cannot occupy its position (an audit record
    /// where a command head must be, or a command that no longer applies)
    /// — the checksums passed, so the store was truncated or tampered
    /// with at record granularity.
    Corrupt {
        /// Sequence number of the offending record.
        seq: u64,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "store i/o failed: {e}"),
            RecoverError::ConfigMismatch => {
                write!(f, "the store was written under a different exchange configuration")
            }
            RecoverError::Diverged { seq } => {
                write!(f, "replay diverged from the log at record {seq}")
            }
            RecoverError::Corrupt { seq } => {
                write!(f, "record {seq} cannot occupy its position in the log")
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// What [`Exchange::recover`] did to rebuild the exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Sequence number the loaded snapshot covered through, if one was
    /// loaded (records at or before it were skipped).
    pub snapshot_seq: Option<u64>,
    /// WAL-tail records replayed and verified against the log.
    pub records_replayed: u64,
    /// Command records among those (each re-ran one public operation).
    pub commands_replayed: u64,
    /// Whether the log ended in a torn (partially written) record — the
    /// expected signature of a crash mid-write, dropped on recovery.
    pub torn_tail: bool,
}

/// A recovered exchange plus what it took to rebuild it.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt exchange, journaling onward into the same store.
    pub exchange: Exchange,
    /// Replay statistics.
    pub stats: RecoveryStats,
}

/// Where journaled record groups go.
#[derive(Debug)]
enum JournalSink {
    /// Live: groups append to the write-ahead log.
    Wal(Wal),
    /// Recovery: groups collect in memory for lockstep comparison against
    /// the log.
    Capture(Vec<WalRecord>),
}

/// The journaling state of a durable exchange.
#[derive(Debug)]
struct Journal {
    sink: JournalSink,
    dir: PathBuf,
    snapshot_every: u64,
    /// Epochs settled since the last snapshot.
    settled_since_snapshot: u64,
    /// Audit records of the operation in progress; committed right after
    /// its command head, as one group.
    pending: Vec<WalRecord>,
    /// Nesting depth of journaled public operations (`submit_seeded`
    /// calls `submit`); only the outermost operation's head is logged, so
    /// replaying the outer command cannot double-apply the inner one.
    depth: u32,
}

/// One offer/swap lifecycle mutation. Every mutation of the book, the
/// material map, the identity registry's lifecycle counters, or the
/// report's lifecycle tallies goes through
/// `Exchange::apply_transition` — the single durability choke point
/// where audit records are emitted.
#[derive(Debug)]
enum Transition {
    /// A party submits an offer (registering its identity on first touch).
    Submit(ExchangeParty),
    /// A registered identity submits a fresh offer (no keygen).
    Resubmit {
        /// The registered identity.
        address: Address,
        /// Fresh swap secret.
        secret: Secret,
        /// Asset kind given.
        gives: AssetKind,
        /// Asset kind wanted.
        wants: AssetKind,
    },
    /// An open offer is withdrawn.
    Cancel(OfferId),
    /// An executed swap's offers settle (every party ended in `Deal`).
    Settle(SwapId),
    /// A swap's offers refund (failed execution, worker panic, or — with
    /// `exhausted` — a key-exhausted identity at provisioning).
    Refund {
        /// The refunded swap.
        swap: SwapId,
        /// True when the refund is due to one-time-key exhaustion.
        exhausted: bool,
    },
    /// Verify-failure teardown: the swap's offers refund and its material
    /// drops, but *without* released-reservation tracking — nothing was
    /// provisioned, so no deferred counterparty is owed a wake-up.
    TearDown(SwapId),
}

/// What a [`Transition`] did.
#[derive(Debug)]
enum Applied {
    /// The offer now in the book.
    Submitted(OfferId),
    /// The offer was withdrawn.
    Cancelled,
    /// The swap resolved (settled or refunded); these parties' clearing
    /// reservations were released.
    Resolved(BTreeSet<Address>),
    /// The swap was torn down.
    TornDown,
}

/// Why a [`Transition`] could not apply.
#[derive(Debug)]
enum TransitionError {
    /// `Resubmit` for an address with no registered identity.
    UnknownAddress,
    /// `Cancel` of an unknown or non-open offer.
    Cancel(CancelError),
}

/// One swap the pipeline executed, with its full per-run report.
#[derive(Debug)]
pub struct ExecutedSwap {
    /// The market-issued swap id.
    pub id: SwapId,
    /// The epoch whose clearing produced the swap.
    pub epoch: u64,
    /// The complete protocol run report.
    pub report: RunReport,
}

/// The aggregate per-swap line of an [`ExchangeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapSummary {
    /// The market-issued swap id.
    pub swap: SwapId,
    /// The epoch whose clearing produced the swap.
    pub epoch: u64,
    /// Parties (vertices) in the cycle.
    pub parties: usize,
    /// Elected leaders.
    pub leaders: usize,
    /// The protocol that executed the swap (per-cycle auto-selection, or
    /// the forced baseline — see [`ProtocolPolicy`]).
    pub protocol: ProtocolKind,
    /// Whether every published contract reached a terminal state.
    pub settled: bool,
    /// Whether every party ended in `Deal` (the offers settled iff so).
    pub all_deal: bool,
    /// Rounds the run took.
    pub rounds: u64,
    /// The run's counters.
    pub metrics: RunMetrics,
}

/// The exchange pipeline's top-level observable: aggregate counters over
/// every epoch so far, plus one [`SwapSummary`] per executed swap in
/// swap-id order. Deterministic — invariant under
/// [`ExchangeConfig::threads`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangeReport {
    /// Clearing epochs admitted.
    pub epochs: u64,
    /// Offers submitted.
    pub offers_submitted: u64,
    /// Offers cancelled before matching.
    pub offers_cancelled: u64,
    /// Swaps cleared (and executed).
    pub swaps_cleared: u64,
    /// Swaps whose offers settled (every party ended in `Deal`).
    pub swaps_settled: u64,
    /// Swaps whose offers were refunded.
    pub swaps_refunded: u64,
    /// Swaps refunded at provisioning because a party's identity ran out
    /// of one-time leaves (a subset of `swaps_refunded`).
    pub swaps_exhausted: u64,
    /// First-touch identities registered in the identity store (each owns
    /// one master MSS keypair, leased leaf-by-leaf to its swaps).
    pub identities_registered: u64,
    /// Identity minting jobs the exchange ran on the worker pool
    /// ([`Exchange::submit_seeded`]).
    pub identities_minted: u64,
    /// Of those, jobs queued while at least one epoch occupied
    /// [`EpochStage::Executing`] — keygen that overlapped swap execution
    /// instead of blocking the pipeline's thread.
    pub mints_overlapping_execution: u64,
    /// One-time leaves leased to provisioned swaps so far.
    pub leaves_leased: u64,
    /// Total simulated wall ticks the pipeline frontier advanced. Within an
    /// epoch, concurrent in-flight swaps share one execution wall (the
    /// slowest swap's); across epochs, overlapped stages share the
    /// frontier, so pipelined driving strictly undercuts batch driving
    /// whenever the non-execution stages cost anything.
    pub wall_ticks: u64,
    /// Where the wall ticks went, stage by stage; sums to `wall_ticks`
    /// even while several epochs execute at once (each frontier advance is
    /// charged to exactly one completing stage).
    pub stage_ticks: StageTicks,
    /// The most epochs ever concurrently resident in
    /// [`EpochStage::Executing`] (bounded by
    /// [`ExchangeConfig::executing_slots`]).
    pub executing_peak: u64,
    /// Epoch-ticks of `Executing` residency: every frontier advance of
    /// `dt` ticks contributes `dt × (epochs then executing)`. Divided by
    /// `wall_ticks` this is the stage's average occupancy — the
    /// observable form of multi-epoch execution overlap.
    pub executing_resident_ticks: u64,
    /// Transactions sealed across every chain of every executed swap —
    /// deterministic, so rollback traffic is pinnable across
    /// [`swap_chain::RollbackMode`]s and worker counts.
    pub tx_executed: u64,
    /// Transactions whose contract hook failed after starting to execute,
    /// forcing a rollback (mempool-style rejections excluded) — the
    /// denominator the undo journal optimizes.
    pub tx_rolled_back: u64,
    /// Merged storage across every chain of every executed swap —
    /// Theorem 4.10's "bits stored on all blockchains", at exchange scale.
    pub storage: swap_chain::StorageReport,
    /// One line per executed swap, ordered by swap id.
    pub swaps: Vec<SwapSummary>,
}

/// Tag of one job queued on the shared worker pool.
#[derive(Debug, Clone, Copy)]
enum JobTag {
    /// A provisioned swap's engine run, tagged `(epoch, swap)`.
    Swap(u64, SwapId),
    /// A first-touch identity minting job ([`Exchange::submit_seeded`]),
    /// tagged by mint ticket.
    Mint(u64),
}

/// Result of one pool job.
#[derive(Debug)]
enum JobOutput {
    /// A finished swap run.
    Swap(Box<SwapRunOutput>),
    /// A minted identity keypair.
    Mint(MssKeypair),
}

/// Stage-to-stage payload of one in-flight epoch.
#[derive(Debug)]
enum EpochWork {
    /// Clearing output, awaiting verification + provisioning.
    Cleared(Vec<ClearedSwap>),
    /// Provisioned swaps, awaiting an execution slot.
    Provisioned(Vec<ProvisionedSwap>),
    /// The epoch's swaps are queued on the worker pool. While any result
    /// is outstanding, the epoch's `completes_at` is only a *lower bound*
    /// (Δ — the shortest possible run); [`Exchange::resolve_execution`]
    /// collects the results and installs the true wall.
    Queued {
        /// When the epoch entered `Executing` (and its jobs were queued).
        entered: SimTime,
        /// Results not yet received from the pool.
        pending: usize,
        /// Results received so far (arrival order; sorted at resolution).
        outcomes: Vec<SwapRunOutput>,
        /// Swaps whose job panicked on its worker.
        panicked: Vec<SwapId>,
    },
    /// Execution results resolved and merged, awaiting settlement.
    Executed(Vec<SwapRunOutput>),
    /// Placeholder while a transition consumes the payload.
    Taken,
}

/// One epoch somewhere in the pipeline.
#[derive(Debug)]
struct InFlightEpoch {
    epoch: u64,
    stage: EpochStage,
    /// When the current stage's simulated work completes. For an epoch in
    /// [`EpochWork::Queued`] state this is a lower bound until resolution.
    completes_at: SimTime,
    work: EpochWork,
}

/// The orchestrator: offers in, a pipeline of concurrent atomic-swap
/// epochs out.
///
/// # Example
///
/// ```
/// use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
/// use swap_market::AssetKind;
/// use swap_sim::SimRng;
///
/// let mut rng = SimRng::from_seed(9);
/// let mut exchange = Exchange::new(ExchangeConfig { threads: 2, ..Default::default() });
/// for (gives, wants) in [("btc", "eth"), ("eth", "btc"), ("usd", "gbp"), ("gbp", "usd")] {
///     exchange.submit(ExchangeParty::generate(
///         &mut rng,
///         4,
///         AssetKind::new(gives),
///         AssetKind::new(wants),
///     ));
/// }
/// let executed = exchange.drive_until_quiescent().unwrap();
/// assert_eq!(executed.len(), 2);
/// assert!(executed.iter().all(|s| s.report.all_deal()));
/// assert_eq!(exchange.report().swaps_settled, 2);
/// ```
#[derive(Debug)]
pub struct Exchange {
    config: ExchangeConfig,
    service: ClearingService,
    /// Hashlock material per submitted offer: the owning identity's
    /// address (the signing keys live in `identities`) plus the offer's
    /// secret, needed to drive the offer's party through the protocol once
    /// it is matched.
    material: BTreeMap<OfferId, (Address, Secret)>,
    /// The identity registry: one master MSS keypair per address, minted
    /// at first submit and leased leaf-by-leaf to successive swaps.
    identities: IdentityStore,
    /// The pipeline frontier: the simulated instant of the latest completed
    /// stage transition.
    now: SimTime,
    /// Epochs currently in the pipeline, admission order (front = oldest).
    in_flight: VecDeque<InFlightEpoch>,
    /// When each stage slot was last vacated (indexed by stage).
    vacated: [SimTime; 4],
    /// The simulated instant of the latest book change (submission or
    /// withdrawal) no clearing has seen; `None` while the book is clean.
    dirty_since: Option<SimTime>,
    /// The long-lived execution tier: every admitted swap of every
    /// executing epoch is queued here, tagged `(epoch, swap)`.
    pool: WorkerPool<JobTag, JobOutput>,
    /// Minted identities received from the pool, keyed by mint ticket,
    /// parked until [`Exchange::submit_seeded`] collects them in
    /// submission order.
    minted: BTreeMap<u64, MssKeypair>,
    /// Next mint-job ticket.
    mint_ticket: u64,
    /// The merged global ledger: every executed swap's chains, absorbed.
    ledger: ChainSet<AnyContract>,
    /// Storage totals of ledgers retired *before* this process — loaded
    /// from a snapshot. The live report's storage is always
    /// `archived_storage + ledger.storage_report()`, so recovery does not
    /// need to serialize (or replay into) the ledger itself.
    archived_storage: StorageReport,
    /// The journal, when this exchange is durable (see
    /// [`Exchange::with_journal`]).
    journal: Option<Journal>,
    report: ExchangeReport,
}

impl Exchange {
    /// Creates an exchange with an empty book at `t = 0`. The execution
    /// worker pool ([`ExchangeConfig::threads`] threads) is spawned here
    /// and lives as long as the exchange.
    pub fn new(config: ExchangeConfig) -> Exchange {
        let service = ClearingService::new()
            .with_leader_strategy(config.leader_strategy)
            .with_mode(config.clearing_mode);
        let pool = WorkerPool::new(config.threads);
        Exchange {
            config,
            service,
            material: BTreeMap::new(),
            identities: IdentityStore::new(),
            now: SimTime::ZERO,
            in_flight: VecDeque::new(),
            vacated: [SimTime::ZERO; 4],
            dirty_since: None,
            pool,
            minted: BTreeMap::new(),
            mint_ticket: 0,
            ledger: ChainSet::new(),
            archived_storage: StorageReport::default(),
            journal: None,
            report: ExchangeReport::default(),
        }
    }

    /// Submits a party's offer to the book, returning its id. Accepted at
    /// any time: an offer submitted while epochs are in flight is picked up
    /// by the *next* clearing delta — it does not wait for settlement.
    ///
    /// The party's address is registered in the identity store on first
    /// touch; a party resubmitting under the same address keeps its
    /// existing identity (and its consumed-leaf state), so re-submission
    /// can never rewind the one-time-key counter into leaf reuse.
    pub fn submit(&mut self, party: ExchangeParty) -> OfferId {
        self.journal_begin();
        let head = WalRecord::SubmitOffer {
            seed: *party.keypair.seed(),
            height: party.keypair.height() as u8,
            next_leaf: party.keypair.next_leaf(),
            secret: *party.secret.reveal(),
            gives: party.gives.0.clone(),
            wants: party.wants.0.clone(),
        };
        let Ok(Applied::Submitted(id)) = self.apply_transition(Transition::Submit(party)) else {
            unreachable!("submission is infallible")
        };
        self.journal_commit(head);
        id
    }

    /// Submits a batch of parties whose identities the *exchange* mints,
    /// on the worker pool.
    ///
    /// Minting a height-`h` identity derives `2^h` Lamport one-time keys —
    /// by far the most expensive operation in the pipeline. Queueing the
    /// keygen jobs here lets them run on idle pool workers *while
    /// previously admitted epochs execute*: in a rolling book, the next
    /// wave's keygen hides entirely under the current wave's swap runs
    /// ([`ExchangeReport::mints_overlapping_execution`] counts the jobs
    /// queued while an epoch occupied [`EpochStage::Executing`]). Offers
    /// are submitted in `seeds` order once every mint has landed, so the
    /// book — and everything downstream — is deterministic whatever the
    /// pool's thread count.
    ///
    /// Returns each offer's id and its identity's address; pass the
    /// address to [`resubmit`](Self::resubmit) to trade again with zero
    /// keygen.
    pub fn submit_seeded(&mut self, seeds: Vec<PartySeed>) -> Vec<(OfferId, Address)> {
        self.journal_begin();
        let head = WalRecord::SubmitSeeded {
            seeds: seeds
                .iter()
                .map(|spec| SeedRecord {
                    seed: spec.seed,
                    height: spec.key_height as u8,
                    secret: *spec.secret.reveal(),
                    gives: spec.gives.0.clone(),
                    wants: spec.wants.0.clone(),
                })
                .collect(),
        };
        let executing = self.in_flight.iter().any(|e| e.stage == EpochStage::Executing);
        let mut tickets = Vec::with_capacity(seeds.len());
        for spec in &seeds {
            let ticket = self.mint_ticket;
            self.mint_ticket += 1;
            let (seed, height) = (spec.seed, spec.key_height);
            self.pool.submit(JobTag::Mint(ticket), move || {
                JobOutput::Mint(MssKeypair::from_seed_with_height(seed, height))
            });
            tickets.push(ticket);
        }
        self.report.identities_minted += seeds.len() as u64;
        if executing {
            self.report.mints_overlapping_execution += seeds.len() as u64;
        }
        let out: Vec<(OfferId, Address)> = seeds
            .into_iter()
            .zip(tickets)
            .map(|(spec, ticket)| {
                while !self.minted.contains_key(&ticket) {
                    let completed = self.pool.recv();
                    self.absorb(completed);
                }
                let keypair = self.minted.remove(&ticket).expect("just observed");
                let address = keypair.public_key().address();
                self.journal_audit(WalRecord::IdentityMinted {
                    ticket,
                    address: *address.digest().as_bytes(),
                });
                let party = ExchangeParty {
                    keypair,
                    secret: spec.secret,
                    gives: spec.gives,
                    wants: spec.wants,
                };
                (self.submit(party), address)
            })
            .collect();
        self.journal_commit(head);
        out
    }

    /// Submits a fresh offer for an already-registered identity: the same
    /// signing key, a new secret, new terms — and zero keygen. Returns
    /// `None` if the address has no registered identity.
    pub fn resubmit(
        &mut self,
        address: Address,
        secret: Secret,
        gives: AssetKind,
        wants: AssetKind,
    ) -> Option<OfferId> {
        self.journal_begin();
        let head = WalRecord::Resubmit {
            address: *address.digest().as_bytes(),
            secret: *secret.reveal(),
            gives: gives.0.clone(),
            wants: wants.0.clone(),
        };
        match self.apply_transition(Transition::Resubmit { address, secret, gives, wants }) {
            Ok(Applied::Submitted(id)) => {
                self.journal_commit(head);
                Some(id)
            }
            Err(TransitionError::UnknownAddress) => {
                // Nothing happened; an unknown address leaves no trace in
                // the log either.
                self.journal_abort();
                None
            }
            other => unreachable!("resubmission yielded {other:?}"),
        }
    }

    /// Withdraws an open offer (see [`ClearingService::cancel`]). Accepted
    /// at any time; an offer that a clearing already matched into an
    /// in-flight swap is no longer `Open` and the cancel fails — a
    /// provisioned swap is never unwound.
    ///
    /// # Errors
    ///
    /// [`CancelError`] if the offer is unknown or no longer open.
    pub fn cancel(&mut self, id: OfferId) -> Result<(), CancelError> {
        self.journal_begin();
        match self.apply_transition(Transition::Cancel(id)) {
            Ok(Applied::Cancelled) => {
                self.journal_commit(WalRecord::Cancel { offer: id.raw() });
                Ok(())
            }
            Err(TransitionError::Cancel(e)) => {
                self.journal_abort();
                Err(e)
            }
            other => unreachable!("cancellation yielded {other:?}"),
        }
    }

    /// The pipeline frontier: the simulated instant of the latest completed
    /// stage transition.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlying clearing service (offer statuses, epoch counter).
    pub fn service(&self) -> &ClearingService {
        &self.service
    }

    /// The merged global ledger across every executed swap.
    pub fn ledger(&self) -> &ChainSet<AnyContract> {
        &self.ledger
    }

    /// The identity registry: one master keypair per address, with
    /// consumed-leaf accounting.
    pub fn identities(&self) -> &IdentityStore {
        &self.identities
    }

    /// The aggregate report so far.
    pub fn report(&self) -> &ExchangeReport {
        &self.report
    }

    /// Consumes the exchange, yielding the final aggregate report.
    pub fn into_report(self) -> ExchangeReport {
        self.report
    }

    /// The in-flight epochs and the stage each occupies, oldest first.
    pub fn stages(&self) -> Vec<(u64, EpochStage)> {
        self.in_flight.iter().map(|e| (e.epoch, e.stage)).collect()
    }

    /// The stage `epoch` currently occupies, if it is in flight.
    pub fn stage_of(&self, epoch: u64) -> Option<EpochStage> {
        self.in_flight.iter().find(|e| e.epoch == epoch).map(|e| e.stage)
    }

    /// True when nothing is in flight and no submission awaits clearing.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty() && self.dirty_since.is_none()
    }

    /// Advances the pipeline by exactly one stage transition and reports
    /// what happened. Transitions are processed in simulated-time order:
    ///
    /// * a new epoch is admitted into [`EpochStage::Clearing`] whenever the
    ///   slot is free and the book has submissions no clearing has seen;
    /// * otherwise the in-flight epoch with the earliest admissible
    ///   transition advances one stage (respecting slot budgets and
    ///   admission order — this is what overlaps epoch `k+1`'s clearing,
    ///   provisioning, and, with more than one
    ///   [execution slot](ExchangeConfig::executing_slots), *execution*
    ///   with epoch `k`'s execution);
    /// * with nothing to do, [`StepEvent::Quiescent`] is returned and the
    ///   exchange is unchanged.
    ///
    /// An epoch whose pool results are still outstanding carries only a
    /// *lower bound* on its execution completion; `step` blocks on the
    /// pool (resolving the true completion) only once that bound undercuts
    /// every transition already known — so the host-side execution of one
    /// epoch overlaps both the bookkeeping and the execution of the next,
    /// while the simulated trace stays deterministic.
    ///
    /// # Example
    ///
    /// ```
    /// use swap_core::exchange::{EpochStage, Exchange, ExchangeConfig, ExchangeParty, StepEvent};
    /// use swap_market::AssetKind;
    /// use swap_sim::SimRng;
    ///
    /// let mut rng = SimRng::from_seed(5);
    /// let mut exchange = Exchange::new(ExchangeConfig::default());
    /// for (gives, wants) in [("btc", "eth"), ("eth", "btc")] {
    ///     exchange.submit(ExchangeParty::generate(
    ///         &mut rng,
    ///         4,
    ///         AssetKind::new(gives),
    ///         AssetKind::new(wants),
    ///     ));
    /// }
    /// // Admission, three advances, retirement, quiescence.
    /// let mut stages = Vec::new();
    /// loop {
    ///     match exchange.step().unwrap() {
    ///         StepEvent::StageEntered { stage, .. } => stages.push(stage),
    ///         StepEvent::EpochSettled { executed, .. } => {
    ///             assert_eq!(executed.len(), 1);
    ///             break;
    ///         }
    ///         StepEvent::Quiescent => unreachable!("an epoch is in flight"),
    ///     }
    /// }
    /// assert_eq!(stages, EpochStage::ALL.to_vec());
    /// assert!(exchange.is_quiescent());
    /// ```
    ///
    /// # Errors
    ///
    /// [`ExchangeError::Clear`] if cycle assembly fails (no offer changes
    /// status and no epoch is admitted); [`ExchangeError::Verify`] if a
    /// published swap betrays an offer — nothing was escrowed, and every
    /// swap of that epoch is torn down (its offers become `Refunded`), so
    /// the book is never wedged with permanently-`Matched` offers;
    /// [`ExchangeError::WorkerPanicked`] if a swap's engine panicked on
    /// its worker — that swap's offers are refunded, its siblings' results
    /// survive and settle normally. The pipeline stays consistent in every
    /// case and further `step` calls keep driving the remaining epochs.
    pub fn step(&mut self) -> Result<StepEvent, ExchangeError> {
        self.journal_begin();
        let outcome = self.step_inner();
        match &outcome {
            Ok(StepEvent::StageEntered { epoch, stage, at }) => {
                self.journal_commit(WalRecord::StageEntered {
                    epoch: *epoch,
                    stage: stage_tag(*stage),
                    at: at.ticks(),
                });
            }
            Ok(StepEvent::EpochSettled { epoch, at, executed }) => {
                self.journal_commit(WalRecord::EpochSettled {
                    epoch: *epoch,
                    at: at.ticks(),
                    swaps: executed.iter().map(|s| s.id.raw()).collect(),
                });
                self.maybe_snapshot();
            }
            Ok(StepEvent::Quiescent) => {
                // A quiescent step mutates nothing: no record.
                self.journal_abort();
            }
            Err(error) => {
                // Failed steps mutate too (teardowns, refunds): the error
                // step is a command like any other, replayed on recovery.
                self.journal_commit(WalRecord::StepFailed { error: fail_tag(error) });
            }
        }
        outcome
    }

    /// [`step`](Self::step) minus the journaling envelope.
    fn step_inner(&mut self) -> Result<StepEvent, ExchangeError> {
        // Admission first: the clearing slot feeds the pipeline.
        let clearing_busy = self.in_flight.iter().any(|e| e.stage == EpochStage::Clearing);
        if !clearing_busy {
            if let Some(dirty_at) = self.dirty_since {
                let entered = dirty_at.max(self.vacated[EpochStage::Clearing.index()]);
                return self.admit(entered);
            }
        }
        // Otherwise: the admissible transition earliest in simulated time.
        // An epoch still waiting on pool results ([`EpochWork::Queued`])
        // only has a *lower bound* on its transition time; it is resolved
        // (blocking on the pool channel) lazily, only once that bound
        // undercuts every transition already known — any transition known
        // to be strictly earlier is processed first, which is what lets
        // the host finish epoch `k`'s swaps while the pipeline books (and
        // queues) epoch `k+1`. Resolution is host-order-independent, so
        // the simulated trace is deterministic either way.
        loop {
            let mut best: Option<(usize, SimTime)> = None;
            let mut unresolved: Option<(usize, SimTime)> = None;
            for (i, epoch) in self.in_flight.iter().enumerate() {
                if !self.may_advance(i) {
                    continue;
                }
                let entry = self.entry_time(i);
                if matches!(epoch.work, EpochWork::Queued { .. }) {
                    if unresolved.map_or(true, |(_, t)| entry < t) {
                        unresolved = Some((i, entry));
                    }
                } else if best.map_or(true, |(_, t)| entry < t) {
                    best = Some((i, entry));
                }
            }
            match (best, unresolved) {
                (Some((i, entry)), Some((_, bound))) if entry < bound => {
                    return self.advance(i, entry);
                }
                (_, Some((i, _))) => self.resolve_execution(i)?,
                (Some((i, entry)), None) => return self.advance(i, entry),
                (None, None) => return Ok(StepEvent::Quiescent),
            }
        }
    }

    /// Whether the `i`-th in-flight epoch's next transition respects the
    /// slot budgets and admission order: the single-epoch stages must be
    /// free of epochs ahead, entry into `Executing` requires a free
    /// execution slot, and departure from `Executing` waits for every
    /// older epoch to clear both `Executing` and `Settling` (epochs retire
    /// in admission order even when their executions overlapped).
    fn may_advance(&self, i: usize) -> bool {
        let epoch = &self.in_flight[i];
        let mut ahead = self.in_flight.iter().take(i);
        match epoch.stage.next() {
            Some(EpochStage::Executing) => {
                let resident = ahead.filter(|a| a.stage == EpochStage::Executing).count();
                resident < self.config.executing_slots.max(1)
            }
            Some(EpochStage::Settling) => {
                !ahead.any(|a| a.stage == EpochStage::Executing || a.stage == EpochStage::Settling)
            }
            Some(next) => !ahead.any(|a| a.stage == next),
            None => true,
        }
    }

    /// The simulated instant the `i`-th epoch's next transition happens:
    /// the later of its own stage completion (a lower bound while its pool
    /// results are outstanding) and the moment the next stage's slot was
    /// last vacated. Transitions are processed in simulated-time order, so
    /// a stale vacate time never inflates an entry: any vacate later than
    /// this entry belongs to a transition that has not been processed yet.
    fn entry_time(&self, i: usize) -> SimTime {
        let epoch = &self.in_flight[i];
        match epoch.stage.next() {
            Some(next) => epoch.completes_at.max(self.vacated[next.index()]),
            None => epoch.completes_at,
        }
    }

    /// Steps the pipeline until it is [quiescent](Exchange::is_quiescent),
    /// returning every swap executed along the way (each retiring epoch's
    /// swaps in ascending swap-id order). Offers that never matched stay
    /// `Open` in the book — quiescence means no epoch is in flight *and*
    /// no submission has arrived since the last clearing, not an empty
    /// book.
    ///
    /// # Example
    ///
    /// ```
    /// use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
    /// use swap_market::AssetKind;
    /// use swap_sim::SimRng;
    ///
    /// let mut rng = SimRng::from_seed(7);
    /// let mut exchange = Exchange::new(ExchangeConfig::default());
    /// for (gives, wants) in [("usd", "gbp"), ("gbp", "usd"), ("doge", "usd")] {
    ///     exchange.submit(ExchangeParty::generate(
    ///         &mut rng,
    ///         4,
    ///         AssetKind::new(gives),
    ///         AssetKind::new(wants),
    ///     ));
    /// }
    /// let executed = exchange.drive_until_quiescent().unwrap();
    /// assert_eq!(executed.len(), 1); // the usd/gbp ring; doge has no taker
    /// assert!(exchange.is_quiescent());
    /// assert_eq!(exchange.service().open_count(), 1); // doge rolls over
    /// ```
    ///
    /// # Errors
    ///
    /// Stops at the first [`ExchangeError`] a step raises, returned inside
    /// a [`DriveError`] together with every swap that had already settled
    /// during this drive (partial results are never lost). The pipeline
    /// stays consistent and the drive can be resumed by calling this
    /// again.
    pub fn drive_until_quiescent(&mut self) -> Result<Vec<ExecutedSwap>, DriveError> {
        let mut executed = Vec::new();
        loop {
            match self.step() {
                Ok(StepEvent::EpochSettled { executed: mut swaps, .. }) => {
                    executed.append(&mut swaps);
                }
                Ok(StepEvent::Quiescent) => return Ok(executed),
                Ok(StepEvent::StageEntered { .. }) => {}
                Err(error) => return Err(DriveError { error, executed }),
            }
        }
    }

    /// Admits a new epoch into the clearing stage at `entered`.
    fn admit(&mut self, entered: SimTime) -> Result<StepEvent, ExchangeError> {
        // Plan first, price from the plan's *measured* work (offers the
        // matcher examined, cycles it emitted), then publish at the priced
        // completion instant: the cost must be known before `commit`
        // because every published start is "at least Δ in the future" of
        // the publication instant.
        let plan = self.service.plan();
        let stats = *plan.stats();
        let costs = &self.config.stage_costs;
        let cost = costs.clearing_base
            + costs.clearing_per_examined * stats.offers_examined
            + costs.clearing_per_cycle * stats.cycles_emitted;
        let completes = entered + SimDuration::from_ticks(cost);
        let cleared = match self.service.commit(plan, self.config.delta, completes) {
            Ok(cleared) => cleared,
            Err(e) => {
                // `commit` is transactional — the book is untouched — but a
                // book that fails to clear would fail identically on every
                // retry, and retrying admission first on each `step` would
                // starve the in-flight epochs. Report the error once and
                // drop the dirty mark; the next `submit` or `cancel` (the
                // only ways the book can change) re-marks it.
                self.dirty_since = None;
                return Err(e.into());
            }
        };
        self.dirty_since = None;
        let epoch = self.service.epoch() - 1;
        self.journal_audit(WalRecord::PlanCommitted {
            epoch,
            cycles: cleared.len() as u64,
            offers_examined: stats.offers_examined,
            offers_matched: stats.offers_matched,
        });
        self.report.epochs += 1;
        self.now = self.now.max(entered);
        self.in_flight.push_back(InFlightEpoch {
            epoch,
            stage: EpochStage::Clearing,
            completes_at: completes,
            work: EpochWork::Cleared(cleared),
        });
        Ok(StepEvent::StageEntered { epoch, stage: EpochStage::Clearing, at: entered })
    }

    /// Advances the `i`-th in-flight epoch out of its current stage, with
    /// the next stage entered (or the epoch retired) at `entry`.
    fn advance(&mut self, i: usize, entry: SimTime) -> Result<StepEvent, ExchangeError> {
        let leaving = self.in_flight[i].stage;
        let published_at = self.in_flight[i].completes_at;
        // Attribute the frontier advance to the stage being left, then
        // vacate its slot for the epoch behind.
        let dt = if entry > self.now { (entry - self.now).ticks() } else { 0 };
        // Executing-stage occupancy integral, over the pre-transition
        // state: every epoch resident in the stage was resident for the
        // whole advance (transitions are processed in time order).
        let resident =
            self.in_flight.iter().filter(|e| e.stage == EpochStage::Executing).count() as u64;
        self.report.executing_resident_ticks += dt * resident;
        self.now = self.now.max(entry);
        self.report.wall_ticks += dt;
        self.report.stage_ticks.charge(leaving, dt);
        self.vacated[leaving.index()] = entry;
        let epoch = self.in_flight[i].epoch;
        let work = std::mem::replace(&mut self.in_flight[i].work, EpochWork::Taken);
        let costs = self.config.stage_costs;
        match (leaving, work) {
            (EpochStage::Clearing, EpochWork::Cleared(cleared)) => {
                // The service is untrusted: every party re-checks its slot
                // at publication, before anything is provisioned, let alone
                // escrowed (§4.2).
                if let Err(error) = self.verify_epoch(&cleared, published_at) {
                    // Nothing was escrowed, but `clear` already consumed
                    // the matched offers — tear every cleared swap down so
                    // the lifecycle resolves instead of wedging in
                    // `Matched`.
                    for swap in &cleared {
                        self.apply_transition(Transition::TearDown(swap.id))
                            .expect("teardown is infallible");
                    }
                    self.report.swaps_cleared += cleared.len() as u64;
                    self.in_flight.remove(i);
                    return Err(error);
                }
                // Provision each cycle by *leasing* one-time leaf windows
                // from the identity registry: `leaders + 1` signatures per
                // party covers every signing the §4.5/§4.6 engines can
                // perform (one base chain or premature announce, plus one
                // extension per leader). An identity with too few unused
                // leaves fails only its own swap, checked: that swap is
                // refunded here (no leaves consumed) and its siblings
                // provision normally.
                let mut provisioned = Vec::with_capacity(cleared.len());
                let mut exhausted: Vec<(SwapId, Address)> = Vec::new();
                let mut released: BTreeSet<Address> = BTreeSet::new();
                let mut parties = 0u64;
                for swap in cleared {
                    let budget = swap.spec.leaders.len() as u64 + 1;
                    // Cumulative need per address (one slot per party per
                    // swap in practice; stay safe about duplicates).
                    let mut need: BTreeMap<Address, u64> = BTreeMap::new();
                    for oid in &swap.offer_of_vertex {
                        *need.entry(self.material[oid].0).or_insert(0) += budget;
                    }
                    let short = need.iter().find_map(|(address, n)| {
                        (self.identities.remaining(address).unwrap_or(0) < *n).then_some(*address)
                    });
                    if let Some(address) = short {
                        let Ok(Applied::Resolved(freed)) =
                            self.apply_transition(Transition::Refund {
                                swap: swap.id,
                                exhausted: true,
                            })
                        else {
                            unreachable!("refunds are infallible")
                        };
                        released.extend(freed);
                        self.report.swaps_cleared += 1;
                        exhausted.push((swap.id, address));
                        continue;
                    }
                    parties += swap.spec.digraph.vertex_count() as u64;
                    let mut keypairs = Vec::with_capacity(swap.offer_of_vertex.len());
                    for oid in &swap.offer_of_vertex {
                        let address = self.material[oid].0;
                        let lease = self
                            .identities
                            .lease(&address, budget)
                            .expect("availability checked before leasing");
                        self.journal_audit(WalRecord::LeavesLeased {
                            swap: swap.id.raw(),
                            address: *address.digest().as_bytes(),
                            count: budget,
                        });
                        keypairs.push(lease);
                    }
                    let secrets =
                        swap.offer_of_vertex.iter().map(|oid| self.material[oid].1).collect();
                    let swap =
                        ProvisionedSwap::new(swap, keypairs, secrets, self.config.run.clone());
                    provisioned.push(match self.config.protocol {
                        ProtocolPolicy::Auto => swap,
                        ProtocolPolicy::ForceHashkey => swap.with_protocol(ProtocolKind::Hashkey),
                    });
                }
                self.report.leaves_leased = self.identities.leaves_leased();
                // A refunded party's deferred counterparties get the next
                // clearing's attention, exactly as settlement would grant.
                if !released.is_empty() && self.service.any_deferred_from(&released) {
                    self.dirty_since = Some(self.now);
                }
                let cost = costs.provisioning_base + costs.provisioning_per_party * parties;
                self.enter(
                    i,
                    EpochStage::Provisioning,
                    entry,
                    cost,
                    EpochWork::Provisioned(provisioned),
                );
                exhausted.sort_by_key(|&(swap, _)| swap);
                if let Some(&(swap, address)) = exhausted.first() {
                    return Err(ExchangeError::KeysExhausted { swap, address });
                }
                Ok(StepEvent::StageEntered { epoch, stage: EpochStage::Provisioning, at: entry })
            }
            (EpochStage::Provisioning, EpochWork::Provisioned(provisioned)) => {
                // Execution admission: each provisioned swap is stamped
                // onto the timeline here — chains created, start rebased to
                // `entry + Δ` — and queued onto the shared worker pool
                // immediately. The epoch's completion is provisionally its
                // Δ lower bound (the shortest possible run); the true wall
                // — the slowest swap's — is installed once the results
                // resolve.
                let pending = provisioned.len();
                for p in provisioned {
                    let admitted = p.admit_for_queue(entry);
                    let tag = JobTag::Swap(admitted.epoch, admitted.swap);
                    self.pool.submit(tag, move || JobOutput::Swap(Box::new(admitted.execute())));
                }
                let resident =
                    1 + self.in_flight.iter().filter(|e| e.stage == EpochStage::Executing).count()
                        as u64;
                self.report.executing_peak = self.report.executing_peak.max(resident);
                let work = EpochWork::Queued {
                    entered: entry,
                    pending,
                    outcomes: Vec::new(),
                    panicked: Vec::new(),
                };
                self.enter(i, EpochStage::Executing, entry, self.config.delta.ticks(), work);
                Ok(StepEvent::StageEntered { epoch, stage: EpochStage::Executing, at: entry })
            }
            (EpochStage::Executing, EpochWork::Executed(results)) => {
                let cost = costs.settling_base + costs.settling_per_swap * results.len() as u64;
                self.enter(i, EpochStage::Settling, entry, cost, EpochWork::Executed(results));
                Ok(StepEvent::StageEntered { epoch, stage: EpochStage::Settling, at: entry })
            }
            (EpochStage::Settling, EpochWork::Executed(results)) => {
                let executed = self.retire(results);
                self.in_flight.remove(i);
                Ok(StepEvent::EpochSettled { epoch, at: entry, executed })
            }
            (stage, work) => unreachable!("stage {stage} holds mismatched work {work:?}"),
        }
    }

    /// Moves the `i`-th in-flight epoch into `stage` at `entered`, with the
    /// given simulated duration and payload.
    fn enter(
        &mut self,
        i: usize,
        stage: EpochStage,
        entered: SimTime,
        ticks: u64,
        work: EpochWork,
    ) {
        let epoch = &mut self.in_flight[i];
        epoch.stage = stage;
        epoch.completes_at = entered + SimDuration::from_ticks(ticks);
        epoch.work = work;
    }

    /// Resolves the `i`-th epoch's execution: blocks on the pool until
    /// every outstanding result of the epoch has arrived (results
    /// belonging to *other* executing epochs are stashed into their
    /// buffers as they surface — the channel is shared), merges the
    /// outcomes in swap-id order, and installs the epoch's true execution
    /// wall — the slowest swap's run, a pure function of the deterministic
    /// per-swap reports, never of which worker ran what when.
    ///
    /// Panicked swaps fail here, and only here: each one's offers are
    /// refunded (its parties' clearing reservations released), the
    /// surviving outcomes stay installed so they settle normally on later
    /// steps, and the first panicked swap id is reported as
    /// [`ExchangeError::WorkerPanicked`].
    fn resolve_execution(&mut self, i: usize) -> Result<(), ExchangeError> {
        while matches!(&self.in_flight[i].work, EpochWork::Queued { pending, .. } if *pending > 0) {
            let completed = self.pool.recv();
            self.absorb(completed);
        }
        let work = std::mem::replace(&mut self.in_flight[i].work, EpochWork::Taken);
        let EpochWork::Queued { entered, mut outcomes, mut panicked, .. } = work else {
            unreachable!("resolve_execution on a non-queued epoch")
        };
        // Arrival order is a host-scheduling artifact; everything
        // observable is re-ordered by swap id.
        outcomes.sort_by_key(|o| o.swap);
        panicked.sort();
        let delta = self.config.delta;
        let mut wall = delta.ticks();
        for o in &outcomes {
            // The swap occupies rounds 0..=rounds, each Δ long. (A
            // panicked swap contributes nothing: its run never finished,
            // and its epoch does not wait on it.)
            wall = wall.max(delta.ticks() * (o.report.metrics.rounds + 1));
        }
        self.in_flight[i].completes_at = entered + SimDuration::from_ticks(wall);
        self.in_flight[i].work = EpochWork::Executed(outcomes);
        if panicked.is_empty() {
            return Ok(());
        }
        // Fail the panicked swaps — and only them. Their offers refund so
        // the lifecycle resolves instead of wedging in `Matched`, and
        // their parties' reservations release exactly as settlement would.
        let mut released: BTreeSet<Address> = BTreeSet::new();
        for &id in &panicked {
            let Ok(Applied::Resolved(freed)) =
                self.apply_transition(Transition::Refund { swap: id, exhausted: false })
            else {
                unreachable!("refunds are infallible")
            };
            released.extend(freed);
            self.report.swaps_cleared += 1;
        }
        if !released.is_empty() && self.service.any_deferred_from(&released) {
            self.dirty_since = Some(self.now);
        }
        Err(ExchangeError::WorkerPanicked(panicked[0]))
    }

    /// Routes one pool result to its owner: swap results into the owning
    /// epoch's [`EpochWork::Queued`] buffer, minted identities into the
    /// mint stash. The result channel is shared, so both
    /// [`resolve_execution`](Self::resolve_execution) and
    /// [`submit_seeded`](Self::submit_seeded) drain through here —
    /// whichever blocks first absorbs whatever surfaces.
    fn absorb(&mut self, completed: Completed<JobTag, JobOutput>) {
        match completed.tag {
            JobTag::Mint(ticket) => {
                let output = completed.result.expect("identity minting does not panic");
                let JobOutput::Mint(keypair) = output else {
                    unreachable!("mint ticket {ticket} returned a swap result")
                };
                self.minted.insert(ticket, keypair);
            }
            JobTag::Swap(epoch, swap) => {
                let slot = self
                    .in_flight
                    .iter_mut()
                    .find(|e| e.epoch == epoch)
                    .expect("every queued epoch is in flight until resolved");
                let EpochWork::Queued { pending, outcomes, panicked, .. } = &mut slot.work else {
                    unreachable!("epoch {epoch} received a result but is not queued")
                };
                *pending -= 1;
                match completed.result {
                    Ok(JobOutput::Swap(output)) => outcomes.push(*output),
                    Ok(JobOutput::Mint(_)) => {
                        unreachable!("swap job for {swap} returned a minted identity")
                    }
                    Err(_) => panicked.push(swap),
                }
            }
        }
    }

    /// Resolves a fully executed epoch: offer lifecycle, aggregate report,
    /// ledger absorption. Results arrive (and are reported) in swap-id
    /// order whatever worker ran them.
    fn retire(&mut self, results: Vec<SwapRunOutput>) -> Vec<ExecutedSwap> {
        let mut out = Vec::with_capacity(results.len());
        // Resolution releases these parties' clearing reservations.
        let mut released: BTreeSet<Address> = BTreeSet::new();
        for SwapRunOutput { swap: id, epoch, protocol, report, setup } in results {
            let spec = &setup.spec;
            let all_deal = report.all_deal();
            let transition = if all_deal {
                Transition::Settle(id)
            } else {
                Transition::Refund { swap: id, exhausted: false }
            };
            let Ok(Applied::Resolved(freed)) = self.apply_transition(transition) else {
                unreachable!("settlements and refunds are infallible")
            };
            released.extend(freed);
            self.report.swaps.push(SwapSummary {
                swap: id,
                epoch,
                parties: spec.digraph.vertex_count(),
                leaders: spec.leaders.len(),
                protocol,
                settled: report.settled,
                all_deal,
                rounds: report.metrics.rounds,
                metrics: report.metrics,
            });
            for (_, chain) in setup.chains.iter() {
                self.report.tx_executed += chain.txs_executed();
                self.report.tx_rolled_back += chain.txs_rolled_back();
            }
            self.ledger.absorb(setup.chains);
            out.push(ExecutedSwap { id, epoch, report });
        }
        self.report.swaps_cleared += out.len() as u64;
        self.report.storage = self.archived_storage.merge(&self.ledger.storage_report());
        // If a released party still has an offer sitting `Open` that a
        // clearing *skipped while the party was reserved*, wake the
        // pipeline so the next clearing picks it up. Without this, the
        // deferred offer would strand until some unrelated submission
        // re-dirtied the book. Ordinary no-counterparty leftovers are not
        // deferred, so settlements never admit phantom epochs for them —
        // and zero-swap epochs release nothing, so this can never re-admit
        // clearings forever.
        if !released.is_empty() && self.service.any_deferred_from(&released) {
            self.dirty_since = Some(self.now);
        }
        out
    }

    /// Re-checks every cleared slot against the party's original offer, as
    /// of the publication instant `published_at`.
    fn verify_epoch(
        &self,
        cleared: &[ClearedSwap],
        published_at: SimTime,
    ) -> Result<(), ExchangeError> {
        for swap in cleared {
            for (pos, oid) in swap.offer_of_vertex.iter().enumerate() {
                let vertex = VertexId::new(pos as u32);
                let offer = self.service.offer(*oid).expect("cleared offers exist");
                verify_cleared_swap(swap, vertex, offer, published_at)
                    .map_err(|error| ExchangeError::Verify { swap: swap.id, vertex, error })?;
            }
        }
        Ok(())
    }

    // ─── The durability choke point ──────────────────────────────────────

    /// Applies one offer/swap lifecycle mutation. **Every** mutation of the
    /// book, the offer-material map, the identity registry's registration
    /// path, and the report's lifecycle tallies goes through here — the
    /// single place audit records are emitted, so the WAL cannot silently
    /// miss a mutation path.
    fn apply_transition(&mut self, transition: Transition) -> Result<Applied, TransitionError> {
        match transition {
            Transition::Submit(party) => {
                let offer = party.offer();
                let (address, first) = self.identities.register(party.keypair);
                if first {
                    self.report.identities_registered += 1;
                    self.journal_audit(WalRecord::IdentityRegistered {
                        address: *address.digest().as_bytes(),
                    });
                }
                let id = self.service.submit(offer);
                self.material.insert(id, (address, party.secret));
                self.report.offers_submitted += 1;
                // The *latest* unseen change: the next clearing scans the
                // book as of admission, so it cannot start before this
                // submission exists.
                self.dirty_since = Some(self.now);
                Ok(Applied::Submitted(id))
            }
            Transition::Resubmit { address, secret, gives, wants } => {
                let key =
                    self.identities.public_key(&address).ok_or(TransitionError::UnknownAddress)?;
                let id =
                    self.service.submit(Offer { key, hashlock: secret.hashlock(), gives, wants });
                self.material.insert(id, (address, secret));
                self.report.offers_submitted += 1;
                self.dirty_since = Some(self.now);
                Ok(Applied::Submitted(id))
            }
            Transition::Cancel(id) => {
                self.service.cancel(id).map_err(TransitionError::Cancel)?;
                self.material.remove(&id);
                self.report.offers_cancelled += 1;
                // A withdrawal changes the open book too: the next clearing
                // gets a look (this is also the recovery path after a
                // failed admission).
                self.dirty_since = Some(self.now);
                Ok(Applied::Cancelled)
            }
            Transition::Settle(swap) => {
                let released = self.release_swap_material(swap);
                self.service.settle_swap(swap).expect("issued this epoch");
                self.report.swaps_settled += 1;
                self.journal_audit(WalRecord::SwapSettled { swap: swap.raw() });
                Ok(Applied::Resolved(released))
            }
            Transition::Refund { swap, exhausted } => {
                let released = self.release_swap_material(swap);
                self.service.refund_swap(swap).expect("issued this epoch");
                self.report.swaps_refunded += 1;
                if exhausted {
                    self.report.swaps_exhausted += 1;
                }
                self.journal_audit(WalRecord::SwapRefunded { swap: swap.raw(), exhausted });
                Ok(Applied::Resolved(released))
            }
            Transition::TearDown(swap) => {
                // Unlike a refund, a teardown tracks no released
                // reservations: nothing was provisioned, so no deferred
                // counterparty is owed a wake-up.
                let offers: Vec<OfferId> =
                    self.service.offers_of_swap(swap).map(<[_]>::to_vec).unwrap_or_default();
                self.service.refund_swap(swap).expect("issued this epoch");
                for oid in &offers {
                    self.material.remove(oid);
                }
                self.report.swaps_refunded += 1;
                self.journal_audit(WalRecord::SwapRefunded { swap: swap.raw(), exhausted: false });
                Ok(Applied::TornDown)
            }
        }
    }

    /// Drops a resolving swap's key material and collects the addresses
    /// whose clearing reservations the resolution releases. Runs *before*
    /// the swap's status flips (settle/refund), while the offer→swap
    /// relation is still live.
    fn release_swap_material(&mut self, swap: SwapId) -> BTreeSet<Address> {
        let offers: Vec<OfferId> =
            self.service.offers_of_swap(swap).map(<[_]>::to_vec).unwrap_or_default();
        let mut released = BTreeSet::new();
        for oid in offers {
            self.material.remove(&oid);
            if let Some(offer) = self.service.offer(oid) {
                released.insert(offer.key.address());
            }
        }
        released
    }

    // ─── Journaling ──────────────────────────────────────────────────────

    /// Creates a *durable* exchange journaling into `journal.dir`: every
    /// public operation appends one record group (command head + audit
    /// records) to the write-ahead log before returning, and settled
    /// epochs periodically snapshot the whole state and truncate the log
    /// (see [`JournalConfig::snapshot_every`]). Any store files already in
    /// the directory are removed — this constructor starts a *new* life;
    /// use [`Exchange::recover`] to resume a previous one.
    ///
    /// Durability is simulation-scale, not production-scale: the WAL
    /// stores party seeds and swap secrets in plaintext (replay has to
    /// re-derive keys and hashlocks), and a journal write failure panics —
    /// the public operation signatures carry no I/O errors.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating the store directory or the log.
    pub fn with_journal(config: ExchangeConfig, journal: JournalConfig) -> io::Result<Exchange> {
        std::fs::create_dir_all(&journal.dir)?;
        for entry in std::fs::read_dir(&journal.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale = name == WAL_FILE
                || (name.starts_with("snap-")
                    && (name.ends_with(".snap") || name.ends_with(".tmp")));
            if stale {
                std::fs::remove_file(entry.path())?;
            }
        }
        let wal = Wal::create(&journal.dir, journal.group_commit)?;
        let mut exchange = Exchange::new(config);
        exchange.journal = Some(Journal {
            sink: JournalSink::Wal(wal),
            dir: journal.dir,
            snapshot_every: journal.snapshot_every,
            settled_since_snapshot: 0,
            pending: Vec::new(),
            depth: 0,
        });
        Ok(exchange)
    }

    /// Flushes the journal's group-commit buffer and forces it to disk.
    /// A no-op on a non-durable exchange.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn sync_journal(&mut self) -> io::Result<()> {
        if let Some(journal) = &mut self.journal {
            if let JournalSink::Wal(wal) = &mut journal.sink {
                wal.sync()?;
            }
        }
        Ok(())
    }

    /// Opens a journaled public operation (one record group).
    fn journal_begin(&mut self) {
        if let Some(journal) = &mut self.journal {
            journal.depth += 1;
        }
    }

    /// Closes a journaled operation that mutated nothing: no record.
    fn journal_abort(&mut self) {
        if let Some(journal) = &mut self.journal {
            journal.depth -= 1;
            debug_assert!(
                journal.depth > 0 || journal.pending.is_empty(),
                "aborted operation left audit records pending"
            );
        }
    }

    /// Closes a journaled operation, committing its group: the command
    /// `head` first, then every audit record the operation emitted.
    fn journal_commit(&mut self, head: WalRecord) {
        let Some(journal) = &mut self.journal else { return };
        journal.depth -= 1;
        if journal.depth > 0 {
            // A nested operation (`submit_seeded` calls `submit`): its head
            // is implied by the outer command — replaying the outer command
            // re-runs it — so only its audits stay pending, for the outer
            // group.
            return;
        }
        let mut group = Vec::with_capacity(1 + journal.pending.len());
        group.push(head);
        group.append(&mut journal.pending);
        match &mut journal.sink {
            JournalSink::Wal(wal) => wal.append_group(&group).expect("journal append failed"),
            JournalSink::Capture(captured) => captured.extend(group),
        }
    }

    /// Emits an audit record into the operation in progress.
    fn journal_audit(&mut self, record: WalRecord) {
        if let Some(journal) = &mut self.journal {
            journal.pending.push(record);
        }
    }

    /// Counts a settled epoch toward the snapshot interval and snapshots
    /// if due — but only at a pipeline-empty point, the one state the
    /// snapshot format represents. Capture (replay) mode never snapshots:
    /// recovery reproduces the live run's records, not its snapshot
    /// schedule.
    fn maybe_snapshot(&mut self) {
        let due = match &mut self.journal {
            Some(j) if matches!(j.sink, JournalSink::Wal(_)) && j.snapshot_every > 0 => {
                j.settled_since_snapshot += 1;
                j.settled_since_snapshot >= j.snapshot_every
            }
            _ => false,
        };
        if due && self.in_flight.is_empty() {
            self.snapshot_now().expect("journal snapshot failed");
        }
    }

    /// Writes a snapshot of the whole state and truncates the WAL. A no-op
    /// on a non-durable exchange, during recovery replay, and on a journal
    /// that has logged nothing yet.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    ///
    /// # Panics
    ///
    /// If epochs are in flight — the snapshot format deliberately cannot
    /// represent mid-pipeline engine state. [`maybe_snapshot`] only calls
    /// this at pipeline-empty points; external callers must do the same.
    ///
    /// [`maybe_snapshot`]: Exchange::step
    pub fn snapshot_now(&mut self) -> io::Result<()> {
        let Some((last_seq, dir)) = self.journal.as_ref().and_then(|j| match &j.sink {
            JournalSink::Wal(wal) if wal.next_seq() > 0 => {
                Some((wal.next_seq() - 1, j.dir.clone()))
            }
            _ => None,
        }) else {
            return Ok(());
        };
        assert!(self.in_flight.is_empty(), "snapshots are only taken at pipeline-empty points");
        let snap = self.build_snapshot(last_seq);
        write_snapshot(&dir, &snap)?;
        let journal = self.journal.as_mut().expect("checked above");
        journal.settled_since_snapshot = 0;
        let JournalSink::Wal(wal) = &mut journal.sink else { unreachable!("checked above") };
        // A crash between the snapshot rename and this truncation is
        // benign: recovery skips WAL records at or before the snapshot's
        // sequence number.
        wal.reset()
    }

    /// Serializes the pipeline-empty state (see [`ExchangeSnapshot`]).
    fn build_snapshot(&self, last_seq: u64) -> ExchangeSnapshot {
        ExchangeSnapshot {
            last_seq,
            config_digest: config_digest(&self.config),
            now: self.now.ticks(),
            vacated: [
                self.vacated[0].ticks(),
                self.vacated[1].ticks(),
                self.vacated[2].ticks(),
                self.vacated[3].ticks(),
            ],
            dirty_since: self.dirty_since.map(|t| t.ticks()),
            mint_ticket: self.mint_ticket,
            leaves_leased: self.identities.leaves_leased(),
            report: report_record(&self.report),
            book: book_record(&self.service.snapshot()),
            material: self
                .material
                .iter()
                .map(|(id, (address, secret))| MaterialRecord {
                    offer: id.raw(),
                    address: *address.digest().as_bytes(),
                    secret: *secret.reveal(),
                })
                .collect(),
            identities: self
                .identities
                .iter()
                .map(|(_, kp)| IdentityRecord {
                    seed: *kp.seed(),
                    height: kp.height() as u8,
                    next_leaf: kp.next_leaf(),
                    leaves: kp.leaf_digests().iter().map(|d| *d.as_bytes()).collect(),
                })
                .collect(),
        }
    }

    // ─── Recovery ────────────────────────────────────────────────────────

    /// Rebuilds an exchange from the store in `journal.dir` after a crash:
    /// loads the latest snapshot (if any), replays the WAL tail in
    /// *lockstep* — each logged command re-runs through the real code
    /// path, and every record the re-run regenerates is compared
    /// one-to-one against the log — and reopens the WAL for appending
    /// (repairing the final group if the crash cut it short). The
    /// recovered exchange's [`ExchangeReport`] is byte-identical to the
    /// crashed one's at the point the log covers, whatever
    /// [`ExchangeConfig::threads`] is on either side.
    ///
    /// # Errors
    ///
    /// * [`RecoverError::ConfigMismatch`] — the store was written under a
    ///   different semantic configuration.
    /// * [`RecoverError::Diverged`] — replay produced a record different
    ///   from the logged one.
    /// * [`RecoverError::Corrupt`] — a record cannot occupy its position
    ///   in the log (an audit at a group head, a command that no longer
    ///   applies).
    /// * [`RecoverError::Io`] — filesystem or store-layer failure.
    pub fn recover(
        config: ExchangeConfig,
        journal: JournalConfig,
    ) -> Result<Recovered, RecoverError> {
        let digest = config_digest(&config);
        let snapshot = load_latest_snapshot(&journal.dir)?;
        if let Some(snap) = &snapshot {
            if snap.config_digest != digest {
                return Err(RecoverError::ConfigMismatch);
            }
        }
        let snapshot_seq = snapshot.as_ref().map(|s| s.last_seq);
        let mut exchange = match &snapshot {
            Some(snap) => Exchange::from_snapshot(config, snap),
            None => Exchange::new(config),
        };
        let scan = read_wal(&journal.dir)?;
        let mut next_seq = snapshot_seq.map_or(0, |s| s + 1);
        if let Some(frame) = scan.frames.last() {
            next_seq = next_seq.max(frame.seq + 1);
        }
        // Frames at or before the snapshot's seq are already reflected in
        // the loaded state (a crash between snapshot rename and WAL
        // truncation leaves them behind); replay starts after them.
        let tail: Vec<&swap_store::Framed> =
            scan.frames.iter().filter(|f| snapshot_seq.map_or(true, |s| f.seq > s)).collect();
        exchange.journal = Some(Journal {
            sink: JournalSink::Capture(Vec::new()),
            dir: journal.dir.clone(),
            snapshot_every: journal.snapshot_every,
            settled_since_snapshot: 0,
            pending: Vec::new(),
            depth: 0,
        });
        let mut stats = RecoveryStats {
            snapshot_seq,
            records_replayed: 0,
            commands_replayed: 0,
            torn_tail: scan.torn,
        };
        // The final group can be partially flushed (crash mid-group);
        // replaying its command regenerates the lost records, re-appended
        // below so the repaired log never holds a partial group mid-file.
        let mut lost_tail: Vec<WalRecord> = Vec::new();
        let mut idx = 0;
        while idx < tail.len() {
            let head_seq = tail[idx].seq;
            if !tail[idx].record.is_command() {
                return Err(RecoverError::Corrupt { seq: head_seq });
            }
            let command = tail[idx].record.clone();
            exchange
                .replay_command(&command)
                .map_err(|()| RecoverError::Corrupt { seq: head_seq })?;
            stats.commands_replayed += 1;
            let produced = exchange.take_captured();
            if produced.is_empty() {
                // A command that logs nothing cannot have been logged.
                return Err(RecoverError::Diverged { seq: head_seq });
            }
            for (k, record) in produced.iter().enumerate() {
                match tail.get(idx + k) {
                    Some(logged) if logged.record == *record => {}
                    Some(logged) => return Err(RecoverError::Diverged { seq: logged.seq }),
                    None => {
                        // The log tore inside this (final) group.
                        lost_tail = produced[k..].to_vec();
                        break;
                    }
                }
            }
            let matched = produced.len().min(tail.len() - idx);
            stats.records_replayed += matched as u64;
            idx += matched;
        }
        let mut wal =
            Wal::open_append(&journal.dir, scan.valid_len as u64, next_seq, journal.group_commit)?;
        if !lost_tail.is_empty() {
            wal.append_group(&lost_tail)?;
            wal.flush()?;
        }
        let live = exchange.journal.as_mut().expect("installed above");
        live.sink = JournalSink::Wal(wal);
        Ok(Recovered { exchange, stats })
    }

    /// Re-runs one logged command through the real public operation.
    /// `Err(())` means the command no longer applies — log corruption.
    fn replay_command(&mut self, record: &WalRecord) -> Result<(), ()> {
        match record {
            WalRecord::SubmitOffer { seed, height, next_leaf, secret, gives, wants } => {
                let keypair = MssKeypair::from_seed_with_height(*seed, u32::from(*height))
                    .with_leaf_cursor(*next_leaf);
                self.submit(ExchangeParty {
                    keypair,
                    secret: Secret::from_bytes(*secret),
                    gives: AssetKind::new(gives.clone()),
                    wants: AssetKind::new(wants.clone()),
                });
                Ok(())
            }
            WalRecord::SubmitSeeded { seeds } => {
                let seeds = seeds
                    .iter()
                    .map(|s| PartySeed {
                        seed: s.seed,
                        key_height: u32::from(s.height),
                        secret: Secret::from_bytes(s.secret),
                        gives: AssetKind::new(s.gives.clone()),
                        wants: AssetKind::new(s.wants.clone()),
                    })
                    .collect();
                self.submit_seeded(seeds);
                Ok(())
            }
            WalRecord::Resubmit { address, secret, gives, wants } => self
                .resubmit(
                    Address::from_digest(Digest32(*address)),
                    Secret::from_bytes(*secret),
                    AssetKind::new(gives.clone()),
                    AssetKind::new(wants.clone()),
                )
                .map(|_| ())
                .ok_or(()),
            WalRecord::Cancel { offer } => {
                self.cancel(OfferId::from_raw(*offer)).map(|_| ()).map_err(|_| ())
            }
            WalRecord::StageEntered { .. }
            | WalRecord::EpochSettled { .. }
            | WalRecord::StepFailed { .. } => {
                // The step command records *what happened*, not what to do:
                // the pipeline re-derives the same transition, and lockstep
                // comparison of the regenerated record enforces it.
                let _ = self.step();
                Ok(())
            }
            // Audit records never occupy a group head.
            _ => Err(()),
        }
    }

    /// Drains the capture sink (recovery replay mode).
    fn take_captured(&mut self) -> Vec<WalRecord> {
        match self.journal.as_mut().map(|j| &mut j.sink) {
            Some(JournalSink::Capture(captured)) => std::mem::take(captured),
            _ => Vec::new(),
        }
    }

    /// Rebuilds the pipeline-empty state a snapshot serialized.
    fn from_snapshot(config: ExchangeConfig, snap: &ExchangeSnapshot) -> Exchange {
        let service = ClearingService::restore(
            book_from_record(&snap.book),
            config.leader_strategy,
            config.clearing_mode,
        );
        let identities = IdentityStore::restore(
            snap.identities.iter().map(|id| {
                MssKeypair::from_parts(
                    id.seed,
                    u32::from(id.height),
                    id.leaves.iter().map(|&l| Digest32(l)).collect(),
                    id.next_leaf,
                )
            }),
            snap.leaves_leased,
        );
        let material = snap
            .material
            .iter()
            .map(|m| {
                (
                    OfferId::from_raw(m.offer),
                    (Address::from_digest(Digest32(m.address)), Secret::from_bytes(m.secret)),
                )
            })
            .collect();
        let report = report_from_record(&snap.report);
        // The ledger restarts from fresh chains: settled epochs influence
        // later ones only through the report's storage totals, which the
        // archived baseline carries forward.
        let archived_storage = report.storage;
        let pool = WorkerPool::new(config.threads);
        Exchange {
            service,
            material,
            identities,
            now: SimTime::from_ticks(snap.now),
            in_flight: VecDeque::new(),
            vacated: [
                SimTime::from_ticks(snap.vacated[0]),
                SimTime::from_ticks(snap.vacated[1]),
                SimTime::from_ticks(snap.vacated[2]),
                SimTime::from_ticks(snap.vacated[3]),
            ],
            dirty_since: snap.dirty_since.map(SimTime::from_ticks),
            pool,
            minted: BTreeMap::new(),
            mint_ticket: snap.mint_ticket,
            ledger: ChainSet::new(),
            archived_storage,
            journal: None,
            report,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_market::OfferStatus;

    /// A book of `cycles` disjoint 3-cycles over distinct kind alphabets.
    fn book(cycles: usize, rng: &mut SimRng) -> Vec<ExchangeParty> {
        let mut parties = Vec::new();
        for c in 0..cycles {
            for p in 0..3 {
                parties.push(ExchangeParty::generate(
                    rng,
                    4,
                    AssetKind::new(format!("c{c}k{p}")),
                    AssetKind::new(format!("c{c}k{}", (p + 1) % 3)),
                ));
            }
        }
        parties
    }

    fn run_book(cycles: usize, threads: usize, seed: u64) -> ExchangeReport {
        let mut rng = SimRng::from_seed(seed);
        let mut exchange = Exchange::new(ExchangeConfig { threads, ..Default::default() });
        for party in book(cycles, &mut rng) {
            exchange.submit(party);
        }
        let executed = exchange.drive_until_quiescent().unwrap();
        assert_eq!(executed.len(), cycles);
        exchange.into_report()
    }

    #[test]
    fn epoch_settles_disjoint_cycles() {
        let report = run_book(3, 1, 100);
        assert_eq!(report.epochs, 1);
        assert_eq!(report.offers_submitted, 9);
        assert_eq!(report.swaps_cleared, 3);
        assert_eq!(report.swaps_settled, 3);
        assert_eq!(report.swaps_refunded, 0);
        assert!(report.storage.total_bytes() > 0);
        assert_eq!(report.swaps.len(), 3);
        assert!(report.swaps.windows(2).all(|w| w[0].swap < w[1].swap));
        // Concurrent execution: the epoch's wall time is one swap's
        // duration, not three.
        let per_swap = report.swaps[0].rounds + 1;
        assert_eq!(report.wall_ticks, per_swap * ExchangeConfig::default().delta.ticks());
        // With the default zero stage costs, every wall tick is execution.
        assert_eq!(report.stage_ticks.total(), report.wall_ticks);
        assert_eq!(report.stage_ticks.executing, report.wall_ticks);
    }

    #[test]
    fn report_invariant_under_thread_count() {
        let sequential = run_book(5, 1, 200);
        for threads in [2, 3, 8, 64] {
            let pooled = run_book(5, threads, 200);
            assert_eq!(sequential, pooled, "threads = {threads}");
        }
    }

    #[test]
    fn lifecycle_resolves_and_ledger_merges() {
        let mut rng = SimRng::from_seed(300);
        let mut exchange = Exchange::new(ExchangeConfig { threads: 2, ..Default::default() });
        let ids: Vec<OfferId> = book(2, &mut rng).into_iter().map(|p| exchange.submit(p)).collect();
        let straggler = exchange.submit(ExchangeParty::generate(
            &mut rng,
            4,
            AssetKind::new("orphan"),
            AssetKind::new("nobody-gives-this"),
        ));
        let executed = exchange.drive_until_quiescent().unwrap();
        assert_eq!(executed.len(), 2);
        for id in &ids {
            assert_eq!(exchange.service().status(*id), Some(OfferStatus::Settled));
        }
        assert_eq!(exchange.service().status(straggler), Some(OfferStatus::Open));
        // 2 swaps × 3 arcs, one chain per arc, all absorbed.
        assert_eq!(exchange.ledger().len(), 6);
        assert!(exchange.ledger().verify_integrity());
        // The merged storage equals the sum of the per-swap reports.
        let summed = executed
            .iter()
            .fold(swap_chain::StorageReport::default(), |acc, s| acc.merge(&s.report.storage));
        assert_eq!(exchange.report().storage, summed);
    }

    #[test]
    fn cancelled_offer_never_executes() {
        let mut rng = SimRng::from_seed(400);
        let mut exchange = Exchange::new(ExchangeConfig::default());
        let parties = book(1, &mut rng);
        let first = exchange.submit(parties[0].clone());
        for p in &parties[1..] {
            exchange.submit(p.clone());
        }
        exchange.cancel(first).unwrap();
        let executed = exchange.drive_until_quiescent().unwrap();
        assert!(executed.is_empty(), "the 3-cycle is broken by the cancellation");
        assert_eq!(exchange.report().offers_cancelled, 1);
        assert_eq!(exchange.service().status(first), Some(OfferStatus::Cancelled));
    }

    #[test]
    fn multiple_epochs_advance_the_clock() {
        let mut rng = SimRng::from_seed(500);
        let mut exchange = Exchange::new(ExchangeConfig::default());
        for party in book(1, &mut rng) {
            exchange.submit(party);
        }
        exchange.drive_until_quiescent().unwrap();
        let after_first = exchange.now();
        assert!(after_first > SimTime::ZERO);
        // A second ring arrives later; it clears in epoch 1 on the advanced
        // clock.
        for party in book(1, &mut SimRng::from_seed(501)) {
            exchange.submit(party);
        }
        let executed = exchange.drive_until_quiescent().unwrap();
        assert_eq!(executed.len(), 1);
        assert_eq!(executed[0].epoch, 1);
        assert!(executed[0].report.all_deal());
        assert_eq!(exchange.report().epochs, 2);
        assert!(exchange.now() > after_first);
    }

    #[test]
    fn step_walks_the_stage_machine_in_order() {
        let mut rng = SimRng::from_seed(700);
        let mut exchange = Exchange::new(ExchangeConfig::default());
        for party in book(1, &mut rng) {
            exchange.submit(party);
        }
        assert!(!exchange.is_quiescent());
        let mut seen = Vec::new();
        loop {
            match exchange.step().unwrap() {
                StepEvent::StageEntered { epoch, stage, .. } => {
                    assert_eq!(epoch, 0);
                    assert_eq!(exchange.stage_of(0), Some(stage));
                    seen.push(stage);
                }
                StepEvent::EpochSettled { epoch, executed, .. } => {
                    assert_eq!(epoch, 0);
                    assert_eq!(executed.len(), 1);
                    break;
                }
                StepEvent::Quiescent => unreachable!("an epoch is in flight"),
            }
        }
        assert_eq!(seen, EpochStage::ALL.to_vec());
        assert!(exchange.is_quiescent());
        assert!(matches!(exchange.step().unwrap(), StepEvent::Quiescent));
    }

    #[test]
    fn stage_costs_are_attributed_and_sum_to_wall() {
        let costs = StageCosts {
            clearing_base: 4,
            clearing_per_examined: 1,
            clearing_per_cycle: 1,
            provisioning_base: 3,
            provisioning_per_party: 1,
            settling_base: 2,
            settling_per_swap: 1,
        };
        let mut rng = SimRng::from_seed(800);
        let mut exchange =
            Exchange::new(ExchangeConfig { stage_costs: costs, ..Default::default() });
        for party in book(2, &mut rng) {
            exchange.submit(party);
        }
        let executed = exchange.drive_until_quiescent().unwrap();
        assert_eq!(executed.len(), 2);
        let report = exchange.report();
        // Measured clearing work under the indexed matcher: the two
        // 3-cycles span 6 kinds with one giver and one wanter each (6 zip
        // steps examined) and emit 2 cycles. 6 parties provisioned, 2
        // swaps settled.
        assert_eq!(report.stage_ticks.clearing, 4 + 6 + 2);
        assert_eq!(report.stage_ticks.provisioning, 3 + 6);
        assert_eq!(report.stage_ticks.settling, 2 + 2);
        assert!(report.stage_ticks.executing > 0);
        assert_eq!(report.stage_ticks.total(), report.wall_ticks);
        assert_eq!(report.wall_ticks, exchange.now().ticks());
    }

    #[test]
    fn measured_clearing_cost_separates_the_modes() {
        // A mutual pair plus a large inert tail: the indexed matcher
        // examines only the two active-kind zip steps, the full rescan
        // pays for every open offer — with per-examined pricing the same
        // book attributes different clearing ticks per mode, while the
        // published swaps (and everything downstream) stay identical.
        let run = |mode: ClearingMode| {
            let mut rng = SimRng::from_seed(801);
            let mut exchange = Exchange::new(ExchangeConfig {
                clearing_mode: mode,
                stage_costs: StageCosts { clearing_per_examined: 1, ..Default::default() },
                ..Default::default()
            });
            exchange.submit(ExchangeParty::generate(
                &mut rng,
                4,
                AssetKind::new("btc"),
                AssetKind::new("eth"),
            ));
            exchange.submit(ExchangeParty::generate(
                &mut rng,
                4,
                AssetKind::new("eth"),
                AssetKind::new("btc"),
            ));
            for i in 0..10 {
                exchange.submit(ExchangeParty::generate(
                    &mut rng,
                    4,
                    AssetKind::new(format!("dust{i}a")),
                    AssetKind::new(format!("dust{i}b")),
                ));
            }
            let executed = exchange.drive_until_quiescent().unwrap();
            assert_eq!(executed.len(), 1, "{mode}");
            exchange.report().stage_ticks.clearing
        };
        let indexed = run(ClearingMode::Indexed);
        let full = run(ClearingMode::FullRescan);
        // Indexed: one pass over the btc/eth zips per clear; FullRescan:
        // the whole 12-offer book on the first clear alone.
        assert!(
            indexed < full,
            "indexed clearing ticks {indexed} must undercut full rescan {full}"
        );
    }

    /// Fresh scratch store directory for one journaling test.
    fn store_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swap-core-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journaling_changes_nothing_observable() {
        let dir = store_dir("transparent");
        let mut plain = Exchange::new(ExchangeConfig::default());
        let mut durable = Exchange::with_journal(
            ExchangeConfig::default(),
            JournalConfig { snapshot_every: 0, ..JournalConfig::new(&dir) },
        )
        .unwrap();
        let mut rng = SimRng::from_seed(321);
        let parties = book(3, &mut rng);
        for party in &parties {
            let clone = ExchangeParty {
                keypair: MssKeypair::from_seed_with_height(*party.keypair.seed(), 4),
                secret: party.secret,
                gives: party.gives.clone(),
                wants: party.wants.clone(),
            };
            plain.submit(clone);
        }
        for party in parties {
            durable.submit(party);
        }
        plain.drive_until_quiescent().unwrap();
        durable.drive_until_quiescent().unwrap();
        assert_eq!(plain.report(), durable.report());
        // The log holds whole groups: one command head per public op.
        durable.sync_journal().unwrap();
        let scan = read_wal(&dir).unwrap();
        assert!(!scan.torn);
        let commands = scan.frames.iter().filter(|f| f.record.is_command()).count();
        // 9 submits + step commands; every frame belongs to a group.
        assert!(commands >= 9, "expected at least 9 command heads, got {commands}");
        assert!(scan.frames[0].record.is_command());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_replays_wal_and_continues_identically() {
        let dir = store_dir("recover-continue");
        let config = ExchangeConfig::default();
        let mut rng = SimRng::from_seed(77);
        let first = book(2, &mut rng);
        let second = book(2, &mut rng);

        // Oracle: one uninterrupted durable run over both books.
        let mut oracle = Exchange::with_journal(
            config.clone(),
            JournalConfig { snapshot_every: 0, ..JournalConfig::new(store_dir("recover-oracle")) },
        )
        .unwrap();
        for p in &first {
            oracle.submit(clone_party(p));
        }
        oracle.drive_until_quiescent().unwrap();
        let mid_report = oracle.report().clone();
        for p in &second {
            oracle.submit(clone_party(p));
        }
        oracle.drive_until_quiescent().unwrap();

        // Crashing run: first book only, then recover from the store.
        {
            let mut crashed = Exchange::with_journal(
                config.clone(),
                JournalConfig { snapshot_every: 0, ..JournalConfig::new(&dir) },
            )
            .unwrap();
            for p in &first {
                crashed.submit(clone_party(p));
            }
            crashed.drive_until_quiescent().unwrap();
            crashed.sync_journal().unwrap();
            // Dropped without any shutdown handshake: the crash.
        }
        let recovered = Exchange::recover(
            config.clone(),
            JournalConfig { snapshot_every: 0, ..JournalConfig::new(&dir) },
        )
        .unwrap();
        let mut exchange = recovered.exchange;
        assert!(recovered.stats.commands_replayed > 0);
        assert_eq!(recovered.stats.snapshot_seq, None);
        assert_eq!(exchange.report(), &mid_report, "recovered report must be byte-identical");
        // The recovered exchange keeps working — and lands exactly where
        // the uninterrupted run did.
        for p in &second {
            exchange.submit(clone_party(p));
        }
        exchange.drive_until_quiescent().unwrap();
        assert_eq!(exchange.report(), oracle.report());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn clone_party(p: &ExchangeParty) -> ExchangeParty {
        ExchangeParty {
            keypair: MssKeypair::from_seed_with_height(*p.keypair.seed(), p.keypair.height())
                .with_leaf_cursor(p.keypair.next_leaf()),
            secret: p.secret,
            gives: p.gives.clone(),
            wants: p.wants.clone(),
        }
    }

    #[test]
    fn snapshot_truncates_wal_and_recovery_uses_it() {
        let dir = store_dir("snapshot");
        let config = ExchangeConfig::default();
        let mut rng = SimRng::from_seed(55);
        let mut durable = Exchange::with_journal(
            config.clone(),
            JournalConfig { snapshot_every: 1, ..JournalConfig::new(&dir) },
        )
        .unwrap();
        for p in book(2, &mut rng) {
            durable.submit(p);
        }
        durable.drive_until_quiescent().unwrap();
        let live_report = durable.report().clone();
        drop(durable);
        // Every epoch snapshots, so the settled epoch truncated the log.
        let scan = read_wal(&dir).unwrap();
        assert_eq!(scan.frames.len(), 0, "snapshot must truncate the WAL");
        let snap = load_latest_snapshot(&dir).unwrap().expect("snapshot written");
        assert!(snap.last_seq > 0);
        let recovered = Exchange::recover(
            config,
            JournalConfig { snapshot_every: 1, ..JournalConfig::new(&dir) },
        )
        .unwrap();
        assert_eq!(recovered.stats.snapshot_seq, Some(snap.last_seq));
        assert_eq!(recovered.stats.commands_replayed, 0);
        assert_eq!(recovered.exchange.report(), &live_report);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_refuses_a_foreign_configuration() {
        let dir = store_dir("config-mismatch");
        let config = ExchangeConfig::default();
        let mut rng = SimRng::from_seed(66);
        let mut durable = Exchange::with_journal(
            config.clone(),
            JournalConfig { snapshot_every: 1, ..JournalConfig::new(&dir) },
        )
        .unwrap();
        for p in book(1, &mut rng) {
            durable.submit(p);
        }
        durable.drive_until_quiescent().unwrap();
        drop(durable);
        // `threads` is a host knob: changing it recovers fine.
        let rethreaded = ExchangeConfig { threads: 4, ..config.clone() };
        Exchange::recover(rethreaded, JournalConfig::new(&dir)).unwrap();
        // A semantic change is refused.
        let reslotted = ExchangeConfig { executing_slots: 3, ..config };
        match Exchange::recover(reslotted, JournalConfig::new(&dir)) {
            Err(RecoverError::ConfigMismatch) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
