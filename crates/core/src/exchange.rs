//! The exchange pipeline: continuous clearing feeding multi-epoch parallel
//! execution on a persistent work-stealing worker pool.
//!
//! The paper assumes "the swap digraph is constructed by a (possibly
//! centralized) market-clearing service" (§4.2) and then analyzes *one*
//! swap. [`Exchange`] is the layer above: a continuous market whose top
//! surface is a **stage-based pipeline**, not a blocking batch call. Each
//! epoch moves through the [`EpochStage`] state machine
//!
//! ```text
//!   Clearing ──▶ Provisioning ──▶ Executing ──▶ Settling ──▶ (retired)
//! ```
//!
//! The clearing, provisioning, and settling slots hold one epoch each, but
//! **`Executing` holds up to [`ExchangeConfig::executing_slots`] epochs at
//! once**: cleared cycles are party- and chain-disjoint across epochs (the
//! clearing reservation set guarantees it), so nothing in the theory
//! forces execution to serialize per epoch. Epoch `k+1`'s clearing and
//! provisioning run while epoch `k` executes, and with more than one
//! execution slot epoch `k+1`'s *execution* overlaps it too.
//! [`submit`](Exchange::submit) and [`cancel`](Exchange::cancel) are
//! accepted at any time — an offer submitted mid-epoch lands in the next
//! clearing delta instead of waiting for settlement — and
//! [`step`](Exchange::step) advances the pipeline by exactly one stage
//! transition ([`Exchange::drive_until_quiescent`] loops it dry).
//!
//! The four stages:
//!
//! 1. **Clearing.** A new epoch is admitted whenever the clearing slot is
//!    free and the book has submissions no clearing has seen. The untrusted
//!    [`ClearingService`] consumes the open book into disjoint trade
//!    cycles, *skipping offers whose parties are reserved by in-flight
//!    swaps* ([`ClearingService::reserved_addresses`]).
//! 2. **Provisioning.** Every cleared slot is re-verified against the
//!    party's original offer ([`swap_market::verify_cleared_swap`] — the
//!    service is untrusted), then each cycle *leases* its signing material
//!    from the identity registry ([`crate::identity::IdentityStore`]):
//!    every party's master keypair — minted once, at first submit — hands
//!    the swap a disjoint window of unused one-time leaves, so the `2^h`
//!    keygen is amortized across swaps and no `(address, leaf)` pair ever
//!    signs twice. An identity with too few leaves left fails only its own
//!    swap ([`ExchangeError::KeysExhausted`], its offers refunded, a
//!    checked path); siblings provision into [`ProvisionedSwap`]s and the
//!    protocol is chosen per cycle (under [`ProtocolPolicy::Auto`], §4.6
//!    single-leader HTLCs when feasible, the general §4.5 hashkey protocol
//!    otherwise). Identities can also be minted *by* the exchange, on the
//!    worker pool, overlapping execution
//!    ([`Exchange::submit_seeded`]).
//! 3. **Executing.** The moment an execution slot frees up, each of the
//!    epoch's provisioned swaps is stamped onto the timeline
//!    ([`ProvisionedSwap::admit`] rebases its start to `now + Δ`) and
//!    **queued onto the long-lived [`WorkerPool`]** shared by every epoch
//!    in flight. Workers return per-swap results over a channel; the merge
//!    is swap-id-ordered, so the [`ExchangeReport`] is byte-identical for
//!    1, 2, or N pool workers ([`ExchangeConfig::threads`] is a host
//!    wall-clock knob, never a semantic one). A swap engine that panics is
//!    caught at the worker boundary: only that swap fails
//!    ([`ExchangeError::WorkerPanicked`], its offers refunded) and every
//!    sibling's finished result still settles.
//! 4. **Settling.** Offers resolve (settle on all-`Deal`, refund
//!    otherwise), every swap's chains are absorbed into the global ledger
//!    ([`ChainSet::absorb`]), and the epoch retires. Epochs retire in
//!    admission order even when their executions overlapped.
//!
//! # Simulated time and per-stage attribution
//!
//! Stages cost simulated ticks ([`StageCosts`]; zero by default, so
//! single-epoch workloads behave exactly like the historical batch path).
//! Epochs advance in order through the exclusive slots, which yields the
//! classic pipeline recurrence: a stage starts at the later of its own
//! epoch's previous-stage completion and the moment a slot frees up. An
//! epoch's simulated execution wall is its slowest swap's run — a function
//! of the deterministic per-swap reports alone, never of host scheduling —
//! so the pipeline's simulated trace is identical however many pool
//! workers raced over the jobs. Every advance of the pipeline frontier is
//! attributed to the stage that completed across it
//! ([`ExchangeReport::stage_ticks`]), and the attribution sums exactly to
//! [`ExchangeReport::wall_ticks`] even while several epochs execute at
//! once: each frontier advance is charged to exactly one completing stage.
//! Executing-stage *occupancy* is tracked alongside
//! ([`ExchangeReport::executing_peak`],
//! [`ExchangeReport::executing_resident_ticks`]) — the observable form of
//! multi-epoch overlap.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use swap_chain::ChainSet;
use swap_contract::AnyContract;
use swap_crypto::{Address, MssKeypair, Secret};
use swap_digraph::VertexId;
use swap_market::{
    verify_cleared_swap, AssetKind, CancelError, ClearError, ClearedSwap, ClearingMode,
    ClearingService, LeaderStrategy, Offer, OfferId, SwapId, VerifyError,
};
use swap_sim::{Delta, SimDuration, SimRng, SimTime};

use crate::identity::IdentityStore;
use crate::instance::{ProvisionedSwap, SwapRunOutput};
use crate::pool::{Completed, WorkerPool};
use crate::protocol::ProtocolKind;
use crate::runner::{RunConfig, RunMetrics, RunReport};

/// Configuration for an [`Exchange`].
#[derive(Debug, Clone)]
pub struct ExchangeConfig {
    /// The synchrony parameter Δ every cleared swap runs under.
    pub delta: Delta,
    /// Host worker threads in the long-lived execution pool (clamped to
    /// ≥ 1). Results are invariant under this knob; only host wall-clock
    /// changes.
    pub threads: usize,
    /// How many epochs may be concurrently resident in
    /// [`EpochStage::Executing`] (clamped to ≥ 1). This is the *simulated*
    /// execution-parallelism budget: with one slot epochs execute strictly
    /// in series (the historical pipeline); with `k` slots up to `k`
    /// epochs' swaps run side by side on the shared worker pool and the
    /// simulated frontier reflects the overlap. Unlike
    /// [`threads`](ExchangeConfig::threads) this knob *does* change the
    /// simulated trace (wall ticks, occupancy) — deterministically, the
    /// same for every host worker count.
    pub executing_slots: usize,
    /// Per-swap run configuration template (behaviors are keyed by vertex
    /// id within each swap, so they apply to every cleared swap alike —
    /// useful for adversarial sweeps).
    pub run: RunConfig,
    /// Leader-election strategy for cleared swaps.
    pub leader_strategy: LeaderStrategy,
    /// How the exchange picks the protocol executing each cleared cycle.
    pub protocol: ProtocolPolicy,
    /// How the clearing service matches the book
    /// ([`ClearingMode::Indexed`] by default — the incremental index;
    /// `FullRescan` is the reference matcher). Both modes publish
    /// byte-identical swaps; under *measured* stage costs
    /// ([`StageCosts::clearing_per_examined`]) they attribute different
    /// clearing ticks, because they do different amounts of work.
    pub clearing_mode: ClearingMode,
    /// Simulated cost of the non-execution pipeline stages. Zero by
    /// default: stage latencies are negligible next to protocol rounds at
    /// small book sizes, and zero costs keep single-epoch workloads
    /// byte-identical to the historical batch path. Experiments model them
    /// explicitly to measure the pipelining win (see E18/E19) and, since
    /// the clearing coefficients are driven by *measured* per-clear work,
    /// the clearing index's win (see E20).
    pub stage_costs: StageCosts,
}

/// Per-cycle protocol selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolPolicy {
    /// Pick the cheapest feasible protocol per cleared cycle: §4.6
    /// single-leader HTLCs when the timeout assignment exists (the common
    /// case — every simple trade cycle qualifies), the general §4.5
    /// hashkey protocol otherwise. The choice lands in
    /// [`SwapSummary::protocol`].
    #[default]
    Auto,
    /// Run everything on the general hashkey protocol (the pre-selection
    /// behavior; useful as a benchmark baseline).
    ForceHashkey,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            delta: Delta::from_ticks(10),
            threads: 1,
            executing_slots: 1,
            run: RunConfig::default(),
            leader_strategy: LeaderStrategy::MinimumExact,
            protocol: ProtocolPolicy::Auto,
            clearing_mode: ClearingMode::default(),
            stage_costs: StageCosts::default(),
        }
    }
}

/// The pipeline's per-epoch state machine. Every admitted epoch moves
/// through the stages strictly in order:
///
/// ```text
/// Clearing ──▶ Provisioning ──▶ Executing ──▶ Settling ──▶ (retired)
/// ```
///
/// One epoch occupies each of `Clearing`, `Provisioning`, and `Settling`;
/// `Executing` holds up to [`ExchangeConfig::executing_slots`] epochs at
/// once. Epochs advance (and retire) in admission order — so epoch `k+1`
/// clears and provisions while epoch `k` executes, and with multiple
/// execution slots their executions overlap too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EpochStage {
    /// The clearing service is consuming the open book into trade cycles.
    Clearing,
    /// Cleared slots verified party-side; key material and protocol choice
    /// captured per cycle ([`ProvisionedSwap`]).
    Provisioning,
    /// All of the epoch's swaps are queued on the shared worker pool,
    /// running concurrently — with each other and with every other
    /// executing epoch's swaps.
    Executing,
    /// Offers resolving and shard chains merging into the global ledger.
    Settling,
}

impl EpochStage {
    /// All stages, in pipeline order.
    pub const ALL: [EpochStage; 4] = [
        EpochStage::Clearing,
        EpochStage::Provisioning,
        EpochStage::Executing,
        EpochStage::Settling,
    ];

    /// The stage after this one; `None` after [`EpochStage::Settling`]
    /// (the epoch retires).
    pub fn next(self) -> Option<EpochStage> {
        match self {
            EpochStage::Clearing => Some(EpochStage::Provisioning),
            EpochStage::Provisioning => Some(EpochStage::Executing),
            EpochStage::Executing => Some(EpochStage::Settling),
            EpochStage::Settling => None,
        }
    }

    fn index(self) -> usize {
        match self {
            EpochStage::Clearing => 0,
            EpochStage::Provisioning => 1,
            EpochStage::Executing => 2,
            EpochStage::Settling => 3,
        }
    }
}

impl fmt::Display for EpochStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochStage::Clearing => write!(f, "clearing"),
            EpochStage::Provisioning => write!(f, "provisioning"),
            EpochStage::Executing => write!(f, "executing"),
            EpochStage::Settling => write!(f, "settling"),
        }
    }
}

/// Simulated tick costs of the non-execution stages (the execution stage's
/// duration is the slowest in-flight swap's run, exactly as before). Each
/// stage costs `base + per_item × items`:
///
/// * clearing: per offer the matcher *actually examined* and per cycle it
///   emitted — **measured** from the clearing service's
///   [`swap_market::ClearStats`] for the epoch, not from a synthetic book
///   size. Under [`ClearingMode::FullRescan`] every open offer is
///   examined; under [`ClearingMode::Indexed`] only the matchable region
///   is, so the same coefficients price the two modes differently —
///   exactly the reality the attribution is meant to reflect,
/// * provisioning: per *party* across the epoch's cleared cycles,
/// * settling: per *swap* the epoch resolves.
///
/// All zero by default (see [`ExchangeConfig::stage_costs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCosts {
    /// Fixed ticks per clearing stage.
    pub clearing_base: u64,
    /// Ticks per offer the epoch's matcher examined (measured:
    /// [`swap_market::ClearStats::offers_examined`]).
    pub clearing_per_examined: u64,
    /// Ticks per cycle the epoch's clearing emitted (measured:
    /// [`swap_market::ClearStats::cycles_emitted`]).
    pub clearing_per_cycle: u64,
    /// Fixed ticks per provisioning stage.
    pub provisioning_base: u64,
    /// Ticks per party across the epoch's cleared swaps.
    pub provisioning_per_party: u64,
    /// Fixed ticks per settling stage.
    pub settling_base: u64,
    /// Ticks per swap the epoch resolves.
    pub settling_per_swap: u64,
}

/// Wall-tick attribution per pipeline stage: every advance of the pipeline
/// frontier is charged to the stage whose completion carried it, so the
/// four counters sum exactly to [`ExchangeReport::wall_ticks`]. Under
/// batch driving each epoch pays clearing + provisioning + executing +
/// settling in full; under pipelined driving the non-execution stages of
/// epoch `k+1` hide beneath epoch `k`'s execution and contribute (almost)
/// nothing — which is precisely the observable form of the overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTicks {
    /// Frontier ticks spent completing clearing stages.
    pub clearing: u64,
    /// Frontier ticks spent completing provisioning stages.
    pub provisioning: u64,
    /// Frontier ticks spent completing execution stages.
    pub executing: u64,
    /// Frontier ticks spent completing settling stages.
    pub settling: u64,
}

impl StageTicks {
    /// Sum over the four stages; always equals the report's `wall_ticks`.
    pub fn total(&self) -> u64 {
        self.clearing + self.provisioning + self.executing + self.settling
    }

    fn charge(&mut self, stage: EpochStage, ticks: u64) {
        match stage {
            EpochStage::Clearing => self.clearing += ticks,
            EpochStage::Provisioning => self.provisioning += ticks,
            EpochStage::Executing => self.executing += ticks,
            EpochStage::Settling => self.settling += ticks,
        }
    }
}

/// What one [`Exchange::step`] call did.
#[derive(Debug)]
pub enum StepEvent {
    /// An epoch entered `stage` at simulated time `at` (entering
    /// [`EpochStage::Clearing`] is the admission of a new epoch).
    StageEntered {
        /// The epoch that advanced.
        epoch: u64,
        /// The stage it entered.
        stage: EpochStage,
        /// The simulated instant it entered.
        at: SimTime,
    },
    /// An epoch finished settling and retired: its offers are resolved,
    /// its chains absorbed, and its swaps' full reports are here, in
    /// swap-id order.
    EpochSettled {
        /// The retired epoch.
        epoch: u64,
        /// The simulated instant settlement completed.
        at: SimTime,
        /// The epoch's executed swaps, ascending swap id.
        executed: Vec<ExecutedSwap>,
    },
    /// Nothing to do: no epoch is in flight and no submission has arrived
    /// since the last clearing.
    Quiescent,
}

/// A simulation-side market participant: key material plus trade terms.
/// (Real deployments would hold only the public half; the simulation owns
/// every party, so it keeps the signing keys and secrets it needs to drive
/// them through the protocol.)
#[derive(Debug, Clone)]
pub struct ExchangeParty {
    /// The party's signing keypair.
    pub keypair: MssKeypair,
    /// The party's secret (hashlock preimage, §4.2: every party sends one).
    pub secret: Secret,
    /// The asset kind the party relinquishes.
    pub gives: AssetKind,
    /// The asset kind the party demands.
    pub wants: AssetKind,
}

/// Seed-level material for a party whose identity the *exchange* mints:
/// [`Exchange::submit_seeded`] queues the `2^h` one-time keygen onto the
/// worker pool instead of paying it on the caller's thread.
#[derive(Debug, Clone)]
pub struct PartySeed {
    /// Seed for the party's deterministic MSS keypair.
    pub seed: [u8; 32],
    /// Merkle tree height: the identity can sign `2^h` times, total.
    pub key_height: u32,
    /// The party's secret (hashlock preimage, §4.2).
    pub secret: Secret,
    /// The asset kind the party relinquishes.
    pub gives: AssetKind,
    /// The asset kind the party demands.
    pub wants: AssetKind,
}

impl ExchangeParty {
    /// Generates a party with deterministic key material drawn from `rng`.
    pub fn generate(
        rng: &mut SimRng,
        key_height: u32,
        gives: AssetKind,
        wants: AssetKind,
    ) -> ExchangeParty {
        let keypair = MssKeypair::from_seed_with_height(rng.bytes32(), key_height);
        let secret = Secret::random(rng);
        ExchangeParty { keypair, secret, gives, wants }
    }

    /// The offer this party submits to the clearing service.
    pub fn offer(&self) -> Offer {
        Offer {
            key: self.keypair.public_key(),
            hashlock: self.secret.hashlock(),
            gives: self.gives.clone(),
            wants: self.wants.clone(),
        }
    }
}

/// Errors from advancing the pipeline ([`Exchange::step`] and friends).
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeError {
    /// The clearing service failed to assemble a matched cycle.
    Clear(ClearError),
    /// A published swap failed a party's consistency re-check — the
    /// untrusted service misbehaved, and nothing was escrowed.
    Verify {
        /// The swap that failed verification.
        swap: SwapId,
        /// The vertex whose party detected the inconsistency.
        vertex: VertexId,
        /// What the party detected.
        error: VerifyError,
    },
    /// A swap's engine panicked on a pool worker. The panic was caught at
    /// the worker boundary, so only this swap failed — its offers are
    /// refunded, every sibling swap's finished result still settles, and
    /// further `step` calls keep driving the pipeline. (If several swaps
    /// of one epoch panicked, the lowest swap id is reported; all of them
    /// are refunded.)
    WorkerPanicked(SwapId),
    /// A swap was refunded at provisioning because a party's identity had
    /// fewer unused one-time leaves than the swap's signing budget. The
    /// refund is checked — no leaves were consumed, sibling swaps
    /// provision and settle normally, and further `step` calls keep
    /// driving the pipeline. (If several swaps of one epoch hit
    /// exhaustion, the lowest swap id is reported; all of them are
    /// refunded.)
    KeysExhausted {
        /// The refunded swap.
        swap: SwapId,
        /// The address whose identity ran out of one-time leaves.
        address: Address,
    },
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::Clear(e) => write!(f, "{e}"),
            ExchangeError::Verify { swap, vertex, error } => {
                write!(f, "party at vertex {vertex} rejected {swap}: {error}")
            }
            ExchangeError::WorkerPanicked(swap) => {
                write!(f, "{swap}'s engine panicked on a pool worker; its offers were refunded")
            }
            ExchangeError::KeysExhausted { swap, address } => {
                write!(
                    f,
                    "{swap} needs more one-time keys than identity {address} has left; \
                     its offers were refunded"
                )
            }
        }
    }
}

impl std::error::Error for ExchangeError {}

impl From<ClearError> for ExchangeError {
    fn from(e: ClearError) -> Self {
        ExchangeError::Clear(e)
    }
}

/// Error from [`Exchange::drive_until_quiescent`]: the pipeline error plus
/// every swap that had already settled during the drive — partial results
/// are returned, never dropped.
#[derive(Debug)]
pub struct DriveError {
    /// The error the failing step raised.
    pub error: ExchangeError,
    /// Swaps settled by this drive before the error struck (each retiring
    /// epoch's swaps in ascending swap-id order).
    pub executed: Vec<ExecutedSwap>,
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)?;
        if !self.executed.is_empty() {
            write!(f, " ({} swap(s) had already settled)", self.executed.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for DriveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One swap the pipeline executed, with its full per-run report.
#[derive(Debug)]
pub struct ExecutedSwap {
    /// The market-issued swap id.
    pub id: SwapId,
    /// The epoch whose clearing produced the swap.
    pub epoch: u64,
    /// The complete protocol run report.
    pub report: RunReport,
}

/// The aggregate per-swap line of an [`ExchangeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapSummary {
    /// The market-issued swap id.
    pub swap: SwapId,
    /// The epoch whose clearing produced the swap.
    pub epoch: u64,
    /// Parties (vertices) in the cycle.
    pub parties: usize,
    /// Elected leaders.
    pub leaders: usize,
    /// The protocol that executed the swap (per-cycle auto-selection, or
    /// the forced baseline — see [`ProtocolPolicy`]).
    pub protocol: ProtocolKind,
    /// Whether every published contract reached a terminal state.
    pub settled: bool,
    /// Whether every party ended in `Deal` (the offers settled iff so).
    pub all_deal: bool,
    /// Rounds the run took.
    pub rounds: u64,
    /// The run's counters.
    pub metrics: RunMetrics,
}

/// The exchange pipeline's top-level observable: aggregate counters over
/// every epoch so far, plus one [`SwapSummary`] per executed swap in
/// swap-id order. Deterministic — invariant under
/// [`ExchangeConfig::threads`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangeReport {
    /// Clearing epochs admitted.
    pub epochs: u64,
    /// Offers submitted.
    pub offers_submitted: u64,
    /// Offers cancelled before matching.
    pub offers_cancelled: u64,
    /// Swaps cleared (and executed).
    pub swaps_cleared: u64,
    /// Swaps whose offers settled (every party ended in `Deal`).
    pub swaps_settled: u64,
    /// Swaps whose offers were refunded.
    pub swaps_refunded: u64,
    /// Swaps refunded at provisioning because a party's identity ran out
    /// of one-time leaves (a subset of `swaps_refunded`).
    pub swaps_exhausted: u64,
    /// First-touch identities registered in the identity store (each owns
    /// one master MSS keypair, leased leaf-by-leaf to its swaps).
    pub identities_registered: u64,
    /// Identity minting jobs the exchange ran on the worker pool
    /// ([`Exchange::submit_seeded`]).
    pub identities_minted: u64,
    /// Of those, jobs queued while at least one epoch occupied
    /// [`EpochStage::Executing`] — keygen that overlapped swap execution
    /// instead of blocking the pipeline's thread.
    pub mints_overlapping_execution: u64,
    /// One-time leaves leased to provisioned swaps so far.
    pub leaves_leased: u64,
    /// Total simulated wall ticks the pipeline frontier advanced. Within an
    /// epoch, concurrent in-flight swaps share one execution wall (the
    /// slowest swap's); across epochs, overlapped stages share the
    /// frontier, so pipelined driving strictly undercuts batch driving
    /// whenever the non-execution stages cost anything.
    pub wall_ticks: u64,
    /// Where the wall ticks went, stage by stage; sums to `wall_ticks`
    /// even while several epochs execute at once (each frontier advance is
    /// charged to exactly one completing stage).
    pub stage_ticks: StageTicks,
    /// The most epochs ever concurrently resident in
    /// [`EpochStage::Executing`] (bounded by
    /// [`ExchangeConfig::executing_slots`]).
    pub executing_peak: u64,
    /// Epoch-ticks of `Executing` residency: every frontier advance of
    /// `dt` ticks contributes `dt × (epochs then executing)`. Divided by
    /// `wall_ticks` this is the stage's average occupancy — the
    /// observable form of multi-epoch execution overlap.
    pub executing_resident_ticks: u64,
    /// Transactions sealed across every chain of every executed swap —
    /// deterministic, so rollback traffic is pinnable across
    /// [`swap_chain::RollbackMode`]s and worker counts.
    pub tx_executed: u64,
    /// Transactions whose contract hook failed after starting to execute,
    /// forcing a rollback (mempool-style rejections excluded) — the
    /// denominator the undo journal optimizes.
    pub tx_rolled_back: u64,
    /// Merged storage across every chain of every executed swap —
    /// Theorem 4.10's "bits stored on all blockchains", at exchange scale.
    pub storage: swap_chain::StorageReport,
    /// One line per executed swap, ordered by swap id.
    pub swaps: Vec<SwapSummary>,
}

/// Tag of one job queued on the shared worker pool.
#[derive(Debug, Clone, Copy)]
enum JobTag {
    /// A provisioned swap's engine run, tagged `(epoch, swap)`.
    Swap(u64, SwapId),
    /// A first-touch identity minting job ([`Exchange::submit_seeded`]),
    /// tagged by mint ticket.
    Mint(u64),
}

/// Result of one pool job.
#[derive(Debug)]
enum JobOutput {
    /// A finished swap run.
    Swap(Box<SwapRunOutput>),
    /// A minted identity keypair.
    Mint(MssKeypair),
}

/// Stage-to-stage payload of one in-flight epoch.
#[derive(Debug)]
enum EpochWork {
    /// Clearing output, awaiting verification + provisioning.
    Cleared(Vec<ClearedSwap>),
    /// Provisioned swaps, awaiting an execution slot.
    Provisioned(Vec<ProvisionedSwap>),
    /// The epoch's swaps are queued on the worker pool. While any result
    /// is outstanding, the epoch's `completes_at` is only a *lower bound*
    /// (Δ — the shortest possible run); [`Exchange::resolve_execution`]
    /// collects the results and installs the true wall.
    Queued {
        /// When the epoch entered `Executing` (and its jobs were queued).
        entered: SimTime,
        /// Results not yet received from the pool.
        pending: usize,
        /// Results received so far (arrival order; sorted at resolution).
        outcomes: Vec<SwapRunOutput>,
        /// Swaps whose job panicked on its worker.
        panicked: Vec<SwapId>,
    },
    /// Execution results resolved and merged, awaiting settlement.
    Executed(Vec<SwapRunOutput>),
    /// Placeholder while a transition consumes the payload.
    Taken,
}

/// One epoch somewhere in the pipeline.
#[derive(Debug)]
struct InFlightEpoch {
    epoch: u64,
    stage: EpochStage,
    /// When the current stage's simulated work completes. For an epoch in
    /// [`EpochWork::Queued`] state this is a lower bound until resolution.
    completes_at: SimTime,
    work: EpochWork,
}

/// The orchestrator: offers in, a pipeline of concurrent atomic-swap
/// epochs out.
///
/// # Example
///
/// ```
/// use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
/// use swap_market::AssetKind;
/// use swap_sim::SimRng;
///
/// let mut rng = SimRng::from_seed(9);
/// let mut exchange = Exchange::new(ExchangeConfig { threads: 2, ..Default::default() });
/// for (gives, wants) in [("btc", "eth"), ("eth", "btc"), ("usd", "gbp"), ("gbp", "usd")] {
///     exchange.submit(ExchangeParty::generate(
///         &mut rng,
///         4,
///         AssetKind::new(gives),
///         AssetKind::new(wants),
///     ));
/// }
/// let executed = exchange.drive_until_quiescent().unwrap();
/// assert_eq!(executed.len(), 2);
/// assert!(executed.iter().all(|s| s.report.all_deal()));
/// assert_eq!(exchange.report().swaps_settled, 2);
/// ```
#[derive(Debug)]
pub struct Exchange {
    config: ExchangeConfig,
    service: ClearingService,
    /// Hashlock material per submitted offer: the owning identity's
    /// address (the signing keys live in `identities`) plus the offer's
    /// secret, needed to drive the offer's party through the protocol once
    /// it is matched.
    material: BTreeMap<OfferId, (Address, Secret)>,
    /// The identity registry: one master MSS keypair per address, minted
    /// at first submit and leased leaf-by-leaf to successive swaps.
    identities: IdentityStore,
    /// The pipeline frontier: the simulated instant of the latest completed
    /// stage transition.
    now: SimTime,
    /// Epochs currently in the pipeline, admission order (front = oldest).
    in_flight: VecDeque<InFlightEpoch>,
    /// When each stage slot was last vacated (indexed by stage).
    vacated: [SimTime; 4],
    /// The simulated instant of the latest book change (submission or
    /// withdrawal) no clearing has seen; `None` while the book is clean.
    dirty_since: Option<SimTime>,
    /// The long-lived execution tier: every admitted swap of every
    /// executing epoch is queued here, tagged `(epoch, swap)`.
    pool: WorkerPool<JobTag, JobOutput>,
    /// Minted identities received from the pool, keyed by mint ticket,
    /// parked until [`Exchange::submit_seeded`] collects them in
    /// submission order.
    minted: BTreeMap<u64, MssKeypair>,
    /// Next mint-job ticket.
    mint_ticket: u64,
    /// The merged global ledger: every executed swap's chains, absorbed.
    ledger: ChainSet<AnyContract>,
    report: ExchangeReport,
}

impl Exchange {
    /// Creates an exchange with an empty book at `t = 0`. The execution
    /// worker pool ([`ExchangeConfig::threads`] threads) is spawned here
    /// and lives as long as the exchange.
    pub fn new(config: ExchangeConfig) -> Exchange {
        let service = ClearingService::new()
            .with_leader_strategy(config.leader_strategy)
            .with_mode(config.clearing_mode);
        let pool = WorkerPool::new(config.threads);
        Exchange {
            config,
            service,
            material: BTreeMap::new(),
            identities: IdentityStore::new(),
            now: SimTime::ZERO,
            in_flight: VecDeque::new(),
            vacated: [SimTime::ZERO; 4],
            dirty_since: None,
            pool,
            minted: BTreeMap::new(),
            mint_ticket: 0,
            ledger: ChainSet::new(),
            report: ExchangeReport::default(),
        }
    }

    /// Submits a party's offer to the book, returning its id. Accepted at
    /// any time: an offer submitted while epochs are in flight is picked up
    /// by the *next* clearing delta — it does not wait for settlement.
    ///
    /// The party's address is registered in the identity store on first
    /// touch; a party resubmitting under the same address keeps its
    /// existing identity (and its consumed-leaf state), so re-submission
    /// can never rewind the one-time-key counter into leaf reuse.
    pub fn submit(&mut self, party: ExchangeParty) -> OfferId {
        let offer = party.offer();
        let (address, first) = self.identities.register(party.keypair);
        if first {
            self.report.identities_registered += 1;
        }
        let id = self.service.submit(offer);
        self.material.insert(id, (address, party.secret));
        self.report.offers_submitted += 1;
        // The *latest* unseen change: the next clearing scans the book as
        // of admission, so it cannot start before this submission exists.
        self.dirty_since = Some(self.now);
        id
    }

    /// Submits a batch of parties whose identities the *exchange* mints,
    /// on the worker pool.
    ///
    /// Minting a height-`h` identity derives `2^h` Lamport one-time keys —
    /// by far the most expensive operation in the pipeline. Queueing the
    /// keygen jobs here lets them run on idle pool workers *while
    /// previously admitted epochs execute*: in a rolling book, the next
    /// wave's keygen hides entirely under the current wave's swap runs
    /// ([`ExchangeReport::mints_overlapping_execution`] counts the jobs
    /// queued while an epoch occupied [`EpochStage::Executing`]). Offers
    /// are submitted in `seeds` order once every mint has landed, so the
    /// book — and everything downstream — is deterministic whatever the
    /// pool's thread count.
    ///
    /// Returns each offer's id and its identity's address; pass the
    /// address to [`resubmit`](Self::resubmit) to trade again with zero
    /// keygen.
    pub fn submit_seeded(&mut self, seeds: Vec<PartySeed>) -> Vec<(OfferId, Address)> {
        let executing = self.in_flight.iter().any(|e| e.stage == EpochStage::Executing);
        let mut tickets = Vec::with_capacity(seeds.len());
        for spec in &seeds {
            let ticket = self.mint_ticket;
            self.mint_ticket += 1;
            let (seed, height) = (spec.seed, spec.key_height);
            self.pool.submit(JobTag::Mint(ticket), move || {
                JobOutput::Mint(MssKeypair::from_seed_with_height(seed, height))
            });
            tickets.push(ticket);
        }
        self.report.identities_minted += seeds.len() as u64;
        if executing {
            self.report.mints_overlapping_execution += seeds.len() as u64;
        }
        seeds
            .into_iter()
            .zip(tickets)
            .map(|(spec, ticket)| {
                while !self.minted.contains_key(&ticket) {
                    let completed = self.pool.recv();
                    self.absorb(completed);
                }
                let keypair = self.minted.remove(&ticket).expect("just observed");
                let address = keypair.public_key().address();
                let party = ExchangeParty {
                    keypair,
                    secret: spec.secret,
                    gives: spec.gives,
                    wants: spec.wants,
                };
                (self.submit(party), address)
            })
            .collect()
    }

    /// Submits a fresh offer for an already-registered identity: the same
    /// signing key, a new secret, new terms — and zero keygen. Returns
    /// `None` if the address has no registered identity.
    pub fn resubmit(
        &mut self,
        address: Address,
        secret: Secret,
        gives: AssetKind,
        wants: AssetKind,
    ) -> Option<OfferId> {
        let key = self.identities.public_key(&address)?;
        let id = self.service.submit(Offer { key, hashlock: secret.hashlock(), gives, wants });
        self.material.insert(id, (address, secret));
        self.report.offers_submitted += 1;
        self.dirty_since = Some(self.now);
        Some(id)
    }

    /// Withdraws an open offer (see [`ClearingService::cancel`]). Accepted
    /// at any time; an offer that a clearing already matched into an
    /// in-flight swap is no longer `Open` and the cancel fails — a
    /// provisioned swap is never unwound.
    ///
    /// # Errors
    ///
    /// [`CancelError`] if the offer is unknown or no longer open.
    pub fn cancel(&mut self, id: OfferId) -> Result<(), CancelError> {
        self.service.cancel(id)?;
        self.material.remove(&id);
        self.report.offers_cancelled += 1;
        // A withdrawal changes the open book too: the next clearing gets a
        // look (this is also the recovery path after a failed admission).
        self.dirty_since = Some(self.now);
        Ok(())
    }

    /// The pipeline frontier: the simulated instant of the latest completed
    /// stage transition.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The underlying clearing service (offer statuses, epoch counter).
    pub fn service(&self) -> &ClearingService {
        &self.service
    }

    /// The merged global ledger across every executed swap.
    pub fn ledger(&self) -> &ChainSet<AnyContract> {
        &self.ledger
    }

    /// The identity registry: one master keypair per address, with
    /// consumed-leaf accounting.
    pub fn identities(&self) -> &IdentityStore {
        &self.identities
    }

    /// The aggregate report so far.
    pub fn report(&self) -> &ExchangeReport {
        &self.report
    }

    /// Consumes the exchange, yielding the final aggregate report.
    pub fn into_report(self) -> ExchangeReport {
        self.report
    }

    /// The in-flight epochs and the stage each occupies, oldest first.
    pub fn stages(&self) -> Vec<(u64, EpochStage)> {
        self.in_flight.iter().map(|e| (e.epoch, e.stage)).collect()
    }

    /// The stage `epoch` currently occupies, if it is in flight.
    pub fn stage_of(&self, epoch: u64) -> Option<EpochStage> {
        self.in_flight.iter().find(|e| e.epoch == epoch).map(|e| e.stage)
    }

    /// True when nothing is in flight and no submission awaits clearing.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_empty() && self.dirty_since.is_none()
    }

    /// Advances the pipeline by exactly one stage transition and reports
    /// what happened. Transitions are processed in simulated-time order:
    ///
    /// * a new epoch is admitted into [`EpochStage::Clearing`] whenever the
    ///   slot is free and the book has submissions no clearing has seen;
    /// * otherwise the in-flight epoch with the earliest admissible
    ///   transition advances one stage (respecting slot budgets and
    ///   admission order — this is what overlaps epoch `k+1`'s clearing,
    ///   provisioning, and, with more than one
    ///   [execution slot](ExchangeConfig::executing_slots), *execution*
    ///   with epoch `k`'s execution);
    /// * with nothing to do, [`StepEvent::Quiescent`] is returned and the
    ///   exchange is unchanged.
    ///
    /// An epoch whose pool results are still outstanding carries only a
    /// *lower bound* on its execution completion; `step` blocks on the
    /// pool (resolving the true completion) only once that bound undercuts
    /// every transition already known — so the host-side execution of one
    /// epoch overlaps both the bookkeeping and the execution of the next,
    /// while the simulated trace stays deterministic.
    ///
    /// # Example
    ///
    /// ```
    /// use swap_core::exchange::{EpochStage, Exchange, ExchangeConfig, ExchangeParty, StepEvent};
    /// use swap_market::AssetKind;
    /// use swap_sim::SimRng;
    ///
    /// let mut rng = SimRng::from_seed(5);
    /// let mut exchange = Exchange::new(ExchangeConfig::default());
    /// for (gives, wants) in [("btc", "eth"), ("eth", "btc")] {
    ///     exchange.submit(ExchangeParty::generate(
    ///         &mut rng,
    ///         4,
    ///         AssetKind::new(gives),
    ///         AssetKind::new(wants),
    ///     ));
    /// }
    /// // Admission, three advances, retirement, quiescence.
    /// let mut stages = Vec::new();
    /// loop {
    ///     match exchange.step().unwrap() {
    ///         StepEvent::StageEntered { stage, .. } => stages.push(stage),
    ///         StepEvent::EpochSettled { executed, .. } => {
    ///             assert_eq!(executed.len(), 1);
    ///             break;
    ///         }
    ///         StepEvent::Quiescent => unreachable!("an epoch is in flight"),
    ///     }
    /// }
    /// assert_eq!(stages, EpochStage::ALL.to_vec());
    /// assert!(exchange.is_quiescent());
    /// ```
    ///
    /// # Errors
    ///
    /// [`ExchangeError::Clear`] if cycle assembly fails (no offer changes
    /// status and no epoch is admitted); [`ExchangeError::Verify`] if a
    /// published swap betrays an offer — nothing was escrowed, and every
    /// swap of that epoch is torn down (its offers become `Refunded`), so
    /// the book is never wedged with permanently-`Matched` offers;
    /// [`ExchangeError::WorkerPanicked`] if a swap's engine panicked on
    /// its worker — that swap's offers are refunded, its siblings' results
    /// survive and settle normally. The pipeline stays consistent in every
    /// case and further `step` calls keep driving the remaining epochs.
    pub fn step(&mut self) -> Result<StepEvent, ExchangeError> {
        // Admission first: the clearing slot feeds the pipeline.
        let clearing_busy = self.in_flight.iter().any(|e| e.stage == EpochStage::Clearing);
        if !clearing_busy {
            if let Some(dirty_at) = self.dirty_since {
                let entered = dirty_at.max(self.vacated[EpochStage::Clearing.index()]);
                return self.admit(entered);
            }
        }
        // Otherwise: the admissible transition earliest in simulated time.
        // An epoch still waiting on pool results ([`EpochWork::Queued`])
        // only has a *lower bound* on its transition time; it is resolved
        // (blocking on the pool channel) lazily, only once that bound
        // undercuts every transition already known — any transition known
        // to be strictly earlier is processed first, which is what lets
        // the host finish epoch `k`'s swaps while the pipeline books (and
        // queues) epoch `k+1`. Resolution is host-order-independent, so
        // the simulated trace is deterministic either way.
        loop {
            let mut best: Option<(usize, SimTime)> = None;
            let mut unresolved: Option<(usize, SimTime)> = None;
            for (i, epoch) in self.in_flight.iter().enumerate() {
                if !self.may_advance(i) {
                    continue;
                }
                let entry = self.entry_time(i);
                if matches!(epoch.work, EpochWork::Queued { .. }) {
                    if unresolved.map_or(true, |(_, t)| entry < t) {
                        unresolved = Some((i, entry));
                    }
                } else if best.map_or(true, |(_, t)| entry < t) {
                    best = Some((i, entry));
                }
            }
            match (best, unresolved) {
                (Some((i, entry)), Some((_, bound))) if entry < bound => {
                    return self.advance(i, entry);
                }
                (_, Some((i, _))) => self.resolve_execution(i)?,
                (Some((i, entry)), None) => return self.advance(i, entry),
                (None, None) => return Ok(StepEvent::Quiescent),
            }
        }
    }

    /// Whether the `i`-th in-flight epoch's next transition respects the
    /// slot budgets and admission order: the single-epoch stages must be
    /// free of epochs ahead, entry into `Executing` requires a free
    /// execution slot, and departure from `Executing` waits for every
    /// older epoch to clear both `Executing` and `Settling` (epochs retire
    /// in admission order even when their executions overlapped).
    fn may_advance(&self, i: usize) -> bool {
        let epoch = &self.in_flight[i];
        let mut ahead = self.in_flight.iter().take(i);
        match epoch.stage.next() {
            Some(EpochStage::Executing) => {
                let resident = ahead.filter(|a| a.stage == EpochStage::Executing).count();
                resident < self.config.executing_slots.max(1)
            }
            Some(EpochStage::Settling) => {
                !ahead.any(|a| a.stage == EpochStage::Executing || a.stage == EpochStage::Settling)
            }
            Some(next) => !ahead.any(|a| a.stage == next),
            None => true,
        }
    }

    /// The simulated instant the `i`-th epoch's next transition happens:
    /// the later of its own stage completion (a lower bound while its pool
    /// results are outstanding) and the moment the next stage's slot was
    /// last vacated. Transitions are processed in simulated-time order, so
    /// a stale vacate time never inflates an entry: any vacate later than
    /// this entry belongs to a transition that has not been processed yet.
    fn entry_time(&self, i: usize) -> SimTime {
        let epoch = &self.in_flight[i];
        match epoch.stage.next() {
            Some(next) => epoch.completes_at.max(self.vacated[next.index()]),
            None => epoch.completes_at,
        }
    }

    /// Steps the pipeline until it is [quiescent](Exchange::is_quiescent),
    /// returning every swap executed along the way (each retiring epoch's
    /// swaps in ascending swap-id order). Offers that never matched stay
    /// `Open` in the book — quiescence means no epoch is in flight *and*
    /// no submission has arrived since the last clearing, not an empty
    /// book.
    ///
    /// # Example
    ///
    /// ```
    /// use swap_core::exchange::{Exchange, ExchangeConfig, ExchangeParty};
    /// use swap_market::AssetKind;
    /// use swap_sim::SimRng;
    ///
    /// let mut rng = SimRng::from_seed(7);
    /// let mut exchange = Exchange::new(ExchangeConfig::default());
    /// for (gives, wants) in [("usd", "gbp"), ("gbp", "usd"), ("doge", "usd")] {
    ///     exchange.submit(ExchangeParty::generate(
    ///         &mut rng,
    ///         4,
    ///         AssetKind::new(gives),
    ///         AssetKind::new(wants),
    ///     ));
    /// }
    /// let executed = exchange.drive_until_quiescent().unwrap();
    /// assert_eq!(executed.len(), 1); // the usd/gbp ring; doge has no taker
    /// assert!(exchange.is_quiescent());
    /// assert_eq!(exchange.service().open_count(), 1); // doge rolls over
    /// ```
    ///
    /// # Errors
    ///
    /// Stops at the first [`ExchangeError`] a step raises, returned inside
    /// a [`DriveError`] together with every swap that had already settled
    /// during this drive (partial results are never lost). The pipeline
    /// stays consistent and the drive can be resumed by calling this
    /// again.
    pub fn drive_until_quiescent(&mut self) -> Result<Vec<ExecutedSwap>, DriveError> {
        let mut executed = Vec::new();
        loop {
            match self.step() {
                Ok(StepEvent::EpochSettled { executed: mut swaps, .. }) => {
                    executed.append(&mut swaps);
                }
                Ok(StepEvent::Quiescent) => return Ok(executed),
                Ok(StepEvent::StageEntered { .. }) => {}
                Err(error) => return Err(DriveError { error, executed }),
            }
        }
    }

    /// Admits a new epoch into the clearing stage at `entered`.
    fn admit(&mut self, entered: SimTime) -> Result<StepEvent, ExchangeError> {
        // Plan first, price from the plan's *measured* work (offers the
        // matcher examined, cycles it emitted), then publish at the priced
        // completion instant: the cost must be known before `commit`
        // because every published start is "at least Δ in the future" of
        // the publication instant.
        let plan = self.service.plan();
        let stats = *plan.stats();
        let costs = &self.config.stage_costs;
        let cost = costs.clearing_base
            + costs.clearing_per_examined * stats.offers_examined
            + costs.clearing_per_cycle * stats.cycles_emitted;
        let completes = entered + SimDuration::from_ticks(cost);
        let cleared = match self.service.commit(plan, self.config.delta, completes) {
            Ok(cleared) => cleared,
            Err(e) => {
                // `commit` is transactional — the book is untouched — but a
                // book that fails to clear would fail identically on every
                // retry, and retrying admission first on each `step` would
                // starve the in-flight epochs. Report the error once and
                // drop the dirty mark; the next `submit` or `cancel` (the
                // only ways the book can change) re-marks it.
                self.dirty_since = None;
                return Err(e.into());
            }
        };
        self.dirty_since = None;
        let epoch = self.service.epoch() - 1;
        self.report.epochs += 1;
        self.now = self.now.max(entered);
        self.in_flight.push_back(InFlightEpoch {
            epoch,
            stage: EpochStage::Clearing,
            completes_at: completes,
            work: EpochWork::Cleared(cleared),
        });
        Ok(StepEvent::StageEntered { epoch, stage: EpochStage::Clearing, at: entered })
    }

    /// Advances the `i`-th in-flight epoch out of its current stage, with
    /// the next stage entered (or the epoch retired) at `entry`.
    fn advance(&mut self, i: usize, entry: SimTime) -> Result<StepEvent, ExchangeError> {
        let leaving = self.in_flight[i].stage;
        let published_at = self.in_flight[i].completes_at;
        // Attribute the frontier advance to the stage being left, then
        // vacate its slot for the epoch behind.
        let dt = if entry > self.now { (entry - self.now).ticks() } else { 0 };
        // Executing-stage occupancy integral, over the pre-transition
        // state: every epoch resident in the stage was resident for the
        // whole advance (transitions are processed in time order).
        let resident =
            self.in_flight.iter().filter(|e| e.stage == EpochStage::Executing).count() as u64;
        self.report.executing_resident_ticks += dt * resident;
        self.now = self.now.max(entry);
        self.report.wall_ticks += dt;
        self.report.stage_ticks.charge(leaving, dt);
        self.vacated[leaving.index()] = entry;
        let epoch = self.in_flight[i].epoch;
        let work = std::mem::replace(&mut self.in_flight[i].work, EpochWork::Taken);
        let costs = self.config.stage_costs;
        match (leaving, work) {
            (EpochStage::Clearing, EpochWork::Cleared(cleared)) => {
                // The service is untrusted: every party re-checks its slot
                // at publication, before anything is provisioned, let alone
                // escrowed (§4.2).
                if let Err(error) = self.verify_epoch(&cleared, published_at) {
                    // Nothing was escrowed, but `clear` already consumed
                    // the matched offers — tear every cleared swap down so
                    // the lifecycle resolves instead of wedging in
                    // `Matched`.
                    for swap in &cleared {
                        self.service.refund_swap(swap.id).expect("issued this epoch");
                        for oid in &swap.offer_of_vertex {
                            self.material.remove(oid);
                        }
                        self.report.swaps_refunded += 1;
                    }
                    self.report.swaps_cleared += cleared.len() as u64;
                    self.in_flight.remove(i);
                    return Err(error);
                }
                // Provision each cycle by *leasing* one-time leaf windows
                // from the identity registry: `leaders + 1` signatures per
                // party covers every signing the §4.5/§4.6 engines can
                // perform (one base chain or premature announce, plus one
                // extension per leader). An identity with too few unused
                // leaves fails only its own swap, checked: that swap is
                // refunded here (no leaves consumed) and its siblings
                // provision normally.
                let mut provisioned = Vec::with_capacity(cleared.len());
                let mut exhausted: Vec<(SwapId, Address)> = Vec::new();
                let mut released: BTreeSet<Address> = BTreeSet::new();
                let mut parties = 0u64;
                for swap in cleared {
                    let budget = swap.spec.leaders.len() as u64 + 1;
                    // Cumulative need per address (one slot per party per
                    // swap in practice; stay safe about duplicates).
                    let mut need: BTreeMap<Address, u64> = BTreeMap::new();
                    for oid in &swap.offer_of_vertex {
                        *need.entry(self.material[oid].0).or_insert(0) += budget;
                    }
                    let short = need.iter().find_map(|(address, n)| {
                        (self.identities.remaining(address).unwrap_or(0) < *n).then_some(*address)
                    });
                    if let Some(address) = short {
                        self.service.refund_swap(swap.id).expect("issued this epoch");
                        for oid in &swap.offer_of_vertex {
                            self.material.remove(oid);
                            if let Some(offer) = self.service.offer(*oid) {
                                released.insert(offer.key.address());
                            }
                        }
                        self.report.swaps_refunded += 1;
                        self.report.swaps_cleared += 1;
                        self.report.swaps_exhausted += 1;
                        exhausted.push((swap.id, address));
                        continue;
                    }
                    parties += swap.spec.digraph.vertex_count() as u64;
                    let mut keypairs = Vec::with_capacity(swap.offer_of_vertex.len());
                    for oid in &swap.offer_of_vertex {
                        let address = self.material[oid].0;
                        let lease = self
                            .identities
                            .lease(&address, budget)
                            .expect("availability checked before leasing");
                        keypairs.push(lease);
                    }
                    let secrets =
                        swap.offer_of_vertex.iter().map(|oid| self.material[oid].1).collect();
                    let swap =
                        ProvisionedSwap::new(swap, keypairs, secrets, self.config.run.clone());
                    provisioned.push(match self.config.protocol {
                        ProtocolPolicy::Auto => swap,
                        ProtocolPolicy::ForceHashkey => swap.with_protocol(ProtocolKind::Hashkey),
                    });
                }
                self.report.leaves_leased = self.identities.leaves_leased();
                // A refunded party's deferred counterparties get the next
                // clearing's attention, exactly as settlement would grant.
                if !released.is_empty() && self.service.any_deferred_from(&released) {
                    self.dirty_since = Some(self.now);
                }
                let cost = costs.provisioning_base + costs.provisioning_per_party * parties;
                self.enter(
                    i,
                    EpochStage::Provisioning,
                    entry,
                    cost,
                    EpochWork::Provisioned(provisioned),
                );
                exhausted.sort_by_key(|&(swap, _)| swap);
                if let Some(&(swap, address)) = exhausted.first() {
                    return Err(ExchangeError::KeysExhausted { swap, address });
                }
                Ok(StepEvent::StageEntered { epoch, stage: EpochStage::Provisioning, at: entry })
            }
            (EpochStage::Provisioning, EpochWork::Provisioned(provisioned)) => {
                // Execution admission: each provisioned swap is stamped
                // onto the timeline here — chains created, start rebased to
                // `entry + Δ` — and queued onto the shared worker pool
                // immediately. The epoch's completion is provisionally its
                // Δ lower bound (the shortest possible run); the true wall
                // — the slowest swap's — is installed once the results
                // resolve.
                let pending = provisioned.len();
                for p in provisioned {
                    let admitted = p.admit_for_queue(entry);
                    let tag = JobTag::Swap(admitted.epoch, admitted.swap);
                    self.pool.submit(tag, move || JobOutput::Swap(Box::new(admitted.execute())));
                }
                let resident =
                    1 + self.in_flight.iter().filter(|e| e.stage == EpochStage::Executing).count()
                        as u64;
                self.report.executing_peak = self.report.executing_peak.max(resident);
                let work = EpochWork::Queued {
                    entered: entry,
                    pending,
                    outcomes: Vec::new(),
                    panicked: Vec::new(),
                };
                self.enter(i, EpochStage::Executing, entry, self.config.delta.ticks(), work);
                Ok(StepEvent::StageEntered { epoch, stage: EpochStage::Executing, at: entry })
            }
            (EpochStage::Executing, EpochWork::Executed(results)) => {
                let cost = costs.settling_base + costs.settling_per_swap * results.len() as u64;
                self.enter(i, EpochStage::Settling, entry, cost, EpochWork::Executed(results));
                Ok(StepEvent::StageEntered { epoch, stage: EpochStage::Settling, at: entry })
            }
            (EpochStage::Settling, EpochWork::Executed(results)) => {
                let executed = self.retire(results);
                self.in_flight.remove(i);
                Ok(StepEvent::EpochSettled { epoch, at: entry, executed })
            }
            (stage, work) => unreachable!("stage {stage} holds mismatched work {work:?}"),
        }
    }

    /// Moves the `i`-th in-flight epoch into `stage` at `entered`, with the
    /// given simulated duration and payload.
    fn enter(
        &mut self,
        i: usize,
        stage: EpochStage,
        entered: SimTime,
        ticks: u64,
        work: EpochWork,
    ) {
        let epoch = &mut self.in_flight[i];
        epoch.stage = stage;
        epoch.completes_at = entered + SimDuration::from_ticks(ticks);
        epoch.work = work;
    }

    /// Resolves the `i`-th epoch's execution: blocks on the pool until
    /// every outstanding result of the epoch has arrived (results
    /// belonging to *other* executing epochs are stashed into their
    /// buffers as they surface — the channel is shared), merges the
    /// outcomes in swap-id order, and installs the epoch's true execution
    /// wall — the slowest swap's run, a pure function of the deterministic
    /// per-swap reports, never of which worker ran what when.
    ///
    /// Panicked swaps fail here, and only here: each one's offers are
    /// refunded (its parties' clearing reservations released), the
    /// surviving outcomes stay installed so they settle normally on later
    /// steps, and the first panicked swap id is reported as
    /// [`ExchangeError::WorkerPanicked`].
    fn resolve_execution(&mut self, i: usize) -> Result<(), ExchangeError> {
        while matches!(&self.in_flight[i].work, EpochWork::Queued { pending, .. } if *pending > 0) {
            let completed = self.pool.recv();
            self.absorb(completed);
        }
        let work = std::mem::replace(&mut self.in_flight[i].work, EpochWork::Taken);
        let EpochWork::Queued { entered, mut outcomes, mut panicked, .. } = work else {
            unreachable!("resolve_execution on a non-queued epoch")
        };
        // Arrival order is a host-scheduling artifact; everything
        // observable is re-ordered by swap id.
        outcomes.sort_by_key(|o| o.swap);
        panicked.sort();
        let delta = self.config.delta;
        let mut wall = delta.ticks();
        for o in &outcomes {
            // The swap occupies rounds 0..=rounds, each Δ long. (A
            // panicked swap contributes nothing: its run never finished,
            // and its epoch does not wait on it.)
            wall = wall.max(delta.ticks() * (o.report.metrics.rounds + 1));
        }
        self.in_flight[i].completes_at = entered + SimDuration::from_ticks(wall);
        self.in_flight[i].work = EpochWork::Executed(outcomes);
        if panicked.is_empty() {
            return Ok(());
        }
        // Fail the panicked swaps — and only them. Their offers refund so
        // the lifecycle resolves instead of wedging in `Matched`, and
        // their parties' reservations release exactly as settlement would.
        let mut released: BTreeSet<Address> = BTreeSet::new();
        for &id in &panicked {
            if let Some(offers) = self.service.offers_of_swap(id) {
                for oid in offers {
                    self.material.remove(oid);
                    if let Some(offer) = self.service.offer(*oid) {
                        released.insert(offer.key.address());
                    }
                }
            }
            self.service.refund_swap(id).expect("issued this epoch");
            self.report.swaps_refunded += 1;
            self.report.swaps_cleared += 1;
        }
        if !released.is_empty() && self.service.any_deferred_from(&released) {
            self.dirty_since = Some(self.now);
        }
        Err(ExchangeError::WorkerPanicked(panicked[0]))
    }

    /// Routes one pool result to its owner: swap results into the owning
    /// epoch's [`EpochWork::Queued`] buffer, minted identities into the
    /// mint stash. The result channel is shared, so both
    /// [`resolve_execution`](Self::resolve_execution) and
    /// [`submit_seeded`](Self::submit_seeded) drain through here —
    /// whichever blocks first absorbs whatever surfaces.
    fn absorb(&mut self, completed: Completed<JobTag, JobOutput>) {
        match completed.tag {
            JobTag::Mint(ticket) => {
                let output = completed.result.expect("identity minting does not panic");
                let JobOutput::Mint(keypair) = output else {
                    unreachable!("mint ticket {ticket} returned a swap result")
                };
                self.minted.insert(ticket, keypair);
            }
            JobTag::Swap(epoch, swap) => {
                let slot = self
                    .in_flight
                    .iter_mut()
                    .find(|e| e.epoch == epoch)
                    .expect("every queued epoch is in flight until resolved");
                let EpochWork::Queued { pending, outcomes, panicked, .. } = &mut slot.work else {
                    unreachable!("epoch {epoch} received a result but is not queued")
                };
                *pending -= 1;
                match completed.result {
                    Ok(JobOutput::Swap(output)) => outcomes.push(*output),
                    Ok(JobOutput::Mint(_)) => {
                        unreachable!("swap job for {swap} returned a minted identity")
                    }
                    Err(_) => panicked.push(swap),
                }
            }
        }
    }

    /// Resolves a fully executed epoch: offer lifecycle, aggregate report,
    /// ledger absorption. Results arrive (and are reported) in swap-id
    /// order whatever worker ran them.
    fn retire(&mut self, results: Vec<SwapRunOutput>) -> Vec<ExecutedSwap> {
        let mut out = Vec::with_capacity(results.len());
        // Resolution releases these parties' clearing reservations.
        let mut released: BTreeSet<Address> = BTreeSet::new();
        for SwapRunOutput { swap: id, epoch, protocol, report, setup } in results {
            let spec = &setup.spec;
            let all_deal = report.all_deal();
            // The swap is over either way: drop its parties' key material.
            if let Some(offers) = self.service.offers_of_swap(id) {
                for oid in offers {
                    self.material.remove(oid);
                    if let Some(offer) = self.service.offer(*oid) {
                        released.insert(offer.key.address());
                    }
                }
            }
            if all_deal {
                self.service.settle_swap(id).expect("issued this epoch");
                self.report.swaps_settled += 1;
            } else {
                self.service.refund_swap(id).expect("issued this epoch");
                self.report.swaps_refunded += 1;
            }
            self.report.swaps.push(SwapSummary {
                swap: id,
                epoch,
                parties: spec.digraph.vertex_count(),
                leaders: spec.leaders.len(),
                protocol,
                settled: report.settled,
                all_deal,
                rounds: report.metrics.rounds,
                metrics: report.metrics,
            });
            for (_, chain) in setup.chains.iter() {
                self.report.tx_executed += chain.txs_executed();
                self.report.tx_rolled_back += chain.txs_rolled_back();
            }
            self.ledger.absorb(setup.chains);
            out.push(ExecutedSwap { id, epoch, report });
        }
        self.report.swaps_cleared += out.len() as u64;
        self.report.storage = self.ledger.storage_report();
        // If a released party still has an offer sitting `Open` that a
        // clearing *skipped while the party was reserved*, wake the
        // pipeline so the next clearing picks it up. Without this, the
        // deferred offer would strand until some unrelated submission
        // re-dirtied the book. Ordinary no-counterparty leftovers are not
        // deferred, so settlements never admit phantom epochs for them —
        // and zero-swap epochs release nothing, so this can never re-admit
        // clearings forever.
        if !released.is_empty() && self.service.any_deferred_from(&released) {
            self.dirty_since = Some(self.now);
        }
        out
    }

    /// Re-checks every cleared slot against the party's original offer, as
    /// of the publication instant `published_at`.
    fn verify_epoch(
        &self,
        cleared: &[ClearedSwap],
        published_at: SimTime,
    ) -> Result<(), ExchangeError> {
        for swap in cleared {
            for (pos, oid) in swap.offer_of_vertex.iter().enumerate() {
                let vertex = VertexId::new(pos as u32);
                let offer = self.service.offer(*oid).expect("cleared offers exist");
                verify_cleared_swap(swap, vertex, offer, published_at)
                    .map_err(|error| ExchangeError::Verify { swap: swap.id, vertex, error })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_market::OfferStatus;

    /// A book of `cycles` disjoint 3-cycles over distinct kind alphabets.
    fn book(cycles: usize, rng: &mut SimRng) -> Vec<ExchangeParty> {
        let mut parties = Vec::new();
        for c in 0..cycles {
            for p in 0..3 {
                parties.push(ExchangeParty::generate(
                    rng,
                    4,
                    AssetKind::new(format!("c{c}k{p}")),
                    AssetKind::new(format!("c{c}k{}", (p + 1) % 3)),
                ));
            }
        }
        parties
    }

    fn run_book(cycles: usize, threads: usize, seed: u64) -> ExchangeReport {
        let mut rng = SimRng::from_seed(seed);
        let mut exchange = Exchange::new(ExchangeConfig { threads, ..Default::default() });
        for party in book(cycles, &mut rng) {
            exchange.submit(party);
        }
        let executed = exchange.drive_until_quiescent().unwrap();
        assert_eq!(executed.len(), cycles);
        exchange.into_report()
    }

    #[test]
    fn epoch_settles_disjoint_cycles() {
        let report = run_book(3, 1, 100);
        assert_eq!(report.epochs, 1);
        assert_eq!(report.offers_submitted, 9);
        assert_eq!(report.swaps_cleared, 3);
        assert_eq!(report.swaps_settled, 3);
        assert_eq!(report.swaps_refunded, 0);
        assert!(report.storage.total_bytes() > 0);
        assert_eq!(report.swaps.len(), 3);
        assert!(report.swaps.windows(2).all(|w| w[0].swap < w[1].swap));
        // Concurrent execution: the epoch's wall time is one swap's
        // duration, not three.
        let per_swap = report.swaps[0].rounds + 1;
        assert_eq!(report.wall_ticks, per_swap * ExchangeConfig::default().delta.ticks());
        // With the default zero stage costs, every wall tick is execution.
        assert_eq!(report.stage_ticks.total(), report.wall_ticks);
        assert_eq!(report.stage_ticks.executing, report.wall_ticks);
    }

    #[test]
    fn report_invariant_under_thread_count() {
        let sequential = run_book(5, 1, 200);
        for threads in [2, 3, 8, 64] {
            let pooled = run_book(5, threads, 200);
            assert_eq!(sequential, pooled, "threads = {threads}");
        }
    }

    #[test]
    fn lifecycle_resolves_and_ledger_merges() {
        let mut rng = SimRng::from_seed(300);
        let mut exchange = Exchange::new(ExchangeConfig { threads: 2, ..Default::default() });
        let ids: Vec<OfferId> = book(2, &mut rng).into_iter().map(|p| exchange.submit(p)).collect();
        let straggler = exchange.submit(ExchangeParty::generate(
            &mut rng,
            4,
            AssetKind::new("orphan"),
            AssetKind::new("nobody-gives-this"),
        ));
        let executed = exchange.drive_until_quiescent().unwrap();
        assert_eq!(executed.len(), 2);
        for id in &ids {
            assert_eq!(exchange.service().status(*id), Some(OfferStatus::Settled));
        }
        assert_eq!(exchange.service().status(straggler), Some(OfferStatus::Open));
        // 2 swaps × 3 arcs, one chain per arc, all absorbed.
        assert_eq!(exchange.ledger().len(), 6);
        assert!(exchange.ledger().verify_integrity());
        // The merged storage equals the sum of the per-swap reports.
        let summed = executed
            .iter()
            .fold(swap_chain::StorageReport::default(), |acc, s| acc.merge(&s.report.storage));
        assert_eq!(exchange.report().storage, summed);
    }

    #[test]
    fn cancelled_offer_never_executes() {
        let mut rng = SimRng::from_seed(400);
        let mut exchange = Exchange::new(ExchangeConfig::default());
        let parties = book(1, &mut rng);
        let first = exchange.submit(parties[0].clone());
        for p in &parties[1..] {
            exchange.submit(p.clone());
        }
        exchange.cancel(first).unwrap();
        let executed = exchange.drive_until_quiescent().unwrap();
        assert!(executed.is_empty(), "the 3-cycle is broken by the cancellation");
        assert_eq!(exchange.report().offers_cancelled, 1);
        assert_eq!(exchange.service().status(first), Some(OfferStatus::Cancelled));
    }

    #[test]
    fn multiple_epochs_advance_the_clock() {
        let mut rng = SimRng::from_seed(500);
        let mut exchange = Exchange::new(ExchangeConfig::default());
        for party in book(1, &mut rng) {
            exchange.submit(party);
        }
        exchange.drive_until_quiescent().unwrap();
        let after_first = exchange.now();
        assert!(after_first > SimTime::ZERO);
        // A second ring arrives later; it clears in epoch 1 on the advanced
        // clock.
        for party in book(1, &mut SimRng::from_seed(501)) {
            exchange.submit(party);
        }
        let executed = exchange.drive_until_quiescent().unwrap();
        assert_eq!(executed.len(), 1);
        assert_eq!(executed[0].epoch, 1);
        assert!(executed[0].report.all_deal());
        assert_eq!(exchange.report().epochs, 2);
        assert!(exchange.now() > after_first);
    }

    #[test]
    fn step_walks_the_stage_machine_in_order() {
        let mut rng = SimRng::from_seed(700);
        let mut exchange = Exchange::new(ExchangeConfig::default());
        for party in book(1, &mut rng) {
            exchange.submit(party);
        }
        assert!(!exchange.is_quiescent());
        let mut seen = Vec::new();
        loop {
            match exchange.step().unwrap() {
                StepEvent::StageEntered { epoch, stage, .. } => {
                    assert_eq!(epoch, 0);
                    assert_eq!(exchange.stage_of(0), Some(stage));
                    seen.push(stage);
                }
                StepEvent::EpochSettled { epoch, executed, .. } => {
                    assert_eq!(epoch, 0);
                    assert_eq!(executed.len(), 1);
                    break;
                }
                StepEvent::Quiescent => unreachable!("an epoch is in flight"),
            }
        }
        assert_eq!(seen, EpochStage::ALL.to_vec());
        assert!(exchange.is_quiescent());
        assert!(matches!(exchange.step().unwrap(), StepEvent::Quiescent));
    }

    #[test]
    fn stage_costs_are_attributed_and_sum_to_wall() {
        let costs = StageCosts {
            clearing_base: 4,
            clearing_per_examined: 1,
            clearing_per_cycle: 1,
            provisioning_base: 3,
            provisioning_per_party: 1,
            settling_base: 2,
            settling_per_swap: 1,
        };
        let mut rng = SimRng::from_seed(800);
        let mut exchange =
            Exchange::new(ExchangeConfig { stage_costs: costs, ..Default::default() });
        for party in book(2, &mut rng) {
            exchange.submit(party);
        }
        let executed = exchange.drive_until_quiescent().unwrap();
        assert_eq!(executed.len(), 2);
        let report = exchange.report();
        // Measured clearing work under the indexed matcher: the two
        // 3-cycles span 6 kinds with one giver and one wanter each (6 zip
        // steps examined) and emit 2 cycles. 6 parties provisioned, 2
        // swaps settled.
        assert_eq!(report.stage_ticks.clearing, 4 + 6 + 2);
        assert_eq!(report.stage_ticks.provisioning, 3 + 6);
        assert_eq!(report.stage_ticks.settling, 2 + 2);
        assert!(report.stage_ticks.executing > 0);
        assert_eq!(report.stage_ticks.total(), report.wall_ticks);
        assert_eq!(report.wall_ticks, exchange.now().ticks());
    }

    #[test]
    fn measured_clearing_cost_separates_the_modes() {
        // A mutual pair plus a large inert tail: the indexed matcher
        // examines only the two active-kind zip steps, the full rescan
        // pays for every open offer — with per-examined pricing the same
        // book attributes different clearing ticks per mode, while the
        // published swaps (and everything downstream) stay identical.
        let run = |mode: ClearingMode| {
            let mut rng = SimRng::from_seed(801);
            let mut exchange = Exchange::new(ExchangeConfig {
                clearing_mode: mode,
                stage_costs: StageCosts { clearing_per_examined: 1, ..Default::default() },
                ..Default::default()
            });
            exchange.submit(ExchangeParty::generate(
                &mut rng,
                4,
                AssetKind::new("btc"),
                AssetKind::new("eth"),
            ));
            exchange.submit(ExchangeParty::generate(
                &mut rng,
                4,
                AssetKind::new("eth"),
                AssetKind::new("btc"),
            ));
            for i in 0..10 {
                exchange.submit(ExchangeParty::generate(
                    &mut rng,
                    4,
                    AssetKind::new(format!("dust{i}a")),
                    AssetKind::new(format!("dust{i}b")),
                ));
            }
            let executed = exchange.drive_until_quiescent().unwrap();
            assert_eq!(executed.len(), 1, "{mode}");
            exchange.report().stage_ticks.clearing
        };
        let indexed = run(ClearingMode::Indexed);
        let full = run(ClearingMode::FullRescan);
        // Indexed: one pass over the btc/eth zips per clear; FullRescan:
        // the whole 12-offer book on the first clear alone.
        assert!(
            indexed < full,
            "indexed clearing ticks {indexed} must undercut full rescan {full}"
        );
    }
}
