//! Hashkey analysis helpers (Figure 7 of the paper).
//!
//! A hashkey for hashlock `h_i` on arc `(u, v)` is `(s_i, p, σ)` with `p` a
//! path from `v` to the leader who generated `s_i`. Figure 7 draws, for the
//! two-leader triangle, exactly which `(secret, path)` pairs each arc can
//! accept; [`hashkeys_for_arc`] enumerates them for any digraph, and
//! [`HashkeyTable`] aggregates the per-arc counts the experiment harness
//! prints.

use swap_digraph::path::enumerate_paths;
use swap_digraph::{ArcId, Digraph, VertexId, VertexPath};
use swap_sim::{Delta, SimDuration};

/// One admissible hashkey shape: which leader's secret, and the path a
/// counterparty would present.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashkeyShape {
    /// Index of the leader (position in the leader vector).
    pub leader_index: usize,
    /// The path from the arc's tail (counterparty) to that leader.
    pub path: VertexPath,
}

impl HashkeyShape {
    /// The hashkey's relative timeout `(diam + |p|)·Δ` (offset from the
    /// protocol start).
    pub fn timeout_offset(&self, diam: u64, delta: Delta) -> SimDuration {
        delta.times(diam + self.path.len() as u64)
    }
}

/// Enumerates every admissible hashkey shape for `arc`: for each leader,
/// every path from the arc's tail to that leader (the leader's own entering
/// arcs admit the degenerate single-vertex path).
pub fn hashkeys_for_arc(digraph: &Digraph, leaders: &[VertexId], arc: ArcId) -> Vec<HashkeyShape> {
    let tail = digraph.tail(arc);
    let mut shapes = Vec::new();
    for (leader_index, &leader) in leaders.iter().enumerate() {
        for path in enumerate_paths(digraph, tail, leader) {
            shapes.push(HashkeyShape { leader_index, path });
        }
    }
    shapes
}

/// Per-arc hashkey enumeration for a whole digraph — the data behind
/// Figure 7.
#[derive(Debug, Clone)]
pub struct HashkeyTable {
    /// `rows[i]` lists the admissible hashkeys of `ArcId(i)`.
    pub rows: Vec<Vec<HashkeyShape>>,
}

impl HashkeyTable {
    /// Builds the table.
    pub fn build(digraph: &Digraph, leaders: &[VertexId]) -> Self {
        let rows = digraph.arcs().map(|arc| hashkeys_for_arc(digraph, leaders, arc.id)).collect();
        HashkeyTable { rows }
    }

    /// Total number of admissible hashkeys across all arcs.
    pub fn total(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Renders the table as text, one line per (arc, hashkey).
    pub fn render(&self, digraph: &Digraph, leaders: &[VertexId]) -> String {
        let mut out = String::new();
        for (i, row) in self.rows.iter().enumerate() {
            let arc = ArcId::new(i as u32);
            let head = digraph.name(digraph.head(arc));
            let tail = digraph.name(digraph.tail(arc));
            for shape in row {
                let leader = digraph.name(leaders[shape.leader_index]);
                let path: Vec<&str> =
                    shape.path.vertices().iter().map(|&v| digraph.name(v)).collect();
                out.push_str(&format!(
                    "arc {head}->{tail}: secret of {leader} via ({})\n",
                    path.join(",")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_digraph::generators;

    #[test]
    fn three_party_single_leader_counts() {
        // C₃ with leader alice: each arc has exactly one admissible path
        // per secret (one leader, unique routes in a cycle).
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let table = HashkeyTable::build(&d, &[alice]);
        // Arc a→b (tail b): path (b,c,a). Arc b→c (tail c): (c,a).
        // Arc c→a (tail a): degenerate (a) plus the full cycle (a,b,c,a).
        assert_eq!(table.rows[0].len(), 1);
        assert_eq!(table.rows[1].len(), 1);
        assert_eq!(table.rows[2].len(), 2);
        assert_eq!(table.total(), 4);
    }

    #[test]
    fn figure_7_two_leader_enumeration() {
        // The two-leader triangle of Figure 7: alice and bob lead. Count
        // paths per arc per secret.
        let d = generators::two_leader_triangle();
        let alice = d.vertex_by_name("alice").unwrap();
        let bob = d.vertex_by_name("bob").unwrap();
        let table = HashkeyTable::build(&d, &[alice, bob]);
        // Every arc must admit at least one hashkey per secret (otherwise
        // the protocol could not trigger it).
        for (i, row) in table.rows.iter().enumerate() {
            for leader_index in 0..2 {
                assert!(
                    row.iter().any(|s| s.leader_index == leader_index),
                    "arc {i} lacks a hashkey for leader {leader_index}"
                );
            }
        }
        // Spot-check: the arc entering alice from carol admits the
        // degenerate alice-path? No — paths start at the arc tail. For arc
        // (carol → alice), tail = alice, so the degenerate path (alice)
        // appears for alice's own secret.
        let ca = d.arcs().find(|a| d.name(a.head) == "carol" && d.name(a.tail) == "alice").unwrap();
        let row = &table.rows[ca.id.index()];
        assert!(row.iter().any(|s| s.leader_index == 0 && s.path.is_empty()));
        let rendered = table.render(&d, &[alice, bob]);
        assert!(rendered.contains("carol->alice"));
        assert!(rendered.contains("secret of bob"));
    }

    #[test]
    fn timeout_offsets_grow_with_path_length() {
        let d = generators::two_leader_triangle();
        let alice = d.vertex_by_name("alice").unwrap();
        let bob = d.vertex_by_name("bob").unwrap();
        let table = HashkeyTable::build(&d, &[alice, bob]);
        let delta = Delta::from_ticks(10);
        let diam = d.diameter() as u64;
        for row in &table.rows {
            for shape in row {
                let offset = shape.timeout_offset(diam, delta);
                assert_eq!(offset.ticks(), (diam + shape.path.len() as u64) * 10);
                // No admissible hashkey outlives 2·diam·Δ.
                assert!(offset.ticks() <= 2 * diam * 10);
            }
        }
    }
}
