//! Per-address signing identities, minted once and leased leaf-by-leaf.
//!
//! The Merkle signature scheme ([`MssKeypair`]) is the expensive primitive
//! in the whole system: minting a height-`h` identity derives and hashes
//! `2^h` Lamport one-time keys before a single swap can run. The naive
//! exchange paid that cost once per *swap* — every provisioning round
//! regenerated full keypairs even for addresses it had already seen, and
//! (worse) handed every swap a clone starting at leaf 0, silently reusing
//! one-time leaves across swaps.
//!
//! The [`IdentityStore`] fixes both ends:
//!
//! * **Amortized keygen.** Each [`Address`] gets exactly one master
//!   [`MssKeypair`], registered at first submit. Later swaps by the same
//!   address reuse it; the `2^h` keygen is paid once per identity, not once
//!   per swap.
//! * **Leaf accounting.** Provisioning [`lease`]s a *window* of unused
//!   one-time leaves from the master handle ([`MssKeypair::lease`]), so
//!   concurrent swaps sign with disjoint leaf indices and no
//!   `(address, leaf_index)` pair ever signs twice. Leases share the
//!   master's Merkle tree by [`Arc`](std::sync::Arc), so carving one is a
//!   counter bump, not a tree copy.
//! * **Checked exhaustion.** When an identity's `2^h` leaves run out, the
//!   store reports [`LeaseError::Exhausted`] and the exchange refunds the
//!   affected swap — a checked error path, never a panic mid-epoch.
//!
//! [`lease`]: IdentityStore::lease

use std::collections::BTreeMap;

use swap_crypto::{Address, KeysExhaustedError, MssKeypair, MssPublicKey};

/// Why a [`lease`](IdentityStore::lease) could not be carved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseError {
    /// The address was never registered with the store.
    UnknownAddress,
    /// The identity exists but has fewer unused one-time leaves than the
    /// lease asked for.
    Exhausted(KeysExhaustedError),
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::UnknownAddress => write!(f, "address has no registered identity"),
            LeaseError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LeaseError {}

/// One master keypair per address, leased leaf-by-leaf to successive swaps.
///
/// See the [module docs](self) for the design. The store is deliberately
/// append-only: identities are never evicted, because an evicted identity's
/// consumed-leaf counter would be forgotten and a re-registration could
/// rewind it into one-time-key reuse.
#[derive(Debug, Default)]
pub struct IdentityStore {
    identities: BTreeMap<Address, MssKeypair>,
    leaves_leased: u64,
}

impl IdentityStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `keypair` as its address's identity, returning the address
    /// and whether this was the first touch.
    ///
    /// An already-registered address keeps its existing identity — the
    /// incoming handle is dropped — so resubmitting a party can never
    /// rewind the consumed-leaf counter into leaf reuse.
    pub fn register(&mut self, keypair: MssKeypair) -> (Address, bool) {
        let address = keypair.public_key().address();
        let first = !self.identities.contains_key(&address);
        if first {
            self.identities.insert(address, keypair);
        }
        (address, first)
    }

    /// Whether `address` has a registered identity.
    pub fn contains(&self, address: &Address) -> bool {
        self.identities.contains_key(address)
    }

    /// The public key of `address`'s identity, if registered.
    pub fn public_key(&self, address: &Address) -> Option<MssPublicKey> {
        self.identities.get(address).map(|kp| kp.public_key())
    }

    /// Unused one-time leaves left on `address`'s identity, if registered.
    pub fn remaining(&self, address: &Address) -> Option<u64> {
        self.identities.get(address).map(|kp| kp.remaining())
    }

    /// Carves a window of `count` unused leaves off `address`'s identity.
    ///
    /// The returned handle signs with leaves `[next, next + count)` and
    /// shares the master's Merkle tree by reference; the master's counter
    /// advances past the window, so later leases are disjoint. Fails
    /// without consuming anything if the identity is unknown or has fewer
    /// than `count` leaves left.
    pub fn lease(&mut self, address: &Address, count: u64) -> Result<MssKeypair, LeaseError> {
        let master = self.identities.get_mut(address).ok_or(LeaseError::UnknownAddress)?;
        let lease = master.lease(count).map_err(LeaseError::Exhausted)?;
        self.leaves_leased += count;
        Ok(lease)
    }

    /// Number of registered identities.
    pub fn len(&self) -> usize {
        self.identities.len()
    }

    /// Whether the store has no identities.
    pub fn is_empty(&self) -> bool {
        self.identities.is_empty()
    }

    /// Total one-time leaves handed out by [`lease`](Self::lease) so far.
    pub fn leaves_leased(&self) -> u64 {
        self.leaves_leased
    }

    /// The registered identities in address order — the durability store
    /// walks this to persist each master's `(seed, height, leaves,
    /// next_leaf)` state.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &MssKeypair)> {
        self.identities.iter()
    }

    /// Rebuilds a store from master keypairs (each already fast-forwarded
    /// to its durable leaf cursor) and the lease counter. Addresses are
    /// rederived from the keypairs, so a snapshot cannot smuggle in a
    /// mismatched address → identity binding.
    pub fn restore(masters: impl IntoIterator<Item = MssKeypair>, leaves_leased: u64) -> Self {
        IdentityStore {
            identities: masters.into_iter().map(|kp| (kp.public_key().address(), kp)).collect(),
            leaves_leased,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(byte: u8, height: u32) -> MssKeypair {
        MssKeypair::from_seed_with_height([byte; 32], height)
    }

    #[test]
    fn first_touch_registers_later_touches_keep_state() {
        let mut store = IdentityStore::new();
        let (address, first) = store.register(kp(1, 2));
        assert!(first);
        store.lease(&address, 3).unwrap();
        // Re-registering the same address (fresh handle, leaf counter 0)
        // must NOT rewind the consumed-leaf state.
        let (again, first) = store.register(kp(1, 2));
        assert_eq!(again, address);
        assert!(!first);
        assert_eq!(store.remaining(&address), Some(1));
    }

    #[test]
    fn leases_are_disjoint_and_exhaustion_is_checked() {
        let mut store = IdentityStore::new();
        let (address, _) = store.register(kp(2, 2)); // 4 leaves
        let a = store.lease(&address, 2).unwrap();
        let b = store.lease(&address, 2).unwrap();
        assert_eq!((a.next_leaf(), a.limit()), (0, 2));
        assert_eq!((b.next_leaf(), b.limit()), (2, 4));
        assert!(matches!(store.lease(&address, 1), Err(LeaseError::Exhausted(_))));
        assert_eq!(store.leaves_leased(), 4);
    }

    #[test]
    fn unknown_address_is_distinguished_from_exhaustion() {
        let mut store = IdentityStore::new();
        let unknown = kp(9, 2).public_key().address();
        assert!(matches!(store.lease(&unknown, 1), Err(LeaseError::UnknownAddress)));
        assert_eq!(store.remaining(&unknown), None);
        assert_eq!(store.public_key(&unknown), None);
    }
}
