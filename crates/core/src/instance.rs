//! One provisioned, runnable swap: the unit an orchestrator drives.
//!
//! [`SwapInstance`] is the split between *provisioning* and *execution*
//! state: it owns everything a single swap needs to run — the validated
//! spec, every party's key material, the per-arc chains and assets
//! ([`SwapSetup`]), the run configuration, and the *protocol choice*
//! ([`ProtocolKind`]) — but none of the engine's in-flight event
//! bookkeeping. That makes it the natural currency of the exchange
//! pipeline: the orchestrator provisions instances on the main thread,
//! ships them to worker shards (each instance exclusively owns its chains,
//! so shards share nothing), and turns each into an [`Engine`] only at
//! execution time.
//!
//! Provisioning itself is split once more for the pipelined exchange:
//! [`ProvisionedSwap`] is the *time-agnostic* half (cleared spec, key
//! material, run config, protocol choice) that can be prepared while a
//! previous epoch is still executing, and
//! [`ProvisionedSwap::admit`] is the *execution admission* that stamps the
//! swap onto a concrete timeline (chains created, protocol start rebased
//! to `now + Δ`) once the execution slot is actually free.

use swap_crypto::{MssKeypair, Secret};
use swap_market::{ClearedSwap, SwapId};
use swap_sim::SimTime;

use crate::engine::Engine;
use crate::protocol::ProtocolKind;
use crate::runner::{RunConfig, RunReport};
use crate::setup::SwapSetup;
use crate::timing::{Lockstep, TimingModel};

/// The time-agnostic half of provisioning a cleared swap: spec and key
/// material captured, run configuration attached, protocol chosen — but no
/// chains created and no timeline committed yet. A pipelined orchestrator
/// prepares these while the previous epoch still executes, then calls
/// [`ProvisionedSwap::admit`] the instant the execution slot frees up.
#[derive(Debug, Clone)]
pub struct ProvisionedSwap {
    /// The cleared swap being provisioned.
    pub cleared: ClearedSwap,
    /// Signing keypair per cleared vertex.
    pub keypairs: Vec<MssKeypair>,
    /// Secret per cleared vertex.
    pub secrets: Vec<Secret>,
    /// Per-run configuration.
    pub config: RunConfig,
    /// The protocol that will execute the swap, chosen at provisioning
    /// time by [`ProtocolKind::select`] (override with
    /// [`ProvisionedSwap::with_protocol`]).
    pub protocol: ProtocolKind,
}

impl ProvisionedSwap {
    /// Captures a cleared swap's execution prerequisites. `keypairs` and
    /// `secrets` are in cleared-vertex order (the order of
    /// `cleared.offer_of_vertex`). The protocol is auto-selected from the
    /// cycle's shape and the configured behaviors (single-leader feasible
    /// cycles — the common case — run the cheap §4.6 HTLC protocol).
    pub fn new(
        cleared: ClearedSwap,
        keypairs: Vec<MssKeypair>,
        secrets: Vec<Secret>,
        config: RunConfig,
    ) -> ProvisionedSwap {
        let protocol = ProtocolKind::select(&cleared.spec, &config);
        ProvisionedSwap { cleared, keypairs, secrets, config, protocol }
    }

    /// Overrides the protocol choice (see [`SwapInstance::with_protocol`]
    /// for the feasibility caveat).
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> ProvisionedSwap {
        self.protocol = protocol;
        self
    }

    /// Admits the swap to execution at `now`: creates its chains and
    /// assets, and rebases the protocol start to `now + Δ` — the cleared
    /// spec promised a start "at least Δ in the future" of publication, and
    /// admission re-anchors that promise to the moment execution actually
    /// begins (a later instant than publication whenever clearing of this
    /// epoch overlapped execution of the previous one).
    pub fn admit(self, now: SimTime) -> SwapInstance {
        let ProvisionedSwap { cleared, keypairs, secrets, config, protocol } = self;
        let mut spec = cleared.spec;
        spec.start = now + spec.delta.times(1);
        let setup = SwapSetup::from_parts(spec, keypairs, secrets, now);
        SwapInstance { id: cleared.id.raw(), setup, config, protocol }
    }

    /// [`admit`](ProvisionedSwap::admit)s the swap at `now` and tags the
    /// instance with its market identity, yielding the unit an exchange
    /// queues onto a worker pool ([`AdmittedSwap`]).
    pub fn admit_for_queue(self, now: SimTime) -> AdmittedSwap {
        let swap = self.cleared.id;
        let epoch = self.cleared.epoch;
        AdmittedSwap { swap, epoch, instance: self.admit(now) }
    }
}

/// One admitted swap, tagged and queueable: the unit of work the exchange
/// ships to a [`crate::pool::WorkerPool`] the moment
/// [`ProvisionedSwap::admit`] stamps it onto the timeline. The instance
/// exclusively owns its chains and key material, so admitted swaps of
/// overlapping epochs share nothing and may execute on any worker in any
/// order; [`execute`](AdmittedSwap::execute) carries the tags through to
/// the [`SwapRunOutput`] so results can be merged back deterministically
/// (ascending swap id) wherever they ran.
#[derive(Debug)]
pub struct AdmittedSwap {
    /// The market-issued swap id.
    pub swap: SwapId,
    /// The clearing epoch that produced the swap.
    pub epoch: u64,
    /// The admitted, runnable instance.
    pub instance: SwapInstance,
}

impl AdmittedSwap {
    /// Runs the swap to completion under the paper's lockstep timing,
    /// returning the tagged report and final setup (chains included).
    pub fn execute(self) -> SwapRunOutput {
        let AdmittedSwap { swap, epoch, instance } = self;
        let delta = instance.setup.spec.delta;
        let protocol = instance.protocol;
        let (report, setup) = instance.engine(Lockstep::new(delta)).run_full();
        SwapRunOutput { swap, epoch, protocol, report, setup }
    }
}

/// Everything one executed swap sends back from a worker: the identity
/// tags, the protocol that ran it, the full [`RunReport`], and the final
/// [`SwapSetup`] whose chains the exchange absorbs into the global ledger.
#[derive(Debug)]
pub struct SwapRunOutput {
    /// The market-issued swap id (results merge in ascending order of it).
    pub swap: SwapId,
    /// The clearing epoch that produced the swap.
    pub epoch: u64,
    /// The protocol that executed the swap.
    pub protocol: ProtocolKind,
    /// The complete protocol run report.
    pub report: RunReport,
    /// The final setup, chains included.
    pub setup: SwapSetup,
}

/// A provisioned swap plus its run configuration and protocol choice,
/// ready to be turned into an [`Engine`] (or shipped to a worker thread
/// first).
#[derive(Debug, Clone)]
pub struct SwapInstance {
    /// Orchestrator-assigned id; aggregate reports merge in id order. For
    /// exchange-provisioned instances this is the market's
    /// [`swap_market::SwapId`] raw value; standalone runs use 0.
    pub id: u64,
    /// The provisioned swap: spec, key material, chains, assets.
    pub setup: SwapSetup,
    /// Per-run configuration: behaviors, round limits, snapshot mode.
    pub config: RunConfig,
    /// Which protocol executes the swap. [`SwapInstance::new`] defaults to
    /// the general hashkey protocol; [`SwapInstance::from_cleared`] selects
    /// the cheapest feasible one per cleared cycle.
    pub protocol: ProtocolKind,
}

impl SwapInstance {
    /// Wraps an already provisioned setup; the general hashkey protocol
    /// executes it (override with [`SwapInstance::with_protocol`]).
    pub fn new(id: u64, setup: SwapSetup, config: RunConfig) -> SwapInstance {
        SwapInstance { id, setup, config, protocol: ProtocolKind::Hashkey }
    }

    /// Provisions an instance for a [`ClearedSwap`]: chains and assets are
    /// created for the cleared spec exactly as [`SwapSetup::from_parts`]
    /// does, with `keypairs` and `secrets` in cleared-vertex order (the
    /// order of `cleared.offer_of_vertex`), and the protocol start rebased
    /// to `now + Δ` (see [`ProvisionedSwap::admit`]; for the batch path,
    /// where `now` is the clearing instant, the rebase is the identity).
    ///
    /// This is [`ProvisionedSwap::new`] + [`ProvisionedSwap::admit`] in one
    /// call, for orchestrators that execute immediately after clearing. The
    /// protocol is auto-selected by [`ProtocolKind::select`] from the
    /// cycle's shape and the configured behaviors: single-leader feasible
    /// cycles (the common case — every simple trade cycle is, see
    /// [`ClearedSwap::single_leader_feasible`]) run the cheap §4.6 HTLC
    /// protocol, everything else the general hashkey protocol. Override
    /// with [`SwapInstance::with_protocol`].
    pub fn from_cleared(
        cleared: &ClearedSwap,
        keypairs: Vec<MssKeypair>,
        secrets: Vec<Secret>,
        now: SimTime,
        config: RunConfig,
    ) -> SwapInstance {
        ProvisionedSwap::new(cleared.clone(), keypairs, secrets, config).admit(now)
    }

    /// Overrides the protocol choice.
    ///
    /// Forcing [`ProtocolKind::Htlc`] on a spec that is not single-leader
    /// feasible makes engine construction panic; check with
    /// [`ProtocolKind::select`] first.
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> SwapInstance {
        self.protocol = protocol;
        self
    }

    /// Turns the instance into an engine under `timing`.
    pub fn engine<T: TimingModel>(self, timing: T) -> Engine<T> {
        Engine::from_instance(self, timing)
    }

    /// Runs the instance to completion under the paper's lockstep timing.
    pub fn run_lockstep(self) -> RunReport {
        let delta = self.setup.spec.delta;
        self.engine(Lockstep::new(delta)).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupConfig;
    use swap_digraph::generators;
    use swap_sim::SimRng;

    #[test]
    fn instance_run_matches_engine_run() {
        let provision = || {
            SwapSetup::generate(
                generators::herlihy_three_party(),
                &SetupConfig { key_height: 4, ..SetupConfig::default() },
                &mut SimRng::from_seed(21),
            )
            .unwrap()
        };
        let direct = {
            let setup = provision();
            let delta = setup.spec.delta;
            Engine::new(setup, RunConfig::default(), Lockstep::new(delta)).run()
        };
        let via_instance = SwapInstance::new(7, provision(), RunConfig::default()).run_lockstep();
        assert_eq!(format!("{direct:?}"), format!("{via_instance:?}"));
        assert!(via_instance.all_deal());
    }

    #[test]
    fn standalone_instances_default_to_hashkey() {
        let setup = SwapSetup::generate(
            generators::herlihy_three_party(),
            &SetupConfig { key_height: 4, ..SetupConfig::default() },
            &mut SimRng::from_seed(22),
        )
        .unwrap();
        let instance = SwapInstance::new(0, setup, RunConfig::default());
        assert_eq!(instance.protocol, ProtocolKind::Hashkey);
        let forced = instance.with_protocol(ProtocolKind::Htlc);
        assert_eq!(forced.protocol, ProtocolKind::Htlc);
    }
}
