//! One provisioned, runnable swap: the unit an orchestrator drives.
//!
//! [`SwapInstance`] is the split between *provisioning* and *execution*
//! state: it owns everything a single swap needs to run — the validated
//! spec, every party's key material, the per-arc chains and assets
//! ([`SwapSetup`]), the run configuration, and the *protocol choice*
//! ([`ProtocolKind`]) — but none of the engine's in-flight event
//! bookkeeping. That makes it the natural currency of the exchange
//! pipeline: the orchestrator provisions one instance per cleared swap on
//! the main thread, ships instances to worker shards (each instance
//! exclusively owns its chains, so shards share nothing), and turns each
//! into an [`Engine`] only at execution time.

use swap_crypto::{MssKeypair, Secret};
use swap_market::ClearedSwap;
use swap_sim::SimTime;

use crate::engine::Engine;
use crate::protocol::ProtocolKind;
use crate::runner::{RunConfig, RunReport};
use crate::setup::SwapSetup;
use crate::timing::{Lockstep, TimingModel};

/// A provisioned swap plus its run configuration and protocol choice,
/// ready to be turned into an [`Engine`] (or shipped to a worker thread
/// first).
#[derive(Debug, Clone)]
pub struct SwapInstance {
    /// Orchestrator-assigned id; aggregate reports merge in id order. For
    /// exchange-provisioned instances this is the market's
    /// [`swap_market::SwapId`] raw value; standalone runs use 0.
    pub id: u64,
    /// The provisioned swap: spec, key material, chains, assets.
    pub setup: SwapSetup,
    /// Per-run configuration: behaviors, round limits, snapshot mode.
    pub config: RunConfig,
    /// Which protocol executes the swap. [`SwapInstance::new`] defaults to
    /// the general hashkey protocol; [`SwapInstance::from_cleared`] selects
    /// the cheapest feasible one per cleared cycle.
    pub protocol: ProtocolKind,
}

impl SwapInstance {
    /// Wraps an already provisioned setup; the general hashkey protocol
    /// executes it (override with [`SwapInstance::with_protocol`]).
    pub fn new(id: u64, setup: SwapSetup, config: RunConfig) -> SwapInstance {
        SwapInstance { id, setup, config, protocol: ProtocolKind::Hashkey }
    }

    /// Provisions an instance for a [`ClearedSwap`]: chains and assets are
    /// created for the cleared spec exactly as [`SwapSetup::from_parts`]
    /// does, with `keypairs` and `secrets` in cleared-vertex order (the
    /// order of `cleared.offer_of_vertex`).
    ///
    /// The protocol is auto-selected by [`ProtocolKind::select`] from the
    /// cycle's shape and the configured behaviors: single-leader feasible
    /// cycles (the common case — every simple trade cycle is, see
    /// [`ClearedSwap::single_leader_feasible`]) run the cheap §4.6 HTLC
    /// protocol, everything else the general hashkey protocol. Override
    /// with [`SwapInstance::with_protocol`].
    pub fn from_cleared(
        cleared: &ClearedSwap,
        keypairs: Vec<MssKeypair>,
        secrets: Vec<Secret>,
        now: SimTime,
        config: RunConfig,
    ) -> SwapInstance {
        let protocol = ProtocolKind::select(&cleared.spec, &config);
        let setup = SwapSetup::from_parts(cleared.spec.clone(), keypairs, secrets, now);
        SwapInstance { id: cleared.id.raw(), setup, config, protocol }
    }

    /// Overrides the protocol choice.
    ///
    /// Forcing [`ProtocolKind::Htlc`] on a spec that is not single-leader
    /// feasible makes engine construction panic; check with
    /// [`ProtocolKind::select`] first.
    pub fn with_protocol(mut self, protocol: ProtocolKind) -> SwapInstance {
        self.protocol = protocol;
        self
    }

    /// Turns the instance into an engine under `timing`.
    pub fn engine<T: TimingModel>(self, timing: T) -> Engine<T> {
        Engine::from_instance(self, timing)
    }

    /// Runs the instance to completion under the paper's lockstep timing.
    pub fn run_lockstep(self) -> RunReport {
        let delta = self.setup.spec.delta;
        self.engine(Lockstep::new(delta)).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupConfig;
    use swap_digraph::generators;
    use swap_sim::SimRng;

    #[test]
    fn instance_run_matches_engine_run() {
        let provision = || {
            SwapSetup::generate(
                generators::herlihy_three_party(),
                &SetupConfig { key_height: 4, ..SetupConfig::default() },
                &mut SimRng::from_seed(21),
            )
            .unwrap()
        };
        let direct = {
            let setup = provision();
            let delta = setup.spec.delta;
            Engine::new(setup, RunConfig::default(), Lockstep::new(delta)).run()
        };
        let via_instance = SwapInstance::new(7, provision(), RunConfig::default()).run_lockstep();
        assert_eq!(format!("{direct:?}"), format!("{via_instance:?}"));
        assert!(via_instance.all_deal());
    }

    #[test]
    fn standalone_instances_default_to_hashkey() {
        let setup = SwapSetup::generate(
            generators::herlihy_three_party(),
            &SetupConfig { key_height: 4, ..SetupConfig::default() },
            &mut SimRng::from_seed(22),
        )
        .unwrap();
        let instance = SwapInstance::new(0, setup, RunConfig::default());
        assert_eq!(instance.protocol, ProtocolKind::Hashkey);
        let forced = instance.with_protocol(ProtocolKind::Htlc);
        assert_eq!(forced.protocol, ProtocolKind::Htlc);
    }
}
