//! Herlihy's atomic cross-chain swap protocol (PODC 2018) — the paper's
//! primary contribution, executable end to end on simulated blockchains.
//!
//! # What's here
//!
//! * [`setup`] — provisioning: keys, secrets, validated [`SwapSpec`]s, one
//!   chain and one asset per arc ([`SwapSetup`]).
//! * [`party`] — party state machines: the conforming §4.5 protocol
//!   (Phase One contract propagation, Phase Two hashkey dissemination) and
//!   a suite of deviating [`Behavior`]s (halts, secret withholding,
//!   premature reveals, coalition bypasses, fully scripted adversaries).
//! * [`engine`] — the discrete-event execution engine ([`engine::Engine`]):
//!   party wake-ups, transaction execution, and visibility boundaries as
//!   scheduled events over [`swap_sim::Simulation`], with snapshot-delta
//!   caching keyed on chain state-versions.
//! * [`protocol`] — the protocol axis ([`protocol::SwapProtocol`]): the
//!   general §4.5 hashkey protocol and the §4.6 single-leader HTLC
//!   protocol as pluggable strategies over the one engine, selected per
//!   swap via [`protocol::ProtocolKind`].
//! * [`instance`] — the provisioning/execution split: a
//!   [`instance::SwapInstance`] owns one swap's spec, key material, chains,
//!   and run configuration, and becomes an [`engine::Engine`] at execution
//!   time.
//! * [`identity`] — the per-address identity registry
//!   ([`identity::IdentityStore`]): one master MSS keypair per address,
//!   minted at first submit and leased leaf-by-leaf to successive swaps,
//!   with checked exhaustion.
//! * [`exchange`] — the pipeline above single swaps: offers stream into the
//!   untrusted clearing service, epochs clear them into disjoint cycles,
//!   and up to [`exchange::ExchangeConfig::executing_slots`] epochs' swaps
//!   execute concurrently on a persistent work-stealing worker pool with a
//!   deterministic swap-id-ordered merge ([`exchange::Exchange`],
//!   [`exchange::ExchangeReport`]). A durable exchange
//!   ([`exchange::Exchange::with_journal`]) write-ahead-logs every
//!   lifecycle transition to a `swap-store` WAL with periodic snapshots,
//!   and [`exchange::Exchange::recover`] rebuilds a byte-identical
//!   exchange after a crash.
//! * [`pool`] — the execution tier under the exchange: a long-lived
//!   work-stealing [`pool::WorkerPool`] with panic-isolated jobs and
//!   results returned over a channel.
//! * [`timing`] — pluggable [`timing::TimingModel`]s: the paper's
//!   [`timing::Lockstep`] Δ-rounds and [`timing::PerChainLatency`]
//!   (per-chain publish/confirm delays under a dominating Δ).
//! * [`runner`] — the lockstep facade ([`SwapRunner`]) producing
//!   [`RunReport`]s with outcomes, per-arc trigger times, traces, and
//!   storage/communication metrics.
//! * [`outcome`] — the Figure 3 outcome lattice ([`Outcome`]).
//! * [`single_leader`] — the §4.6 Lemma 4.13 timeout assignment and the
//!   Figure 6 feasibility analysis (the protocol itself runs as
//!   [`protocol::HtlcProtocol`]).
//! * [`hashkey`] — Figure 7 hashkey-path enumeration.
//! * [`recurrent`] — the §5 recurrent-swap extension (next-round hashlocks
//!   distributed during Phase Two).
//! * [`waitsfor`] — the Theorem 4.12 waits-for digraph analysis (who is
//!   blocked on whom in Phase One, and when that is a deadlock).
//!
//! # Quick start
//!
//! ```
//! use swap_core::runner::{RunConfig, SwapRunner};
//! use swap_core::setup::{SetupConfig, SwapSetup};
//! use swap_digraph::generators;
//! use swap_sim::SimRng;
//!
//! // Alice, Bob, and Carol's three-way swap (§1 of the paper).
//! let digraph = generators::herlihy_three_party();
//! let setup = SwapSetup::generate(
//!     digraph,
//!     &SetupConfig::default(),
//!     &mut SimRng::from_seed(42),
//! )
//! .expect("valid swap");
//! let report = SwapRunner::new(setup, RunConfig::default()).run();
//! assert!(report.all_deal()); // everyone swapped
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durability;

pub mod engine;
pub mod exchange;
pub mod hashkey;
pub mod identity;
pub mod instance;
pub mod outcome;
pub mod party;
pub mod pool;
pub mod protocol;
pub mod recurrent;
pub mod runner;
pub mod setup;
pub mod single_leader;
pub mod timing;
pub mod waitsfor;

pub use engine::Engine;
pub use exchange::{
    DriveError, EpochStage, Exchange, ExchangeConfig, ExchangeError, ExchangeParty, ExchangeReport,
    ExecutedSwap, JournalConfig, PartySeed, ProtocolPolicy, RecoverError, Recovered, RecoveryStats,
    StageCosts, StageTicks, StepEvent, SwapSummary,
};
pub use identity::{IdentityStore, LeaseError};
pub use instance::{AdmittedSwap, ProvisionedSwap, SwapInstance, SwapRunOutput};
pub use outcome::Outcome;
pub use party::{Action, ArcSnapshot, Behavior};
pub use pool::{Completed, JobPanic, WorkerPool};
pub use protocol::{HashkeyProtocol, HtlcProtocol, ProtocolKind, SwapProtocol};
pub use runner::{RunConfig, RunMetrics, RunReport, SnapshotMode, SwapRunner};
pub use setup::{SetupConfig, SwapSetup};
pub use single_leader::{
    assign_timeouts, single_leader_of, timeout_assignment_feasible, TimeoutError,
};
pub use timing::{Lockstep, PerChainLatency, TimingModel};

// Re-exported so downstream users need only this crate for common flows.
pub use swap_contract::{SwapContract, SwapSpec};
