//! Protocol outcomes and their partial order (Figure 3, §3).
//!
//! An execution's outcome for party `v` is determined by which arcs
//! incident to `v` *triggered* (the proposed transfer actually happened):
//!
//! | entering arcs | leaving arcs | outcome |
//! |---|---|---|
//! | all | all | [`Outcome::Deal`] |
//! | none | none | [`Outcome::NoDeal`] |
//! | ≥ 1 | none | [`Outcome::FreeRide`] |
//! | all | some but not all | [`Outcome::Discount`] |
//! | not all | ≥ 1 | [`Outcome::Underwater`] |
//!
//! The paper's preference relation is a *partial* order: `Underwater` is
//! worse than everything, `NoDeal < Deal < Discount`, `NoDeal < FreeRide`,
//! while `FreeRide` is incomparable with `Deal` and `Discount`. Everything
//! except `Underwater` is acceptable to a conforming party.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A party's outcome class (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Acquired assets without relinquishing any: some entering arc
    /// triggered, no leaving arc did.
    FreeRide,
    /// Acquired everything while relinquishing strictly less than agreed.
    Discount,
    /// The intended swap: every incident arc triggered.
    Deal,
    /// Status quo: nothing changed hands.
    NoDeal,
    /// Paid without being fully paid: some leaving arc triggered while some
    /// entering arc did not. The one unacceptable class.
    Underwater,
}

impl Outcome {
    /// Classifies from trigger counts.
    ///
    /// `entering` / `leaving` are `(triggered, total)` pairs for the arcs
    /// entering and leaving the party. A party with *no* arcs on a side is
    /// treated as having that side fully satisfied (vacuous truth); in
    /// strongly connected swap digraphs of two or more parties both sides
    /// are always non-empty.
    pub fn classify(entering: (usize, usize), leaving: (usize, usize)) -> Outcome {
        let (e_trig, e_total) = entering;
        let (l_trig, l_total) = leaving;
        assert!(e_trig <= e_total && l_trig <= l_total, "triggered cannot exceed total");
        let all_entering = e_trig == e_total;
        let all_leaving = l_trig == l_total;
        if all_entering && all_leaving {
            return Outcome::Deal;
        }
        if e_trig == 0 && l_trig == 0 {
            return Outcome::NoDeal;
        }
        if l_trig == 0 {
            // e_trig ≥ 1 here.
            return Outcome::FreeRide;
        }
        if all_entering {
            // l_trig ≥ 1 and not all leaving.
            return Outcome::Discount;
        }
        Outcome::Underwater
    }

    /// Whether a conforming party can accept this outcome (§3: everything
    /// but `Underwater`).
    pub fn is_acceptable(self) -> bool {
        self != Outcome::Underwater
    }

    /// The strict preference relation of Figure 3: `true` iff `self` is
    /// *strictly better* than `other` in the partial order.
    ///
    /// Generators: `Underwater < NoDeal`, `NoDeal < Deal`, `Deal <
    /// Discount`, `NoDeal < FreeRide` — plus transitive closure. `FreeRide`
    /// is incomparable with `Deal` and `Discount`.
    pub fn is_better_than(self, other: Outcome) -> bool {
        use Outcome::*;
        matches!(
            (self, other),
            (NoDeal, Underwater)
                | (Deal, Underwater)
                | (Discount, Underwater)
                | (FreeRide, Underwater)
                | (Deal, NoDeal)
                | (Discount, NoDeal)
                | (FreeRide, NoDeal)
                | (Discount, Deal)
        )
    }

    /// `true` iff the two outcomes are comparable in the partial order.
    pub fn is_comparable_with(self, other: Outcome) -> bool {
        self == other || self.is_better_than(other) || other.is_better_than(self)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Outcome::FreeRide => "FreeRide",
            Outcome::Discount => "Discount",
            Outcome::Deal => "Deal",
            Outcome::NoDeal => "NoDeal",
            Outcome::Underwater => "Underwater",
        };
        f.pad(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Outcome::*;

    #[test]
    fn classification_table() {
        // (entering, leaving) -> expected
        let cases = [
            (((3, 3), (2, 2)), Deal),
            (((0, 3), (0, 2)), NoDeal),
            (((1, 3), (0, 2)), FreeRide),
            (((3, 3), (0, 2)), FreeRide), // all entering, none leaving: free ride
            (((3, 3), (1, 2)), Discount),
            (((2, 3), (1, 2)), Underwater),
            (((0, 3), (2, 2)), Underwater),
            (((2, 3), (2, 2)), Underwater),
        ];
        for ((e, l), expected) in cases {
            assert_eq!(Outcome::classify(e, l), expected, "entering {e:?} leaving {l:?}");
        }
    }

    #[test]
    fn exhaustive_classification_consistency() {
        // For every small configuration the classifier returns exactly one
        // class satisfying its textual definition.
        for e_total in 1..4usize {
            for l_total in 1..4usize {
                for e_trig in 0..=e_total {
                    for l_trig in 0..=l_total {
                        let o = Outcome::classify((e_trig, e_total), (l_trig, l_total));
                        let all_e = e_trig == e_total;
                        let all_l = l_trig == l_total;
                        match o {
                            Deal => assert!(all_e && all_l),
                            NoDeal => assert!(e_trig == 0 && l_trig == 0),
                            FreeRide => assert!(e_trig >= 1 && l_trig == 0),
                            Discount => assert!(all_e && l_trig >= 1 && !all_l),
                            Underwater => assert!(!all_e && l_trig >= 1),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn vacuous_sides() {
        assert_eq!(Outcome::classify((0, 0), (0, 0)), Deal);
        // No entering arcs at all, but paid: vacuously "all entering
        // triggered" → Discount territory, not Underwater.
        assert_eq!(Outcome::classify((0, 0), (1, 2)), Discount);
    }

    #[test]
    #[should_panic(expected = "triggered cannot exceed total")]
    fn invalid_counts_panic() {
        let _ = Outcome::classify((4, 3), (0, 0));
    }

    #[test]
    fn acceptability() {
        for o in [Deal, NoDeal, Discount, FreeRide] {
            assert!(o.is_acceptable(), "{o}");
        }
        assert!(!Underwater.is_acceptable());
    }

    #[test]
    fn partial_order_generators() {
        assert!(Deal.is_better_than(NoDeal));
        assert!(Discount.is_better_than(Deal));
        assert!(FreeRide.is_better_than(NoDeal));
        assert!(NoDeal.is_better_than(Underwater));
    }

    #[test]
    fn partial_order_transitivity() {
        // Discount > Deal > NoDeal > Underwater, so Discount > Underwater.
        assert!(Discount.is_better_than(NoDeal));
        assert!(Discount.is_better_than(Underwater));
        assert!(Deal.is_better_than(Underwater));
        assert!(FreeRide.is_better_than(Underwater));
    }

    #[test]
    fn freeride_incomparability() {
        assert!(!FreeRide.is_better_than(Deal));
        assert!(!Deal.is_better_than(FreeRide));
        assert!(!FreeRide.is_better_than(Discount));
        assert!(!Discount.is_better_than(FreeRide));
        assert!(!FreeRide.is_comparable_with(Deal));
        assert!(FreeRide.is_comparable_with(NoDeal));
        assert!(FreeRide.is_comparable_with(FreeRide));
    }

    #[test]
    fn order_is_irreflexive_and_antisymmetric() {
        let all = [FreeRide, Discount, Deal, NoDeal, Underwater];
        for a in all {
            assert!(!a.is_better_than(a), "{a} vs itself");
            for b in all {
                assert!(
                    !(a.is_better_than(b) && b.is_better_than(a)),
                    "{a} <> {b} both directions"
                );
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Underwater.to_string(), "Underwater");
        assert_eq!(FreeRide.to_string(), "FreeRide");
    }
}
