//! Party state machines: the conforming protocol of §4.5 and the deviating
//! behaviors used to exercise the paper's game-theoretic claims.
//!
//! Parties are *reactive*: once per protocol round (one round = one Δ), each
//! party receives a [`View`] — a snapshot of everything publicly readable as
//! of the round boundary — and emits [`Action`]s. The runner applies actions
//! transactionally, so a round's actions are based strictly on the previous
//! round's state, which is exactly the Δ-delay timing model the paper's
//! bounds assume.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use swap_contract::{SwapSpec, UnlockRecord};
use swap_crypto::{MssKeypair, Secret, SigChain};
use swap_digraph::{ArcId, VertexId, VertexPath};
use swap_sim::SimTime;

/// What one arc's general swap contract looks like to observers at a round
/// boundary (`None` entries in the runner's table mean "no contract
/// published yet").
#[derive(Debug, Clone)]
pub struct ContractSnapshot {
    /// Unlock record per hashlock index, if unlocked.
    pub unlock_records: Vec<Option<UnlockRecord>>,
    /// Whether every hashlock is unlocked.
    pub fully_unlocked: bool,
    /// Whether the counterparty has claimed.
    pub claimed: bool,
    /// Whether the party has been refunded.
    pub refunded: bool,
    /// Whether the contract matches the published spec for this arc
    /// (parties verify and abandon otherwise, §4.5).
    pub valid: bool,
}

/// What one arc's classic HTLC looks like to observers at a round boundary
/// (§4.6 single-leader protocol).
#[derive(Debug, Clone, Copy)]
pub struct HtlcSnapshot {
    /// The revealed secret, if the contract triggered — publicly readable,
    /// which is exactly how secrets propagate without hashkeys.
    pub revealed: Option<Secret>,
    /// Whether the transfer fired.
    pub triggered: bool,
    /// Whether the asset was refunded.
    pub refunded: bool,
    /// Whether the contract matches the published spec for this arc —
    /// right hashlock, right Lemma 4.13 timeout, right parties and asset.
    /// Conforming observers treat an invalid contract as absent (the §4.6
    /// analogue of §4.5's verify-and-abandon).
    pub valid: bool,
}

/// A flavor-tagged contract observation: the engine snapshots whatever
/// contract flavor the active [`crate::protocol::SwapProtocol`] hosts, and
/// party strategies project the flavor they understand.
#[derive(Debug, Clone)]
pub enum ArcSnapshot {
    /// A general multi-leader swap contract (§4.5).
    Swap(ContractSnapshot),
    /// A classic two-party HTLC (§4.6).
    Htlc(HtlcSnapshot),
}

impl ArcSnapshot {
    /// The swap-contract view, if that is the flavor.
    pub fn as_swap(&self) -> Option<&ContractSnapshot> {
        match self {
            ArcSnapshot::Swap(s) => Some(s),
            ArcSnapshot::Htlc(_) => None,
        }
    }

    /// The HTLC view, if that is the flavor.
    pub fn as_htlc(&self) -> Option<&HtlcSnapshot> {
        match self {
            ArcSnapshot::Htlc(s) => Some(s),
            ArcSnapshot::Swap(_) => None,
        }
    }
}

/// A broadcast-bulletin entry: a leader's secret with its base signature,
/// published on the shared broadcast medium (§4.5 optimization) or leaked
/// prematurely by an irrational leader (§1).
#[derive(Debug, Clone)]
pub struct BulletinEntry {
    /// The leader index of the secret.
    pub leader_index: usize,
    /// The revealed secret.
    pub secret: Secret,
    /// The leader's base chain `sig(s, ℓ)`.
    pub base_sig: SigChain,
}

/// The publicly readable world, as of a round boundary.
#[derive(Debug)]
pub struct View<'a> {
    /// The swap spec.
    pub spec: &'a SwapSpec,
    /// Current round number (round 0 = spec publication).
    pub round: u64,
    /// The instant of this round boundary.
    pub now: SimTime,
    /// Per-arc contract snapshots (`None` = not yet published/visible).
    pub contracts: &'a [Option<ArcSnapshot>],
    /// Visible bulletin entries, shared with the engine's master list
    /// (`Arc` — promoting an entry to visibility must not copy its
    /// multi-KB base signature per observer).
    pub bulletin: &'a [Arc<BulletinEntry>],
}

/// An action a party submits this round. Actions execute during the round
/// (visible to others at the next round boundary).
#[derive(Debug, Clone)]
pub enum Action {
    /// Publish the swap contract on `arc` (escrowing the arc's asset).
    Publish {
        /// The arc to publish on.
        arc: ArcId,
    },
    /// Call `unlock` on `arc`'s contract.
    Unlock {
        /// The target arc.
        arc: ArcId,
        /// Hashlock index.
        index: usize,
        /// The secret.
        secret: Secret,
        /// The hashkey path.
        path: VertexPath,
        /// The signature chain.
        sig: SigChain,
    },
    /// Call `claim` on `arc`'s contract.
    Claim {
        /// The target arc.
        arc: ArcId,
    },
    /// Call `refund` on `arc`'s contract.
    Refund {
        /// The target arc.
        arc: ArcId,
    },
    /// Present the plain secret to `arc`'s HTLC (§4.6 — no path, no
    /// signature chain).
    Reveal {
        /// The target arc.
        arc: ArcId,
        /// The hashlock preimage.
        secret: Secret,
    },
    /// Bypass the protocol entirely: transfer the arc's asset directly to
    /// the counterparty (only coalitions do this).
    DirectTransfer {
        /// The arc whose asset to hand over.
        arc: ArcId,
    },
    /// Publish a secret + base signature on the shared bulletin.
    Announce {
        /// Leader index of the secret.
        leader_index: usize,
        /// The secret.
        secret: Secret,
        /// Base chain `sig(s, ℓ)`.
        base_sig: SigChain,
    },
}

/// How a party behaves. `Conforming` is the paper's protocol; everything
/// else is a deviation used by the atomicity experiments.
#[derive(Debug, Clone, Default)]
pub enum Behavior {
    /// Follows §4.5 exactly (plus claims and refunds).
    #[default]
    Conforming,
    /// Conforming until `at_round`, then crashes silently.
    Halt {
        /// First round at which the party does nothing.
        at_round: u64,
    },
    /// Conforming, but never publishes contracts on the listed leaving arcs
    /// (`None` = withholds all of them).
    NeverPublish {
        /// Specific arcs to withhold, or `None` for all.
        arcs: Option<Vec<ArcId>>,
    },
    /// Publishes contracts but never issues or propagates any hashkey
    /// (a leader that goes silent in Phase Two).
    WithholdSecret,
    /// The §1 "irrational Alice": announces her secret publicly at round 0,
    /// before Phase One completes, then behaves conformingly.
    PrematureReveal,
    /// Conforming, but never claims (tests that full unlocking alone
    /// already decides asset ownership).
    NoClaim,
    /// Publishes leaving contracts immediately without waiting for entering
    /// contracts — the discipline violation of Lemma 4.11.
    EagerPublish,
    /// Coalition bypass: never touches contracts; directly transfers the
    /// assets of all leaving arcs except `skip_arcs` (used for the
    /// Lemma 3.4 free-ride construction). Still claims anything claimable.
    Direct {
        /// Leaving arcs whose transfers the coalition withholds.
        skip_arcs: Vec<ArcId>,
    },
    /// Plays a fixed script: `(round, action)` pairs and nothing else.
    Scripted {
        /// The scripted actions.
        actions: Vec<(u64, Action)>,
    },
}

/// A party: its identity, secret, behavior, and protocol bookkeeping.
#[derive(Debug)]
pub struct Party {
    vertex: VertexId,
    keypair: MssKeypair,
    secret: Secret,
    behavior: Behavior,
    published_phase_one: bool,
    abandoned: bool,
    /// Usable hashkey per leader index: the secret, this party's path to
    /// the leader, and the signature chain ending with this party's link.
    /// Built once per secret (signing is a one-time-key expenditure) and
    /// replayed onto entering arcs as their contracts appear.
    hashkeys: BTreeMap<usize, (Secret, VertexPath, SigChain)>,
    /// `(leader index, arc)` unlock calls already submitted.
    unlock_submitted: BTreeSet<(usize, ArcId)>,
    /// Entering arcs already claimed (submitted).
    claimed: BTreeSet<ArcId>,
    /// Leaving arcs already refunded (submitted).
    refunded: BTreeSet<ArcId>,
    direct_done: bool,
}

impl Party {
    /// Creates a party.
    pub fn new(vertex: VertexId, keypair: MssKeypair, secret: Secret, behavior: Behavior) -> Self {
        Party {
            vertex,
            keypair,
            secret,
            behavior,
            published_phase_one: false,
            abandoned: false,
            hashkeys: BTreeMap::new(),
            unlock_submitted: BTreeSet::new(),
            claimed: BTreeSet::new(),
            refunded: BTreeSet::new(),
            direct_done: false,
        }
    }

    /// The party's vertex.
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// Whether the party abandoned the protocol after detecting an invalid
    /// contract.
    pub fn abandoned(&self) -> bool {
        self.abandoned
    }

    /// One protocol round: observe `view`, emit actions.
    ///
    /// The behavior is dispatched by reference — cloning it per round would
    /// copy entire `Scripted` action vectors on the hot path — and the
    /// scripted drain moves each fired action out of the script instead of
    /// cloning it (fired entries are never replayed).
    pub fn step(&mut self, view: &View<'_>) -> Vec<Action> {
        if let Behavior::Halt { at_round } = self.behavior {
            if view.round >= at_round {
                return Vec::new();
            }
        }
        if let Behavior::Scripted { actions } = &mut self.behavior {
            let due = actions.iter().take_while(|(round, _)| *round <= view.round).count();
            return actions
                .drain(..due)
                .filter(|(round, _)| *round == view.round)
                .map(|(_, action)| action)
                .collect();
        }
        // Temporarily park the behavior so the strategy methods can borrow
        // the rest of `self` mutably without cloning it.
        let behavior = std::mem::take(&mut self.behavior);
        let out = match &behavior {
            Behavior::Direct { skip_arcs } => self.step_direct(view, skip_arcs),
            behavior => self.step_protocol(view, behavior),
        };
        self.behavior = behavior;
        out
    }

    /// The Lemma 3.4 coalition bypass.
    fn step_direct(&mut self, view: &View<'_>, skip_arcs: &[ArcId]) -> Vec<Action> {
        let mut actions = Vec::new();
        if !self.direct_done {
            self.direct_done = true;
            for arc in view.spec.digraph.out_arcs(self.vertex) {
                if !skip_arcs.contains(&arc.id) {
                    actions.push(Action::DirectTransfer { arc: arc.id });
                }
            }
        }
        // Opportunistically claim anything claimable.
        actions.extend(self.claim_ready_arcs(view, &[]));
        actions
    }

    /// The §4.5 protocol with behavior-specific tweaks.
    fn step_protocol(&mut self, view: &View<'_>, behavior: &Behavior) -> Vec<Action> {
        if self.abandoned {
            return Vec::new();
        }
        // §4.5 Phase One: verify every visible contract on arcs entering or
        // leaving me; abandon on any invalid one (a wrong contract flavor
        // is as invalid as wrong hashlocks).
        for arc in
            view.spec.digraph.in_arcs(self.vertex).chain(view.spec.digraph.out_arcs(self.vertex))
        {
            if let Some(snapshot) = &view.contracts[arc.id.index()] {
                if !snapshot.as_swap().is_some_and(|s| s.valid) {
                    self.abandoned = true;
                    return Vec::new();
                }
            }
        }
        let mut actions = Vec::new();
        let is_leader = view.spec.is_leader(self.vertex);

        // Premature reveal: leak the secret on the bulletin at round 0.
        if matches!(behavior, Behavior::PrematureReveal) && view.round == 0 && is_leader {
            if let Ok(base) = SigChain::sign_secret(&mut self.keypair, &self.secret) {
                let leader_index = view.spec.leader_index(self.vertex).expect("is leader");
                actions.push(Action::Announce {
                    leader_index,
                    secret: self.secret,
                    base_sig: base,
                });
            }
        }

        // Phase One publication.
        let all_entering_have_contracts =
            view.spec.digraph.in_arcs(self.vertex).all(|a| view.contracts[a.id.index()].is_some());
        let may_publish = if is_leader || matches!(behavior, Behavior::EagerPublish) {
            true
        } else {
            all_entering_have_contracts
        };
        if !self.published_phase_one && may_publish {
            self.published_phase_one = true;
            for arc in view.spec.digraph.out_arcs(self.vertex) {
                let withheld = match behavior {
                    Behavior::NeverPublish { arcs: None } => true,
                    Behavior::NeverPublish { arcs: Some(list) } => list.contains(&arc.id),
                    _ => false,
                };
                if !withheld {
                    actions.push(Action::Publish { arc: arc.id });
                }
            }
        }

        // Phase Two. Hashkeys are *built* once per secret (each build spends
        // a one-time signing key) and *replayed* onto entering arcs as their
        // contracts appear — a secret learned before an entering contract
        // exists must still unlock that contract later.
        let withholds = matches!(behavior, Behavior::WithholdSecret);
        // Unlocks planned per entering arc this round, for same-round claims.
        let mut planned_unlocks: BTreeMap<ArcId, usize> = BTreeMap::new();
        if !withholds {
            // (a) A leader builds its own hashkey once every entering arc
            // has a contract (§4.5: leaders issue hashkeys in Phase Two
            // only after Phase One completed locally).
            if let Some(my_index) = view.spec.leader_index(self.vertex) {
                if !self.hashkeys.contains_key(&my_index) && all_entering_have_contracts {
                    if let Ok(base) = SigChain::sign_secret(&mut self.keypair, &self.secret) {
                        if view.spec.broadcast_arcs {
                            actions.push(Action::Announce {
                                leader_index: my_index,
                                secret: self.secret,
                                base_sig: base.clone(),
                            });
                        }
                        let path = VertexPath::single(self.vertex);
                        self.hashkeys.insert(my_index, (self.secret, path, base));
                    }
                }
            }
            // (b) Learn secrets observed on leaving arcs' contracts.
            for arc in view.spec.digraph.out_arcs(self.vertex) {
                let Some(snapshot) =
                    view.contracts[arc.id.index()].as_ref().and_then(ArcSnapshot::as_swap)
                else {
                    continue;
                };
                for (i, record) in snapshot.unlock_records.iter().enumerate() {
                    let Some(record) = record else { continue };
                    if self.hashkeys.contains_key(&i) {
                        continue;
                    }
                    // Lemma 4.8: if I appear in the path I have already
                    // signed a hashkey for this secret (it is in my map).
                    if record.path.contains(self.vertex) {
                        continue;
                    }
                    let Ok(extended) = record.sig.extend(&mut self.keypair) else { continue };
                    let path = record.path.prepend(self.vertex);
                    self.hashkeys.insert(i, (record.secret, path, extended));
                }
            }
            // (c) Learn secrets from the bulletin (broadcast optimization,
            // or an adversary's premature leak). A length-one path (v, ℓ)
            // is usable when the real arc exists or broadcast mode is on.
            for entry in view.bulletin {
                let i = entry.leader_index;
                if self.hashkeys.contains_key(&i) {
                    continue;
                }
                let Some(&leader) = view.spec.leaders.get(i) else { continue };
                if leader == self.vertex {
                    continue;
                }
                let arc_exists = view.spec.digraph.has_arc_between(self.vertex, leader);
                if !arc_exists && !view.spec.broadcast_arcs {
                    continue;
                }
                let Ok(extended) = entry.base_sig.extend(&mut self.keypair) else { continue };
                let path = VertexPath::single(leader).prepend(self.vertex);
                self.hashkeys.insert(i, (entry.secret, path, extended));
            }
            // (d) Replay every known hashkey onto every entering arc whose
            // contract exists and has not yet received it.
            for (&i, (secret, path, sig)) in &self.hashkeys {
                for entering in view.spec.digraph.in_arcs(self.vertex) {
                    if view.contracts[entering.id.index()].is_none() {
                        continue;
                    }
                    if !self.unlock_submitted.insert((i, entering.id)) {
                        continue;
                    }
                    *planned_unlocks.entry(entering.id).or_insert(0) += 1;
                    actions.push(Action::Unlock {
                        arc: entering.id,
                        index: i,
                        secret: *secret,
                        path: path.clone(),
                        sig: sig.clone(),
                    });
                }
            }
        }

        // Claims (including same-round claims right after our unlocks).
        if !matches!(behavior, Behavior::NoClaim) {
            let planned: Vec<(ArcId, usize)> =
                planned_unlocks.iter().map(|(&a, &c)| (a, c)).collect();
            actions.extend(self.claim_ready_arcs(view, &planned));
        }

        // Refunds on leaving arcs with dead hashlocks.
        if view.now >= view.spec.all_hashkeys_dead() {
            for arc in view.spec.digraph.out_arcs(self.vertex) {
                if self.refunded.contains(&arc.id) {
                    continue;
                }
                let Some(snapshot) =
                    view.contracts[arc.id.index()].as_ref().and_then(ArcSnapshot::as_swap)
                else {
                    continue;
                };
                if !snapshot.fully_unlocked && !snapshot.claimed && !snapshot.refunded {
                    self.refunded.insert(arc.id);
                    actions.push(Action::Refund { arc: arc.id });
                }
            }
        }
        actions
    }

    /// Claims every entering arc that is (or will become, counting this
    /// round's planned unlocks) fully unlocked.
    fn claim_ready_arcs(&mut self, view: &View<'_>, planned: &[(ArcId, usize)]) -> Vec<Action> {
        let total = view.spec.leaders.len();
        let mut actions = Vec::new();
        for arc in view.spec.digraph.in_arcs(self.vertex) {
            if self.claimed.contains(&arc.id) {
                continue;
            }
            let Some(snapshot) =
                view.contracts[arc.id.index()].as_ref().and_then(ArcSnapshot::as_swap)
            else {
                continue;
            };
            if snapshot.claimed || snapshot.refunded {
                continue;
            }
            let already = snapshot.unlock_records.iter().filter(|r| r.is_some()).count();
            let this_round =
                planned.iter().find(|(a, _)| *a == arc.id).map(|(_, c)| *c).unwrap_or(0);
            if already + this_round >= total {
                self.claimed.insert(arc.id);
                actions.push(Action::Claim { arc: arc.id });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_contract::testkit::{keypair_for, leader_secret, spec_for};
    use swap_digraph::generators;

    fn three_party() -> (SwapSpec, Vec<Party>) {
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let spec = spec_for(d, vec![alice]);
        let parties = spec
            .digraph
            .vertices()
            .map(|v| Party::new(v, keypair_for(v), leader_secret(v), Behavior::Conforming))
            .collect();
        (spec, parties)
    }

    fn empty_view<'a>(
        spec: &'a SwapSpec,
        contracts: &'a [Option<ArcSnapshot>],
        round: u64,
    ) -> View<'a> {
        View {
            spec,
            round,
            now: spec.start + spec.delta.times(round.saturating_sub(1)),
            contracts,
            bulletin: &[],
        }
    }

    fn published_snapshot(spec: &SwapSpec) -> ContractSnapshot {
        ContractSnapshot {
            unlock_records: vec![None; spec.leaders.len()],
            fully_unlocked: false,
            claimed: false,
            refunded: false,
            valid: true,
        }
    }

    #[test]
    fn leader_publishes_at_round_zero() {
        let (spec, mut parties) = three_party();
        let contracts = vec![None, None, None];
        let view = empty_view(&spec, &contracts, 0);
        let leader = spec.leaders[0];
        let actions = parties[leader.index()].step(&view);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::Publish { .. }));
        // Not re-published on the next round.
        let view = empty_view(&spec, &contracts, 1);
        assert!(parties[leader.index()].step(&view).is_empty());
    }

    #[test]
    fn follower_waits_for_entering_contracts() {
        let (spec, mut parties) = three_party();
        let bob = spec.digraph.vertex_by_name("bob").unwrap();
        let contracts = vec![None, None, None];
        let view = empty_view(&spec, &contracts, 0);
        assert!(parties[bob.index()].step(&view).is_empty());
        // Once the alice→bob arc has a contract, bob publishes on bob→carol.
        let mut contracts = vec![None, None, None];
        let a_to_b = spec.digraph.arcs().find(|a| a.tail == bob).unwrap().id;
        contracts[a_to_b.index()] = Some(ArcSnapshot::Swap(published_snapshot(&spec)));
        let view = empty_view(&spec, &contracts, 1);
        let actions = parties[bob.index()].step(&view);
        assert_eq!(actions.len(), 1);
        let Action::Publish { arc } = &actions[0] else { panic!("expected publish") };
        assert_eq!(spec.digraph.head(*arc), bob);
    }

    #[test]
    fn leader_issues_hashkey_and_claims_when_all_entering_ready() {
        let (spec, mut parties) = three_party();
        let leader = spec.leaders[0];
        let mut contracts: Vec<Option<ArcSnapshot>> = vec![None, None, None];
        for arc in spec.digraph.arcs() {
            contracts[arc.id.index()] = Some(ArcSnapshot::Swap(published_snapshot(&spec)));
        }
        let view = empty_view(&spec, &contracts, 3);
        let actions = parties[leader.index()].step(&view);
        // One unlock on the single entering arc, plus a same-round claim.
        let unlocks: Vec<_> =
            actions.iter().filter(|a| matches!(a, Action::Unlock { .. })).collect();
        let claims: Vec<_> = actions.iter().filter(|a| matches!(a, Action::Claim { .. })).collect();
        assert_eq!(unlocks.len(), 1);
        assert_eq!(claims.len(), 1);
        let Action::Unlock { path, index, .. } = unlocks[0] else { unreachable!() };
        assert_eq!(*index, 0);
        assert_eq!(path.len(), 0);
        assert_eq!(path.start(), leader);
    }

    #[test]
    fn follower_propagates_observed_secret() {
        let (spec, mut parties) = three_party();
        let alice = spec.digraph.vertex_by_name("alice").unwrap();
        let carol = spec.digraph.vertex_by_name("carol").unwrap();
        // Build alice's unlock record on arc (carol → alice).
        let mut alice_kp = keypair_for(alice);
        let base = SigChain::sign_secret(&mut alice_kp, &leader_secret(alice)).unwrap();
        let record = UnlockRecord {
            secret: leader_secret(alice),
            path: VertexPath::single(alice),
            sig: base,
            at: spec.start,
        };
        let mut contracts: Vec<Option<ArcSnapshot>> = vec![None, None, None];
        for arc in spec.digraph.arcs() {
            let mut snap = published_snapshot(&spec);
            // carol → alice arc carries the unlock.
            if arc.head == carol && arc.tail == alice {
                snap.unlock_records[0] = Some(record.clone());
                snap.fully_unlocked = true;
            }
            contracts[arc.id.index()] = Some(ArcSnapshot::Swap(snap));
        }
        let view = empty_view(&spec, &contracts, 4);
        let actions = parties[carol.index()].step(&view);
        let unlocks: Vec<_> =
            actions.iter().filter(|a| matches!(a, Action::Unlock { .. })).collect();
        assert_eq!(unlocks.len(), 1, "carol unlocks her single entering arc");
        let Action::Unlock { arc, path, sig, .. } = unlocks[0] else { unreachable!() };
        assert_eq!(spec.digraph.tail(*arc), carol);
        assert_eq!(path.vertices(), &[carol, alice]);
        assert_eq!(sig.len(), 2);
        // Claim issued in the same round for her now-fully-unlocked arc.
        assert!(actions.iter().any(|a| matches!(a, Action::Claim { .. })));
        // Second sighting: no duplicate propagation.
        let view = empty_view(&spec, &contracts, 5);
        let again = parties[carol.index()].step(&view);
        assert!(again.iter().all(|a| !matches!(a, Action::Unlock { .. })));
    }

    #[test]
    fn party_abandons_on_invalid_contract() {
        let (spec, mut parties) = three_party();
        let bob = spec.digraph.vertex_by_name("bob").unwrap();
        let mut contracts: Vec<Option<ArcSnapshot>> = vec![None, None, None];
        let a_to_b = spec.digraph.arcs().find(|a| a.tail == bob).unwrap().id;
        let mut bad = published_snapshot(&spec);
        bad.valid = false;
        contracts[a_to_b.index()] = Some(ArcSnapshot::Swap(bad));
        let view = empty_view(&spec, &contracts, 1);
        assert!(parties[bob.index()].step(&view).is_empty());
        assert!(parties[bob.index()].abandoned());
        // Stays abandoned even when things look fine later.
        let mut contracts = vec![None, None, None];
        contracts[a_to_b.index()] = Some(ArcSnapshot::Swap(published_snapshot(&spec)));
        let view = empty_view(&spec, &contracts, 2);
        assert!(parties[bob.index()].step(&view).is_empty());
    }

    #[test]
    fn halted_party_is_silent() {
        let (spec, _) = three_party();
        let leader = spec.leaders[0];
        let mut party = Party::new(
            leader,
            keypair_for(leader),
            leader_secret(leader),
            Behavior::Halt { at_round: 0 },
        );
        let contracts = vec![None, None, None];
        let view = empty_view(&spec, &contracts, 0);
        assert!(party.step(&view).is_empty());
    }

    #[test]
    fn halt_later_allows_earlier_rounds() {
        let (spec, _) = three_party();
        let leader = spec.leaders[0];
        let mut party = Party::new(
            leader,
            keypair_for(leader),
            leader_secret(leader),
            Behavior::Halt { at_round: 1 },
        );
        let contracts = vec![None, None, None];
        let view = empty_view(&spec, &contracts, 0);
        assert!(!party.step(&view).is_empty(), "round 0 still active");
        let view = empty_view(&spec, &contracts, 1);
        assert!(party.step(&view).is_empty(), "round 1 halted");
    }

    #[test]
    fn withholder_publishes_but_never_unlocks() {
        let (spec, _) = three_party();
        let leader = spec.leaders[0];
        let mut party = Party::new(
            leader,
            keypair_for(leader),
            leader_secret(leader),
            Behavior::WithholdSecret,
        );
        let contracts = vec![None, None, None];
        let view = empty_view(&spec, &contracts, 0);
        let actions = party.step(&view);
        assert!(actions.iter().any(|a| matches!(a, Action::Publish { .. })));
        // Even with everything ready, no unlock ever comes.
        let mut contracts: Vec<Option<ArcSnapshot>> = vec![None, None, None];
        for arc in spec.digraph.arcs() {
            contracts[arc.id.index()] = Some(ArcSnapshot::Swap(published_snapshot(&spec)));
        }
        let view = empty_view(&spec, &contracts, 3);
        let actions = party.step(&view);
        assert!(actions.iter().all(|a| !matches!(a, Action::Unlock { .. })));
    }

    #[test]
    fn premature_reveal_announces_at_round_zero() {
        let (spec, _) = three_party();
        let leader = spec.leaders[0];
        let mut party = Party::new(
            leader,
            keypair_for(leader),
            leader_secret(leader),
            Behavior::PrematureReveal,
        );
        let contracts = vec![None, None, None];
        let view = empty_view(&spec, &contracts, 0);
        let actions = party.step(&view);
        assert!(actions.iter().any(|a| matches!(a, Action::Announce { .. })));
    }

    #[test]
    fn bulletin_secret_used_when_arc_to_leader_exists() {
        let (spec, mut parties) = three_party();
        let alice = spec.digraph.vertex_by_name("alice").unwrap();
        let carol = spec.digraph.vertex_by_name("carol").unwrap();
        let mut alice_kp = keypair_for(alice);
        let base = SigChain::sign_secret(&mut alice_kp, &leader_secret(alice)).unwrap();
        let bulletin = vec![Arc::new(BulletinEntry {
            leader_index: 0,
            secret: leader_secret(alice),
            base_sig: base,
        })];
        let mut contracts: Vec<Option<ArcSnapshot>> = vec![None, None, None];
        for arc in spec.digraph.arcs() {
            contracts[arc.id.index()] = Some(ArcSnapshot::Swap(published_snapshot(&spec)));
        }
        let view = View {
            spec: &spec,
            round: 2,
            now: spec.start + spec.delta.times(1),
            contracts: &contracts,
            bulletin: &bulletin,
        };
        // Carol has arc carol→alice, so she can use the leak directly.
        let actions = parties[carol.index()].step(&view);
        assert!(actions.iter().any(|a| matches!(a, Action::Unlock { .. })));
        // Bob has no arc bob→alice; without broadcast mode he cannot use it.
        let bob = spec.digraph.vertex_by_name("bob").unwrap();
        let actions = parties[bob.index()].step(&view);
        assert!(actions.iter().all(|a| !matches!(a, Action::Unlock { .. })));
    }

    #[test]
    fn direct_coalition_transfers_once() {
        let (spec, _) = three_party();
        let alice = spec.digraph.vertex_by_name("alice").unwrap();
        let mut party = Party::new(
            alice,
            keypair_for(alice),
            leader_secret(alice),
            Behavior::Direct { skip_arcs: vec![] },
        );
        let contracts = vec![None, None, None];
        let view = empty_view(&spec, &contracts, 0);
        let actions = party.step(&view);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::DirectTransfer { .. }));
        let view = empty_view(&spec, &contracts, 1);
        assert!(party.step(&view).is_empty());
    }

    #[test]
    fn scripted_party_fires_exactly_on_schedule() {
        let (spec, _) = three_party();
        let alice = spec.digraph.vertex_by_name("alice").unwrap();
        let arc = spec.digraph.arcs().next().unwrap().id;
        let mut party = Party::new(
            alice,
            keypair_for(alice),
            leader_secret(alice),
            Behavior::Scripted {
                actions: vec![(1, Action::Publish { arc }), (3, Action::Refund { arc })],
            },
        );
        let contracts = vec![None, None, None];
        assert!(party.step(&empty_view(&spec, &contracts, 0)).is_empty());
        assert_eq!(party.step(&empty_view(&spec, &contracts, 1)).len(), 1);
        assert!(party.step(&empty_view(&spec, &contracts, 2)).is_empty());
        assert_eq!(party.step(&empty_view(&spec, &contracts, 3)).len(), 1);
        assert!(party.step(&empty_view(&spec, &contracts, 4)).is_empty());
    }

    #[test]
    fn refund_emitted_after_deadline() {
        let (spec, mut parties) = three_party();
        let alice = spec.digraph.vertex_by_name("alice").unwrap();
        let mut contracts: Vec<Option<ArcSnapshot>> = vec![None, None, None];
        for arc in spec.digraph.arcs() {
            contracts[arc.id.index()] = Some(ArcSnapshot::Swap(published_snapshot(&spec)));
        }
        // Well past all_hashkeys_dead; alice's entering arc not unlocked.
        let view = View {
            spec: &spec,
            round: 10,
            now: spec.all_hashkeys_dead(),
            contracts: &contracts,
            bulletin: &[],
        };
        let actions = parties[alice.index()].step(&view);
        let refunds: Vec<_> =
            actions.iter().filter(|a| matches!(a, Action::Refund { .. })).collect();
        assert_eq!(refunds.len(), 1);
        let Action::Refund { arc } = refunds[0] else { unreachable!() };
        assert_eq!(spec.digraph.head(*arc), alice, "refunds own leaving arc");
    }
}
