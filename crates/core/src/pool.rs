//! A persistent work-stealing worker pool with panic-isolated jobs.
//!
//! The exchange pipeline used to execute each epoch on a burst of
//! `thread::scope` workers: spawn, shard, join, repeat — one barrier per
//! epoch, and one panicking swap engine aborting the entire exchange
//! through the scope's `join().expect(..)`. [`WorkerPool`] replaces the
//! bursts with **long-lived workers** that outlive any single epoch, so
//! overlapping epochs feed one shared execution tier:
//!
//! * **Queue-on-admit.** Producers [`submit`](WorkerPool::submit) jobs the
//!   moment the work exists (the exchange queues every swap at
//!   `ProvisionedSwap::admit` time); nothing waits for an epoch barrier.
//! * **Work stealing.** Jobs are placed round-robin onto per-worker run
//!   queues. A worker drains its own queue from the front and, when empty,
//!   steals from the *back* of a sibling's queue — so a skewed batch (one
//!   long swap next to many short ones) keeps every worker busy instead of
//!   serializing behind the unlucky queue.
//! * **Results over a channel.** Every job's return value comes back
//!   through [`recv`](WorkerPool::recv) as a [`Completed`] record carrying
//!   the submitter's tag. Completion order is host-scheduling-dependent;
//!   callers that need determinism re-order by tag (the exchange merges in
//!   swap-id order, which is what keeps `ExchangeReport` byte-invariant
//!   across worker counts).
//! * **Panic isolation.** Each job runs under
//!   [`std::panic::catch_unwind`] *at the worker boundary*: a panicking
//!   job reports [`JobPanic`] through the same channel, the worker thread
//!   survives, and every other job's finished result still arrives. No
//!   result is ever lost to a sibling's panic.
//!
//! The pool is deliberately tag-generic (`K`) and result-generic (`T`): it
//! schedules closures, not swaps, so unit tests can drive it with plain
//! functions and the exchange can ship [`crate::instance::AdmittedSwap`]
//! executions through it.
//!
//! # Example
//!
//! ```
//! use swap_core::pool::WorkerPool;
//!
//! let mut pool: WorkerPool<u32, u32> = WorkerPool::new(2);
//! for n in 0u32..4 {
//!     pool.submit(n, move || n * n);
//! }
//! let mut results: Vec<(u32, u32)> =
//!     (0..4).map(|_| pool.recv()).map(|c| (c.tag, c.result.unwrap())).collect();
//! results.sort(); // completion order is a host-scheduling artifact
//! assert_eq!(results, vec![(0, 0), (1, 1), (2, 4), (3, 9)]);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work: the submitter's tag plus the closure to run.
type Job<K, T> = (K, Box<dyn FnOnce() -> T + Send + 'static>);

/// One finished job, as delivered by [`WorkerPool::recv`].
#[derive(Debug)]
pub struct Completed<K, T> {
    /// The tag the job was submitted under.
    pub tag: K,
    /// The job's return value, or the panic it was caught unwinding with.
    pub result: Result<T, JobPanic>,
}

/// A job panicked; the worker caught it at the pool boundary and survived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// carried verbatim; anything else is summarized).
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The queues and shutdown flag, under the pool's one mutex. Jobs are
/// heavyweight (a full protocol run each), so a single lock is contention-
/// free in practice and keeps the steal scan trivially consistent.
struct State<K, T> {
    queues: Vec<VecDeque<Job<K, T>>>,
    shutdown: bool,
}

struct Shared<K, T> {
    state: Mutex<State<K, T>>,
    work_ready: Condvar,
    steals: AtomicU64,
    panics: AtomicU64,
}

/// A fixed-size pool of long-lived worker threads with per-worker run
/// queues, back-of-queue stealing, and a single result channel. See the
/// [module docs](self) for the design.
pub struct WorkerPool<K, T> {
    shared: Arc<Shared<K, T>>,
    results: Receiver<Completed<K, T>>,
    handles: Vec<JoinHandle<()>>,
    /// Round-robin placement cursor over the worker queues.
    next: usize,
}

impl<K: Send + 'static, T: Send + 'static> WorkerPool<K, T> {
    /// Spawns a pool of `workers` long-lived threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> WorkerPool<K, T> {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            steals: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let (tx, results) = channel();
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let tx: Sender<Completed<K, T>> = tx.clone();
                std::thread::spawn(move || worker_loop(me, shared, tx))
            })
            .collect();
        WorkerPool { shared, results, handles, next: 0 }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queues a job onto the next worker's run queue (round-robin). The
    /// job's return value — or its caught panic — comes back from
    /// [`recv`](WorkerPool::recv) tagged with `tag`.
    pub fn submit(&mut self, tag: K, job: impl FnOnce() -> T + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool state lock");
        let slot = self.next % state.queues.len();
        state.queues[slot].push_back((tag, Box::new(job)));
        self.next = self.next.wrapping_add(1);
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Blocks until the next job finishes (successfully or by panic) and
    /// returns its [`Completed`] record. Callers are responsible for
    /// receiving exactly as many completions as they submitted jobs.
    pub fn recv(&self) -> Completed<K, T> {
        self.results.recv().expect("worker pool threads outlive the queue")
    }

    /// How many jobs were stolen from a sibling's queue so far.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// How many jobs panicked (and were isolated) so far.
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }
}

impl<K, T> fmt::Debug for WorkerPool<K, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("steals", &self.shared.steals.load(Ordering::Relaxed))
            .field("panics", &self.shared.panics.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K, T> Drop for WorkerPool<K, T> {
    fn drop(&mut self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            // A worker never panics (jobs are caught), so join cannot fail
            // in practice; swallow the error rather than double-panic in
            // Drop if it somehow does.
            let _ = handle.join();
        }
    }
}

/// One worker: drain own queue from the front, steal from siblings' backs,
/// sleep on the condvar when everything is empty, exit on shutdown.
fn worker_loop<K: Send, T: Send>(
    me: usize,
    shared: Arc<Shared<K, T>>,
    results: Sender<Completed<K, T>>,
) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if let Some(job) = state.queues[me].pop_front() {
                    break Some(job);
                }
                let workers = state.queues.len();
                let stolen = (1..workers)
                    .map(|offset| (me + offset) % workers)
                    .find_map(|victim| state.queues[victim].pop_back());
                if let Some(job) = stolen {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work_ready.wait(state).expect("pool state lock");
            }
        };
        let Some((tag, run)) = job else { return };
        let result = catch_unwind(AssertUnwindSafe(run)).map_err(|payload| {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            JobPanic { message: panic_message(payload.as_ref()) }
        });
        if results.send(Completed { tag, result }).is_err() {
            // The pool (and its receiver) is gone; nothing left to report
            // to, so the worker retires.
            return;
        }
    }
}

/// Stringifies a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn results_come_back_tagged() {
        let mut pool: WorkerPool<usize, usize> = WorkerPool::new(3);
        for n in 0..16 {
            pool.submit(n, move || n + 100);
        }
        let mut seen: Vec<(usize, usize)> =
            (0..16).map(|_| pool.recv()).map(|c| (c.tag, c.result.unwrap())).collect();
        seen.sort();
        assert_eq!(seen, (0..16).map(|n| (n, n + 100)).collect::<Vec<_>>());
    }

    #[test]
    fn idle_workers_steal_queued_jobs() {
        // Two workers, three jobs placed round-robin: queue 0 gets A and
        // C, queue 1 gets B. A blocks until C runs — so the test only
        // completes if worker 1, after finishing B, *steals* C from queue
        // 0's back while worker 0 is still inside A. Without stealing this
        // deadlocks (and the test harness times out).
        let mut pool: WorkerPool<&'static str, ()> = WorkerPool::new(2);
        let (unblock_tx, unblock_rx) = mpsc::channel::<()>();
        pool.submit("a", move || {
            unblock_rx.recv().expect("c runs and signals");
        });
        pool.submit("b", || {});
        pool.submit("c", move || {
            unblock_tx.send(()).expect("a is waiting");
        });
        let mut tags: Vec<&str> = (0..3).map(|_| pool.recv().tag).collect();
        tags.sort();
        assert_eq!(tags, ["a", "b", "c"]);
        assert!(pool.steals() >= 1, "c must have been stolen");
    }

    #[test]
    fn panicking_job_is_isolated_and_the_worker_survives() {
        let mut pool: WorkerPool<u8, u8> = WorkerPool::new(1);
        pool.submit(0, || panic!("deliberate test panic"));
        pool.submit(1, || 7);
        let mut completions: Vec<Completed<u8, u8>> = (0..2).map(|_| pool.recv()).collect();
        completions.sort_by_key(|c| c.tag);
        let err = completions[0].result.as_ref().unwrap_err();
        assert!(err.message.contains("deliberate test panic"), "{err}");
        assert_eq!(*completions[1].result.as_ref().unwrap(), 7, "the sole worker survived");
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn zero_worker_request_clamps_to_one() {
        let mut pool: WorkerPool<(), u8> = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        pool.submit((), || 3);
        assert_eq!(pool.recv().result.unwrap(), 3);
    }
}
