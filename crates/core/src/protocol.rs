//! The protocol axis: one engine, pluggable swap protocols.
//!
//! Herlihy's paper defines *two* protocols over the same market machinery:
//! the general multi-leader hashkey protocol (§4.5) and the cheaper
//! single-leader timeout-only protocol on classic HTLCs (§4.6). Both share
//! the same skeleton — contracts propagate leader-outward in Phase One,
//! secrets propagate leader-inward in Phase Two, refunds fire on expiry —
//! and differ only in four places, which is exactly what [`SwapProtocol`]
//! abstracts:
//!
//! 1. **Provisioning** — what timeout discipline governs the contracts:
//!    path-dependent hashkey deadlines `T + (diam + |p|)·Δ` vs the
//!    Lemma 4.13 HTLC ladder `T₀ + (diam + D(v, v̂) + 1)·Δ`
//!    ([`SwapProtocol::contract_for`]).
//! 2. **Step strategy** — how a party turns its per-round [`View`] into
//!    [`Action`]s: the [`Party`] state machine with hashkey tables and
//!    signature chains, vs the leader-reveals/followers-echo HTLC loop
//!    ([`SwapProtocol::step`]).
//! 3. **Contract flavor** — what actually sits on-chain: every chain hosts
//!    [`AnyContract`], and the protocol decides which flavor it publishes
//!    and how observers snapshot it ([`SwapProtocol::snapshot`]).
//! 4. **Call translation** — how an abstract action becomes an on-chain
//!    call with its wire size: multi-kilobyte hashkey unlocks vs 32-byte
//!    secret reveals ([`SwapProtocol::call_of`]).
//!
//! The engine ([`crate::engine::Engine`]) owns everything else — the event
//! queue, timing models, snapshot-delta caching, metering, and report
//! extraction — so golden fingerprints, `Lockstep`/`PerChainLatency`
//! timing, and the storage accounting apply to both protocols for free.
//! The `Exchange` picks the cheapest feasible protocol per cleared cycle
//! via [`ProtocolKind::select`].
//!
//! Further variants from the literature (e.g. the space/local-time-improved
//! protocol of Imoto et al., arXiv:1905.09985, or grief-resistant designs
//! like 4-Swap, arXiv:2508.04641) slot in as third implementations of this
//! trait rather than third runner stacks.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use swap_chain::AssetId;
use swap_contract::{
    AnyCall, AnyContract, HtlcCall, HtlcContract, SwapCall, SwapContract, SwapSpec,
};
use swap_crypto::{Hashlock, Secret};
use swap_digraph::{ArcId, VertexId};
use swap_sim::SimTime;

use crate::party::{Action, ArcSnapshot, Behavior, ContractSnapshot, HtlcSnapshot, Party, View};
use crate::runner::RunConfig;
use crate::setup::SwapSetup;
use crate::single_leader::{assign_timeouts, timeout_assignment_feasible, TimeoutError};

/// Which of the paper's protocols executes a swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtocolKind {
    /// The general multi-leader hashkey protocol (§4.5): swap contracts
    /// with one hashlock per leader, unlocked by signed hashkey paths.
    Hashkey,
    /// The single-leader timeout protocol (§4.6): classic HTLCs carrying
    /// the Lemma 4.13 timeout ladder — no paths, no signatures.
    Htlc,
}

impl ProtocolKind {
    /// Picks the cheapest protocol the swap admits: [`ProtocolKind::Htlc`]
    /// when the swap has exactly one leader, the §4.6 timeout assignment is
    /// feasible (the follower subdigraph is acyclic — Figure 6), and every
    /// configured behavior is one the HTLC strategy implements
    /// ([`HtlcProtocol::supports`]); [`ProtocolKind::Hashkey`] otherwise.
    ///
    /// This is the one selection predicate in the workspace —
    /// [`crate::instance::SwapInstance::from_cleared`] and the exchange's
    /// auto-policy route through it. Every cleared market *cycle* is
    /// single-leader feasible, which is why auto-selection makes HTLCs the
    /// common case.
    pub fn select(spec: &SwapSpec, config: &RunConfig) -> ProtocolKind {
        let leaders: BTreeSet<VertexId> = spec.leaders.iter().copied().collect();
        let feasible = leaders.len() == 1 && timeout_assignment_feasible(&spec.digraph, &leaders);
        let behaviors_supported = config.behaviors.values().all(HtlcProtocol::supports);
        if feasible && behaviors_supported {
            ProtocolKind::Htlc
        } else {
            ProtocolKind::Hashkey
        }
    }

    /// A short lowercase label (`"hashkey"` / `"htlc"`), for reports.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Hashkey => "hashkey",
            ProtocolKind::Htlc => "htlc",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One of the paper's swap protocols, as the engine drives it.
///
/// Implementations own all protocol-specific state: the per-party strategy
/// machines, the spec handle contracts embed, and the timeout discipline.
/// The engine calls [`step`](SwapProtocol::step) once per party per round,
/// [`contract_for`](SwapProtocol::contract_for) when a publish action
/// executes, [`snapshot`](SwapProtocol::snapshot) when a chain's state
/// version moves, and [`call_of`](SwapProtocol::call_of) to translate the
/// remaining on-chain actions into flavor-correct calls.
pub trait SwapProtocol: fmt::Debug {
    /// Which protocol this is (recorded per swap in exchange reports).
    fn kind(&self) -> ProtocolKind;

    /// One party observes `view` at a round boundary and emits actions.
    fn step(&mut self, vertex: VertexId, view: &View<'_>) -> Vec<Action>;

    /// The contract a publish action deploys on `arc` escrowing `asset`.
    /// With `corrupt` set, the contract carries hashlocks nobody can open
    /// (the malicious-publisher deviation of `RunConfig::corrupt_arcs`).
    fn contract_for(&mut self, arc: ArcId, asset: AssetId, corrupt: bool) -> AnyContract;

    /// What observers see of `arc`'s contract right now.
    fn snapshot(&self, contract: &AnyContract, arc: ArcId, asset: AssetId) -> ArcSnapshot;

    /// Translates an on-chain action (unlock / claim / refund / reveal)
    /// into the flavor-correct call plus its wire size in bytes. Consumes
    /// the action so multi-kilobyte unlock payloads (path + signature
    /// chain) move into the call instead of being cloned per transaction.
    /// Returns `None` for actions that never reach a chain this way
    /// (publishes, direct transfers, bulletin announcements).
    fn call_of(&self, action: Action) -> Option<(AnyCall, usize)>;

    /// Whether `vertex` abandoned the protocol after detecting an invalid
    /// contract (§4.5 Phase One verification; HTLC parties never abandon).
    fn abandoned(&self, vertex: VertexId) -> bool;
}

/// Builds the protocol implementation for `kind`.
///
/// # Panics
///
/// Panics if `kind` is [`ProtocolKind::Htlc`] but the spec is not
/// single-leader feasible, or the config holds a behavior the HTLC
/// strategy does not implement — select with [`ProtocolKind::select`] (or
/// let [`crate::instance::SwapInstance::from_cleared`] do it) before
/// forcing the HTLC protocol.
pub(crate) fn build_protocol(
    kind: ProtocolKind,
    setup: &SwapSetup,
    config: &RunConfig,
    spec: Arc<SwapSpec>,
) -> Box<dyn SwapProtocol> {
    match kind {
        ProtocolKind::Hashkey => Box::new(HashkeyProtocol::new(setup, config, spec)),
        ProtocolKind::Htlc => Box::new(
            HtlcProtocol::new(setup, config, spec)
                .expect("HTLC protocol forced on a spec that is not single-leader feasible"),
        ),
    }
}

/// The general §4.5 protocol: [`Party`] state machines over swap contracts.
#[derive(Debug)]
pub struct HashkeyProtocol {
    /// The one spec allocation all honestly published contracts share.
    shared_spec: Arc<SwapSpec>,
    /// Lazily built corrupted spec for `RunConfig::corrupt_arcs`.
    corrupted_spec: Option<Arc<SwapSpec>>,
    parties: Vec<Party>,
}

impl HashkeyProtocol {
    /// Builds the per-party machines from the setup's key material and the
    /// config's behaviors.
    pub fn new(setup: &SwapSetup, config: &RunConfig, spec: Arc<SwapSpec>) -> Self {
        let parties: Vec<Party> = spec
            .digraph
            .vertices()
            .map(|v| {
                let behavior = config.behaviors.get(&v).cloned().unwrap_or_default();
                Party::new(v, setup.keypairs[v.index()].clone(), setup.secrets[v.index()], behavior)
            })
            .collect();
        HashkeyProtocol { shared_spec: spec, corrupted_spec: None, parties }
    }

    /// The spec corrupt publishers embed: every hashlock replaced by one
    /// nobody can open. Built once and shared.
    fn corrupted_spec(&mut self) -> Arc<SwapSpec> {
        if self.corrupted_spec.is_none() {
            let mut spec = (*self.shared_spec).clone();
            for h in spec.hashlocks.iter_mut() {
                *h = Secret::from_bytes([0xBA; 32]).hashlock();
            }
            self.corrupted_spec = Some(Arc::new(spec));
        }
        Arc::clone(self.corrupted_spec.as_ref().expect("just built"))
    }
}

impl SwapProtocol for HashkeyProtocol {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Hashkey
    }

    fn step(&mut self, vertex: VertexId, view: &View<'_>) -> Vec<Action> {
        self.parties[vertex.index()].step(view)
    }

    fn contract_for(&mut self, arc: ArcId, asset: AssetId, corrupt: bool) -> AnyContract {
        // The contract embeds "its own" spec copy (that *is* the O(|A|)
        // per-contract storage of Theorem 4.10); in memory all honest
        // contracts share one Arc allocation.
        let spec = if corrupt { self.corrupted_spec() } else { Arc::clone(&self.shared_spec) };
        AnyContract::Swap(SwapContract::new(spec, arc, asset))
    }

    fn snapshot(&self, contract: &AnyContract, arc: ArcId, asset: AssetId) -> ArcSnapshot {
        let leaders = self.shared_spec.leaders.len();
        match contract.as_swap() {
            Some(c) => {
                let valid = (Arc::ptr_eq(c.spec_handle(), &self.shared_spec)
                    || c.spec() == &*self.shared_spec)
                    && c.arc() == arc
                    && c.asset() == asset;
                ArcSnapshot::Swap(ContractSnapshot {
                    unlock_records: (0..leaders).map(|i| c.unlock_record(i).cloned()).collect(),
                    fully_unlocked: c.fully_unlocked(),
                    claimed: c.is_claimed(),
                    refunded: c.is_refunded(),
                    valid,
                })
            }
            // A foreign flavor on my arc is as invalid as wrong hashlocks:
            // observers must detect the mismatch and abandon.
            None => ArcSnapshot::Swap(ContractSnapshot {
                unlock_records: vec![None; leaders],
                fully_unlocked: false,
                claimed: false,
                refunded: false,
                valid: false,
            }),
        }
    }

    fn call_of(&self, action: Action) -> Option<(AnyCall, usize)> {
        match action {
            Action::Unlock { index, secret, path, sig, .. } => {
                let wire = 32 + path.to_bytes().len() + sig.byte_len();
                Some((AnyCall::Swap(SwapCall::Unlock { index, secret, path, sig }), wire))
            }
            Action::Claim { .. } => Some((AnyCall::Swap(SwapCall::Claim), 40)),
            Action::Refund { .. } => Some((AnyCall::Swap(SwapCall::Refund), 40)),
            // No hashkey party emits reveals; translated literally, the swap
            // contract rejects the flavor mismatch.
            Action::Reveal { secret, .. } => Some((AnyCall::Htlc(HtlcCall::Reveal { secret }), 32)),
            _ => None,
        }
    }

    fn abandoned(&self, vertex: VertexId) -> bool {
        self.parties[vertex.index()].abandoned()
    }
}

/// Per-party bookkeeping for the §4.6 strategy — deliberately tiny: no
/// keys, no hashkey tables, no signature chains.
#[derive(Debug, Default)]
struct HtlcParty {
    behavior: Behavior,
    published_phase_one: bool,
    revealed_entering: bool,
    refunded: BTreeSet<ArcId>,
}

/// The §4.6 single-leader protocol: classic HTLCs with the Lemma 4.13
/// timeout ladder, run on the same engine as the hashkey protocol.
///
/// The leader `v̂` reveals its secret on its entering arcs once they all
/// carry contracts; a follower echoes any secret it sees revealed on a
/// leaving arc. Timeouts `t(u, v) = T₀ + (diam + D(v, v̂) + 1)·Δ` guarantee
/// every follower a full Δ between learning the secret and its own
/// deadline (Lemma 4.13), so conforming runs end all-`Deal`
/// (Theorem 4.14's analogue of Theorem 4.7).
///
/// Behaviors honored: `Conforming`, `Halt`, `NeverPublish`,
/// `WithholdSecret`, and (vacuously — HTLCs have no claim step) `NoClaim`.
/// The remaining deviations are not implemented by this strategy, and
/// construction refuses them loudly rather than running them as silently
/// conforming; [`ProtocolKind::select`] falls back to the hashkey protocol
/// when a configured behavior is unsupported ([`HtlcProtocol::supports`]).
#[derive(Debug)]
pub struct HtlcProtocol {
    spec: Arc<SwapSpec>,
    leader: VertexId,
    secret: Secret,
    hashlock: Hashlock,
    /// The Lemma 4.13 timeout per arc (index = arc index).
    timeouts: Vec<SimTime>,
    parties: Vec<HtlcParty>,
}

impl HtlcProtocol {
    /// Computes the timeout ladder and builds the per-party machines.
    ///
    /// # Errors
    ///
    /// Fails when the spec does not admit the §4.6 protocol: more (or
    /// fewer) than one leader, or no feasible timeout assignment
    /// (Lemma 4.13's preconditions).
    ///
    /// # Panics
    ///
    /// Panics if the config holds a behavior this strategy does not
    /// implement (see [`HtlcProtocol::supports`]) — running an adversarial
    /// deviation as silently conforming would make safety sweeps pass
    /// vacuously.
    pub fn new(
        setup: &SwapSetup,
        config: &RunConfig,
        spec: Arc<SwapSpec>,
    ) -> Result<Self, TimeoutError> {
        for (vertex, behavior) in &config.behaviors {
            assert!(
                HtlcProtocol::supports(behavior),
                "behavior {behavior:?} for {vertex} is not implemented by the HTLC protocol; \
                 run it under ProtocolKind::Hashkey (ProtocolKind::select does this)"
            );
        }
        let &[leader] = spec.leaders.as_slice() else {
            return Err(TimeoutError::NotSingleLeader { leaders: spec.leaders.len() });
        };
        // Round 0 opens one Δ before the protocol start `T`, the instant
        // the cleared spec reaches the parties; the ladder hangs off it.
        let t0 = spec.start - spec.delta.times(1);
        let timeouts = assign_timeouts(&spec.digraph, leader, t0, spec.delta)?;
        let secret = setup.secrets[leader.index()];
        let hashlock = spec.hashlocks[0];
        debug_assert!(hashlock.matches(&secret), "leader hashlock must match its secret");
        let parties = spec
            .digraph
            .vertices()
            .map(|v| HtlcParty {
                behavior: config.behaviors.get(&v).cloned().unwrap_or_default(),
                ..HtlcParty::default()
            })
            .collect();
        Ok(HtlcProtocol { spec, leader, secret, hashlock, timeouts, parties })
    }

    /// The assigned timeout per arc.
    pub fn timeouts(&self) -> &[SimTime] {
        &self.timeouts
    }

    /// Whether the HTLC strategy implements `behavior`. `Conforming`,
    /// `Halt`, `NeverPublish`, and `WithholdSecret` are honored; `NoClaim`
    /// is vacuously conforming (there is no claim step). Everything else
    /// (`Scripted`, `Direct`, `PrematureReveal`, `EagerPublish`) is not
    /// implemented here — auto-selection routes such configs to the
    /// hashkey protocol instead.
    pub fn supports(behavior: &Behavior) -> bool {
        matches!(
            behavior,
            Behavior::Conforming
                | Behavior::Halt { .. }
                | Behavior::NeverPublish { .. }
                | Behavior::WithholdSecret
                | Behavior::NoClaim
        )
    }
}

impl SwapProtocol for HtlcProtocol {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Htlc
    }

    fn step(&mut self, vertex: VertexId, view: &View<'_>) -> Vec<Action> {
        let party = &mut self.parties[vertex.index()];
        if let Behavior::Halt { at_round } = party.behavior {
            if view.round >= at_round {
                return Vec::new();
            }
        }
        let digraph = &view.spec.digraph;
        let htlc_of =
            |arc: ArcId| view.contracts[arc.index()].as_ref().and_then(ArcSnapshot::as_htlc);
        let mut actions = Vec::new();
        // Only *valid* contracts advance the protocol (an invalid one is
        // treated as absent, so its publisher gets no follower response).
        let entering_ready =
            digraph.in_arcs(vertex).all(|a| htlc_of(a.id).is_some_and(|s| s.valid));
        let is_leader = vertex == self.leader;

        // Phase One: the leader publishes unconditionally; a follower once
        // every entering arc carries a contract.
        if !party.published_phase_one && (is_leader || entering_ready) {
            party.published_phase_one = true;
            for arc in digraph.out_arcs(vertex) {
                let withheld = match &party.behavior {
                    Behavior::NeverPublish { arcs: None } => true,
                    Behavior::NeverPublish { arcs: Some(list) } => list.contains(&arc.id),
                    _ => false,
                };
                if !withheld {
                    actions.push(Action::Publish { arc: arc.id });
                }
            }
        }

        // Phase Two: the leader knows the secret; a follower echoes one it
        // sees revealed on any leaving arc.
        let knows_secret = if matches!(party.behavior, Behavior::WithholdSecret) {
            None
        } else if is_leader {
            Some(self.secret)
        } else {
            digraph
                .out_arcs(vertex)
                .find_map(|a| htlc_of(a.id).filter(|s| s.valid).and_then(|s| s.revealed))
        };
        if !party.revealed_entering && entering_ready {
            if let Some(secret) = knows_secret {
                party.revealed_entering = true;
                for arc in digraph.in_arcs(vertex) {
                    if !htlc_of(arc.id).is_some_and(|s| s.triggered) {
                        actions.push(Action::Reveal { arc: arc.id, secret });
                    }
                }
            }
        }

        // Refunds on expired, untriggered leaving arcs.
        for arc in digraph.out_arcs(vertex) {
            let Some(snapshot) = htlc_of(arc.id) else { continue };
            if !snapshot.triggered
                && !snapshot.refunded
                && view.now >= self.timeouts[arc.id.index()]
                && party.refunded.insert(arc.id)
            {
                actions.push(Action::Refund { arc: arc.id });
            }
        }
        actions
    }

    fn contract_for(&mut self, arc: ArcId, asset: AssetId, corrupt: bool) -> AnyContract {
        // A malicious publisher substitutes a hashlock nobody can open.
        let hashlock =
            if corrupt { Secret::from_bytes([0xBA; 32]).hashlock() } else { self.hashlock };
        AnyContract::Htlc(HtlcContract::new(
            asset,
            self.spec.address_of(self.spec.digraph.head(arc)),
            self.spec.address_of(self.spec.digraph.tail(arc)),
            hashlock,
            self.timeouts[arc.index()],
        ))
    }

    fn snapshot(&self, contract: &AnyContract, arc: ArcId, asset: AssetId) -> ArcSnapshot {
        match contract.as_htlc() {
            Some(c) => {
                // The §4.6 analogue of Phase One verification: the spec is
                // public, so observers check the hashlock, the Lemma 4.13
                // timeout, the parties, and the escrowed asset.
                let valid = c.hashlock() == self.hashlock
                    && c.timeout() == self.timeouts[arc.index()]
                    && c.party() == self.spec.address_of(self.spec.digraph.head(arc))
                    && c.counterparty() == self.spec.address_of(self.spec.digraph.tail(arc))
                    && c.asset() == asset;
                ArcSnapshot::Htlc(HtlcSnapshot {
                    revealed: c.revealed_secret().copied(),
                    triggered: c.is_triggered(),
                    refunded: c.is_refunded(),
                    valid,
                })
            }
            // A foreign flavor is as invalid as wrong hashlocks.
            None => ArcSnapshot::Htlc(HtlcSnapshot {
                revealed: None,
                triggered: false,
                refunded: false,
                valid: false,
            }),
        }
    }

    fn call_of(&self, action: Action) -> Option<(AnyCall, usize)> {
        match action {
            Action::Reveal { secret, .. } => Some((AnyCall::Htlc(HtlcCall::Reveal { secret }), 32)),
            Action::Refund { .. } => Some((AnyCall::Htlc(HtlcCall::Refund), 8)),
            // HTLC parties emit neither unlocks nor claims; translated
            // literally, the HTLC rejects the flavor mismatch.
            Action::Unlock { index, secret, path, sig, .. } => {
                let wire = 32 + path.to_bytes().len() + sig.byte_len();
                Some((AnyCall::Swap(SwapCall::Unlock { index, secret, path, sig }), wire))
            }
            Action::Claim { .. } => Some((AnyCall::Swap(SwapCall::Claim), 40)),
            _ => None,
        }
    }

    fn abandoned(&self, _vertex: VertexId) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::instance::SwapInstance;
    use crate::outcome::Outcome;
    use crate::runner::{RunConfig, RunReport, SwapRunner};
    use crate::setup::{SetupConfig, SwapSetup};
    use crate::single_leader::single_leader_of;
    use crate::timing::PerChainLatency;
    use swap_digraph::generators;
    use swap_sim::SimRng;

    fn fast_config() -> SetupConfig {
        SetupConfig { key_height: 4, ..SetupConfig::default() }
    }

    fn run_htlc(digraph: swap_digraph::Digraph, seed: u64, config: RunConfig) -> RunReport {
        let setup = SwapSetup::generate(digraph, &fast_config(), &mut SimRng::from_seed(seed))
            .expect("valid single-leader family");
        assert_eq!(setup.spec.leaders.len(), 1, "family must elect a single leader");
        SwapInstance::new(0, setup, config).with_protocol(ProtocolKind::Htlc).run_lockstep()
    }

    #[test]
    fn kind_selection_matches_figure_6() {
        let single = SwapSetup::generate(
            generators::herlihy_three_party(),
            &fast_config(),
            &mut SimRng::from_seed(1),
        )
        .unwrap();
        let conforming = RunConfig::default();
        assert_eq!(ProtocolKind::select(&single.spec, &conforming), ProtocolKind::Htlc);
        let two = SwapSetup::generate(
            generators::two_leader_triangle(),
            &fast_config(),
            &mut SimRng::from_seed(1),
        )
        .unwrap();
        assert_eq!(ProtocolKind::select(&two.spec, &conforming), ProtocolKind::Hashkey);
        assert_eq!(ProtocolKind::Htlc.label(), "htlc");
        assert_eq!(ProtocolKind::Hashkey.to_string(), "hashkey");
    }

    #[test]
    fn unsupported_behaviors_fall_back_to_hashkey() {
        // Scripted/Direct deviations are not implemented by the HTLC
        // strategy: selection routes them to the general protocol instead
        // of letting a safety sweep pass vacuously.
        let single = SwapSetup::generate(
            generators::herlihy_three_party(),
            &fast_config(),
            &mut SimRng::from_seed(2),
        )
        .unwrap();
        let mut config = RunConfig::default();
        config.behaviors.insert(VertexId::new(1), Behavior::Direct { skip_arcs: vec![] });
        assert_eq!(ProtocolKind::select(&single.spec, &config), ProtocolKind::Hashkey);
        // Supported deviations keep the cheap path.
        let mut config = RunConfig::default();
        config.behaviors.insert(VertexId::new(1), Behavior::Halt { at_round: 2 });
        assert_eq!(ProtocolKind::select(&single.spec, &config), ProtocolKind::Htlc);
        assert!(HtlcProtocol::supports(&Behavior::NoClaim));
        assert!(!HtlcProtocol::supports(&Behavior::PrematureReveal));
    }

    #[test]
    #[should_panic(expected = "not implemented by the HTLC protocol")]
    fn forcing_htlc_with_unsupported_behavior_panics() {
        let setup = SwapSetup::generate(
            generators::herlihy_three_party(),
            &fast_config(),
            &mut SimRng::from_seed(3),
        )
        .unwrap();
        let mut config = RunConfig::default();
        config.behaviors.insert(VertexId::new(0), Behavior::PrematureReveal);
        let _ =
            SwapInstance::new(0, setup, config).with_protocol(ProtocolKind::Htlc).run_lockstep();
    }

    #[test]
    fn htlc_conforming_run_matches_figure_2_timeline() {
        // Δ = 10, T₀ = 0: publishes at mid-rounds 5/15/25, triggers at
        // 35/45/55 — the Figure 1–2 timeline, now produced by the shared
        // event-driven engine instead of a private round loop.
        let report = run_htlc(generators::herlihy_three_party(), 3, RunConfig::default());
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        let publishes: Vec<u64> =
            report.trace.entries_of_kind("contract.published").map(|e| e.time.ticks()).collect();
        assert_eq!(publishes, vec![5, 15, 25]);
        let triggers: Vec<u64> =
            report.trace.entries_of_kind("arc.triggered").map(|e| e.time.ticks()).collect();
        assert_eq!(triggers, vec![35, 45, 55]);
        assert_eq!(report.metrics.refund_calls, 0);
        assert!(report.settled);
    }

    #[test]
    fn htlc_conforming_runs_across_families() {
        for d in [generators::cycle(4), generators::star(3), generators::flower(2, 3)] {
            assert!(single_leader_of(&d).is_some(), "family must be single-leader");
            let report = run_htlc(d.clone(), 4, RunConfig::default());
            assert!(report.all_deal(), "digraph:\n{}", d.render());
            assert!(report.settled);
        }
    }

    #[test]
    fn htlc_halted_leader_leads_to_refunds_no_underwater() {
        let d = generators::herlihy_three_party();
        for halt_round in 0..8 {
            let setup = SwapSetup::generate(d.clone(), &fast_config(), &mut SimRng::from_seed(5))
                .expect("valid");
            let leader = setup.spec.leaders[0];
            let mut config = RunConfig::default();
            config.behaviors.insert(leader, Behavior::Halt { at_round: halt_round });
            let report = SwapInstance::new(0, setup, config)
                .with_protocol(ProtocolKind::Htlc)
                .run_lockstep();
            assert!(report.no_conforming_underwater(), "halt {halt_round}: {:?}", report.outcomes);
        }
    }

    #[test]
    fn htlc_halted_follower_cannot_hurt_others() {
        let d = generators::herlihy_three_party();
        let carol = d.vertex_by_name("carol").unwrap();
        for halt_round in 0..8 {
            let mut config = RunConfig::default();
            config.behaviors.insert(carol, Behavior::Halt { at_round: halt_round });
            let report = run_htlc(d.clone(), 6, config);
            for (i, &o) in report.outcomes.iter().enumerate() {
                if VertexId::new(i as u32) != carol {
                    assert!(o != Outcome::Underwater, "halt {halt_round}, party {i}: {o}");
                }
            }
        }
    }

    #[test]
    fn htlc_withholding_leader_everyone_refunded() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d, &fast_config(), &mut SimRng::from_seed(7)).expect("valid");
        let leader = setup.spec.leaders[0];
        let mut config = RunConfig::default();
        config.behaviors.insert(leader, Behavior::WithholdSecret);
        let report =
            SwapInstance::new(0, setup, config).with_protocol(ProtocolKind::Htlc).run_lockstep();
        assert!(report.outcomes.iter().all(|&o| o == Outcome::NoDeal));
        assert!(report.settled, "all contracts should be refunded");
        assert_eq!(report.metrics.refund_calls, 3);
        assert!(report.no_conforming_underwater());
    }

    #[test]
    fn htlc_storage_and_wire_smaller_than_general_protocol() {
        // §4.6's point: single-leader swaps avoid storing digraphs, key
        // tables, and signature chains. Same digraph, same engine, both
        // protocols.
        let d = generators::herlihy_three_party();
        let simple = run_htlc(d.clone(), 7, RunConfig::default());
        let setup =
            SwapSetup::generate(d, &fast_config(), &mut SimRng::from_seed(7)).expect("valid");
        let general = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(general.all_deal() && simple.all_deal());
        assert!(
            simple.storage.total_bytes() < general.storage.total_bytes(),
            "simple {} vs general {}",
            simple.storage.total_bytes(),
            general.storage.total_bytes()
        );
        assert!(simple.metrics.unlock_bytes < general.metrics.unlock_bytes);
    }

    #[test]
    fn htlc_runs_under_per_chain_latency() {
        let d = generators::cycle(5);
        let rng = SimRng::from_seed(8);
        let setup = SwapSetup::generate(d, &fast_config(), &mut rng.clone()).expect("valid");
        let bound = setup.spec.start + setup.spec.worst_case_duration();
        let timing = PerChainLatency::sample(&setup, &rng);
        let instance =
            SwapInstance::new(0, setup, RunConfig::default()).with_protocol(ProtocolKind::Htlc);
        let report = Engine::from_instance(instance, timing).run();
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        assert!(report.completion.expect("all triggered") <= bound);
    }

    #[test]
    fn htlc_snapshot_modes_agree() {
        use crate::runner::SnapshotMode;
        let run = |mode: SnapshotMode| {
            let config = RunConfig { snapshot_mode: mode, ..RunConfig::default() };
            run_htlc(generators::flower(3, 3), 9, config)
        };
        let delta = run(SnapshotMode::Delta);
        let rebuild = run(SnapshotMode::FullRebuild);
        assert_eq!(format!("{delta:?}"), format!("{rebuild:?}"));
        assert!(delta.all_deal());
    }

    #[test]
    fn rollback_modes_agree_under_both_protocols() {
        use swap_chain::RollbackMode;
        // A withholding leader forces failing calls and refunds, so the
        // rollback path actually executes; both modes must report
        // byte-identically under each protocol.
        for protocol in [ProtocolKind::Hashkey, ProtocolKind::Htlc] {
            let run = |mode: RollbackMode| {
                let mut config = RunConfig { rollback_mode: mode, ..RunConfig::default() };
                config.behaviors.insert(VertexId::new(0), Behavior::WithholdSecret);
                let setup = SwapSetup::generate(
                    generators::herlihy_three_party(),
                    &fast_config(),
                    &mut SimRng::from_seed(12),
                )
                .expect("valid");
                SwapInstance::new(0, setup, config).with_protocol(protocol).run_lockstep()
            };
            let journal = run(RollbackMode::Journal);
            let snapshot = run(RollbackMode::Snapshot);
            assert_eq!(format!("{journal:?}"), format!("{snapshot:?}"), "{protocol:?}");
            assert!(journal.no_conforming_underwater());
        }
    }

    #[test]
    fn htlc_corrupt_contract_never_triggers_the_arc() {
        // A corrupted HTLC carries a hashlock nobody can open: the swap
        // dies with refunds, and no conforming party ends underwater.
        let mut config = RunConfig::default();
        config.corrupt_arcs.insert(ArcId::new(0));
        let report = run_htlc(generators::herlihy_three_party(), 10, config);
        assert!(!report.arc_triggered[0], "corrupted arc cannot trigger");
        assert!(report.no_conforming_underwater());
    }

    #[test]
    #[should_panic(expected = "single-leader feasible")]
    fn forcing_htlc_on_two_leader_spec_panics() {
        let setup = SwapSetup::generate(
            generators::two_leader_triangle(),
            &fast_config(),
            &mut SimRng::from_seed(11),
        )
        .unwrap();
        let _ = SwapInstance::new(0, setup, RunConfig::default())
            .with_protocol(ProtocolKind::Htlc)
            .run_lockstep();
    }
}
