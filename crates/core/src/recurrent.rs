//! Recurrent swaps (§5 of the paper).
//!
//! "The swap protocol can be made recurrent by having the leaders
//! distribute the next round's hashlocks in Phase Two of the previous
//! round." This module implements that pipeline: a session runs the same
//! swap digraph repeatedly; in every round the leaders draw the *next*
//! round's secrets and publish the corresponding hashlocks alongside their
//! Phase Two hashkeys, so round `k+1` can begin as soon as round `k`
//! settles, without a fresh market-clearing exchange.
//!
//! The recurring parties keep one signing identity across rounds (which is
//! exactly what the Merkle many-time signature scheme is for — each round
//! consumes a few one-time leaves).

use std::fmt;

use swap_crypto::{Hashlock, MssKeypair, Secret};
use swap_digraph::Digraph;
use swap_market::{BuildError, SpecBuilder};
use swap_sim::{Delta, SimRng, SimTime};

use crate::runner::{RunConfig, RunReport, SwapRunner};
use crate::setup::SwapSetup;

/// Errors from a recurrent session.
#[derive(Debug, Clone, PartialEq)]
pub enum RecurrentError {
    /// Spec assembly failed (invalid digraph, exhausted keys, …).
    Build(BuildError),
    /// A round failed to reach all-Deal, so the pipeline stops (recurrence
    /// assumes the previous round settled).
    RoundFailed {
        /// Zero-based index of the failed round.
        round: usize,
    },
}

impl fmt::Display for RecurrentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecurrentError::Build(e) => write!(f, "{e}"),
            RecurrentError::RoundFailed { round } => {
                write!(f, "recurrent round {round} did not settle in Deal")
            }
        }
    }
}

impl std::error::Error for RecurrentError {}

impl From<BuildError> for RecurrentError {
    fn from(e: BuildError) -> Self {
        RecurrentError::Build(e)
    }
}

/// Summary of one settled recurrent round.
#[derive(Debug)]
pub struct RoundSummary {
    /// The full run report.
    pub report: RunReport,
    /// The hashlocks that were pre-distributed for the *next* round.
    pub next_hashlocks: Vec<Hashlock>,
    /// When this round's spec started.
    pub started_at: SimTime,
}

/// A recurring swap session over a fixed digraph and fixed identities.
///
/// # Example
///
/// ```
/// use swap_core::recurrent::RecurrentSession;
/// use swap_digraph::generators;
/// use swap_sim::{Delta, SimRng};
///
/// let digraph = generators::herlihy_three_party();
/// let mut session = RecurrentSession::new(
///     digraph,
///     Delta::from_ticks(10),
///     &mut SimRng::from_seed(5),
/// );
/// let rounds = session.run_rounds(3, &mut SimRng::from_seed(6)).unwrap();
/// assert_eq!(rounds.len(), 3);
/// assert!(rounds.iter().all(|r| r.report.all_deal()));
/// ```
#[derive(Debug)]
pub struct RecurrentSession {
    digraph: Digraph,
    delta: Delta,
    keypairs: Vec<MssKeypair>,
    /// Secrets committed for the upcoming round (one per vertex; the
    /// leaders' are the ones that matter).
    committed_secrets: Vec<Secret>,
    now: SimTime,
    rounds_completed: usize,
}

impl RecurrentSession {
    /// Creates a session: parties generate long-lived identities and commit
    /// their first-round secrets.
    pub fn new(digraph: Digraph, delta: Delta, rng: &mut SimRng) -> Self {
        let n = digraph.vertex_count();
        let mut key_rng = rng.stream("recurrent/keys");
        // Height 7 = 128 one-time keys: enough for dozens of rounds.
        let keypairs: Vec<MssKeypair> =
            (0..n).map(|_| MssKeypair::from_seed_with_height(key_rng.bytes32(), 7)).collect();
        let mut secret_rng = rng.stream("recurrent/secrets/0");
        let committed_secrets = (0..n).map(|_| Secret::random(&mut secret_rng)).collect();
        RecurrentSession {
            digraph,
            delta,
            keypairs,
            committed_secrets,
            now: SimTime::ZERO,
            rounds_completed: 0,
        }
    }

    /// Number of rounds settled so far.
    pub fn rounds_completed(&self) -> usize {
        self.rounds_completed
    }

    /// The session clock (advances past each settled round).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs one round with the currently committed secrets, drawing and
    /// distributing the next round's hashlocks during it.
    ///
    /// # Errors
    ///
    /// Fails if the spec cannot be built or the round does not settle with
    /// Deal for every party (a recurrence cannot continue over a broken
    /// round).
    pub fn run_round(&mut self, rng: &mut SimRng) -> Result<RoundSummary, RecurrentError> {
        // Build this round's spec from the committed secrets.
        let mut builder = SpecBuilder::new(self.digraph.clone());
        builder.delta(self.delta).start(self.now + self.delta.times(1));
        for v in self.digraph.vertices() {
            builder.identity(
                v,
                self.keypairs[v.index()].public_key(),
                self.committed_secrets[v.index()].hashlock(),
            );
        }
        let spec = builder.build()?;
        let started_at = spec.start;
        let spec_leader_count = spec.leaders.len();

        // Draw the next round's secrets now — their hashlocks ride along
        // with this round's Phase Two messages (we account for their bytes
        // as announcements).
        let mut next_rng =
            rng.stream_indexed("recurrent/secrets", self.rounds_completed as u64 + 1);
        let next_secrets: Vec<Secret> =
            (0..self.digraph.vertex_count()).map(|_| Secret::random(&mut next_rng)).collect();
        let next_hashlocks: Vec<Hashlock> = next_secrets.iter().map(Secret::hashlock).collect();

        let setup = SwapSetup::from_parts(
            spec,
            self.keypairs.clone(),
            self.committed_secrets.clone(),
            self.now,
        );
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        if !report.all_deal() {
            return Err(RecurrentError::RoundFailed { round: self.rounds_completed });
        }
        // The runner signed with *clones* of the session keypairs, so the
        // master copies still point at the leaves the round just spent.
        // Reusing a Lamport leaf forfeits its security, so burn the worst
        // case per party — one leaf per leader secret propagated — before
        // the next round signs anything.
        let leaves_spent = spec_leader_count as u64;
        for kp in &mut self.keypairs {
            for _ in 0..leaves_spent.min(kp.remaining()) {
                let _ = kp.sign(&swap_crypto::sha256::sha256(b"leaf-retired"));
            }
        }
        self.now = report.completion.expect("all-deal run completes") + self.delta.times(2);
        self.committed_secrets = next_secrets;
        self.rounds_completed += 1;
        Ok(RoundSummary { report, next_hashlocks, started_at })
    }

    /// Runs `count` consecutive rounds.
    ///
    /// # Errors
    ///
    /// Stops at the first failed round.
    pub fn run_rounds(
        &mut self,
        count: usize,
        rng: &mut SimRng,
    ) -> Result<Vec<RoundSummary>, RecurrentError> {
        (0..count).map(|_| self.run_round(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_digraph::generators;

    #[test]
    fn three_rounds_all_deal() {
        let mut session = RecurrentSession::new(
            generators::herlihy_three_party(),
            Delta::from_ticks(10),
            &mut SimRng::from_seed(1),
        );
        let rounds = session.run_rounds(3, &mut SimRng::from_seed(2)).unwrap();
        assert_eq!(rounds.len(), 3);
        assert_eq!(session.rounds_completed(), 3);
        for r in &rounds {
            assert!(r.report.all_deal());
            assert_eq!(r.next_hashlocks.len(), 3);
        }
    }

    #[test]
    fn rounds_progress_in_time() {
        let mut session = RecurrentSession::new(
            generators::herlihy_three_party(),
            Delta::from_ticks(10),
            &mut SimRng::from_seed(3),
        );
        let rounds = session.run_rounds(3, &mut SimRng::from_seed(4)).unwrap();
        for w in rounds.windows(2) {
            assert!(w[1].started_at > w[0].started_at);
            assert!(
                w[1].started_at > w[0].report.completion.unwrap(),
                "next round must start after the previous settles"
            );
        }
        assert!(session.now() > SimTime::ZERO);
    }

    #[test]
    fn hashlocks_rotate_every_round() {
        let mut session = RecurrentSession::new(
            generators::herlihy_three_party(),
            Delta::from_ticks(10),
            &mut SimRng::from_seed(5),
        );
        let rounds = session.run_rounds(2, &mut SimRng::from_seed(6)).unwrap();
        // Next-round hashlocks differ between rounds (fresh secrets).
        assert_ne!(rounds[0].next_hashlocks, rounds[1].next_hashlocks);
    }

    #[test]
    fn works_on_two_leader_digraph() {
        let mut session = RecurrentSession::new(
            generators::two_leader_triangle(),
            Delta::from_ticks(10),
            &mut SimRng::from_seed(7),
        );
        let rounds = session.run_rounds(2, &mut SimRng::from_seed(8)).unwrap();
        assert!(rounds.iter().all(|r| r.report.all_deal()));
    }
}
