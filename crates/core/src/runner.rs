//! The protocol runner: executes a swap on the simulated chains.
//!
//! # Timing model
//!
//! Since the event-driven refactor the runner is a thin facade over
//! [`crate::engine::Engine`], the discrete-event engine built on
//! [`swap_sim::Simulation`]. Protocol activity — round boundaries, party
//! wake-ups, transaction execution, visibility boundaries, round
//! bookkeeping — is a stream of events popped in deterministic
//! `(time, seq)` order, and *when* those events land is decided by a
//! pluggable [`crate::timing::TimingModel`]:
//!
//! * [`crate::timing::Lockstep`] (what [`SwapRunner`] uses) is the paper's
//!   model. Rounds are Δ apart; round 0 happens at `T₀ = spec.start − Δ`,
//!   the instant the clearing service's output reaches the parties (§4.2
//!   requires the start `T` to be at least Δ later, and that slack is
//!   exactly what makes the hashkey deadlines satisfiable — see
//!   `swap-contract`'s crate docs). Within round `k`: parties observe
//!   snapshots as of the boundary `T₀ + k·Δ`, their actions execute as
//!   transactions at `T₀ + k·Δ + Δ/2`, and the changes become visible at
//!   the next boundary. With all parties conforming, the worked example of
//!   Figures 1–2 reproduces tick-for-tick: contracts appear at +Δ, +2Δ,
//!   +3Δ and trigger at +4Δ, +5Δ, +6Δ.
//! * [`crate::timing::PerChainLatency`] gives every chain its own publish
//!   and confirm latency under a dominating Δ — the heterogeneous
//!   confirmation behavior real chains exhibit. Run it via
//!   [`crate::engine::Engine::new`].
//!
//! Observers never rebuild the world from scratch: each arc's contract
//! snapshot is cached and re-built only when the hosting chain's
//! state-version moves (a *visibility* event), so a round costs O(changed
//! arcs) instead of O(|A|). [`RunConfig::snapshot_mode`] can force the
//! classic per-round full rebuild for benchmarking.

use std::collections::{BTreeMap, BTreeSet};

use swap_chain::{RollbackMode, StorageReport};
use swap_digraph::{ArcId, VertexId};
use swap_sim::{SimTime, TraceLog};

use crate::engine::Engine;
use crate::outcome::Outcome;
use crate::party::Behavior;
use crate::setup::SwapSetup;
use crate::timing::Lockstep;

/// How the engine maintains the per-arc contract snapshots observers read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Re-snapshot an arc only when its chain's state-version moved since
    /// the cached snapshot was built (the default hot path).
    #[default]
    Delta,
    /// Rebuild every arc's snapshot at every round boundary — the classic
    /// O(|A|)-per-round behavior, kept for benchmarking the delta path.
    FullRebuild,
}

/// Per-run configuration: who deviates and for how long the runner waits.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Behavior per vertex; unlisted vertexes conform.
    pub behaviors: BTreeMap<VertexId, Behavior>,
    /// Maximum number of rounds (default: `2·diam + 6`, enough for the
    /// worst-case protocol plus the refund round).
    pub max_rounds: Option<u64>,
    /// Arcs whose published contract is *corrupted* (wrong hashlocks),
    /// modeling a malicious publisher; observers detect and abandon.
    pub corrupt_arcs: BTreeSet<ArcId>,
    /// Snapshot maintenance strategy (see [`SnapshotMode`]).
    pub snapshot_mode: SnapshotMode,
    /// How the chains roll back failed transactions (see
    /// [`RollbackMode`]): the default undo journal, or the
    /// clone-the-world snapshot reference. Externally indistinguishable;
    /// stamped onto every chain of the setup at engine construction.
    pub rollback_mode: RollbackMode,
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Rounds actually executed.
    pub rounds: u64,
    /// Contracts successfully published.
    pub contracts_published: u64,
    /// Successful `unlock` calls.
    pub unlock_calls: u64,
    /// Total wire bytes of successful `unlock` calls (secret + path +
    /// signature chain) — the communication quantity of the O(|A|·|L|)
    /// bound.
    pub unlock_bytes: u64,
    /// Successful `claim` calls.
    pub claim_calls: u64,
    /// Successful `refund` calls.
    pub refund_calls: u64,
    /// Successful protocol-bypassing direct asset transfers (coalition
    /// behavior, Lemma 3.4).
    pub direct_transfers: u64,
    /// Transactions rejected by contracts or chains.
    pub rejected_calls: u64,
    /// Bytes published on the broadcast bulletin.
    pub announce_bytes: u64,
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct RunReport {
    /// Outcome per vertex (Figure 3 classification).
    pub outcomes: Vec<Outcome>,
    /// Whether each arc triggered (its transfer irrevocably happened).
    pub arc_triggered: Vec<bool>,
    /// When each arc triggered (first instant its contract became fully
    /// unlocked, or the direct transfer executed).
    pub triggered_at: Vec<Option<SimTime>>,
    /// The instant the last arc triggered, if *all* arcs triggered.
    pub completion: Option<SimTime>,
    /// Whether every published contract reached a terminal state.
    pub settled: bool,
    /// Which parties were conforming (by configuration).
    pub conforming: Vec<bool>,
    /// Which parties abandoned after detecting an invalid contract.
    pub abandoned: Vec<VertexId>,
    /// The execution trace (regenerates the paper's timeline figures).
    pub trace: TraceLog,
    /// Counters.
    pub metrics: RunMetrics,
    /// Bytes stored across all blockchains (Theorem 4.10's quantity).
    pub storage: StorageReport,
}

impl RunReport {
    /// `true` iff every party ended with `Deal` — the all-conforming
    /// guarantee of Theorem 4.7.
    pub fn all_deal(&self) -> bool {
        self.outcomes.iter().all(|&o| o == Outcome::Deal)
    }

    /// `true` iff no *conforming* party ended `Underwater` — the safety
    /// guarantee of Theorem 4.9.
    pub fn no_conforming_underwater(&self) -> bool {
        self.outcomes
            .iter()
            .zip(&self.conforming)
            .all(|(&o, &conf)| !conf || o != Outcome::Underwater)
    }
}

/// Executes one swap instance under the paper's lockstep Δ-round timing.
///
/// This is the [`Engine`] specialized to [`Lockstep`]; use
/// [`Engine::new`] directly to run under a different
/// [`crate::timing::TimingModel`].
#[derive(Debug)]
pub struct SwapRunner {
    engine: Engine<Lockstep>,
}

impl SwapRunner {
    /// Builds a runner; parties take their keypairs and secrets from the
    /// setup and their behavior from the config.
    ///
    /// # Panics
    ///
    /// Panics if Δ is smaller than 2 ticks (transactions execute at
    /// mid-round, which needs Δ/2 ≥ 1) or if the spec starts less than Δ
    /// after the epoch.
    pub fn new(setup: SwapSetup, config: RunConfig) -> Self {
        let delta = setup.spec.delta;
        SwapRunner { engine: Engine::new(setup, config, Lockstep::new(delta)) }
    }

    /// Runs to settlement (or the round limit) and reports.
    pub fn run(self) -> RunReport {
        self.engine.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{SetupConfig, SwapSetup};
    use swap_digraph::generators;
    use swap_sim::SimRng;

    fn run_three_party(config: RunConfig) -> RunReport {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(7)).unwrap();
        SwapRunner::new(setup, config).run()
    }

    #[test]
    fn all_conforming_three_party_all_deal() {
        let report = run_three_party(RunConfig::default());
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        assert!(report.settled);
        assert!(report.no_conforming_underwater());
        assert_eq!(report.metrics.contracts_published, 3);
        assert_eq!(report.metrics.claim_calls, 3);
        assert_eq!(report.metrics.refund_calls, 0);
        assert!(report.arc_triggered.iter().all(|&t| t));
    }

    #[test]
    fn figure_1_and_2_timeline() {
        // Δ = 10, T₀ = 0, start = 10. Contracts at Δ·(1,2,3) mid-round;
        // triggers at 4Δ, 5Δ, 6Δ (here mid-round: 35, 45, 55 exec times
        // visible at 40, 50, 60).
        let report = run_three_party(RunConfig::default());
        let publishes: Vec<u64> =
            report.trace.entries_of_kind("contract.published").map(|e| e.time.ticks()).collect();
        assert_eq!(publishes, vec![5, 15, 25], "deploys in consecutive rounds");
        let triggers: Vec<u64> =
            report.trace.entries_of_kind("arc.triggered").map(|e| e.time.ticks()).collect();
        assert_eq!(triggers, vec![35, 45, 55], "triggers in consecutive rounds");
        // Completion within 2·diam·Δ of the start (Theorem 4.7):
        // 55 - 10 = 45 ≤ 60.
        let completion = report.completion.unwrap();
        let spec_start = 10;
        assert!(completion.ticks() - spec_start <= 60);
    }

    #[test]
    fn two_leader_triangle_conforming() {
        let d = generators::two_leader_triangle();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(8)).unwrap();
        let diam = setup.spec.diam;
        let start = setup.spec.start;
        let delta = setup.spec.delta;
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        let completion = report.completion.unwrap();
        assert!(completion <= start + delta.times(2 * diam));
    }

    #[test]
    fn halted_leader_everyone_refunded() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(9)).unwrap();
        let leader = setup.spec.leaders[0];
        let mut config = RunConfig::default();
        config.behaviors.insert(leader, Behavior::Halt { at_round: 0 });
        let report = SwapRunner::new(setup, config).run();
        // Leader never publishes; nothing propagates; nothing triggers.
        assert!(report.outcomes.iter().all(|&o| o == Outcome::NoDeal));
        assert!(report.no_conforming_underwater());
        assert_eq!(report.metrics.contracts_published, 0);
        assert!(report.completion.is_none());
    }

    #[test]
    fn withholding_leader_all_contracts_refund() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(10)).unwrap();
        let leader = setup.spec.leaders[0];
        let mut config = RunConfig::default();
        config.behaviors.insert(leader, Behavior::WithholdSecret);
        let report = SwapRunner::new(setup, config).run();
        assert!(report.outcomes.iter().all(|&o| o == Outcome::NoDeal));
        assert!(report.settled, "all contracts should be refunded");
        assert_eq!(report.metrics.refund_calls, 3);
        assert!(report.no_conforming_underwater());
    }

    #[test]
    fn mid_protocol_halt_no_conforming_underwater() {
        // Carol halts right when she should trigger: she alone is damaged
        // (the §1 discussion of who gets hurt).
        let d = generators::herlihy_three_party();
        let carol = d.vertex_by_name("carol").unwrap();
        for halt_round in 0..10 {
            let setup =
                SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(11))
                    .unwrap();
            let mut config = RunConfig::default();
            config.behaviors.insert(carol, Behavior::Halt { at_round: halt_round });
            let report = SwapRunner::new(setup, config).run();
            assert!(
                report.no_conforming_underwater(),
                "halt at round {halt_round}: {:?}",
                report.outcomes
            );
        }
    }

    #[test]
    fn corrupt_contract_detected_and_abandoned() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(12))
                .unwrap();
        // Corrupt the leader's (alice's) published contract on arc a0.
        let mut config = RunConfig::default();
        config.corrupt_arcs.insert(swap_digraph::ArcId::new(0));
        let report = SwapRunner::new(setup, config).run();
        // Bob sees the bad contract on his entering arc and abandons; the
        // swap dies with refunds; nobody conforming is underwater.
        let bob = d.vertex_by_name("bob").unwrap();
        assert!(report.abandoned.contains(&bob));
        assert!(report.no_conforming_underwater());
        assert!(!report.arc_triggered.iter().any(|&t| t));
    }

    #[test]
    fn premature_reveal_hurts_only_the_leaker() {
        // Irrational Alice reveals s at round 0. Bob and Carol can exploit
        // the leak, but Alice must not drag any conforming party underwater.
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(13))
                .unwrap();
        let leader = setup.spec.leaders[0];
        let mut config = RunConfig::default();
        config.behaviors.insert(leader, Behavior::PrematureReveal);
        let report = SwapRunner::new(setup, config).run();
        assert!(report.no_conforming_underwater(), "outcomes: {:?}", report.outcomes);
        for (i, &o) in report.outcomes.iter().enumerate() {
            if VertexId::new(i as u32) != leader {
                assert!(o.is_acceptable());
            }
        }
    }

    #[test]
    fn no_claim_still_counts_as_triggered() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(14))
                .unwrap();
        let bob = d.vertex_by_name("bob").unwrap();
        let mut config = RunConfig::default();
        config.behaviors.insert(bob, Behavior::NoClaim);
        let report = SwapRunner::new(setup, config).run();
        // Bob never claims his entering arc, but it is fully unlocked, so
        // everyone still ends in Deal.
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        assert!(!report.settled, "bob's entering arc is never terminal");
    }

    #[test]
    fn broadcast_optimization_still_all_deal() {
        let d = generators::two_leader_triangle();
        let mut setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(15)).unwrap();
        setup.spec.broadcast_arcs = true;
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        assert!(report.metrics.announce_bytes > 0, "leaders must announce");
    }

    #[test]
    fn never_publish_deviator_cannot_hurt_conforming() {
        let d = generators::two_leader_triangle();
        for victim in 0..3u32 {
            let setup =
                SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(16))
                    .unwrap();
            let mut config = RunConfig::default();
            config.behaviors.insert(VertexId::new(victim), Behavior::NeverPublish { arcs: None });
            let report = SwapRunner::new(setup, config).run();
            assert!(report.no_conforming_underwater(), "deviator {victim}: {:?}", report.outcomes);
        }
    }

    #[test]
    fn metrics_unlock_accounting() {
        let report = run_three_party(RunConfig::default());
        // |A| = 3 arcs, |L| = 1 leader → 3 unlocks.
        assert_eq!(report.metrics.unlock_calls, 3);
        assert!(report.metrics.unlock_bytes > 0);
        assert_eq!(report.metrics.rejected_calls, 0);
        assert_eq!(report.metrics.direct_transfers, 0, "nobody bypasses the protocol");
        assert!(report.storage.total_bytes() > 0);
        assert!(report.storage.contract_bytes > 0);
    }

    #[test]
    fn direct_coalition_counts_direct_transfers() {
        // An all-Direct coalition bypasses contracts entirely: every arc's
        // asset moves by direct transfer and the metric counts each one.
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(17))
                .unwrap();
        let mut config = RunConfig::default();
        for v in d.vertices() {
            config.behaviors.insert(v, Behavior::Direct { skip_arcs: vec![] });
        }
        let report = SwapRunner::new(setup, config).run();
        assert_eq!(report.metrics.direct_transfers, d.arc_count() as u64);
        assert_eq!(report.metrics.contracts_published, 0);
        assert!(report.arc_triggered.iter().all(|&t| t), "all assets moved");
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
    }
}
