//! The protocol runner: executes a swap on the simulated chains.
//!
//! # Timing model
//!
//! Rounds are Δ apart. Round 0 happens at `T₀ = spec.start − Δ`, the instant
//! the clearing service's output reaches the parties (§4.2 requires the
//! start `T` to be at least Δ later, and that slack is exactly what makes
//! the hashkey deadlines satisfiable — see `swap-contract`'s crate docs).
//! Within round `k`:
//!
//! 1. every party observes a **snapshot** of all chains as of the round
//!    boundary `T₀ + k·Δ`,
//! 2. parties emit actions, which execute as transactions at
//!    `T₀ + k·Δ + Δ/2`,
//! 3. those transactions become visible at the next boundary.
//!
//! One round therefore models the paper's Δ: enough time to publish a
//! change and for everyone to confirm it. With all parties conforming, the
//! worked example of Figures 1–2 reproduces tick-for-tick: contracts appear
//! at +Δ, +2Δ, +3Δ and trigger at +4Δ, +5Δ, +6Δ.

use std::collections::BTreeMap;

use swap_chain::{ChainId, ContractId, Owner, StorageReport};
use swap_contract::{SwapCall, SwapContract};
use swap_crypto::Secret;
use swap_digraph::{ArcId, VertexId};
use swap_sim::{SimTime, TraceLog};

use crate::outcome::Outcome;
use crate::party::{Action, Behavior, BulletinEntry, ContractSnapshot, Party, View};
use crate::setup::SwapSetup;

/// Per-run configuration: who deviates and for how long the runner waits.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Behavior per vertex; unlisted vertexes conform.
    pub behaviors: BTreeMap<VertexId, Behavior>,
    /// Maximum number of rounds (default: `2·diam + 6`, enough for the
    /// worst-case protocol plus the refund round).
    pub max_rounds: Option<u64>,
    /// Arcs whose published contract is *corrupted* (wrong hashlocks),
    /// modeling a malicious publisher; observers detect and abandon.
    pub corrupt_arcs: Vec<ArcId>,
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Rounds actually executed.
    pub rounds: u64,
    /// Contracts successfully published.
    pub contracts_published: u64,
    /// Successful `unlock` calls.
    pub unlock_calls: u64,
    /// Total wire bytes of successful `unlock` calls (secret + path +
    /// signature chain) — the communication quantity of the O(|A|·|L|)
    /// bound.
    pub unlock_bytes: u64,
    /// Successful `claim` calls.
    pub claim_calls: u64,
    /// Successful `refund` calls.
    pub refund_calls: u64,
    /// Transactions rejected by contracts or chains.
    pub rejected_calls: u64,
    /// Bytes published on the broadcast bulletin.
    pub announce_bytes: u64,
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct RunReport {
    /// Outcome per vertex (Figure 3 classification).
    pub outcomes: Vec<Outcome>,
    /// Whether each arc triggered (its transfer irrevocably happened).
    pub arc_triggered: Vec<bool>,
    /// When each arc triggered (first instant its contract became fully
    /// unlocked, or the direct transfer executed).
    pub triggered_at: Vec<Option<SimTime>>,
    /// The instant the last arc triggered, if *all* arcs triggered.
    pub completion: Option<SimTime>,
    /// Whether every published contract reached a terminal state.
    pub settled: bool,
    /// Which parties were conforming (by configuration).
    pub conforming: Vec<bool>,
    /// Which parties abandoned after detecting an invalid contract.
    pub abandoned: Vec<VertexId>,
    /// The execution trace (regenerates the paper's timeline figures).
    pub trace: TraceLog,
    /// Counters.
    pub metrics: RunMetrics,
    /// Bytes stored across all blockchains (Theorem 4.10's quantity).
    pub storage: StorageReport,
}

impl RunReport {
    /// `true` iff every party ended with `Deal` — the all-conforming
    /// guarantee of Theorem 4.7.
    pub fn all_deal(&self) -> bool {
        self.outcomes.iter().all(|&o| o == Outcome::Deal)
    }

    /// `true` iff no *conforming* party ended `Underwater` — the safety
    /// guarantee of Theorem 4.9.
    pub fn no_conforming_underwater(&self) -> bool {
        self.outcomes
            .iter()
            .zip(&self.conforming)
            .all(|(&o, &conf)| !conf || o != Outcome::Underwater)
    }
}

/// Executes one swap instance round by round.
#[derive(Debug)]
pub struct SwapRunner {
    setup: SwapSetup,
    config: RunConfig,
    parties: Vec<Party>,
    conforming: Vec<bool>,
    contract_of_arc: Vec<Option<ContractId>>,
    triggered_at: Vec<Option<SimTime>>,
    bulletin: Vec<(u64, BulletinEntry)>,
    trace: TraceLog,
    metrics: RunMetrics,
}

impl SwapRunner {
    /// Builds a runner; parties take their keypairs and secrets from the
    /// setup and their behavior from the config.
    ///
    /// # Panics
    ///
    /// Panics if Δ is smaller than 2 ticks (transactions execute at
    /// mid-round, which needs Δ/2 ≥ 1) or if the spec starts less than Δ
    /// after the epoch.
    pub fn new(setup: SwapSetup, config: RunConfig) -> Self {
        let spec = &setup.spec;
        assert!(spec.delta.ticks() >= 2, "delta must be at least 2 ticks");
        assert!(
            spec.start >= SimTime::ZERO + spec.delta.times(1),
            "spec must start at least one delta after the epoch"
        );
        let parties: Vec<Party> = spec
            .digraph
            .vertices()
            .map(|v| {
                let behavior = config.behaviors.get(&v).cloned().unwrap_or_default();
                Party::new(v, setup.keypairs[v.index()].clone(), setup.secrets[v.index()], behavior)
            })
            .collect();
        let conforming: Vec<bool> = spec
            .digraph
            .vertices()
            .map(|v| matches!(config.behaviors.get(&v), None | Some(Behavior::Conforming)))
            .collect();
        let arc_count = spec.digraph.arc_count();
        SwapRunner {
            setup,
            config,
            parties,
            conforming,
            contract_of_arc: vec![None; arc_count],
            triggered_at: vec![None; arc_count],
            bulletin: Vec::new(),
            trace: TraceLog::new(),
            metrics: RunMetrics::default(),
        }
    }

    /// Runs to settlement (or the round limit) and reports.
    pub fn run(mut self) -> RunReport {
        let delta = self.setup.spec.delta;
        let t0 = self.setup.spec.start - delta.times(1);
        let max_rounds = self.config.max_rounds.unwrap_or(2 * self.setup.spec.diam + 6);
        for round in 0..=max_rounds {
            self.metrics.rounds = round;
            let now = t0 + delta.times(round);
            let exec_time = now + delta.duration() / 2;
            let snapshots = self.snapshots();
            let bulletin: Vec<BulletinEntry> = self
                .bulletin
                .iter()
                .filter(|(announced, _)| *announced < round)
                .map(|(_, e)| e.clone())
                .collect();
            // Decide (against the snapshot), then apply.
            let mut batch: Vec<(VertexId, Action)> = Vec::new();
            for party in &mut self.parties {
                let view = View {
                    spec: &self.setup.spec,
                    round,
                    now,
                    contracts: &snapshots,
                    bulletin: &bulletin,
                };
                let vertex = party.vertex();
                for action in party.step(&view) {
                    batch.push((vertex, action));
                }
            }
            for (vertex, action) in batch {
                self.apply(vertex, action, round, exec_time);
            }
            self.record_triggers(exec_time);
            if self.all_settled() {
                break;
            }
        }
        self.finish()
    }

    /// Builds per-arc contract snapshots for the current round boundary.
    fn snapshots(&self) -> Vec<Option<ContractSnapshot>> {
        let spec = &self.setup.spec;
        let leaders = spec.leaders.len();
        spec.digraph
            .arcs()
            .map(|arc| {
                let id = self.contract_of_arc[arc.id.index()]?;
                let chain = self
                    .setup
                    .chains
                    .get(self.setup.chain_of_arc[arc.id.index()])
                    .expect("chain exists");
                let contract = chain.contract(id)?;
                let valid = contract.spec() == spec
                    && contract.arc() == arc.id
                    && contract.asset() == self.setup.asset_of_arc[arc.id.index()];
                Some(ContractSnapshot {
                    unlock_records: (0..leaders)
                        .map(|i| contract.unlock_record(i).cloned())
                        .collect(),
                    fully_unlocked: contract.fully_unlocked(),
                    claimed: contract.is_claimed(),
                    refunded: contract.is_refunded(),
                    valid,
                })
            })
            .collect()
    }

    fn chain_of(&mut self, arc: ArcId) -> (ChainId, &mut swap_chain::Blockchain<SwapContract>) {
        let chain_id = self.setup.chain_of_arc[arc.index()];
        (chain_id, self.setup.chains.get_mut(chain_id).expect("chain exists"))
    }

    fn apply(&mut self, actor: VertexId, action: Action, round: u64, exec_time: SimTime) {
        let actor_addr = self.setup.spec.address_of(actor);
        let actor_name = self.setup.spec.digraph.name(actor).to_string();
        match action {
            Action::Publish { arc } => {
                if self.contract_of_arc[arc.index()].is_some() {
                    self.metrics.rejected_calls += 1;
                    return;
                }
                let asset = self.setup.asset_of_arc[arc.index()];
                // The contract stores its own spec copy (that *is* the
                // O(|A|) per-contract storage of Theorem 4.10).
                let mut contract_spec = self.setup.spec.clone();
                if self.config.corrupt_arcs.contains(&arc) {
                    // A malicious publisher substitutes hashlocks nobody can
                    // open; observers must detect the mismatch and abandon.
                    for h in contract_spec.hashlocks.iter_mut() {
                        *h = Secret::from_bytes([0xBA; 32]).hashlock();
                    }
                }
                let contract = SwapContract::new(contract_spec, arc, asset);
                let (_, chain) = self.chain_of(arc);
                match chain.publish_contract(contract, actor_addr, exec_time) {
                    Ok(id) => {
                        self.contract_of_arc[arc.index()] = Some(id);
                        self.metrics.contracts_published += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "contract.published",
                            format!("arc {arc} round {round}"),
                        );
                    }
                    Err(e) => {
                        self.metrics.rejected_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "tx.rejected",
                            format!("publish {arc}: {e}"),
                        );
                    }
                }
            }
            Action::Unlock { arc, index, secret, path, sig } => {
                let Some(id) = self.contract_of_arc[arc.index()] else {
                    self.metrics.rejected_calls += 1;
                    return;
                };
                let wire = 32 + path.to_bytes().len() + sig.byte_len();
                let path_len = path.len();
                let (_, chain) = self.chain_of(arc);
                match chain.call_contract(
                    id,
                    actor_addr,
                    SwapCall::Unlock { index, secret, path, sig },
                    exec_time,
                    wire,
                ) {
                    Ok(_) => {
                        self.metrics.unlock_calls += 1;
                        self.metrics.unlock_bytes += wire as u64;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "hashlock.unlocked",
                            format!("arc {arc} index {index} path_len {path_len}"),
                        );
                    }
                    Err(e) => {
                        self.metrics.rejected_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "tx.rejected",
                            format!("unlock {arc}[{index}]: {e}"),
                        );
                    }
                }
            }
            Action::Claim { arc } => {
                let Some(id) = self.contract_of_arc[arc.index()] else {
                    self.metrics.rejected_calls += 1;
                    return;
                };
                let (_, chain) = self.chain_of(arc);
                match chain.call_contract(id, actor_addr, SwapCall::Claim, exec_time, 40) {
                    Ok(_) => {
                        self.metrics.claim_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "arc.claimed",
                            format!("arc {arc}"),
                        );
                    }
                    Err(e) => {
                        self.metrics.rejected_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "tx.rejected",
                            format!("claim {arc}: {e}"),
                        );
                    }
                }
            }
            Action::Refund { arc } => {
                let Some(id) = self.contract_of_arc[arc.index()] else {
                    self.metrics.rejected_calls += 1;
                    return;
                };
                let (_, chain) = self.chain_of(arc);
                match chain.call_contract(id, actor_addr, SwapCall::Refund, exec_time, 40) {
                    Ok(_) => {
                        self.metrics.refund_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "arc.refunded",
                            format!("arc {arc}"),
                        );
                    }
                    Err(e) => {
                        self.metrics.rejected_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "tx.rejected",
                            format!("refund {arc}: {e}"),
                        );
                    }
                }
            }
            Action::DirectTransfer { arc } => {
                let asset = self.setup.asset_of_arc[arc.index()];
                let tail_addr = self.setup.spec.address_of(self.setup.spec.digraph.tail(arc));
                let (_, chain) = self.chain_of(arc);
                match chain.transfer_asset(asset, actor_addr, tail_addr, exec_time) {
                    Ok(()) => {
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "asset.direct_transfer",
                            format!("arc {arc}"),
                        );
                        if self.triggered_at[arc.index()].is_none() {
                            self.triggered_at[arc.index()] = Some(exec_time);
                        }
                    }
                    Err(e) => {
                        self.metrics.rejected_calls += 1;
                        self.trace.record(
                            exec_time,
                            actor_name,
                            "tx.rejected",
                            format!("direct {arc}: {e}"),
                        );
                    }
                }
            }
            Action::Announce { leader_index, secret, base_sig } => {
                self.metrics.announce_bytes += 32 + base_sig.byte_len() as u64;
                self.bulletin.push((round, BulletinEntry { leader_index, secret, base_sig }));
                self.trace.record(
                    exec_time,
                    actor_name,
                    "secret.announced",
                    format!("leader index {leader_index}"),
                );
            }
        }
    }

    /// Records the first instant each arc became fully unlocked.
    fn record_triggers(&mut self, exec_time: SimTime) {
        for arc in 0..self.triggered_at.len() {
            if self.triggered_at[arc].is_some() {
                continue;
            }
            let Some(id) = self.contract_of_arc[arc] else { continue };
            let chain = self.setup.chains.get(self.setup.chain_of_arc[arc]).expect("chain exists");
            if let Some(contract) = chain.contract(id) {
                if contract.fully_unlocked() || contract.is_claimed() {
                    self.triggered_at[arc] = Some(exec_time);
                    self.trace.record(exec_time, "sim", "arc.triggered", format!("arc a{arc}"));
                }
            }
        }
    }

    /// Whether every arc's fate is sealed (contract terminal, or triggered).
    fn all_settled(&self) -> bool {
        self.setup.spec.digraph.arcs().all(|arc| match self.contract_of_arc[arc.id.index()] {
            None => false,
            Some(id) => {
                let chain = self
                    .setup
                    .chains
                    .get(self.setup.chain_of_arc[arc.id.index()])
                    .expect("chain exists");
                chain.contract(id).is_some_and(|c| c.is_claimed() || c.is_refunded())
            }
        })
    }

    fn finish(self) -> RunReport {
        let spec = &self.setup.spec;
        let n = spec.digraph.vertex_count();
        // An arc triggered iff its transfer irrevocably happened: the asset
        // reached the counterparty, or the contract is fully unlocked (only
        // the counterparty can ever take the asset).
        let arc_triggered: Vec<bool> = spec
            .digraph
            .arcs()
            .map(|arc| {
                let chain = self
                    .setup
                    .chains
                    .get(self.setup.chain_of_arc[arc.id.index()])
                    .expect("chain exists");
                let asset = self.setup.asset_of_arc[arc.id.index()];
                let tail_addr = spec.address_of(arc.tail);
                if chain.assets().owner(asset) == Some(Owner::Party(tail_addr)) {
                    return true;
                }
                self.contract_of_arc[arc.id.index()]
                    .and_then(|id| chain.contract(id))
                    .is_some_and(|c| c.fully_unlocked() || c.is_claimed())
            })
            .collect();
        let outcomes: Vec<Outcome> = (0..n)
            .map(|i| {
                let v = VertexId::new(i as u32);
                let entering = {
                    let total = spec.digraph.in_degree(v);
                    let triggered =
                        spec.digraph.in_arcs(v).filter(|a| arc_triggered[a.id.index()]).count();
                    (triggered, total)
                };
                let leaving = {
                    let total = spec.digraph.out_degree(v);
                    let triggered =
                        spec.digraph.out_arcs(v).filter(|a| arc_triggered[a.id.index()]).count();
                    (triggered, total)
                };
                Outcome::classify(entering, leaving)
            })
            .collect();
        let completion = if arc_triggered.iter().all(|&t| t) {
            self.triggered_at.iter().filter_map(|&t| t).max()
        } else {
            None
        };
        let settled = self.all_settled();
        let abandoned = self.parties.iter().filter(|p| p.abandoned()).map(|p| p.vertex()).collect();
        RunReport {
            outcomes,
            arc_triggered,
            triggered_at: self.triggered_at,
            completion,
            settled,
            conforming: self.conforming,
            abandoned,
            trace: self.trace,
            metrics: self.metrics,
            storage: self.setup.chains.storage_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{SetupConfig, SwapSetup};
    use swap_digraph::generators;
    use swap_sim::SimRng;

    fn run_three_party(config: RunConfig) -> RunReport {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(7)).unwrap();
        SwapRunner::new(setup, config).run()
    }

    #[test]
    fn all_conforming_three_party_all_deal() {
        let report = run_three_party(RunConfig::default());
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        assert!(report.settled);
        assert!(report.no_conforming_underwater());
        assert_eq!(report.metrics.contracts_published, 3);
        assert_eq!(report.metrics.claim_calls, 3);
        assert_eq!(report.metrics.refund_calls, 0);
        assert!(report.arc_triggered.iter().all(|&t| t));
    }

    #[test]
    fn figure_1_and_2_timeline() {
        // Δ = 10, T₀ = 0, start = 10. Contracts at Δ·(1,2,3) mid-round;
        // triggers at 4Δ, 5Δ, 6Δ (here mid-round: 35, 45, 55 exec times
        // visible at 40, 50, 60).
        let report = run_three_party(RunConfig::default());
        let publishes: Vec<u64> =
            report.trace.entries_of_kind("contract.published").map(|e| e.time.ticks()).collect();
        assert_eq!(publishes, vec![5, 15, 25], "deploys in consecutive rounds");
        let triggers: Vec<u64> =
            report.trace.entries_of_kind("arc.triggered").map(|e| e.time.ticks()).collect();
        assert_eq!(triggers, vec![35, 45, 55], "triggers in consecutive rounds");
        // Completion within 2·diam·Δ of the start (Theorem 4.7):
        // 55 - 10 = 45 ≤ 60.
        let completion = report.completion.unwrap();
        let spec_start = 10;
        assert!(completion.ticks() - spec_start <= 60);
    }

    #[test]
    fn two_leader_triangle_conforming() {
        let d = generators::two_leader_triangle();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(8)).unwrap();
        let diam = setup.spec.diam;
        let start = setup.spec.start;
        let delta = setup.spec.delta;
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        let completion = report.completion.unwrap();
        assert!(completion <= start + delta.times(2 * diam));
    }

    #[test]
    fn halted_leader_everyone_refunded() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(9)).unwrap();
        let leader = setup.spec.leaders[0];
        let mut config = RunConfig::default();
        config.behaviors.insert(leader, Behavior::Halt { at_round: 0 });
        let report = SwapRunner::new(setup, config).run();
        // Leader never publishes; nothing propagates; nothing triggers.
        assert!(report.outcomes.iter().all(|&o| o == Outcome::NoDeal));
        assert!(report.no_conforming_underwater());
        assert_eq!(report.metrics.contracts_published, 0);
        assert!(report.completion.is_none());
    }

    #[test]
    fn withholding_leader_all_contracts_refund() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(10)).unwrap();
        let leader = setup.spec.leaders[0];
        let mut config = RunConfig::default();
        config.behaviors.insert(leader, Behavior::WithholdSecret);
        let report = SwapRunner::new(setup, config).run();
        assert!(report.outcomes.iter().all(|&o| o == Outcome::NoDeal));
        assert!(report.settled, "all contracts should be refunded");
        assert_eq!(report.metrics.refund_calls, 3);
        assert!(report.no_conforming_underwater());
    }

    #[test]
    fn mid_protocol_halt_no_conforming_underwater() {
        // Carol halts right when she should trigger: she alone is damaged
        // (the §1 discussion of who gets hurt).
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(11))
                .unwrap();
        let carol = d.vertex_by_name("carol").unwrap();
        for halt_round in 0..10 {
            let setup =
                SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(11))
                    .unwrap();
            let mut config = RunConfig::default();
            config.behaviors.insert(carol, Behavior::Halt { at_round: halt_round });
            let report = SwapRunner::new(setup, config).run();
            assert!(
                report.no_conforming_underwater(),
                "halt at round {halt_round}: {:?}",
                report.outcomes
            );
        }
        drop(setup);
    }

    #[test]
    fn corrupt_contract_detected_and_abandoned() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(12))
                .unwrap();
        // Corrupt the leader's (alice's) published contract on arc a0.
        let mut config = RunConfig::default();
        config.corrupt_arcs.push(swap_digraph::ArcId::new(0));
        let report = SwapRunner::new(setup, config).run();
        // Bob sees the bad contract on his entering arc and abandons; the
        // swap dies with refunds; nobody conforming is underwater.
        let bob = d.vertex_by_name("bob").unwrap();
        assert!(report.abandoned.contains(&bob));
        assert!(report.no_conforming_underwater());
        assert!(!report.arc_triggered.iter().any(|&t| t));
    }

    #[test]
    fn premature_reveal_hurts_only_the_leaker() {
        // Irrational Alice reveals s at round 0. Bob and Carol can exploit
        // the leak, but Alice must not drag any conforming party underwater.
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(13))
                .unwrap();
        let leader = setup.spec.leaders[0];
        let mut config = RunConfig::default();
        config.behaviors.insert(leader, Behavior::PrematureReveal);
        let report = SwapRunner::new(setup, config).run();
        assert!(report.no_conforming_underwater(), "outcomes: {:?}", report.outcomes);
        for (i, &o) in report.outcomes.iter().enumerate() {
            if VertexId::new(i as u32) != leader {
                assert!(o.is_acceptable());
            }
        }
    }

    #[test]
    fn no_claim_still_counts_as_triggered() {
        let d = generators::herlihy_three_party();
        let setup =
            SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(14))
                .unwrap();
        let bob = d.vertex_by_name("bob").unwrap();
        let mut config = RunConfig::default();
        config.behaviors.insert(bob, Behavior::NoClaim);
        let report = SwapRunner::new(setup, config).run();
        // Bob never claims his entering arc, but it is fully unlocked, so
        // everyone still ends in Deal.
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        assert!(!report.settled, "bob's entering arc is never terminal");
    }

    #[test]
    fn broadcast_optimization_still_all_deal() {
        let d = generators::two_leader_triangle();
        let mut setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(15)).unwrap();
        setup.spec.broadcast_arcs = true;
        let report = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        assert!(report.metrics.announce_bytes > 0, "leaders must announce");
    }

    #[test]
    fn never_publish_deviator_cannot_hurt_conforming() {
        let d = generators::two_leader_triangle();
        for victim in 0..3u32 {
            let setup =
                SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut SimRng::from_seed(16))
                    .unwrap();
            let mut config = RunConfig::default();
            config.behaviors.insert(VertexId::new(victim), Behavior::NeverPublish { arcs: None });
            let report = SwapRunner::new(setup, config).run();
            assert!(report.no_conforming_underwater(), "deviator {victim}: {:?}", report.outcomes);
        }
    }

    #[test]
    fn metrics_unlock_accounting() {
        let report = run_three_party(RunConfig::default());
        // |A| = 3 arcs, |L| = 1 leader → 3 unlocks.
        assert_eq!(report.metrics.unlock_calls, 3);
        assert!(report.metrics.unlock_bytes > 0);
        assert_eq!(report.metrics.rejected_calls, 0);
        assert!(report.storage.total_bytes() > 0);
        assert!(report.storage.contract_bytes > 0);
    }
}
