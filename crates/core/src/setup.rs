//! End-to-end swap setup: keys, secrets, spec, chains, and assets.
//!
//! [`SwapSetup`] packages everything a protocol run needs: a validated
//! [`SwapSpec`], each party's signing keypair, each leader's secret, one
//! blockchain per arc, and one escrowable asset per arc minted to the arc's
//! party. Both the general runner and the experiment harness start here.

use std::fmt;

use swap_chain::{AssetDescriptor, AssetId, ChainId, ChainSet};
use swap_contract::{AnyContract, SwapSpec};
use swap_crypto::{MssKeypair, Secret};
use swap_digraph::{Digraph, VertexId};
use swap_market::{BuildError, LeaderStrategy, SpecBuilder};
use swap_sim::{Delta, SimRng, SimTime};

/// Default MSS key-tree height for generated parties: `2^6 = 64` one-time
/// signatures, enough for any leader count the experiments use.
pub const DEFAULT_KEY_HEIGHT: u32 = 6;

/// Errors from [`SwapSetup::generate`].
#[derive(Debug, Clone, PartialEq)]
pub enum SetupError {
    /// Spec assembly failed.
    Build(BuildError),
    /// The start time must be at least Δ after `now` for Phase One to fit.
    StartTooSoon,
}

impl fmt::Display for SetupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupError::Build(e) => write!(f, "{e}"),
            SetupError::StartTooSoon => write!(f, "start must be at least Δ in the future"),
        }
    }
}

impl std::error::Error for SetupError {}

impl From<BuildError> for SetupError {
    fn from(e: BuildError) -> Self {
        SetupError::Build(e)
    }
}

/// A fully provisioned swap instance, ready to run. `Clone` exists so
/// harnesses can provision once (key generation dominates) and replay the
/// same instance under many configurations.
#[derive(Debug, Clone)]
pub struct SwapSetup {
    /// The validated specification.
    pub spec: SwapSpec,
    /// Signing keypair per vertex (index = vertex index).
    pub keypairs: Vec<MssKeypair>,
    /// Secret per vertex (every party generates one, §4.2; only leaders'
    /// matter to the spec).
    pub secrets: Vec<Secret>,
    /// One blockchain per arc (index = arc index). Chains host
    /// [`AnyContract`], so the same setup runs under either protocol of the
    /// [`crate::protocol::SwapProtocol`] axis.
    pub chains: ChainSet<AnyContract>,
    /// The chain hosting each arc's contract (index = arc index).
    pub chain_of_arc: Vec<ChainId>,
    /// The escrowable asset for each arc (index = arc index), minted on the
    /// arc's chain to the arc head's address.
    pub asset_of_arc: Vec<AssetId>,
}

/// Configuration for [`SwapSetup::generate`].
#[derive(Debug, Clone)]
pub struct SetupConfig {
    /// The synchrony parameter Δ.
    pub delta: Delta,
    /// "Now": when the clearing service publishes. The protocol start is
    /// `now + delta` (the minimum §4.2 allows).
    pub now: SimTime,
    /// Leader election strategy.
    pub leader_strategy: LeaderStrategy,
    /// Explicit leaders (overrides `leader_strategy` when set).
    pub leaders: Option<Vec<VertexId>>,
    /// MSS key height per party.
    pub key_height: u32,
}

impl Default for SetupConfig {
    fn default() -> Self {
        SetupConfig {
            delta: Delta::from_ticks(10),
            now: SimTime::ZERO,
            leader_strategy: LeaderStrategy::MinimumExact,
            leaders: None,
            key_height: DEFAULT_KEY_HEIGHT,
        }
    }
}

impl SwapSetup {
    /// Provisions a swap over `digraph` with deterministic key material
    /// drawn from `rng`.
    ///
    /// # Errors
    ///
    /// Propagates spec-assembly failures (e.g. non-strongly-connected
    /// digraphs, leader sets that are not feedback vertex sets).
    pub fn generate(
        digraph: Digraph,
        config: &SetupConfig,
        rng: &mut SimRng,
    ) -> Result<SwapSetup, SetupError> {
        let n = digraph.vertex_count();
        let mut key_rng = rng.stream("setup/keys");
        let mut secret_rng = rng.stream("setup/secrets");
        let keypairs: Vec<MssKeypair> = (0..n)
            .map(|_| MssKeypair::from_seed_with_height(key_rng.bytes32(), config.key_height))
            .collect();
        let secrets: Vec<Secret> = (0..n).map(|_| Secret::random(&mut secret_rng)).collect();

        let mut builder = SpecBuilder::new(digraph.clone());
        builder
            .delta(config.delta)
            .start(config.now + config.delta.times(1))
            .leader_strategy(config.leader_strategy);
        if let Some(ls) = &config.leaders {
            builder.leaders(ls.clone());
        }
        for v in digraph.vertices() {
            builder.identity(v, keypairs[v.index()].public_key(), secrets[v.index()].hashlock());
        }
        let spec = builder.build()?;

        // One chain and one asset per arc; the asset starts with the party
        // (the arc's head).
        let mut chains: ChainSet<AnyContract> = ChainSet::new();
        let mut chain_of_arc = Vec::with_capacity(digraph.arc_count());
        let mut asset_of_arc = Vec::with_capacity(digraph.arc_count());
        for arc in digraph.arcs() {
            let chain_id = chains.create_chain(
                format!("chain-{}-{}", digraph.name(arc.head), digraph.name(arc.tail)),
                config.now,
            );
            let chain = chains.get_mut(chain_id).expect("just created");
            let descriptor =
                AssetDescriptor::unique(format!("asset-of-{}", digraph.name(arc.head)));
            let owner = spec.address_of(arc.head);
            let asset = chain.mint_asset(descriptor, owner, config.now);
            chain_of_arc.push(chain_id);
            asset_of_arc.push(asset);
        }
        Ok(SwapSetup { spec, keypairs, secrets, chains, chain_of_arc, asset_of_arc })
    }

    /// The leader secrets in leader order (parallel to `spec.leaders`).
    pub fn leader_secrets(&self) -> Vec<Secret> {
        self.spec.leaders.iter().map(|l| self.secrets[l.index()]).collect()
    }

    /// Provisions chains and assets for an **explicit, possibly invalid**
    /// spec. No validation happens: this exists so the impossibility
    /// experiments (Lemma 3.4's free-riding coalition on a digraph that is
    /// not strongly connected; Theorem 4.12's non-feedback leader set) can
    /// run the protocol on specs a conforming market would reject.
    ///
    /// `keypairs` and `secrets` must be indexed by vertex and match the
    /// spec's key and hashlock tables for the run to make sense.
    pub fn from_parts(
        spec: SwapSpec,
        keypairs: Vec<MssKeypair>,
        secrets: Vec<Secret>,
        now: SimTime,
    ) -> SwapSetup {
        let digraph = spec.digraph.clone();
        let mut chains: ChainSet<AnyContract> = ChainSet::new();
        let mut chain_of_arc = Vec::with_capacity(digraph.arc_count());
        let mut asset_of_arc = Vec::with_capacity(digraph.arc_count());
        for arc in digraph.arcs() {
            let chain_id = chains.create_chain(
                format!("chain-{}-{}", digraph.name(arc.head), digraph.name(arc.tail)),
                now,
            );
            let chain = chains.get_mut(chain_id).expect("just created");
            let descriptor =
                AssetDescriptor::unique(format!("asset-of-{}", digraph.name(arc.head)));
            let owner = spec.address_of(arc.head);
            let asset = chain.mint_asset(descriptor, owner, now);
            chain_of_arc.push(chain_id);
            asset_of_arc.push(asset);
        }
        SwapSetup { spec, keypairs, secrets, chains, chain_of_arc, asset_of_arc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_chain::Owner;
    use swap_digraph::generators;

    fn rng() -> SimRng {
        SimRng::from_seed(42)
    }

    #[test]
    fn generate_three_party() {
        let d = generators::herlihy_three_party();
        let setup = SwapSetup::generate(d, &SetupConfig::default(), &mut rng()).unwrap();
        assert_eq!(setup.keypairs.len(), 3);
        assert_eq!(setup.secrets.len(), 3);
        assert_eq!(setup.chains.len(), 3);
        assert_eq!(setup.spec.leaders.len(), 1);
        setup.spec.validate().unwrap();
        // Keys in the spec match the generated keypairs.
        for (i, kp) in setup.keypairs.iter().enumerate() {
            assert_eq!(setup.spec.keys[i], kp.public_key());
        }
        // Leader hashlock matches the leader's secret.
        let leader = setup.spec.leaders[0];
        assert!(setup.spec.hashlocks[0].matches(&setup.secrets[leader.index()]));
        assert_eq!(setup.leader_secrets().len(), 1);
    }

    #[test]
    fn assets_minted_to_arc_heads() {
        let d = generators::herlihy_three_party();
        let setup = SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut rng()).unwrap();
        for arc in d.arcs() {
            let chain = setup.chains.get(setup.chain_of_arc[arc.id.index()]).unwrap();
            let asset = setup.asset_of_arc[arc.id.index()];
            assert_eq!(
                chain.assets().owner(asset),
                Some(Owner::Party(setup.spec.address_of(arc.head))),
                "asset for arc {}",
                arc.id
            );
        }
    }

    #[test]
    fn start_is_delta_after_now() {
        let d = generators::herlihy_three_party();
        let config = SetupConfig { now: SimTime::from_ticks(100), ..SetupConfig::default() };
        let setup = SwapSetup::generate(d, &config, &mut rng()).unwrap();
        assert_eq!(setup.spec.start, SimTime::from_ticks(110));
    }

    #[test]
    fn deterministic_per_seed() {
        let d = generators::herlihy_three_party();
        let a = SwapSetup::generate(d.clone(), &SetupConfig::default(), &mut rng()).unwrap();
        let b = SwapSetup::generate(d, &SetupConfig::default(), &mut rng()).unwrap();
        assert_eq!(a.spec, b.spec);
    }

    #[test]
    fn explicit_leaders_respected() {
        let d = generators::herlihy_three_party();
        let bob = d.vertex_by_name("bob").unwrap();
        let config = SetupConfig { leaders: Some(vec![bob]), ..SetupConfig::default() };
        let setup = SwapSetup::generate(d, &config, &mut rng()).unwrap();
        assert_eq!(setup.spec.leaders, vec![bob]);
    }

    #[test]
    fn non_strongly_connected_rejected() {
        let d = generators::one_way_pair();
        let err = SwapSetup::generate(d, &SetupConfig::default(), &mut rng()).unwrap_err();
        assert!(matches!(err, SetupError::Build(_)));
    }

    #[test]
    fn two_leader_setup() {
        let d = generators::two_leader_triangle();
        let setup = SwapSetup::generate(d, &SetupConfig::default(), &mut rng()).unwrap();
        assert_eq!(setup.spec.leaders.len(), 2);
        assert_eq!(setup.chains.len(), 6);
        // Both leader hashlocks match their secrets.
        for (i, &l) in setup.spec.leaders.iter().enumerate() {
            assert!(setup.spec.hashlocks[i].matches(&setup.secrets[l.index()]));
        }
    }
}
