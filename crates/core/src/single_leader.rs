//! The §4.6 single-leader timeout analysis: Lemma 4.13 timeout assignment
//! and the Figure 6 feasibility check.
//!
//! When the swap digraph needs only one leader `v̂`, the subdigraph of
//! followers is acyclic and each arc `(u, v)` can carry the classic HTLC
//! timeout
//!
//! ```text
//! t(u, v) = T₀ + (diam(D) + D(v, v̂) + 1) · Δ
//! ```
//!
//! where `D(v, v̂)` is the longest path from `v` to the leader
//! (Lemma 4.13). For the §1 three-way swap this yields the 6Δ/5Δ/4Δ
//! timelocks of Figure 1. With more than one leader no such assignment
//! exists — the follower subdigraph has a cycle and the required ≥Δ gap
//! cannot hold around it (Figure 6, right) — which
//! [`timeout_assignment_feasible`] checks directly from the constraint
//! system.
//!
//! The protocol that *runs* on these timeouts is
//! [`crate::protocol::HtlcProtocol`], an implementation of the
//! [`crate::protocol::SwapProtocol`] axis executed by the shared
//! event-driven [`crate::engine::Engine`] — there is no separate
//! single-leader runner.

use std::collections::BTreeSet;
use std::fmt;

use swap_digraph::{algo, Digraph, FeedbackVertexSet, VertexId};
use swap_sim::{Delta, SimTime};

/// Why per-arc timeouts cannot be assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeoutError {
    /// The claimed leader is not a feedback vertex on its own: followers
    /// still contain a cycle (the Figure 6 obstruction).
    FollowerCycle {
        /// A cycle among followers.
        witness: Vec<VertexId>,
    },
    /// The digraph is not strongly connected.
    NotStronglyConnected,
    /// A follower cannot reach the leader (cannot happen when strongly
    /// connected; reported defensively).
    LeaderUnreachable(VertexId),
    /// The spec does not have exactly one leader, so the §4.6 protocol
    /// does not apply at all.
    NotSingleLeader {
        /// How many leaders the spec elected.
        leaders: usize,
    },
}

impl fmt::Display for TimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutError::FollowerCycle { witness } => {
                write!(f, "follower subdigraph has a cycle: {witness:?}")
            }
            TimeoutError::NotStronglyConnected => write!(f, "digraph not strongly connected"),
            TimeoutError::LeaderUnreachable(v) => write!(f, "{v} cannot reach the leader"),
            TimeoutError::NotSingleLeader { leaders } => {
                write!(f, "spec has {leaders} leaders; the §4.6 protocol needs exactly one")
            }
        }
    }
}

impl std::error::Error for TimeoutError {}

/// Computes the Lemma 4.13 timeout for every arc: index `i` of the result
/// corresponds to `ArcId(i)`. `t0` is the instant the protocol begins
/// (contract propagation starts), i.e. one Δ before the hashkey protocol's
/// `start`.
///
/// # Errors
///
/// Fails when `leader` is not a sole feedback vertex or the digraph is not
/// strongly connected.
pub fn assign_timeouts(
    digraph: &Digraph,
    leader: VertexId,
    t0: SimTime,
    delta: Delta,
) -> Result<Vec<SimTime>, TimeoutError> {
    if !digraph.is_strongly_connected() {
        return Err(TimeoutError::NotStronglyConnected);
    }
    let removed: BTreeSet<VertexId> = [leader].into_iter().collect();
    let followers = digraph.delete_vertices(&removed);
    if let Some(witness) = swap_digraph::fvs::find_cycle(&followers) {
        return Err(TimeoutError::FollowerCycle { witness });
    }
    let diam = digraph.diameter() as u64;
    digraph
        .arcs()
        .map(|arc| {
            let dist = algo::longest_path_to(digraph, arc.tail, leader)
                .ok_or(TimeoutError::LeaderUnreachable(arc.tail))? as u64;
            Ok(t0 + delta.times(diam + dist + 1))
        })
        .collect()
}

/// Decides whether *any* per-arc timeout assignment satisfies the protocol
/// constraint: for every follower `v`, every arc entering `v` times out at
/// least Δ later than every arc leaving `v`.
///
/// The constraints `t(enter) ≥ t(leave) + Δ` form a difference system whose
/// feasibility is equivalent to the constraint graph (arcs as nodes) being
/// acyclic. This is the formal content of Figure 6: feasible for the
/// single-leader triangle, infeasible as soon as two leaders are needed.
pub fn timeout_assignment_feasible(digraph: &Digraph, leaders: &BTreeSet<VertexId>) -> bool {
    // Constraint edges: leave-arc → enter-arc through each follower.
    let m = digraph.arc_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for v in digraph.vertices() {
        if leaders.contains(&v) {
            continue;
        }
        for leaving in digraph.out_arcs(v) {
            for entering in digraph.in_arcs(v) {
                adj[leaving.id.index()].push(entering.id.index());
            }
        }
    }
    // Feasible iff no cycle (every cycle would demand t ≥ t + k·Δ).
    let mut color = vec![0u8; m];
    for start in 0..m {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let w = adj[node][*next];
                *next += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        stack.push((w, 0));
                    }
                    1 => return false,
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    true
}

/// Convenience: picks a minimum feedback vertex set and reports whether it
/// is a singleton (i.e. whether the single-leader protocol applies at all).
pub fn single_leader_of(digraph: &Digraph) -> Option<VertexId> {
    let fvs = FeedbackVertexSet::minimum(digraph)?;
    let vs = fvs.vertices();
    if vs.len() == 1 {
        vs.iter().next().copied()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_digraph::generators;

    #[test]
    fn figure_1_timeout_values() {
        // Leader alice, Δ = 10, t0 = 0: the 6Δ/5Δ/4Δ of Figure 1.
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let timeouts = assign_timeouts(&d, alice, SimTime::ZERO, Delta::from_ticks(10)).unwrap();
        let by_arc: Vec<u64> = timeouts.iter().map(|t| t.ticks()).collect();
        // Arcs in insertion order: a→b, b→c, c→a.
        assert_eq!(by_arc, vec![60, 50, 40]);
    }

    #[test]
    fn follower_gap_property() {
        // Lemma 4.13: entering timeouts exceed leaving timeouts by ≥ Δ for
        // every follower, across several single-leader families.
        for d in [generators::cycle(5), generators::star(4), generators::flower(3, 3)] {
            let leader = single_leader_of(&d).expect("single-leader family");
            let delta = Delta::from_ticks(10);
            let timeouts = assign_timeouts(&d, leader, SimTime::ZERO, delta).unwrap();
            for v in d.vertices() {
                if v == leader {
                    continue;
                }
                for entering in d.in_arcs(v) {
                    for leaving in d.out_arcs(v) {
                        let te = timeouts[entering.id.index()];
                        let tl = timeouts[leaving.id.index()];
                        assert!(
                            te >= tl + delta.times(1),
                            "follower {v}: entering {te} vs leaving {tl}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_leader_digraph_rejected() {
        let d = generators::two_leader_triangle();
        let err = assign_timeouts(&d, VertexId::new(0), SimTime::ZERO, Delta::from_ticks(10))
            .unwrap_err();
        assert!(matches!(err, TimeoutError::FollowerCycle { .. }));
    }

    #[test]
    fn not_strongly_connected_rejected() {
        let d = generators::one_way_pair();
        let err = assign_timeouts(&d, VertexId::new(0), SimTime::ZERO, Delta::from_ticks(10))
            .unwrap_err();
        assert_eq!(err, TimeoutError::NotStronglyConnected);
    }

    #[test]
    fn feasibility_matches_figure_6() {
        // Single-leader triangle: feasible. Two-leader triangle with only
        // one claimed leader: infeasible.
        let tri = generators::herlihy_three_party();
        let alice = tri.vertex_by_name("alice").unwrap();
        let single: BTreeSet<_> = [alice].into();
        assert!(timeout_assignment_feasible(&tri, &single));

        let two = generators::two_leader_triangle();
        let one_claimed: BTreeSet<_> = [VertexId::new(0)].into();
        assert!(!timeout_assignment_feasible(&two, &one_claimed));
        // With both leaders excluded from the constraint set it becomes
        // feasible (but then you need hashkeys to handle two secrets).
        let both: BTreeSet<_> = [VertexId::new(0), VertexId::new(1)].into();
        assert!(timeout_assignment_feasible(&two, &both));
    }

    #[test]
    fn single_leader_of_detection() {
        assert!(single_leader_of(&generators::herlihy_three_party()).is_some());
        assert!(single_leader_of(&generators::two_leader_triangle()).is_none());
    }

    #[test]
    fn error_display() {
        assert!(TimeoutError::NotSingleLeader { leaders: 2 }.to_string().contains("2 leaders"));
        assert!(TimeoutError::NotStronglyConnected.to_string().contains("strongly"));
    }
}
