//! The single-leader protocol of §4.6: plain timeouts, no hashkeys.
//!
//! When the swap digraph needs only one leader `v̂`, the subdigraph of
//! followers is acyclic and each arc `(u, v)` can carry the classic HTLC
//! timeout
//!
//! ```text
//! t(u, v) = T₀ + (diam(D) + D(v, v̂) + 1) · Δ
//! ```
//!
//! where `D(v, v̂)` is the longest path from `v` to the leader
//! (Lemma 4.13). For the §1 three-way swap this yields the 6Δ/5Δ/4Δ
//! timelocks of Figure 1. With more than one leader no such assignment
//! exists — the follower subdigraph has a cycle and the required ≥Δ gap
//! cannot hold around it (Figure 6, right) — which
//! [`timeout_assignment_feasible`] checks directly from the constraint
//! system.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use swap_chain::{AssetDescriptor, AssetId, ChainId, ChainSet, ContractId, ContractLogic, Owner};
use swap_contract::{HtlcCall, HtlcContract};
use swap_crypto::{Address, MssKeypair, Secret};
use swap_digraph::{algo, ArcId, Digraph, FeedbackVertexSet, VertexId};
use swap_sim::{Delta, SimRng, SimTime, TraceLog};

use crate::outcome::Outcome;

/// Why per-arc timeouts cannot be assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeoutError {
    /// The claimed leader is not a feedback vertex on its own: followers
    /// still contain a cycle (the Figure 6 obstruction).
    FollowerCycle {
        /// A cycle among followers.
        witness: Vec<VertexId>,
    },
    /// The digraph is not strongly connected.
    NotStronglyConnected,
    /// A follower cannot reach the leader (cannot happen when strongly
    /// connected; reported defensively).
    LeaderUnreachable(VertexId),
}

impl fmt::Display for TimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutError::FollowerCycle { witness } => {
                write!(f, "follower subdigraph has a cycle: {witness:?}")
            }
            TimeoutError::NotStronglyConnected => write!(f, "digraph not strongly connected"),
            TimeoutError::LeaderUnreachable(v) => write!(f, "{v} cannot reach the leader"),
        }
    }
}

impl std::error::Error for TimeoutError {}

/// Computes the Lemma 4.13 timeout for every arc: index `i` of the result
/// corresponds to `ArcId(i)`. `t0` is the instant the protocol begins
/// (contract propagation starts), i.e. one Δ before the hashkey protocol's
/// `start`.
///
/// # Errors
///
/// Fails when `leader` is not a sole feedback vertex or the digraph is not
/// strongly connected.
pub fn assign_timeouts(
    digraph: &Digraph,
    leader: VertexId,
    t0: SimTime,
    delta: Delta,
) -> Result<Vec<SimTime>, TimeoutError> {
    if !digraph.is_strongly_connected() {
        return Err(TimeoutError::NotStronglyConnected);
    }
    let removed: BTreeSet<VertexId> = [leader].into_iter().collect();
    let followers = digraph.delete_vertices(&removed);
    if let Some(witness) = swap_digraph::fvs::find_cycle(&followers) {
        return Err(TimeoutError::FollowerCycle { witness });
    }
    let diam = digraph.diameter() as u64;
    digraph
        .arcs()
        .map(|arc| {
            let dist = algo::longest_path_to(digraph, arc.tail, leader)
                .ok_or(TimeoutError::LeaderUnreachable(arc.tail))? as u64;
            Ok(t0 + delta.times(diam + dist + 1))
        })
        .collect()
}

/// Decides whether *any* per-arc timeout assignment satisfies the protocol
/// constraint: for every follower `v`, every arc entering `v` times out at
/// least Δ later than every arc leaving `v`.
///
/// The constraints `t(enter) ≥ t(leave) + Δ` form a difference system whose
/// feasibility is equivalent to the constraint graph (arcs as nodes) being
/// acyclic. This is the formal content of Figure 6: feasible for the
/// single-leader triangle, infeasible as soon as two leaders are needed.
pub fn timeout_assignment_feasible(digraph: &Digraph, leaders: &BTreeSet<VertexId>) -> bool {
    // Constraint edges: leave-arc → enter-arc through each follower.
    let m = digraph.arc_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for v in digraph.vertices() {
        if leaders.contains(&v) {
            continue;
        }
        for leaving in digraph.out_arcs(v) {
            for entering in digraph.in_arcs(v) {
                adj[leaving.id.index()].push(entering.id.index());
            }
        }
    }
    // Feasible iff no cycle (every cycle would demand t ≥ t + k·Δ).
    let mut color = vec![0u8; m];
    for start in 0..m {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let w = adj[node][*next];
                *next += 1;
                match color[w] {
                    0 => {
                        color[w] = 1;
                        stack.push((w, 0));
                    }
                    1 => return false,
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    true
}

/// Behavior knobs for the single-leader runner (a subset of the general
/// runner's: this protocol variant exists for the timing comparison, not
/// for re-proving every adversarial theorem).
#[derive(Debug, Clone, Default)]
pub enum HtlcBehavior {
    /// Follows the protocol.
    #[default]
    Conforming,
    /// Conforming until `at_round`, then silent.
    Halt {
        /// First silent round.
        at_round: u64,
    },
}

/// Report from a [`SingleLeaderSwap`] run; mirrors the general runner's
/// report shape.
#[derive(Debug)]
pub struct HtlcRunReport {
    /// Outcome per vertex.
    pub outcomes: Vec<Outcome>,
    /// Whether each arc triggered.
    pub arc_triggered: Vec<bool>,
    /// Completion instant (last trigger), if all arcs triggered.
    pub completion: Option<SimTime>,
    /// Execution trace.
    pub trace: TraceLog,
    /// Total bytes stored on all chains.
    pub storage_bytes: usize,
    /// Total wire bytes of reveal calls (for comparison with hashkey
    /// unlock bytes — the §4.6 "reduced message sizes" claim).
    pub reveal_bytes: u64,
    /// Refund count.
    pub refunds: u64,
}

impl HtlcRunReport {
    /// `true` iff every party ended with `Deal`.
    pub fn all_deal(&self) -> bool {
        self.outcomes.iter().all(|&o| o == Outcome::Deal)
    }
}

/// A provisioned single-leader swap running the §4.6 timeout protocol.
#[derive(Debug)]
pub struct SingleLeaderSwap {
    digraph: Digraph,
    leader: VertexId,
    secret: Secret,
    addresses: Vec<Address>,
    delta: Delta,
    t0: SimTime,
    timeouts: Vec<SimTime>,
    chains: ChainSet<HtlcContract>,
    chain_of_arc: Vec<ChainId>,
    asset_of_arc: Vec<AssetId>,
    behaviors: BTreeMap<VertexId, HtlcBehavior>,
}

impl SingleLeaderSwap {
    /// Provisions chains, assets, and timeouts for `digraph` with the given
    /// single `leader`.
    ///
    /// # Errors
    ///
    /// Fails if the timeout assignment does not exist (Lemma 4.13's
    /// preconditions).
    pub fn new(
        digraph: Digraph,
        leader: VertexId,
        delta: Delta,
        t0: SimTime,
        rng: &mut SimRng,
    ) -> Result<Self, TimeoutError> {
        let timeouts = assign_timeouts(&digraph, leader, t0, delta)?;
        let n = digraph.vertex_count();
        let mut key_rng = rng.stream("sls/keys");
        let addresses: Vec<Address> = (0..n)
            .map(|_| MssKeypair::from_seed_with_height(key_rng.bytes32(), 1).public_key().address())
            .collect();
        let secret = Secret::random(&mut rng.stream("sls/secret"));
        let mut chains: ChainSet<HtlcContract> = ChainSet::new();
        let mut chain_of_arc = Vec::new();
        let mut asset_of_arc = Vec::new();
        for arc in digraph.arcs() {
            let cid = chains.create_chain(
                format!("htlc-{}-{}", digraph.name(arc.head), digraph.name(arc.tail)),
                t0,
            );
            let chain = chains.get_mut(cid).expect("just created");
            let asset = chain.mint_asset(
                AssetDescriptor::unique(format!("asset-of-{}", digraph.name(arc.head))),
                addresses[arc.head.index()],
                t0,
            );
            chain_of_arc.push(cid);
            asset_of_arc.push(asset);
        }
        Ok(SingleLeaderSwap {
            digraph,
            leader,
            secret,
            addresses,
            delta,
            t0,
            timeouts,
            chains,
            chain_of_arc,
            asset_of_arc,
            behaviors: BTreeMap::new(),
        })
    }

    /// Sets a party's behavior (default conforming).
    pub fn set_behavior(&mut self, v: VertexId, behavior: HtlcBehavior) {
        self.behaviors.insert(v, behavior);
    }

    /// The assigned timeout per arc.
    pub fn timeouts(&self) -> &[SimTime] {
        &self.timeouts
    }

    /// Runs the protocol to settlement.
    pub fn run(mut self) -> HtlcRunReport {
        let n = self.digraph.vertex_count();
        let m = self.digraph.arc_count();
        let mut trace = TraceLog::new();
        let mut contract_of_arc: Vec<Option<ContractId>> = vec![None; m];
        let mut published_phase_one = vec![false; n];
        let mut revealed_entering = vec![false; n];
        let mut refunded: Vec<BTreeSet<ArcId>> = vec![BTreeSet::new(); n];
        let mut reveal_bytes = 0u64;
        let mut refunds = 0u64;
        let diam = self.digraph.diameter() as u64;
        let max_rounds = 2 * diam + 6;

        for round in 0..=max_rounds {
            let now = self.t0 + self.delta.times(round);
            let exec_time = now + self.delta.duration() / 2;
            // Snapshot: which arcs have contracts; which have revealed
            // secrets (visible state from previous rounds — the snapshot is
            // taken before any action this round applies).
            let has_contract: Vec<bool> = contract_of_arc.iter().map(|c| c.is_some()).collect();
            let secret_on_arc: Vec<Option<Secret>> = (0..m)
                .map(|a| {
                    let id = contract_of_arc[a]?;
                    let chain = self.chains.get(self.chain_of_arc[a]).expect("chain");
                    chain.contract(id).and_then(|c| c.revealed_secret().copied())
                })
                .collect();
            let triggered_now: Vec<bool> = (0..m)
                .map(|a| {
                    contract_of_arc[a]
                        .and_then(|id| {
                            self.chains.get(self.chain_of_arc[a]).expect("chain").contract(id)
                        })
                        .is_some_and(|c| c.is_triggered())
                })
                .collect();

            let mut actions: Vec<(VertexId, HtlcAction)> = Vec::new();
            for v in self.digraph.vertices() {
                match self.behaviors.get(&v) {
                    Some(HtlcBehavior::Halt { at_round }) if round >= *at_round => continue,
                    _ => {}
                }
                // Phase One.
                let entering_ready = self.digraph.in_arcs(v).all(|a| has_contract[a.id.index()]);
                let is_leader = v == self.leader;
                if !published_phase_one[v.index()] && (is_leader || entering_ready) {
                    published_phase_one[v.index()] = true;
                    for arc in self.digraph.out_arcs(v) {
                        actions.push((v, HtlcAction::Publish(arc.id)));
                    }
                }
                // Phase Two: the leader reveals on its entering arcs once
                // they all carry contracts; a follower echoes a secret it
                // sees revealed on any leaving arc.
                let knows_secret = if is_leader {
                    Some(self.secret)
                } else {
                    self.digraph.out_arcs(v).find_map(|a| secret_on_arc[a.id.index()])
                };
                if !revealed_entering[v.index()] && entering_ready {
                    if let Some(secret) = knows_secret {
                        revealed_entering[v.index()] = true;
                        for arc in self.digraph.in_arcs(v) {
                            if !triggered_now[arc.id.index()] {
                                actions.push((v, HtlcAction::Reveal(arc.id, secret)));
                            }
                        }
                    }
                }
                // Refunds on expired leaving arcs.
                for arc in self.digraph.out_arcs(v) {
                    if has_contract[arc.id.index()]
                        && !triggered_now[arc.id.index()]
                        && now >= self.timeouts[arc.id.index()]
                        && !refunded[v.index()].contains(&arc.id)
                    {
                        refunded[v.index()].insert(arc.id);
                        actions.push((v, HtlcAction::Refund(arc.id)));
                    }
                }
            }

            for (v, action) in actions {
                let v_addr = self.addresses[v.index()];
                let name = self.digraph.name(v).to_string();
                match action {
                    HtlcAction::Publish(arc) => {
                        let a = arc.index();
                        let contract = HtlcContract::new(
                            self.asset_of_arc[a],
                            self.addresses[self.digraph.head(arc).index()],
                            self.addresses[self.digraph.tail(arc).index()],
                            self.secret.hashlock(),
                            self.timeouts[a],
                        );
                        let chain = self.chains.get_mut(self.chain_of_arc[a]).expect("chain");
                        if let Ok(id) = chain.publish_contract(contract, v_addr, exec_time) {
                            contract_of_arc[a] = Some(id);
                            trace.record(
                                exec_time,
                                name,
                                "contract.published",
                                format!("arc {arc}"),
                            );
                        }
                    }
                    HtlcAction::Reveal(arc, secret) => {
                        let a = arc.index();
                        let Some(id) = contract_of_arc[a] else { continue };
                        let chain = self.chains.get_mut(self.chain_of_arc[a]).expect("chain");
                        match chain.call_contract(
                            id,
                            v_addr,
                            HtlcCall::Reveal { secret },
                            exec_time,
                            32,
                        ) {
                            Ok(_) => {
                                reveal_bytes += 32;
                                trace.record(
                                    exec_time,
                                    name,
                                    "arc.triggered",
                                    format!("arc {arc}"),
                                );
                            }
                            Err(e) => {
                                trace.record(
                                    exec_time,
                                    name,
                                    "tx.rejected",
                                    format!("reveal {arc}: {e}"),
                                );
                            }
                        }
                    }
                    HtlcAction::Refund(arc) => {
                        let a = arc.index();
                        let Some(id) = contract_of_arc[a] else { continue };
                        let chain = self.chains.get_mut(self.chain_of_arc[a]).expect("chain");
                        match chain.call_contract(id, v_addr, HtlcCall::Refund, exec_time, 8) {
                            Ok(_) => {
                                refunds += 1;
                                trace.record(exec_time, name, "arc.refunded", format!("arc {arc}"));
                            }
                            Err(e) => {
                                trace.record(
                                    exec_time,
                                    name,
                                    "tx.rejected",
                                    format!("refund {arc}: {e}"),
                                );
                            }
                        }
                    }
                }
            }

            // Early exit once every contract is terminal.
            let all_settled = (0..m).all(|a| {
                contract_of_arc[a].is_some_and(|id| {
                    self.chains
                        .get(self.chain_of_arc[a])
                        .expect("chain")
                        .contract(id)
                        .is_some_and(|c| c.is_terminated())
                })
            });
            if all_settled {
                break;
            }
        }

        // Evaluation.
        let arc_triggered: Vec<bool> = self
            .digraph
            .arcs()
            .map(|arc| {
                let a = arc.id.index();
                let chain = self.chains.get(self.chain_of_arc[a]).expect("chain");
                let tail_addr = self.addresses[arc.tail.index()];
                chain.assets().owner(self.asset_of_arc[a]) == Some(Owner::Party(tail_addr))
            })
            .collect();
        let outcomes: Vec<Outcome> = self
            .digraph
            .vertices()
            .map(|v| {
                let entering = (
                    self.digraph.in_arcs(v).filter(|a| arc_triggered[a.id.index()]).count(),
                    self.digraph.in_degree(v),
                );
                let leaving = (
                    self.digraph.out_arcs(v).filter(|a| arc_triggered[a.id.index()]).count(),
                    self.digraph.out_degree(v),
                );
                Outcome::classify(entering, leaving)
            })
            .collect();
        let completion = if arc_triggered.iter().all(|&t| t) {
            trace.last_time_of_kind("arc.triggered")
        } else {
            None
        };
        HtlcRunReport {
            outcomes,
            arc_triggered,
            completion,
            trace,
            storage_bytes: self.chains.storage_report().total_bytes(),
            reveal_bytes,
            refunds,
        }
    }
}

#[derive(Debug)]
enum HtlcAction {
    Publish(ArcId),
    Reveal(ArcId, Secret),
    Refund(ArcId),
}

/// Convenience: picks a minimum feedback vertex set and reports whether it
/// is a singleton (i.e. whether the single-leader protocol applies at all).
pub fn single_leader_of(digraph: &Digraph) -> Option<VertexId> {
    let fvs = FeedbackVertexSet::minimum(digraph)?;
    let vs = fvs.vertices();
    if vs.len() == 1 {
        vs.iter().next().copied()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_digraph::generators;

    #[test]
    fn figure_1_timeout_values() {
        // Leader alice, Δ = 10, t0 = 0: the 6Δ/5Δ/4Δ of Figure 1.
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let timeouts = assign_timeouts(&d, alice, SimTime::ZERO, Delta::from_ticks(10)).unwrap();
        let by_arc: Vec<u64> = timeouts.iter().map(|t| t.ticks()).collect();
        // Arcs in insertion order: a→b, b→c, c→a.
        assert_eq!(by_arc, vec![60, 50, 40]);
    }

    #[test]
    fn follower_gap_property() {
        // Lemma 4.13: entering timeouts exceed leaving timeouts by ≥ Δ for
        // every follower, across several single-leader families.
        for d in [generators::cycle(5), generators::star(4), generators::flower(3, 3)] {
            let leader = single_leader_of(&d).expect("single-leader family");
            let delta = Delta::from_ticks(10);
            let timeouts = assign_timeouts(&d, leader, SimTime::ZERO, delta).unwrap();
            for v in d.vertices() {
                if v == leader {
                    continue;
                }
                for entering in d.in_arcs(v) {
                    for leaving in d.out_arcs(v) {
                        let te = timeouts[entering.id.index()];
                        let tl = timeouts[leaving.id.index()];
                        assert!(
                            te >= tl + delta.times(1),
                            "follower {v}: entering {te} vs leaving {tl}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_leader_digraph_rejected() {
        let d = generators::two_leader_triangle();
        let err = assign_timeouts(&d, VertexId::new(0), SimTime::ZERO, Delta::from_ticks(10))
            .unwrap_err();
        assert!(matches!(err, TimeoutError::FollowerCycle { .. }));
    }

    #[test]
    fn not_strongly_connected_rejected() {
        let d = generators::one_way_pair();
        let err = assign_timeouts(&d, VertexId::new(0), SimTime::ZERO, Delta::from_ticks(10))
            .unwrap_err();
        assert_eq!(err, TimeoutError::NotStronglyConnected);
    }

    #[test]
    fn feasibility_matches_figure_6() {
        // Single-leader triangle: feasible. Two-leader triangle with only
        // one claimed leader: infeasible.
        let tri = generators::herlihy_three_party();
        let alice = tri.vertex_by_name("alice").unwrap();
        let single: BTreeSet<_> = [alice].into();
        assert!(timeout_assignment_feasible(&tri, &single));

        let two = generators::two_leader_triangle();
        let one_claimed: BTreeSet<_> = [VertexId::new(0)].into();
        assert!(!timeout_assignment_feasible(&two, &one_claimed));
        // With both leaders excluded from the constraint set it becomes
        // feasible (but then you need hashkeys to handle two secrets).
        let both: BTreeSet<_> = [VertexId::new(0), VertexId::new(1)].into();
        assert!(timeout_assignment_feasible(&two, &both));
    }

    #[test]
    fn conforming_run_matches_figure_2_timeline() {
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let swap = SingleLeaderSwap::new(
            d,
            alice,
            Delta::from_ticks(10),
            SimTime::ZERO,
            &mut SimRng::from_seed(3),
        )
        .unwrap();
        let report = swap.run();
        assert!(report.all_deal(), "outcomes: {:?}", report.outcomes);
        let publishes: Vec<u64> =
            report.trace.entries_of_kind("contract.published").map(|e| e.time.ticks()).collect();
        assert_eq!(publishes, vec![5, 15, 25]);
        let triggers: Vec<u64> =
            report.trace.entries_of_kind("arc.triggered").map(|e| e.time.ticks()).collect();
        assert_eq!(triggers, vec![35, 45, 55]);
        assert_eq!(report.refunds, 0);
    }

    #[test]
    fn conforming_runs_across_families() {
        for d in [generators::cycle(4), generators::star(3), generators::flower(2, 3)] {
            let leader = single_leader_of(&d).expect("single leader");
            let swap = SingleLeaderSwap::new(
                d.clone(),
                leader,
                Delta::from_ticks(10),
                SimTime::ZERO,
                &mut SimRng::from_seed(4),
            )
            .unwrap();
            let report = swap.run();
            assert!(report.all_deal(), "digraph:\n{}", d.render());
        }
    }

    #[test]
    fn halted_leader_leads_to_refunds_no_underwater() {
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        for halt_round in 0..8 {
            let mut swap = SingleLeaderSwap::new(
                d.clone(),
                alice,
                Delta::from_ticks(10),
                SimTime::ZERO,
                &mut SimRng::from_seed(5),
            )
            .unwrap();
            swap.set_behavior(alice, HtlcBehavior::Halt { at_round: halt_round });
            let report = swap.run();
            for (i, &o) in report.outcomes.iter().enumerate() {
                if VertexId::new(i as u32) != alice {
                    assert!(o != Outcome::Underwater, "halt {halt_round}, party {i}: {o}");
                }
            }
        }
    }

    #[test]
    fn halted_follower_cannot_hurt_others() {
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let carol = d.vertex_by_name("carol").unwrap();
        for halt_round in 0..8 {
            let mut swap = SingleLeaderSwap::new(
                d.clone(),
                alice,
                Delta::from_ticks(10),
                SimTime::ZERO,
                &mut SimRng::from_seed(6),
            )
            .unwrap();
            swap.set_behavior(carol, HtlcBehavior::Halt { at_round: halt_round });
            let report = swap.run();
            for (i, &o) in report.outcomes.iter().enumerate() {
                if VertexId::new(i as u32) != carol {
                    assert!(o != Outcome::Underwater, "halt {halt_round}, party {i}: {o}");
                }
            }
        }
    }

    #[test]
    fn storage_smaller_than_general_protocol() {
        // §4.6's point: single-leader swaps avoid storing digraphs, key
        // tables, and signature chains. Compare the two protocols on the
        // same digraph.
        use crate::runner::{RunConfig, SwapRunner};
        use crate::setup::{SetupConfig, SwapSetup};
        let d = generators::herlihy_three_party();
        let alice = d.vertex_by_name("alice").unwrap();
        let simple = SingleLeaderSwap::new(
            d.clone(),
            alice,
            Delta::from_ticks(10),
            SimTime::ZERO,
            &mut SimRng::from_seed(7),
        )
        .unwrap()
        .run();
        let setup =
            SwapSetup::generate(d, &SetupConfig::default(), &mut SimRng::from_seed(7)).unwrap();
        let general = SwapRunner::new(setup, RunConfig::default()).run();
        assert!(general.all_deal() && simple.all_deal());
        assert!(
            simple.storage_bytes < general.storage.total_bytes(),
            "simple {} vs general {}",
            simple.storage_bytes,
            general.storage.total_bytes()
        );
        assert!(simple.reveal_bytes < general.metrics.unlock_bytes);
    }

    #[test]
    fn single_leader_of_detection() {
        assert!(single_leader_of(&generators::herlihy_three_party()).is_some());
        assert!(single_leader_of(&generators::two_leader_triangle()).is_none());
    }
}
