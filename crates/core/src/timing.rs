//! Pluggable timing models for the event-driven protocol engine.
//!
//! The paper collapses all network and chain heterogeneity into one
//! synchrony parameter Δ: long enough for any party to change any chain's
//! state *and* for every other party to confirm the change (§2.2). The
//! engine (`crate::engine`) keeps the party cadence on that Δ grid — every
//! party wakes at each round boundary — but delegates three instants to a
//! [`TimingModel`]:
//!
//! 1. **execution** — when an action decided at a boundary lands on its
//!    chain as a transaction,
//! 2. **visibility** — when an executed change reaches observers'
//!    snapshots,
//! 3. **round close** — when the round's bookkeeping (trigger scan,
//!    settlement check) runs.
//!
//! [`Lockstep`] is the paper's model and reproduces the classic round loop
//! tick-for-tick. [`PerChainLatency`] gives every chain its own publish and
//! confirm latency (drawn deterministically from a [`SimRng`]) under the
//! constraint that Δ still dominates the worst chain — the heterogeneous
//! confirmation-latency regime real chains exhibit, with the paper's
//! guarantees intact.

use std::collections::BTreeMap;

use swap_chain::ChainId;
use swap_sim::{Delta, SimDuration, SimRng, SimTime};

use crate::setup::SwapSetup;

/// When protocol activity decided on the Δ grid actually lands on chains
/// and reaches observers.
///
/// Implementations must be deterministic: the engine's reproducibility
/// guarantee (same seed ⇒ byte-identical report) rides on these three
/// functions being pure.
///
/// # Example
///
/// A custom model is a few lines — here, a "half-speed bulletin" variant
/// that executes everything late in the round:
///
/// ```
/// use swap_chain::ChainId;
/// use swap_core::timing::TimingModel;
/// use swap_sim::{SimDuration, SimTime};
///
/// struct LateExec;
/// impl TimingModel for LateExec {
///     fn exec_time(&self, boundary: SimTime, _chain: Option<ChainId>) -> SimTime {
///         boundary + SimDuration::from_ticks(9)
///     }
///     fn visible_time(&self, exec: SimTime, _chain: ChainId) -> SimTime {
///         exec + SimDuration::from_ticks(1)
///     }
///     fn close_time(&self, boundary: SimTime) -> SimTime {
///         boundary + SimDuration::from_ticks(10)
///     }
/// }
/// let m = LateExec;
/// let boundary = SimTime::from_ticks(20);
/// assert_eq!(m.exec_time(boundary, None).ticks(), 29);
/// assert_eq!(m.visible_time(m.exec_time(boundary, None), ChainId::new(0)).ticks(), 30);
/// ```
pub trait TimingModel {
    /// When an action decided at the `boundary` wake-up executes — as a
    /// transaction on `chain`, or off-chain (`None`: bulletin
    /// announcements). Must be strictly after `boundary` and early enough
    /// that [`TimingModel::visible_time`] lands by `boundary + Δ`.
    fn exec_time(&self, boundary: SimTime, chain: Option<ChainId>) -> SimTime;

    /// When a change executed at `exec` on `chain` becomes visible to
    /// observers' snapshots (confirmation).
    fn visible_time(&self, exec: SimTime, chain: ChainId) -> SimTime;

    /// When the round that opened at `boundary` closes: the engine scans
    /// for newly triggered arcs and checks settlement at this instant. Must
    /// be no earlier than every `exec_time` of the round and no later than
    /// `boundary + Δ`.
    fn close_time(&self, boundary: SimTime) -> SimTime;
}

/// The paper's timing model: one Δ per round, transactions at mid-round,
/// visibility at the next boundary.
///
/// This reproduces the classic lockstep round loop byte-for-byte: actions
/// decided at a boundary execute at `boundary + Δ/2` and are confirmed by
/// everyone at `boundary + Δ`, so one round is exactly one Δ.
///
/// # Example
///
/// ```
/// use swap_chain::ChainId;
/// use swap_core::timing::{Lockstep, TimingModel};
/// use swap_sim::{Delta, SimTime};
///
/// let m = Lockstep::new(Delta::from_ticks(10));
/// let boundary = SimTime::from_ticks(20);
/// let exec = m.exec_time(boundary, Some(ChainId::new(3)));
/// assert_eq!(exec.ticks(), 25, "transactions execute mid-round");
/// assert_eq!(m.visible_time(exec, ChainId::new(3)).ticks(), 30, "visible at next boundary");
/// assert_eq!(m.close_time(boundary), exec, "bookkeeping at the execution instant");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Lockstep {
    delta: Delta,
}

impl Lockstep {
    /// A lockstep model over the given Δ.
    pub fn new(delta: Delta) -> Self {
        Lockstep { delta }
    }
}

impl TimingModel for Lockstep {
    fn exec_time(&self, boundary: SimTime, _chain: Option<ChainId>) -> SimTime {
        boundary + self.delta.duration() / 2
    }

    fn visible_time(&self, exec: SimTime, _chain: ChainId) -> SimTime {
        // exec + (Δ − Δ/2) = boundary + Δ even when Δ is odd.
        exec + (self.delta.duration() - self.delta.duration() / 2)
    }

    fn close_time(&self, boundary: SimTime) -> SimTime {
        boundary + self.delta.duration() / 2
    }
}

/// Heterogeneous chain latencies under a dominating Δ.
///
/// Every chain gets its own publish delay (submission → sealed transaction)
/// and confirm delay (sealed → visible to observers). Δ must dominate the
/// worst chain — `publish + confirm ≤ Δ` for every chain — which is exactly
/// the paper's definition of Δ, so all completion and safety bounds carry
/// over while trigger instants, traces, and completion times now reflect
/// per-chain confirmation behavior.
///
/// # Example
///
/// ```
/// use swap_core::setup::{SetupConfig, SwapSetup};
/// use swap_core::timing::{PerChainLatency, TimingModel};
/// use swap_digraph::generators;
/// use swap_sim::{SimRng, SimTime};
///
/// let config = SetupConfig { key_height: 3, ..SetupConfig::default() };
/// let rng = SimRng::from_seed(7);
/// let setup = SwapSetup::generate(
///     generators::herlihy_three_party(),
///     &config,
///     &mut rng.clone(),
/// )
/// .unwrap();
/// let m = PerChainLatency::sample(&setup, &rng);
/// // Δ dominates every chain: exec + confirm lands within one Δ.
/// let boundary = SimTime::from_ticks(10);
/// for (chain, _) in setup.chains.iter() {
///     let exec = m.exec_time(boundary, Some(chain));
///     let visible = m.visible_time(exec, chain);
///     assert!(exec > boundary);
///     assert!(visible <= boundary + setup.spec.delta.duration());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PerChainLatency {
    delta: Delta,
    publish: BTreeMap<ChainId, SimDuration>,
    confirm: BTreeMap<ChainId, SimDuration>,
}

impl PerChainLatency {
    /// Builds a model from explicit per-chain `(publish, confirm)` delays.
    ///
    /// # Panics
    ///
    /// Panics if Δ is smaller than 2 ticks, if any delay is zero (a chain
    /// cannot seal or confirm instantaneously), or if any chain's
    /// `publish + confirm` exceeds Δ — Δ must dominate the worst chain or
    /// the paper's round structure breaks down.
    pub fn new(delta: Delta, latencies: BTreeMap<ChainId, (SimDuration, SimDuration)>) -> Self {
        assert!(delta.ticks() >= 2, "delta must be at least 2 ticks");
        let mut publish = BTreeMap::new();
        let mut confirm = BTreeMap::new();
        for (chain, (p, c)) in latencies {
            assert!(!p.is_zero() && !c.is_zero(), "{chain}: delays must be positive");
            assert!(
                p + c <= delta.duration(),
                "{chain}: publish {p} + confirm {c} must be dominated by {delta}"
            );
            publish.insert(chain, p);
            confirm.insert(chain, c);
        }
        PerChainLatency { delta, publish, confirm }
    }

    /// Draws one latency pair per chain of `setup`, deterministically from
    /// the rng's master seed. Each chain's pair comes from its own
    /// sub-stream, so adding chains never perturbs the others' draws.
    /// Publish and confirm delays land in `[1, Δ/2]`, which guarantees the
    /// dominance constraint.
    pub fn sample(setup: &SwapSetup, rng: &SimRng) -> Self {
        let delta = setup.spec.delta;
        assert!(delta.ticks() >= 2, "delta must be at least 2 ticks");
        let half = delta.ticks() / 2;
        let latencies = setup
            .chains
            .iter()
            .map(|(chain, _)| {
                let id = u64::from(chain.raw());
                let p = rng.stream_indexed("timing/publish", id).between(1, half);
                let c = rng.stream_indexed("timing/confirm", id).between(1, half);
                (chain, (SimDuration::from_ticks(p), SimDuration::from_ticks(c)))
            })
            .collect();
        PerChainLatency::new(delta, latencies)
    }

    /// The publish (submission → sealed) delay of `chain`.
    ///
    /// # Panics
    ///
    /// Panics if no latency was configured for `chain` — a silent default
    /// here would bypass the dominance validation in
    /// [`PerChainLatency::new`].
    pub fn publish_delay(&self, chain: ChainId) -> SimDuration {
        *self.publish.get(&chain).unwrap_or_else(|| panic!("no latency configured for {chain}"))
    }

    /// The confirm (sealed → visible) delay of `chain`.
    ///
    /// # Panics
    ///
    /// Panics if no latency was configured for `chain` (see
    /// [`PerChainLatency::publish_delay`]).
    pub fn confirm_delay(&self, chain: ChainId) -> SimDuration {
        *self.confirm.get(&chain).unwrap_or_else(|| panic!("no latency configured for {chain}"))
    }
}

impl TimingModel for PerChainLatency {
    fn exec_time(&self, boundary: SimTime, chain: Option<ChainId>) -> SimTime {
        match chain {
            Some(c) => boundary + self.publish_delay(c),
            // Off-chain (bulletin) activity uses the generic mid-round slot.
            None => boundary + self.delta.duration() / 2,
        }
    }

    fn visible_time(&self, exec: SimTime, chain: ChainId) -> SimTime {
        exec + self.confirm_delay(chain)
    }

    fn close_time(&self, boundary: SimTime) -> SimTime {
        // Bookkeeping at the dominance point: by boundary + Δ every chain
        // has sealed and confirmed the round's transactions.
        boundary + self.delta.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::SetupConfig;
    use swap_digraph::generators;

    fn sample_model(seed: u64) -> (SwapSetup, PerChainLatency) {
        let config = SetupConfig { key_height: 3, ..SetupConfig::default() };
        let rng = SimRng::from_seed(seed);
        let setup = SwapSetup::generate(generators::cycle(4), &config, &mut rng.clone()).unwrap();
        let model = PerChainLatency::sample(&setup, &rng);
        (setup, model)
    }

    #[test]
    fn lockstep_lands_on_the_grid() {
        let m = Lockstep::new(Delta::from_ticks(9));
        let boundary = SimTime::from_ticks(18);
        let exec = m.exec_time(boundary, None);
        assert_eq!(exec.ticks(), 22);
        // Odd Δ still confirms exactly at the next boundary.
        assert_eq!(m.visible_time(exec, ChainId::new(0)).ticks(), 27);
        assert_eq!(m.close_time(boundary), exec);
    }

    #[test]
    fn sampled_latencies_are_deterministic_and_dominated() {
        let (setup, a) = sample_model(11);
        let (_, b) = sample_model(11);
        let (_, c) = sample_model(12);
        let mut distinct = false;
        for (chain, _) in setup.chains.iter() {
            assert_eq!(a.publish_delay(chain), b.publish_delay(chain));
            assert_eq!(a.confirm_delay(chain), b.confirm_delay(chain));
            distinct |= a.publish_delay(chain) != c.publish_delay(chain)
                || a.confirm_delay(chain) != c.confirm_delay(chain);
            let total = a.publish_delay(chain) + a.confirm_delay(chain);
            assert!(total <= setup.spec.delta.duration(), "delta must dominate {chain}");
            assert!(!a.publish_delay(chain).is_zero());
            assert!(!a.confirm_delay(chain).is_zero());
        }
        assert!(distinct, "different seeds should draw different latencies");
    }

    #[test]
    #[should_panic(expected = "dominated")]
    fn undominated_latency_rejected() {
        let mut latencies = BTreeMap::new();
        latencies.insert(ChainId::new(0), (SimDuration::from_ticks(8), SimDuration::from_ticks(8)));
        let _ = PerChainLatency::new(Delta::from_ticks(10), latencies);
    }

    #[test]
    #[should_panic(expected = "no latency configured")]
    fn unconfigured_chain_rejected_loudly() {
        let (_, model) = sample_model(11);
        let _ = model.publish_delay(ChainId::new(9999));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_latency_rejected() {
        let mut latencies = BTreeMap::new();
        latencies.insert(ChainId::new(0), (SimDuration::ZERO, SimDuration::from_ticks(1)));
        let _ = PerChainLatency::new(Delta::from_ticks(10), latencies);
    }
}
