//! The *waits-for* digraph of Theorem 4.12's proof.
//!
//! At any point in Phase One, the waits-for digraph `W` is the subdigraph
//! of `Dᵀ` with an arc `(v, u)` whenever arc `(u, v)` of `D` has no
//! published contract: `v` is waiting for `u` before it may publish its own
//! leaving contracts (Lemma 4.11). A follower can act only when its
//! in-degree in `W` is zero, so any all-follower cycle in `W` is a
//! permanent deadlock — which is exactly why the leaders must form a
//! feedback vertex set.
//!
//! The runner demonstrates the deadlock dynamically (experiment E13); this
//! module provides the static analysis: build `W` from a publication
//! state, find who is blocked, and detect deadlocked follower cycles.

use std::collections::BTreeSet;

use swap_digraph::fvs::find_cycle;
use swap_digraph::{Digraph, VertexId};

/// The waits-for digraph `W` for publication state `published`
/// (`published[i]` = arc `i` of `D` has a contract).
///
/// `W` has the same vertex set as `D` and an arc `(v, u)` for every
/// unpublished arc `(u, v)` of `D`.
///
/// # Panics
///
/// Panics if `published.len()` differs from `D`'s arc count.
pub fn waits_for_digraph(digraph: &Digraph, published: &[bool]) -> Digraph {
    assert_eq!(published.len(), digraph.arc_count(), "one flag per arc");
    let mut w = Digraph::new();
    for v in digraph.vertices() {
        w.add_vertex(digraph.name(v));
    }
    for arc in digraph.arcs() {
        if !published[arc.id.index()] {
            w.add_arc(arc.tail, arc.head).expect("same vertex set");
        }
    }
    w
}

/// The followers that may *never* publish from this state onward: vertexes
/// lying on (or only reachable through) all-follower cycles of `W`.
///
/// Computed as a fixpoint: repeatedly discharge vertexes whose waits-for
/// in-degree is zero (leaders discharge unconditionally, as they never wait
/// — §4.5 Phase One). Whatever remains can never reach in-degree zero.
pub fn deadlocked_vertices(
    digraph: &Digraph,
    leaders: &BTreeSet<VertexId>,
    published: &[bool],
) -> Vec<VertexId> {
    let w = waits_for_digraph(digraph, published);
    let n = digraph.vertex_count();
    // blocked[v]: v still waits for someone undischarged.
    let mut discharged = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for v in digraph.vertices() {
            if discharged[v.index()] {
                continue;
            }
            let free = leaders.contains(&v) || w.in_arcs(v).all(|a| discharged[a.head.index()]);
            if free {
                discharged[v.index()] = true;
                changed = true;
            }
        }
    }
    digraph.vertices().filter(|v| !discharged[v.index()]).collect()
}

/// Whether the publication state can still complete Phase One (no follower
/// is permanently deadlocked).
pub fn phase_one_can_complete(
    digraph: &Digraph,
    leaders: &BTreeSet<VertexId>,
    published: &[bool],
) -> bool {
    deadlocked_vertices(digraph, leaders, published).is_empty()
}

/// A witness cycle of followers in the waits-for digraph, if one exists —
/// the exact object Theorem 4.12's proof exhibits.
pub fn deadlock_witness(
    digraph: &Digraph,
    leaders: &BTreeSet<VertexId>,
    published: &[bool],
) -> Option<Vec<VertexId>> {
    let w = waits_for_digraph(digraph, published);
    let followers_only = w.delete_vertices(leaders);
    find_cycle(&followers_only)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swap_digraph::generators;

    fn none_published(d: &Digraph) -> Vec<bool> {
        vec![false; d.arc_count()]
    }

    #[test]
    fn initial_state_with_fvs_leaders_completes() {
        let d = generators::two_leader_triangle();
        let leaders: BTreeSet<_> = [VertexId::new(0), VertexId::new(1)].into();
        assert!(phase_one_can_complete(&d, &leaders, &none_published(&d)));
        assert!(deadlock_witness(&d, &leaders, &none_published(&d)).is_none());
    }

    #[test]
    fn initial_state_without_fvs_leaders_deadlocks() {
        // Theorem 4.12: claiming only {alice} leaves the bob↔carol cycle in
        // the waits-for digraph forever.
        let d = generators::two_leader_triangle();
        let leaders: BTreeSet<_> = [VertexId::new(0)].into();
        let blocked = deadlocked_vertices(&d, &leaders, &none_published(&d));
        assert_eq!(blocked, vec![VertexId::new(1), VertexId::new(2)]);
        assert!(!phase_one_can_complete(&d, &leaders, &none_published(&d)));
        let witness = deadlock_witness(&d, &leaders, &none_published(&d)).expect("cycle");
        assert_eq!(witness.len(), 2);
        assert!(!witness.contains(&VertexId::new(0)));
    }

    #[test]
    fn waits_for_shrinks_as_contracts_publish() {
        let d = generators::herlihy_three_party();
        let leaders: BTreeSet<_> = [d.vertex_by_name("alice").unwrap()].into();
        let mut published = none_published(&d);
        let w0 = waits_for_digraph(&d, &published);
        assert_eq!(w0.arc_count(), 3);
        // Alice publishes on alice→bob (arc 0): bob stops waiting.
        published[0] = true;
        let w1 = waits_for_digraph(&d, &published);
        assert_eq!(w1.arc_count(), 2);
        assert!(phase_one_can_complete(&d, &leaders, &published));
    }

    #[test]
    fn fully_published_state_has_empty_waits_for() {
        let d = generators::complete(4);
        let published = vec![true; d.arc_count()];
        let w = waits_for_digraph(&d, &published);
        assert_eq!(w.arc_count(), 0);
        let leaders: BTreeSet<_> = BTreeSet::new();
        assert!(phase_one_can_complete(&d, &leaders, &published));
    }

    #[test]
    fn mid_protocol_partial_publication_analysis() {
        // Cycle of 4 with leader v0. After v0 publishes, v1 is free but
        // v2, v3 still wait transitively — yet nobody is *deadlocked*.
        let d = generators::cycle(4);
        let leaders: BTreeSet<_> = [VertexId::new(0)].into();
        let mut published = none_published(&d);
        published[0] = true; // v0 → v1
        let blocked = deadlocked_vertices(&d, &leaders, &published);
        assert!(blocked.is_empty(), "waiting is not deadlock: {blocked:?}");
    }

    #[test]
    #[should_panic(expected = "one flag per arc")]
    fn wrong_flag_count_panics() {
        let d = generators::cycle(3);
        let _ = waits_for_digraph(&d, &[true]);
    }
}
