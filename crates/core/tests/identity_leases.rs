//! Exchange-level identity and lease properties: under arbitrary
//! interleavings of submissions, clears, settlements, refunds, and
//! identity reuse,
//!
//! 1. no `(address, leaf_index)` pair is ever used by two *different*
//!    signatures anywhere on the merged ledger (one-time keys stay
//!    one-time even as identities persist across swaps), and
//! 2. exhausting a height-`h` identity surfaces as the checked
//!    [`ExchangeError::KeysExhausted`] refund path — sibling swaps settle,
//!    nothing panics mid-epoch.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use swap_contract::AnyContract;
use swap_core::exchange::{
    DriveError, Exchange, ExchangeConfig, ExchangeError, ExchangeParty, ProtocolPolicy,
};
use swap_crypto::{Address, Digest32, Secret};
use swap_market::AssetKind;
use swap_sim::SimRng;

/// Drives to quiescence, tolerating (and counting) only
/// [`ExchangeError::KeysExhausted`] — any other error, or a panic, fails
/// the test.
fn drive_tolerant(exchange: &mut Exchange) -> u64 {
    let mut exhausted_errors = 0;
    loop {
        match exchange.drive_until_quiescent() {
            Ok(_) => return exhausted_errors,
            Err(DriveError { error: ExchangeError::KeysExhausted { .. }, .. }) => {
                exhausted_errors += 1;
            }
            Err(e) => panic!("unexpected pipeline error: {e}"),
        }
    }
}

/// Walks every unlock record on the merged ledger and collects, per
/// `(address, leaf_index)`, the set of distinct signature digests that
/// leaf produced. Hashkeys *copy* signatures freely (the same base chain
/// appears in many records), so a leaf observed under one digest is fine;
/// two distinct digests mean the one-time key signed twice.
fn leaf_usage(exchange: &Exchange) -> BTreeMap<(Address, u64), BTreeSet<Digest32>> {
    let mut used: BTreeMap<(Address, u64), BTreeSet<Digest32>> = BTreeMap::new();
    for (_, chain) in exchange.ledger().iter() {
        for (_, contract) in chain.contracts() {
            let AnyContract::Swap(swap) = contract else { continue };
            let spec = swap.spec();
            for index in 0..spec.leaders.len() {
                let Some(record) = swap.unlock_record(index) else { continue };
                let vertices = record.path.vertices();
                let k = vertices.len() - 1;
                // links[i] was signed by the key at path position k - i
                // (leader innermost — see `SigChain::verify`).
                for (i, link) in record.sig.links().iter().enumerate() {
                    let address = spec.key_of(vertices[k - i]).address();
                    used.entry((address, link.leaf_index())).or_default().insert(link.digest());
                }
            }
        }
    }
    used
}

#[test]
fn exhaustion_is_checked_refund_not_panic() {
    let mut rng = SimRng::from_seed(81);
    let mut exchange = Exchange::new(ExchangeConfig {
        protocol: ProtocolPolicy::ForceHashkey,
        ..Default::default()
    });
    // A height-1 identity: two one-time leaves, exactly one 2-cycle's
    // signing budget (leaders + 1 = 2). Its first swap drains it dry.
    let scarce = ExchangeParty::generate(&mut rng, 1, AssetKind::new("btc"), AssetKind::new("eth"));
    let scarce_address = scarce.keypair.public_key().address();
    let counter = |rng: &mut SimRng| {
        ExchangeParty::generate(rng, 4, AssetKind::new("eth"), AssetKind::new("btc"))
    };
    exchange.submit(scarce);
    let c = counter(&mut rng);
    exchange.submit(c);
    let first = exchange.drive_until_quiescent().expect("first swap has leaves");
    assert_eq!(first.len(), 1);
    assert_eq!(exchange.identities().remaining(&scarce_address), Some(0));

    // The dry identity returns with a fresh counterparty; a disjoint
    // fresh ring rides the same epoch as a sibling.
    exchange
        .resubmit(
            scarce_address,
            Secret::random(&mut rng),
            AssetKind::new("btc"),
            AssetKind::new("eth"),
        )
        .expect("identity is registered");
    let c = counter(&mut rng);
    exchange.submit(c);
    exchange.submit(ExchangeParty::generate(
        &mut rng,
        4,
        AssetKind::new("usd"),
        AssetKind::new("gbp"),
    ));
    exchange.submit(ExchangeParty::generate(
        &mut rng,
        4,
        AssetKind::new("gbp"),
        AssetKind::new("usd"),
    ));
    let err = exchange.drive_until_quiescent().expect_err("scarce identity is dry");
    assert!(
        matches!(err.error, ExchangeError::KeysExhausted { address, .. } if address == scarce_address),
        "wrong error: {}",
        err.error
    );
    // The refund is checked and surgical: the pipeline keeps driving and
    // the sibling ring still settles.
    exchange.drive_until_quiescent().expect("pipeline recovers after the checked refund");
    let report = exchange.report();
    assert_eq!(report.swaps_exhausted, 1);
    assert_eq!(report.swaps_refunded, 1);
    assert_eq!(report.swaps_settled, 2);
    assert_eq!(report.swaps_cleared, 3);
    // The dry identity consumed nothing further.
    assert_eq!(exchange.identities().remaining(&scarce_address), Some(0));
    // And nothing on the ledger reused a leaf.
    assert!(leaf_usage(&exchange).values().all(|sigs| sigs.len() == 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random submit/clear/settle/refund streams with identity reuse:
    /// height-2 identities (4 leaves, two 2-cycle budgets) resubmitted at
    /// random run dry mid-stream; every terminal ledger must show each
    /// `(address, leaf)` under at most one signature, and the books must
    /// balance (`cleared = settled + refunded`).
    #[test]
    fn random_streams_never_reuse_a_leaf(
        seed in any::<u64>(),
        rounds in 1usize..5,
        reuse in prop::collection::vec(any::<bool>(), 24..25),
        cancel in prop::collection::vec(any::<bool>(), 8..9),
    ) {
        let mut rng = SimRng::from_seed(seed ^ 0x1D_1EA5E5);
        let mut exchange = Exchange::new(ExchangeConfig {
            protocol: ProtocolPolicy::ForceHashkey,
            ..Default::default()
        });
        let mut pool: Vec<Address> = Vec::new();
        let mut flags = reuse.iter().copied().cycle();
        let mut errors = 0;
        for round in 0..rounds {
            // Two disjoint 2-rings per round; each slot either re-uses a
            // registered identity (fresh secret, zero keygen) or mints a
            // scarce height-2 newcomer.
            for ring in 0..2usize {
                for slot in 0..2usize {
                    let gives = AssetKind::new(format!("r{round}g{ring}k{slot}"));
                    let wants = AssetKind::new(format!("r{round}g{ring}k{}", (slot + 1) % 2));
                    let recycle = flags.next().unwrap_or(false) && !pool.is_empty();
                    if recycle {
                        let address = pool[(rng.bytes32()[0] as usize) % pool.len()];
                        exchange
                            .resubmit(address, Secret::random(&mut rng), gives, wants)
                            .expect("pooled addresses are registered");
                    } else {
                        let party = ExchangeParty::generate(&mut rng, 2, gives, wants);
                        pool.push(party.keypair.public_key().address());
                        exchange.submit(party);
                    }
                }
            }
            // Occasionally float an unmatched offer and withdraw it — the
            // cancel path must leave identity accounting untouched.
            if cancel.get(round).copied().unwrap_or(false) {
                let lone = ExchangeParty::generate(
                    &mut rng,
                    2,
                    AssetKind::new(format!("solo{round}")),
                    AssetKind::new("nothing-wants-this"),
                );
                let id = exchange.submit(lone);
                exchange.cancel(id).expect("lone offer is still open");
            }
            errors += drive_tolerant(&mut exchange);
        }
        errors += drive_tolerant(&mut exchange);
        prop_assert!(exchange.is_quiescent());

        let report = exchange.report();
        prop_assert_eq!(
            report.swaps_cleared,
            report.swaps_settled + report.swaps_refunded,
            "books balance"
        );
        prop_assert!(report.swaps_exhausted >= errors, "every reported error was a refund");
        // The core invariant: one leaf, one signature — everywhere, ever.
        for ((address, leaf), sigs) in leaf_usage(&exchange) {
            prop_assert_eq!(
                sigs.len(),
                1,
                "identity {} leaf {} signed {} distinct messages",
                address,
                leaf,
                sigs.len()
            );
        }
    }
}
