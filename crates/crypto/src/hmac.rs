//! HMAC-SHA256 (RFC 2104), used for deterministic key derivation in the
//! Lamport/Merkle signature machinery and for seeding per-party randomness.

use crate::sha256::{Digest32, Sha256};

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Example
///
/// ```
/// use swap_crypto::hmac::hmac_sha256;
/// // RFC 4231 test case 2.
/// let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(
///     mac.to_hex(),
///     "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest32 {
    HmacEngine::new(key).mac_parts(&[message])
}

/// A keyed HMAC-SHA256 engine with the padded-key blocks pre-compressed.
///
/// Plain [`hmac_sha256`] spends two of its four compressions (for short
/// messages) absorbing `key ⊕ ipad` and `key ⊕ opad` — the same two blocks
/// every time the key repeats. MSS key generation computes hundreds of
/// thousands of HMACs under *one* key (the tree seed), so the engine
/// captures both midstates once at construction and each subsequent MAC
/// costs only the message-side compressions: two total for the
/// `label || be64(index)` derivations, down from four, with no per-call
/// allocation.
#[derive(Debug, Clone)]
pub struct HmacEngine {
    inner: [u32; 8],
    outer: [u32; 8],
}

impl HmacEngine {
    /// Prepares the engine for `key` (keys longer than the block size are
    /// hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> HmacEngine {
        let mut key_block = [0u8; BLOCK];
        if key.len() > BLOCK {
            let kh = crate::sha256::sha256(key);
            key_block[..32].copy_from_slice(kh.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut pad = [0u8; BLOCK];
        for (p, k) in pad.iter_mut().zip(key_block.iter()) {
            *p = k ^ IPAD;
        }
        let mut inner = Sha256::new();
        inner.update(&pad);
        for (p, k) in pad.iter_mut().zip(key_block.iter()) {
            *p = k ^ OPAD;
        }
        let mut outer = Sha256::new();
        outer.update(&pad);
        HmacEngine { inner: inner.midstate(), outer: outer.midstate() }
    }

    /// `HMAC(key, parts[0] || parts[1] || …)` from the captured midstates.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> Digest32 {
        let mut inner = Sha256::from_midstate(self.inner, BLOCK as u64);
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finalize();
        let mut outer = Sha256::from_midstate(self.outer, BLOCK as u64);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// The labeled, indexed subkey `HMAC(key, label || be64(index))` —
    /// [`derive_key`] without re-absorbing the key pads.
    pub fn derive(&self, label: &str, index: u64) -> Digest32 {
        self.mac_parts(&[label.as_bytes(), &index.to_be_bytes()])
    }
}

/// Derives a labeled, indexed subkey: `HMAC(key, label || be64(index))`.
/// This is the single derivation primitive behind every deterministic key
/// tree in the workspace; hot paths that derive many subkeys from one key
/// should hold an [`HmacEngine`] and call [`HmacEngine::derive`] instead.
pub fn derive_key(key: &[u8], label: &str, index: u64) -> Digest32 {
    HmacEngine::new(key).derive(label, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let mac = hmac_sha256(&key, &msg);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25).collect();
        let msg = [0xcdu8; 50];
        let mac = hmac_sha256(&key, &msg);
        assert_eq!(
            mac.to_hex(),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // 131-byte key: exercises the hash-the-key path.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_message() {
        let key = [0xaau8; 131];
        let msg: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let mac = hmac_sha256(&key, msg);
        assert_eq!(
            mac.to_hex(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn engine_reuse_matches_fresh_macs() {
        let engine = HmacEngine::new(b"master seed");
        for i in 0..10u64 {
            assert_eq!(engine.derive("ots", i), derive_key(b"master seed", "ots", i));
        }
        let msg = b"what do ya want for nothing?";
        assert_eq!(
            HmacEngine::new(b"Jefe").mac_parts(&[&msg[..7], &msg[7..]]),
            hmac_sha256(b"Jefe", msg)
        );
    }

    #[test]
    fn derive_key_is_deterministic_and_separated() {
        let k = b"master seed";
        let a = derive_key(k, "ots", 0);
        let b = derive_key(k, "ots", 0);
        assert_eq!(a, b);
        assert_ne!(derive_key(k, "ots", 1), a);
        assert_ne!(derive_key(k, "tree", 0), a);
        assert_ne!(derive_key(b"other", "ots", 0), a);
    }
}
