//! Lamport one-time signatures over 256-bit message digests.
//!
//! The classic hash-based scheme: the secret key is 256 pairs of random
//! 32-byte values, the public key is their hashes, and a signature reveals
//! one value per message bit. Security rests only on the preimage resistance
//! of SHA-256 — no number theory, which keeps this crate's trust base equal
//! to the hashlock primitive itself.
//!
//! A key pair must sign **at most one** message; the [`mss`](crate::mss)
//! module lifts these one-time keys into a many-time identity.

use serde::{Deserialize, Serialize};

use crate::hmac::HmacEngine;
use crate::sha256::{sha256_32, Digest32, Sha256};

/// Bits per message digest, i.e. value pairs per key.
pub const BITS: usize = 256;

/// A Lamport one-time secret key.
///
/// The 2·256 secret values are **not stored**: the key holds only the
/// seed's [`HmacEngine`] and the key index, and re-derives
/// `values[i][b] = HMAC(seed, "lamport/v{b}" || be64(index·256 + i))` at
/// sign time. That makes keygen public-hash-only (no secret-side
/// materialization or allocation) and shrinks a resident keypair from
/// ~16 KiB of secrets to two hash midstates.
#[derive(Clone)]
pub struct LamportSecretKey {
    engine: HmacEngine,
    index: u64,
}

impl LamportSecretKey {
    /// Secret value for message bit `i` equal to `bit` — derived on demand.
    fn value(&self, i: usize, bit: usize) -> Digest32 {
        let label = if bit == 0 { "lamport/v0" } else { "lamport/v1" };
        self.engine.derive(label, self.index * BITS as u64 + i as u64)
    }
}

impl std::fmt::Debug for LamportSecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LamportSecretKey(<redacted>)")
    }
}

/// A Lamport one-time public key, pre-compressed to the single digest in
/// which one-time keys appear as Merkle leaves (the fold of the 2·256
/// per-value hashes; the individual hashes are never stored — a verifier
/// reconstructs them from the signature itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportPublicKey {
    digest: Digest32,
}

impl LamportPublicKey {
    /// The compressed public key digest.
    pub fn digest(&self) -> Digest32 {
        self.digest
    }
}

/// A Lamport signature: per message bit, the revealed secret value plus the
/// complementary public hash (so a verifier can reconstruct the compressed
/// public key digest without out-of-band key blocks).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportSignature {
    /// Revealed secret value for each message bit.
    revealed: Vec<Digest32>,
    /// Public hash of the *unrevealed* partner value for each bit.
    complement: Vec<Digest32>,
}

impl LamportSignature {
    /// Wire size in bytes: 2 × 256 × 32.
    pub const ENCODED_LEN: usize = 2 * BITS * 32;

    /// Byte size of this signature as transmitted.
    pub fn byte_len(&self) -> usize {
        Self::ENCODED_LEN
    }

    /// Folds the signature contents into a digest, used when an outer party
    /// signs *this signature* in a hashkey chain.
    pub fn digest(&self) -> Digest32 {
        let mut h = Sha256::new();
        for d in &self.revealed {
            h.update(d.as_bytes());
        }
        for d in &self.complement {
            h.update(d.as_bytes());
        }
        h.finalize()
    }

    /// Reconstructs the compressed one-time public key digest this signature
    /// commits to for `message`, or `None` if the signature is structurally
    /// invalid. Verification is "reconstruct, then compare to the trusted
    /// key digest".
    pub fn reconstruct_pk_digest(&self, message: &Digest32) -> Option<Digest32> {
        if self.revealed.len() != BITS || self.complement.len() != BITS {
            return None;
        }
        let mut h = Sha256::new();
        for i in 0..BITS {
            let bit = bit_of(message, i);
            let revealed_hash = sha256_32(self.revealed[i].as_bytes());
            let (h0, h1) = if bit == 0 {
                (revealed_hash, self.complement[i])
            } else {
                (self.complement[i], revealed_hash)
            };
            h.update(h0.as_bytes());
            h.update(h1.as_bytes());
        }
        Some(h.finalize())
    }
}

/// Generates a key pair deterministically from `seed` and a key index.
///
/// Distinct `(seed, index)` pairs yield independent keys, which is how the
/// Merkle scheme derives its leaf keys. Callers generating many keys from
/// one seed should build the [`HmacEngine`] once and use [`keygen_with`].
pub fn keygen(seed: &[u8; 32], index: u64) -> (LamportSecretKey, LamportPublicKey) {
    keygen_with(&HmacEngine::new(seed), index)
}

/// [`keygen`] with the seed's HMAC engine pre-built, so the padded-key
/// compressions amortize over every leaf of a Merkle tree.
pub fn keygen_with(engine: &HmacEngine, index: u64) -> (LamportSecretKey, LamportPublicKey) {
    let pk = public_key_with(engine, index);
    (LamportSecretKey { engine: engine.clone(), index }, pk)
}

/// The secret half alone, with no public-side hashing at all — used by the
/// Merkle scheme at sign time, where the leaf's public digest already sits
/// in the published tree.
pub fn secret_key_with(engine: &HmacEngine, index: u64) -> LamportSecretKey {
    LamportSecretKey { engine: engine.clone(), index }
}

/// Computes only the compressed public key digest for `(seed, index)` —
/// the Merkle-leaf content — streaming the 2·256 per-value hashes straight
/// into the fold without materializing either side of the key.
pub fn public_key_with(engine: &HmacEngine, index: u64) -> LamportPublicKey {
    let base = index * BITS as u64;
    let mut h = Sha256::new();
    for i in 0..BITS as u64 {
        let v0 = engine.derive("lamport/v0", base + i);
        let v1 = engine.derive("lamport/v1", base + i);
        h.update(sha256_32(v0.as_bytes()).as_bytes());
        h.update(sha256_32(v1.as_bytes()).as_bytes());
    }
    LamportPublicKey { digest: h.finalize() }
}

/// Signs a 256-bit message digest, consuming the one-time key.
///
/// Taking the key by value enforces one-time use at the type level: a
/// `LamportSecretKey` cannot be signed with twice without cloning, and
/// cloning to re-sign is a deliberate (and greppable) act. The secret
/// values are derived here, on demand — signing is the first (and only)
/// time they exist in memory.
pub fn sign(key: LamportSecretKey, message: &Digest32) -> LamportSignature {
    let mut revealed = Vec::with_capacity(BITS);
    let mut complement = Vec::with_capacity(BITS);
    for i in 0..BITS {
        let bit = bit_of(message, i);
        revealed.push(key.value(i, bit));
        complement.push(sha256_32(key.value(i, 1 - bit).as_bytes()));
    }
    LamportSignature { revealed, complement }
}

/// Verifies `sig` on `message` against a compressed public key digest.
///
/// Reconstructs the full public key from the revealed values (hashing them)
/// and the complementary hashes, compresses it, and compares with
/// `pk_digest`.
pub fn verify(sig: &LamportSignature, message: &Digest32, pk_digest: &Digest32) -> bool {
    sig.reconstruct_pk_digest(message) == Some(*pk_digest)
}

/// Bit `i` of a digest, MSB-first within each byte.
fn bit_of(d: &Digest32, i: usize) -> usize {
    let byte = d.as_bytes()[i / 8];
    ((byte >> (7 - (i % 8))) & 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn msg(text: &[u8]) -> Digest32 {
        sha256(text)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let seed = [42u8; 32];
        let (sk, pk) = keygen(&seed, 0);
        let m = msg(b"hello");
        let sig = sign(sk, &m);
        assert!(verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn wrong_message_rejected() {
        let (sk, pk) = keygen(&[1u8; 32], 0);
        let sig = sign(sk, &msg(b"pay bob 5"));
        assert!(!verify(&sig, &msg(b"pay mallory 500"), &pk.digest()));
    }

    #[test]
    fn wrong_key_rejected() {
        let (sk, _) = keygen(&[1u8; 32], 0);
        let (_, pk2) = keygen(&[2u8; 32], 0);
        let m = msg(b"x");
        let sig = sign(sk, &m);
        assert!(!verify(&sig, &m, &pk2.digest()));
    }

    #[test]
    fn distinct_indices_yield_distinct_keys() {
        let seed = [9u8; 32];
        let (_, pk0) = keygen(&seed, 0);
        let (_, pk1) = keygen(&seed, 1);
        assert_ne!(pk0.digest(), pk1.digest());
    }

    #[test]
    fn keygen_deterministic() {
        let seed = [7u8; 32];
        let (_, a) = keygen(&seed, 3);
        let (_, b) = keygen(&seed, 3);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn tampered_signature_rejected() {
        let (sk, pk) = keygen(&[5u8; 32], 0);
        let m = msg(b"msg");
        let mut sig = sign(sk, &m);
        sig.revealed[17] = sha256(b"tamper");
        assert!(!verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn tampered_complement_rejected() {
        let (sk, pk) = keygen(&[5u8; 32], 0);
        let m = msg(b"msg");
        let mut sig = sign(sk, &m);
        sig.complement[200] = sha256(b"tamper");
        assert!(!verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn truncated_signature_rejected() {
        let (sk, pk) = keygen(&[5u8; 32], 0);
        let m = msg(b"msg");
        let mut sig = sign(sk, &m);
        sig.revealed.pop();
        assert!(!verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn signature_digest_is_content_sensitive() {
        let (sk, _) = keygen(&[5u8; 32], 0);
        let m = msg(b"msg");
        let sig = sign(sk, &m);
        let d1 = sig.digest();
        let mut tampered = sig.clone();
        tampered.revealed[0] = sha256(b"other");
        assert_ne!(d1, tampered.digest());
    }

    #[test]
    fn byte_len_constant() {
        let (sk, _) = keygen(&[5u8; 32], 0);
        let sig = sign(sk, &msg(b"m"));
        assert_eq!(sig.byte_len(), LamportSignature::ENCODED_LEN);
        assert_eq!(sig.byte_len(), 16384);
    }

    #[test]
    fn secret_key_debug_redacted() {
        let (sk, _) = keygen(&[1u8; 32], 0);
        assert_eq!(format!("{sk:?}"), "LamportSecretKey(<redacted>)");
    }

    #[test]
    fn lazy_derivation_matches_materialized_reference() {
        // Pin the lazy scheme against an eager re-derivation of every
        // secret value with the original `derive_key` calls: the public
        // key digest and a signature must be byte-identical to what the
        // materializing implementation produced.
        use crate::hmac::derive_key;
        let seed = [3u8; 32];
        let index = 5u64;
        let (sk, pk) = keygen(&seed, index);
        let mut fold = Sha256::new();
        let mut eager = Vec::with_capacity(BITS);
        for i in 0..BITS {
            let v0 = derive_key(&seed, "lamport/v0", index * BITS as u64 + i as u64);
            let v1 = derive_key(&seed, "lamport/v1", index * BITS as u64 + i as u64);
            fold.update(sha256(v0.as_bytes()).as_bytes());
            fold.update(sha256(v1.as_bytes()).as_bytes());
            eager.push([v0, v1]);
        }
        assert_eq!(pk.digest(), fold.finalize());
        let m = msg(b"pinned");
        let sig = sign(sk, &m);
        for (i, pair) in eager.iter().enumerate() {
            let bit = bit_of(&m, i);
            assert_eq!(sig.revealed[i], pair[bit], "revealed value {i}");
            assert_eq!(sig.complement[i], sha256(pair[1 - bit].as_bytes()), "complement {i}");
        }
        assert!(verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn shared_engine_keygen_matches_seed_keygen() {
        let seed = [11u8; 32];
        let engine = HmacEngine::new(&seed);
        for index in 0..4u64 {
            let (_, a) = keygen(&seed, index);
            let (_, b) = keygen_with(&engine, index);
            assert_eq!(a.digest(), b.digest());
            assert_eq!(public_key_with(&engine, index).digest(), a.digest());
        }
    }

    #[test]
    fn bit_extraction_msb_first() {
        let mut b = [0u8; 32];
        b[0] = 0b1000_0000;
        b[1] = 0b0000_0001;
        let d = Digest32(b);
        assert_eq!(bit_of(&d, 0), 1);
        assert_eq!(bit_of(&d, 1), 0);
        assert_eq!(bit_of(&d, 15), 1);
    }
}
