//! Lamport one-time signatures over 256-bit message digests.
//!
//! The classic hash-based scheme: the secret key is 256 pairs of random
//! 32-byte values, the public key is their hashes, and a signature reveals
//! one value per message bit. Security rests only on the preimage resistance
//! of SHA-256 — no number theory, which keeps this crate's trust base equal
//! to the hashlock primitive itself.
//!
//! A key pair must sign **at most one** message; the [`mss`](crate::mss)
//! module lifts these one-time keys into a many-time identity.

use serde::{Deserialize, Serialize};

use crate::hmac::derive_key;
use crate::sha256::{sha256, Digest32, Sha256};

/// Bits per message digest, i.e. value pairs per key.
pub const BITS: usize = 256;

/// A Lamport one-time secret key, derived deterministically from a seed.
#[derive(Clone)]
pub struct LamportSecretKey {
    /// `values[i][b]` is revealed when message bit `i` equals `b`.
    values: Box<[[Digest32; 2]; BITS]>,
}

impl std::fmt::Debug for LamportSecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LamportSecretKey(<redacted>)")
    }
}

/// A Lamport one-time public key: the hash of each secret value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportPublicKey {
    hashes: Vec<[Digest32; 2]>,
}

impl LamportPublicKey {
    /// Compresses the 2·256 hash blocks into a single digest — the form in
    /// which one-time keys appear as Merkle leaves.
    pub fn digest(&self) -> Digest32 {
        let mut h = Sha256::new();
        for pair in &self.hashes {
            h.update(pair[0].as_bytes());
            h.update(pair[1].as_bytes());
        }
        h.finalize()
    }
}

/// A Lamport signature: per message bit, the revealed secret value plus the
/// complementary public hash (so a verifier can reconstruct the compressed
/// public key digest without out-of-band key blocks).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LamportSignature {
    /// Revealed secret value for each message bit.
    revealed: Vec<Digest32>,
    /// Public hash of the *unrevealed* partner value for each bit.
    complement: Vec<Digest32>,
}

impl LamportSignature {
    /// Wire size in bytes: 2 × 256 × 32.
    pub const ENCODED_LEN: usize = 2 * BITS * 32;

    /// Byte size of this signature as transmitted.
    pub fn byte_len(&self) -> usize {
        Self::ENCODED_LEN
    }

    /// Folds the signature contents into a digest, used when an outer party
    /// signs *this signature* in a hashkey chain.
    pub fn digest(&self) -> Digest32 {
        let mut h = Sha256::new();
        for d in &self.revealed {
            h.update(d.as_bytes());
        }
        for d in &self.complement {
            h.update(d.as_bytes());
        }
        h.finalize()
    }

    /// Reconstructs the compressed one-time public key digest this signature
    /// commits to for `message`, or `None` if the signature is structurally
    /// invalid. Verification is "reconstruct, then compare to the trusted
    /// key digest".
    pub fn reconstruct_pk_digest(&self, message: &Digest32) -> Option<Digest32> {
        if self.revealed.len() != BITS || self.complement.len() != BITS {
            return None;
        }
        let mut h = Sha256::new();
        for i in 0..BITS {
            let bit = bit_of(message, i);
            let revealed_hash = sha256(self.revealed[i].as_bytes());
            let (h0, h1) = if bit == 0 {
                (revealed_hash, self.complement[i])
            } else {
                (self.complement[i], revealed_hash)
            };
            h.update(h0.as_bytes());
            h.update(h1.as_bytes());
        }
        Some(h.finalize())
    }
}

/// Generates a key pair deterministically from `seed` and a key index.
///
/// Distinct `(seed, index)` pairs yield independent keys, which is how the
/// Merkle scheme derives its leaf keys.
pub fn keygen(seed: &[u8; 32], index: u64) -> (LamportSecretKey, LamportPublicKey) {
    let mut values = Box::new([[Digest32::ZERO; 2]; BITS]);
    let mut hashes = Vec::with_capacity(BITS);
    for i in 0..BITS {
        let v0 = derive_key(seed, "lamport/v0", index * BITS as u64 + i as u64);
        let v1 = derive_key(seed, "lamport/v1", index * BITS as u64 + i as u64);
        values[i] = [v0, v1];
        hashes.push([sha256(v0.as_bytes()), sha256(v1.as_bytes())]);
    }
    (LamportSecretKey { values }, LamportPublicKey { hashes })
}

/// Signs a 256-bit message digest, consuming the one-time key.
///
/// Taking the key by value enforces one-time use at the type level: a
/// `LamportSecretKey` cannot be signed with twice without cloning, and
/// cloning to re-sign is a deliberate (and greppable) act.
pub fn sign(key: LamportSecretKey, message: &Digest32) -> LamportSignature {
    let mut revealed = Vec::with_capacity(BITS);
    let mut complement = Vec::with_capacity(BITS);
    for i in 0..BITS {
        let bit = bit_of(message, i);
        revealed.push(key.values[i][bit]);
        complement.push(sha256(key.values[i][1 - bit].as_bytes()));
    }
    LamportSignature { revealed, complement }
}

/// Verifies `sig` on `message` against a compressed public key digest.
///
/// Reconstructs the full public key from the revealed values (hashing them)
/// and the complementary hashes, compresses it, and compares with
/// `pk_digest`.
pub fn verify(sig: &LamportSignature, message: &Digest32, pk_digest: &Digest32) -> bool {
    sig.reconstruct_pk_digest(message) == Some(*pk_digest)
}

/// Bit `i` of a digest, MSB-first within each byte.
fn bit_of(d: &Digest32, i: usize) -> usize {
    let byte = d.as_bytes()[i / 8];
    ((byte >> (7 - (i % 8))) & 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn msg(text: &[u8]) -> Digest32 {
        sha256(text)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let seed = [42u8; 32];
        let (sk, pk) = keygen(&seed, 0);
        let m = msg(b"hello");
        let sig = sign(sk, &m);
        assert!(verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn wrong_message_rejected() {
        let (sk, pk) = keygen(&[1u8; 32], 0);
        let sig = sign(sk, &msg(b"pay bob 5"));
        assert!(!verify(&sig, &msg(b"pay mallory 500"), &pk.digest()));
    }

    #[test]
    fn wrong_key_rejected() {
        let (sk, _) = keygen(&[1u8; 32], 0);
        let (_, pk2) = keygen(&[2u8; 32], 0);
        let m = msg(b"x");
        let sig = sign(sk, &m);
        assert!(!verify(&sig, &m, &pk2.digest()));
    }

    #[test]
    fn distinct_indices_yield_distinct_keys() {
        let seed = [9u8; 32];
        let (_, pk0) = keygen(&seed, 0);
        let (_, pk1) = keygen(&seed, 1);
        assert_ne!(pk0.digest(), pk1.digest());
    }

    #[test]
    fn keygen_deterministic() {
        let seed = [7u8; 32];
        let (_, a) = keygen(&seed, 3);
        let (_, b) = keygen(&seed, 3);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn tampered_signature_rejected() {
        let (sk, pk) = keygen(&[5u8; 32], 0);
        let m = msg(b"msg");
        let mut sig = sign(sk, &m);
        sig.revealed[17] = sha256(b"tamper");
        assert!(!verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn tampered_complement_rejected() {
        let (sk, pk) = keygen(&[5u8; 32], 0);
        let m = msg(b"msg");
        let mut sig = sign(sk, &m);
        sig.complement[200] = sha256(b"tamper");
        assert!(!verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn truncated_signature_rejected() {
        let (sk, pk) = keygen(&[5u8; 32], 0);
        let m = msg(b"msg");
        let mut sig = sign(sk, &m);
        sig.revealed.pop();
        assert!(!verify(&sig, &m, &pk.digest()));
    }

    #[test]
    fn signature_digest_is_content_sensitive() {
        let (sk, _) = keygen(&[5u8; 32], 0);
        let m = msg(b"msg");
        let sig = sign(sk, &m);
        let d1 = sig.digest();
        let mut tampered = sig.clone();
        tampered.revealed[0] = sha256(b"other");
        assert_ne!(d1, tampered.digest());
    }

    #[test]
    fn byte_len_constant() {
        let (sk, _) = keygen(&[5u8; 32], 0);
        let sig = sign(sk, &msg(b"m"));
        assert_eq!(sig.byte_len(), LamportSignature::ENCODED_LEN);
        assert_eq!(sig.byte_len(), 16384);
    }

    #[test]
    fn secret_key_debug_redacted() {
        let (sk, _) = keygen(&[1u8; 32], 0);
        assert_eq!(format!("{sk:?}"), "LamportSecretKey(<redacted>)");
    }

    #[test]
    fn bit_extraction_msb_first() {
        let mut b = [0u8; 32];
        b[0] = 0b1000_0000;
        b[1] = 0b0000_0001;
        let d = Digest32(b);
        assert_eq!(bit_of(&d, 0), 1);
        assert_eq!(bit_of(&d, 1), 0);
        assert_eq!(bit_of(&d, 15), 1);
    }
}
