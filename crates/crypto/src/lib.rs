//! Hash-based cryptography for the atomic swap system.
//!
//! The paper needs exactly two primitives (§2.2, §4.1):
//!
//! 1. a cryptographic hash function `H(·)` for hashlocks — a leader creates
//!    a secret `s` and publishes `h = H(s)`; producing `s` opens the lock;
//! 2. digital signatures `sig(x, v)` so hashkeys can carry the nested chain
//!    `σ = sig(···sig(s, u_k) ···, u_0)` proving every party along the path
//!    endorsed the secret's release.
//!
//! Both are built from scratch on SHA-256 (no external crypto crates are on
//! the sanctioned dependency list):
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256, tested against the NIST example
//!   vectors,
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), used for deterministic key
//!   derivation,
//! * [`secret`] — [`Secret`]s and [`Hashlock`]s,
//! * [`merkle`] — Merkle trees with inclusion proofs,
//! * [`lamport`] — Lamport one-time signatures over 256-bit digests,
//! * [`mss`] — a Merkle signature scheme turning 2^h one-time keys into one
//!   many-time identity (this is what parties sign hashkeys with),
//! * [`sigchain`] — the nested hashkey signature chains of §4.1.
//!
//! # Example
//!
//! ```
//! use swap_crypto::{Hashlock, Secret};
//! let s = Secret::from_bytes([7u8; 32]);
//! let h = s.hashlock();
//! assert!(h.matches(&s));
//! assert!(!h.matches(&Secret::from_bytes([8u8; 32])));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hmac;
pub mod lamport;
pub mod merkle;
pub mod mss;
pub mod secret;
pub mod sha256;
pub mod sigchain;

pub use hmac::HmacEngine;
pub use mss::{KeysExhaustedError, MssKeypair, MssPublicKey, MssSignature};
pub use secret::{Hashlock, Secret};
pub use sha256::{sha256, sha256_32, sha256_pair, Digest32};
pub use sigchain::{Address, SigChain, SigChainError};
