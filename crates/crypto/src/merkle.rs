//! Merkle trees with inclusion proofs.
//!
//! Used in two places: the [`mss`](crate::mss) signature scheme (leaves are
//! one-time public keys, the root is the party's identity) and the chain
//! substrate (block transaction roots).

use serde::{Deserialize, Serialize};

use crate::sha256::{sha256_concat, tagged_hash, Digest32};

const LEAF_TAG: &str = "swap/merkle/leaf/v1";
const NODE_TAG: &str = "swap/merkle/node/v1";

/// Hashes a leaf payload (domain-separated from interior nodes, preventing
/// second-preimage tree attacks).
pub fn leaf_hash(data: &[u8]) -> Digest32 {
    tagged_hash(LEAF_TAG, data)
}

/// Hashes two child nodes into a parent.
pub fn node_hash(left: &Digest32, right: &Digest32) -> Digest32 {
    let tag = NODE_TAG.as_bytes();
    let len = [tag.len() as u8];
    sha256_concat(&[&len, tag, left.as_bytes(), right.as_bytes()])
}

/// A full Merkle tree over a non-empty list of leaf payload hashes.
///
/// Odd layers duplicate their last node (Bitcoin-style), so any leaf count
/// works. The tree stores every level, making proof extraction O(log n).
///
/// # Example
///
/// ```
/// use swap_crypto::merkle::{leaf_hash, MerkleTree};
/// let leaves: Vec<_> = (0u8..5).map(|i| leaf_hash(&[i])).collect();
/// let tree = MerkleTree::from_leaves(leaves.clone()).unwrap();
/// let proof = tree.prove(3).unwrap();
/// assert!(proof.verify(&leaves[3], tree.root()));
/// assert!(!proof.verify(&leaves[2], tree.root()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleTree {
    /// `levels[0]` = leaves, last level = `[root]`.
    levels: Vec<Vec<Digest32>>,
}

/// Error constructing a tree from an empty leaf list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyTreeError;

impl std::fmt::Display for EmptyTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a merkle tree needs at least one leaf")
    }
}

impl std::error::Error for EmptyTreeError {}

impl MerkleTree {
    /// Builds a tree over already-hashed leaves.
    ///
    /// # Errors
    ///
    /// Returns [`EmptyTreeError`] if `leaves` is empty.
    pub fn from_leaves(leaves: Vec<Digest32>) -> Result<Self, EmptyTreeError> {
        if leaves.is_empty() {
            return Err(EmptyTreeError);
        }
        let mut levels = vec![leaves];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(node_hash(left, right));
            }
            levels.push(next);
        }
        Ok(MerkleTree { levels })
    }

    /// The root commitment.
    pub fn root(&self) -> &Digest32 {
        &self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The leaf hash at `index`, if in range.
    pub fn leaf(&self, index: usize) -> Option<&Digest32> {
        self.levels[0].get(index)
    }

    /// Produces an inclusion proof for the leaf at `index`.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_index = i ^ 1;
            let sibling = level.get(sibling_index).unwrap_or(&level[i]);
            siblings.push(*sibling);
            i /= 2;
        }
        Some(MerkleProof { index, siblings })
    }
}

/// An inclusion proof: the sibling hashes along the path to the root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    index: usize,
    siblings: Vec<Digest32>,
}

impl MerkleProof {
    /// The proven leaf index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The sibling hashes along the path to the root, bottom-up.
    pub fn siblings(&self) -> &[Digest32] {
        &self.siblings
    }

    /// Proof depth (tree height).
    pub fn depth(&self) -> usize {
        self.siblings.len()
    }

    /// Byte size of the proof as transmitted (32 bytes per sibling + 8 for
    /// the index).
    pub fn byte_len(&self) -> usize {
        8 + 32 * self.siblings.len()
    }

    /// Verifies that `leaf` is at `self.index()` under `root`.
    pub fn verify(&self, leaf: &Digest32, root: &Digest32) -> bool {
        let mut acc = *leaf;
        let mut i = self.index;
        for sibling in &self.siblings {
            acc = if i % 2 == 0 { node_hash(&acc, sibling) } else { node_hash(sibling, &acc) };
            i /= 2;
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn leaves(n: usize) -> Vec<Digest32> {
        (0..n).map(|i| leaf_hash(&(i as u64).to_be_bytes())).collect()
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(MerkleTree::from_leaves(vec![]), Err(EmptyTreeError));
        assert!(EmptyTreeError.to_string().contains("at least one"));
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        assert_eq!(tree.root(), &l[0]);
        assert_eq!(tree.leaf_count(), 1);
        let proof = tree.prove(0).unwrap();
        assert_eq!(proof.depth(), 0);
        assert!(proof.verify(&l[0], tree.root()));
    }

    #[test]
    fn proofs_verify_for_all_sizes_and_indices() {
        for n in 1..=17 {
            let l = leaves(n);
            let tree = MerkleTree::from_leaves(l.clone()).unwrap();
            for (i, leaf) in l.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(leaf, tree.root()), "n={n} i={i}");
                assert_eq!(proof.index(), i);
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let proof = tree.prove(2).unwrap();
        assert!(!proof.verify(&l[3], tree.root()));
        assert!(!proof.verify(&Digest32::ZERO, tree.root()));
    }

    #[test]
    fn wrong_root_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let proof = tree.prove(2).unwrap();
        assert!(!proof.verify(&l[2], &sha256(b"not the root")));
    }

    #[test]
    fn tampered_sibling_fails() {
        let l = leaves(8);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let mut proof = tree.prove(5).unwrap();
        proof.siblings[1] = sha256(b"evil");
        assert!(!proof.verify(&l[5], tree.root()));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::from_leaves(leaves(4)).unwrap();
        assert!(tree.prove(4).is_none());
        assert!(tree.leaf(4).is_none());
        assert!(tree.leaf(3).is_some());
    }

    #[test]
    fn roots_differ_when_any_leaf_differs() {
        let a = MerkleTree::from_leaves(leaves(6)).unwrap();
        let mut l = leaves(6);
        l[4] = leaf_hash(b"changed");
        let b = MerkleTree::from_leaves(l).unwrap();
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_and_node_hashing_domain_separated() {
        let payload = [1u8; 64];
        let as_leaf = leaf_hash(&payload);
        let halves = (Digest32([1u8; 32]), Digest32([1u8; 32]));
        let as_node = node_hash(&halves.0, &halves.1);
        assert_ne!(as_leaf, as_node);
    }

    #[test]
    fn proof_byte_len() {
        let tree = MerkleTree::from_leaves(leaves(8)).unwrap();
        let proof = tree.prove(0).unwrap();
        assert_eq!(proof.depth(), 3);
        assert_eq!(proof.byte_len(), 8 + 96);
    }

    #[test]
    fn odd_layer_duplication_consistent() {
        // 3 leaves: the right branch duplicates; proofs must still verify.
        let l = leaves(3);
        let tree = MerkleTree::from_leaves(l.clone()).unwrap();
        let proof = tree.prove(2).unwrap();
        assert!(proof.verify(&l[2], tree.root()));
    }
}
