//! A Merkle signature scheme (MSS): many-time identities from one-time keys.
//!
//! Each party derives `2^h` Lamport one-time key pairs from a seed and
//! publishes only the Merkle root of their public key digests. Signature
//! `i` consists of the Lamport signature under leaf key `i`, that leaf's
//! public key digest, and a Merkle inclusion proof. This is the `sig(x, v)`
//! primitive of the paper (§2.2) — hash-based end to end, matching the
//! hashlock trust assumptions.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::hmac::HmacEngine;
use crate::lamport::{self, LamportSignature};
use crate::merkle::{leaf_hash, MerkleProof, MerkleTree};
use crate::sha256::{tagged_hash, Digest32, Sha256};

const ADDRESS_TAG: &str = "swap/address/v1";

/// Default tree height: `2^6 = 64` signatures per identity, plenty for any
/// single swap while keeping keygen fast in tests.
pub const DEFAULT_HEIGHT: u32 = 6;

/// A party's signing identity: the seed's HMAC engine, the Merkle tree
/// over one-time public key digests, and a leaf window enforcing one-time
/// discipline.
///
/// The tree is behind an `Arc`: [`lease`](MssKeypair::lease) carves a
/// half-open window of unused leaves into a cheap second handle that
/// shares the tree, which is how an identity registry hands each swap its
/// own slice of one identity without ever copying the `2^h`-leaf tree or
/// letting two swaps sign with the same leaf.
#[derive(Debug, Clone)]
pub struct MssKeypair {
    seed: [u8; 32],
    engine: HmacEngine,
    tree: Arc<MerkleTree>,
    next_leaf: u64,
    limit: u64,
    height: u32,
}

/// The public half: the Merkle root over one-time public key digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MssPublicKey {
    root: Digest32,
    height: u32,
}

/// A complete MSS signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MssSignature {
    leaf_index: u64,
    ots: LamportSignature,
    proof: MerkleProof,
}

/// Error: all `2^h` one-time keys have been used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeysExhaustedError {
    /// The height of the exhausted key pair.
    pub height: u32,
}

impl std::fmt::Display for KeysExhaustedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all 2^{} one-time keys have been used", self.height)
    }
}

impl std::error::Error for KeysExhaustedError {}

impl MssKeypair {
    /// Derives a key pair of the default height from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        Self::from_seed_with_height(seed, DEFAULT_HEIGHT)
    }

    /// Derives a key pair with `2^height` one-time keys.
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (65 536 leaves) — keygen cost is `O(2^h)`
    /// hashing and anything larger is a configuration error in this
    /// simulation context.
    pub fn from_seed_with_height(seed: [u8; 32], height: u32) -> Self {
        assert!(height <= 16, "MSS height {height} too large");
        let leaf_count = 1u64 << height;
        let engine = HmacEngine::new(&seed);
        let leaves: Vec<Digest32> = (0..leaf_count)
            .map(|i| leaf_hash(lamport::public_key_with(&engine, i).digest().as_bytes()))
            .collect();
        let tree = Arc::new(MerkleTree::from_leaves(leaves).expect("leaf_count >= 1"));
        MssKeypair { seed, engine, tree, next_leaf: 0, limit: leaf_count, height }
    }

    /// Rebuilds a keypair from its seed and previously computed leaf
    /// digests, skipping the `O(2^h)` Lamport keygen — the expensive part
    /// of [`from_seed_with_height`](Self::from_seed_with_height). This is
    /// the snapshot-recovery path: the store persists `(seed, height,
    /// leaves, next_leaf)` and gets back a keypair whose tree, signatures,
    /// and leaf cursor are identical to the original's.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty, its length is not `2^height`, or
    /// `next_leaf` exceeds the leaf count — all of which mean the caller's
    /// stored state is corrupt, which the store's checksums should have
    /// caught before this point.
    pub fn from_parts(seed: [u8; 32], height: u32, leaves: Vec<Digest32>, next_leaf: u64) -> Self {
        assert!(height <= 16, "MSS height {height} too large");
        let leaf_count = 1u64 << height;
        assert_eq!(leaves.len() as u64, leaf_count, "leaf count must be 2^height");
        assert!(next_leaf <= leaf_count, "leaf cursor past the tree");
        let engine = HmacEngine::new(&seed);
        let tree = Arc::new(MerkleTree::from_leaves(leaves).expect("leaf_count >= 1"));
        MssKeypair { seed, engine, tree, next_leaf, limit: leaf_count, height }
    }

    /// The seed this keypair derives from.
    pub const fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The leaf digests of the Merkle tree, in index order — together with
    /// [`seed`](Self::seed) and [`next_leaf`](Self::next_leaf) this is the
    /// complete durable state of a master keypair (see
    /// [`from_parts`](Self::from_parts)).
    pub fn leaf_digests(&self) -> Vec<Digest32> {
        (0..self.tree.leaf_count()).filter_map(|i| self.tree.leaf(i).copied()).collect()
    }

    /// Fast-forwards the leaf cursor to `next_leaf`, for WAL replay of
    /// lease operations already reflected in the stored cursor.
    ///
    /// # Panics
    ///
    /// Panics if the cursor would move backwards or past the limit.
    pub fn with_leaf_cursor(mut self, next_leaf: u64) -> Self {
        assert!(
            next_leaf >= self.next_leaf && next_leaf <= self.limit,
            "leaf cursor {next_leaf} outside [{}, {}]",
            self.next_leaf,
            self.limit
        );
        self.next_leaf = next_leaf;
        self
    }

    /// The public key.
    pub fn public_key(&self) -> MssPublicKey {
        MssPublicKey { root: *self.tree.root(), height: self.height }
    }

    /// How many signatures remain in this handle's leaf window.
    pub fn remaining(&self) -> u64 {
        self.limit - self.next_leaf
    }

    /// The next leaf index this handle would sign with.
    pub fn next_leaf(&self) -> u64 {
        self.next_leaf
    }

    /// One past the last leaf index this handle may sign with (`2^h` for a
    /// freshly minted keypair, smaller for a [`lease`](MssKeypair::lease)).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The tree height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Splits off a handle over the next `count` unused leaves and advances
    /// this handle past them. The lease shares the Merkle tree (an `Arc`
    /// bump, not a copy) and the derivation engine; its `sign` runs out —
    /// with the usual checked [`KeysExhaustedError`] — after exactly
    /// `count` signatures. Windows never overlap, so leases handed to
    /// concurrently executing swaps keep the global one-leaf-one-signature
    /// invariant by construction.
    ///
    /// # Errors
    ///
    /// Returns [`KeysExhaustedError`] if fewer than `count` leaves remain;
    /// this handle is left unchanged.
    pub fn lease(&mut self, count: u64) -> Result<MssKeypair, KeysExhaustedError> {
        if self.remaining() < count {
            return Err(KeysExhaustedError { height: self.height });
        }
        let lease = MssKeypair {
            seed: self.seed,
            engine: self.engine.clone(),
            tree: Arc::clone(&self.tree),
            next_leaf: self.next_leaf,
            limit: self.next_leaf + count,
            height: self.height,
        };
        self.next_leaf += count;
        Ok(lease)
    }

    /// Signs a 256-bit message digest with the next unused one-time key.
    ///
    /// # Errors
    ///
    /// Returns [`KeysExhaustedError`] once the handle's leaf window — all
    /// `2^h` keys for a minted keypair, the leased slice for a lease — is
    /// spent.
    pub fn sign(&mut self, message: &Digest32) -> Result<MssSignature, KeysExhaustedError> {
        if self.next_leaf >= self.limit {
            return Err(KeysExhaustedError { height: self.height });
        }
        let index = self.next_leaf;
        self.next_leaf += 1;
        let sk = lamport::secret_key_with(&self.engine, index);
        let ots = lamport::sign(sk, message);
        let proof = self.tree.prove(index as usize).expect("index < leaf count");
        Ok(MssSignature { leaf_index: index, ots, proof })
    }
}

impl MssPublicKey {
    /// Verifies `sig` over `message`.
    ///
    /// Checks: (1) the Lamport signature reconstructs some one-time public
    /// key digest, and (2) that digest sits at `sig.leaf_index` under this
    /// identity's Merkle root.
    pub fn verify(&self, message: &Digest32, sig: &MssSignature) -> bool {
        if sig.leaf_index >= (1u64 << self.height) {
            return false;
        }
        // Reconstruct the claimed one-time pk digest from the signature.
        let Some(claimed_pk_digest) = reconstruct_ots_pk(&sig.ots, message) else {
            return false;
        };
        let leaf = leaf_hash(claimed_pk_digest.as_bytes());
        sig.proof.index() == sig.leaf_index as usize && sig.proof.verify(&leaf, &self.root)
    }

    /// Mints a public key directly from a Merkle root, without deriving
    /// the underlying one-time keys. The resulting identity has a valid
    /// [`address`](Self::address) but **cannot sign** — no keypair knows
    /// its leaves. Intended for simulation-scale order books (10⁵–10⁶
    /// distinct parties), where running the O(2ʰ) keygen per party is
    /// infeasible and only addresses/spec assembly are exercised.
    pub const fn from_root(root: Digest32, height: u32) -> Self {
        MssPublicKey { root, height }
    }

    /// The on-chain address of this identity: a tagged hash of the root.
    pub fn address(&self) -> crate::sigchain::Address {
        crate::sigchain::Address::from_digest(tagged_hash(ADDRESS_TAG, self.root.as_bytes()))
    }

    /// The raw Merkle root.
    pub const fn root(&self) -> &Digest32 {
        &self.root
    }

    /// The tree height.
    pub const fn height(&self) -> u32 {
        self.height
    }
}

/// Rebuilds the one-time public key digest a Lamport signature commits to,
/// or `None` if the signature is structurally invalid.
fn reconstruct_ots_pk(sig: &LamportSignature, message: &Digest32) -> Option<Digest32> {
    sig.reconstruct_pk_digest(message)
}

impl MssSignature {
    /// The one-time key index used.
    pub fn leaf_index(&self) -> u64 {
        self.leaf_index
    }

    /// Wire size in bytes.
    pub fn byte_len(&self) -> usize {
        8 + self.ots.byte_len() + self.proof.byte_len()
    }

    /// Digest of the whole signature, used when an outer hashkey chain link
    /// signs this one.
    pub fn digest(&self) -> Digest32 {
        let mut h = Sha256::new();
        h.update(&self.leaf_index.to_be_bytes());
        h.update(self.ots.digest().as_bytes());
        h.update(&(self.proof.index() as u64).to_be_bytes());
        for sibling in self.proof.siblings() {
            h.update(sibling.as_bytes());
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn pair() -> MssKeypair {
        MssKeypair::from_seed_with_height([3u8; 32], 3)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut kp = pair();
        let pk = kp.public_key();
        let m = sha256(b"hello");
        let sig = kp.sign(&m).unwrap();
        assert!(pk.verify(&m, &sig));
    }

    #[test]
    fn multiple_signatures_distinct_leaves() {
        let mut kp = pair();
        let pk = kp.public_key();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..8u64 {
            let m = sha256(&i.to_be_bytes());
            let sig = kp.sign(&m).unwrap();
            assert!(pk.verify(&m, &sig), "sig {i}");
            assert!(seen.insert(sig.leaf_index()), "leaf reuse at {i}");
        }
        assert_eq!(kp.remaining(), 0);
    }

    #[test]
    fn exhaustion_reported() {
        let mut kp = MssKeypair::from_seed_with_height([1u8; 32], 1);
        let m = sha256(b"x");
        kp.sign(&m).unwrap();
        kp.sign(&m).unwrap();
        let err = kp.sign(&m).unwrap_err();
        assert_eq!(err, KeysExhaustedError { height: 1 });
        assert!(err.to_string().contains("2^1"));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut kp = pair();
        let pk = kp.public_key();
        let sig = kp.sign(&sha256(b"real")).unwrap();
        assert!(!pk.verify(&sha256(b"forged"), &sig));
    }

    #[test]
    fn wrong_identity_rejected() {
        let mut kp = pair();
        let other = MssKeypair::from_seed_with_height([4u8; 32], 3).public_key();
        let m = sha256(b"m");
        let sig = kp.sign(&m).unwrap();
        assert!(!other.verify(&m, &sig));
    }

    #[test]
    fn out_of_range_leaf_rejected() {
        let mut kp = pair();
        let pk = kp.public_key();
        let m = sha256(b"m");
        let mut sig = kp.sign(&m).unwrap();
        sig.leaf_index = 1 << 3;
        assert!(!pk.verify(&m, &sig));
    }

    #[test]
    fn public_key_deterministic() {
        let a = MssKeypair::from_seed_with_height([8u8; 32], 2).public_key();
        let b = MssKeypair::from_seed_with_height([8u8; 32], 2).public_key();
        assert_eq!(a, b);
        assert_eq!(a.address(), b.address());
        assert_eq!(a.height(), 2);
    }

    #[test]
    fn addresses_differ_per_identity() {
        let a = MssKeypair::from_seed_with_height([8u8; 32], 2).public_key();
        let b = MssKeypair::from_seed_with_height([9u8; 32], 2).public_key();
        assert_ne!(a.address(), b.address());
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn signature_sizes() {
        let mut kp = pair();
        let sig = kp.sign(&sha256(b"m")).unwrap();
        // 8 (index) + 16384 (lamport) + (8 + 32*3) (proof at height 3).
        assert_eq!(sig.byte_len(), 8 + 16384 + 8 + 96);
    }

    #[test]
    fn signature_digests_differ() {
        let mut kp = pair();
        let s1 = kp.sign(&sha256(b"a")).unwrap();
        let s2 = kp.sign(&sha256(b"b")).unwrap();
        assert_ne!(s1.digest(), s2.digest());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_height_rejected() {
        let _ = MssKeypair::from_seed_with_height([0u8; 32], 17);
    }

    #[test]
    fn leases_carve_disjoint_windows() {
        let mut kp = pair();
        let pk = kp.public_key();
        let mut a = kp.lease(3).unwrap();
        let mut b = kp.lease(2).unwrap();
        assert_eq!((a.next_leaf(), a.limit()), (0, 3));
        assert_eq!((b.next_leaf(), b.limit()), (3, 5));
        assert_eq!(kp.remaining(), 3);
        let mut seen = std::collections::BTreeSet::new();
        for (i, use_a) in [true, false, true, false, true].into_iter().enumerate() {
            let m = sha256(&(i as u64).to_be_bytes());
            let handle = if use_a { &mut a } else { &mut b };
            let sig = handle.sign(&m).unwrap();
            assert!(pk.verify(&m, &sig), "lease sig {i}");
            assert!(seen.insert(sig.leaf_index()), "leaf reuse at {i}");
        }
        // Both leases are now spent; exhaustion is the checked error.
        assert_eq!(a.sign(&sha256(b"x")).unwrap_err(), KeysExhaustedError { height: 3 });
        assert_eq!(b.sign(&sha256(b"x")).unwrap_err(), KeysExhaustedError { height: 3 });
        // The parent still owns its remaining window.
        let sig = kp.sign(&sha256(b"tail")).unwrap();
        assert_eq!(sig.leaf_index(), 5);
    }

    #[test]
    fn oversized_lease_rejected_and_parent_unchanged() {
        let mut kp = MssKeypair::from_seed_with_height([6u8; 32], 1);
        assert_eq!(kp.lease(3).unwrap_err(), KeysExhaustedError { height: 1 });
        assert_eq!(kp.remaining(), 2);
        assert!(kp.lease(2).is_ok());
        assert_eq!(kp.remaining(), 0);
        assert_eq!(kp.lease(1).unwrap_err(), KeysExhaustedError { height: 1 });
    }

    #[test]
    fn from_parts_rebuilds_identical_keypair() {
        let mut original = pair();
        let m = sha256(b"before snapshot");
        let s0 = original.sign(&m).unwrap();
        let s1 = original.sign(&m).unwrap();
        let rebuilt = MssKeypair::from_parts(
            *original.seed(),
            original.height(),
            original.leaf_digests(),
            original.next_leaf(),
        );
        assert_eq!(rebuilt.public_key(), original.public_key());
        assert_eq!(rebuilt.next_leaf(), original.next_leaf());
        assert_eq!(rebuilt.remaining(), original.remaining());
        // Both continue with the same leaves and identical signatures.
        let m2 = sha256(b"after recovery");
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.sign(&m2).unwrap(), original.sign(&m2).unwrap());
        // And the recovered signatures verify alongside pre-snapshot ones.
        let pk = rebuilt.public_key();
        assert!(pk.verify(&m, &s0) && pk.verify(&m, &s1));
    }

    #[test]
    fn leaf_cursor_fast_forward() {
        let kp = pair().with_leaf_cursor(5);
        assert_eq!(kp.next_leaf(), 5);
        assert_eq!(kp.remaining(), 3);
        let mut sequential = pair();
        for _ in 0..5 {
            sequential.sign(&sha256(b"skip")).unwrap();
        }
        let mut kp = kp;
        assert_eq!(kp.sign(&sha256(b"m")).unwrap(), sequential.sign(&sha256(b"m")).unwrap());
    }

    #[test]
    #[should_panic(expected = "leaf cursor")]
    fn leaf_cursor_cannot_rewind() {
        let _ = pair().with_leaf_cursor(3).with_leaf_cursor(1);
    }

    #[test]
    fn leased_signatures_match_sequential_signing() {
        // A lease signs with exactly the leaves the parent would have used.
        let m = sha256(b"same message");
        let mut sequential = pair();
        let s0 = sequential.sign(&m).unwrap();
        let s1 = sequential.sign(&m).unwrap();
        let mut parent = pair();
        let mut lease = parent.lease(2).unwrap();
        assert_eq!(lease.sign(&m).unwrap(), s0);
        assert_eq!(lease.sign(&m).unwrap(), s1);
    }
}
