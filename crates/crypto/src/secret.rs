//! Secrets and hashlocks — the atoms of hashed timelock contracts.
//!
//! A leader creates a secret `s` and publishes `h = H(s)` (§1, §4.1). The
//! contract releases its asset when shown a preimage of `h`. [`Secret`]
//! deliberately does not implement `Display` and redacts itself in `Debug`,
//! so simulation logs cannot leak preimages by accident.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::sha256::{tagged_hash, Digest32};

/// Domain-separation tag for hashlock hashing.
const HASHLOCK_TAG: &str = "swap/hashlock/v1";

/// A 256-bit hashlock secret.
///
/// # Example
///
/// ```
/// use swap_crypto::Secret;
/// let s = Secret::from_bytes([1u8; 32]);
/// let h = s.hashlock();
/// assert!(h.matches(&s));
/// // Debug output never shows the preimage.
/// assert_eq!(format!("{s:?}"), "Secret(<redacted>)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Secret([u8; 32]);

impl Secret {
    /// Wraps raw bytes as a secret.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Secret(bytes)
    }

    /// Draws a fresh random secret.
    pub fn random<R: RngCore>(rng: &mut R) -> Self {
        let mut b = [0u8; 32];
        rng.fill_bytes(&mut b);
        Secret(b)
    }

    /// The matching hashlock `h = H(s)`.
    pub fn hashlock(&self) -> Hashlock {
        Hashlock(tagged_hash(HASHLOCK_TAG, &self.0))
    }

    /// The raw bytes — needed when a secret is revealed on-chain.
    pub const fn reveal(&self) -> &[u8; 32] {
        &self.0
    }
}

impl std::fmt::Debug for Secret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Secret(<redacted>)")
    }
}

/// A hashlock `h = H(s)`: publishable commitment to a secret.
///
/// # Example
///
/// ```
/// use swap_crypto::{Hashlock, Secret};
/// let s = Secret::from_bytes([2u8; 32]);
/// let h: Hashlock = s.hashlock();
/// assert_eq!(h, s.hashlock()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Hashlock(Digest32);

impl Hashlock {
    /// Whether `candidate` is the preimage of this hashlock.
    pub fn matches(&self, candidate: &Secret) -> bool {
        candidate.hashlock().0 == self.0
    }

    /// The digest value published on-chain.
    pub const fn digest(&self) -> &Digest32 {
        &self.0
    }

    /// Rebuilds a hashlock from a digest previously obtained via
    /// [`digest`](Self::digest) — the snapshot-restore path, where the
    /// preimage is stored separately (or not at all for foreign offers).
    pub const fn from_digest(digest: Digest32) -> Self {
        Hashlock(digest)
    }

    /// Byte size of a hashlock as stored on-chain.
    pub const ENCODED_LEN: usize = 32;
}

impl std::fmt::Display for Hashlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h:{}", self.0.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matching_is_exact() {
        let s = Secret::from_bytes([3u8; 32]);
        let h = s.hashlock();
        assert!(h.matches(&s));
        let mut other = *s.reveal();
        other[31] ^= 1;
        assert!(!h.matches(&Secret::from_bytes(other)));
    }

    #[test]
    fn random_secrets_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Secret::random(&mut rng);
        let b = Secret::random(&mut rng);
        assert_ne!(a, b);
        assert_ne!(a.hashlock(), b.hashlock());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Secret::random(&mut StdRng::seed_from_u64(9));
        let b = Secret::random(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn debug_redacts() {
        let s = Secret::from_bytes([0xffu8; 32]);
        let dbg = format!("{s:?}");
        assert!(!dbg.contains("ff"));
        assert!(dbg.contains("redacted"));
    }

    #[test]
    fn hashlock_display_short() {
        let h = Secret::from_bytes([1u8; 32]).hashlock();
        let text = h.to_string();
        assert!(text.starts_with("h:"));
        assert_eq!(text.len(), 2 + 8);
    }

    #[test]
    fn domain_separation_from_plain_sha() {
        // The hashlock is not the bare SHA-256 of the secret, so a secret
        // reused in another hashing context cannot be confused for a lock.
        let s = Secret::from_bytes([7u8; 32]);
        assert_ne!(*s.hashlock().digest(), crate::sha256::sha256(s.reveal()));
    }
}
