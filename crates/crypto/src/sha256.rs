//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The sanctioned dependency list has no hashing crate, and the whole swap
//! protocol rests on hashlocks, so the primitive lives here with the NIST
//! example vectors as tests. The compression function is unrolled with
//! rotating register roles, and the two fixed input shapes that dominate
//! MSS key generation get dedicated single- and double-compression entry
//! points ([`sha256_32`], [`sha256_pair`]) that skip buffering and — for
//! the pair case — reuse a compile-time-expanded padding-block schedule.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 256-bit digest — the output of [`sha256`] and the base unit of every
/// hash-derived identity in the workspace (hashlocks, addresses, Merkle
/// nodes).
///
/// # Example
///
/// ```
/// use swap_crypto::sha256;
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest32(pub [u8; 32]);

impl Digest32 {
    /// The all-zero digest (useful as a genesis placeholder, never a real
    /// hash output in practice).
    pub const ZERO: Digest32 = Digest32([0u8; 32]);

    /// The raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-character lowercase/uppercase hex string.
    pub fn from_hex(hex: &str) -> Option<Digest32> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Digest32(out))
    }

    /// A short 8-hex-character prefix for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl fmt::Debug for Digest32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest32({}…)", self.short())
    }
}

impl fmt::Display for Digest32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Digest32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest32 {
    fn from(b: [u8; 32]) -> Self {
        Digest32(b)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One SHA-256 round with explicit register roles. The caller rotates the
/// role assignment instead of the registers themselves (the classic
/// unrolling trick), so each round is two adds into fixed locals rather
/// than an eight-way shuffle.
macro_rules! round {
    ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $kw:expr) => {{
        let t1 = $h
            .wrapping_add($e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25))
            .wrapping_add(($e & $f) ^ (!$e & $g))
            .wrapping_add($kw);
        let t2 = ($a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22))
            .wrapping_add(($a & $b) ^ ($a & $c) ^ ($b & $c));
        $d = $d.wrapping_add(t1);
        $h = t1.wrapping_add(t2);
    }};
}

/// Expands the first 16 schedule words into the full 64. `const` so fixed
/// blocks (like the padding block of every 64-byte message) can have their
/// schedule computed at compile time.
const fn expand_schedule(mut w: [u32; 64]) -> [u32; 64] {
    let mut i = 16;
    while i < 64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        i += 1;
    }
    w
}

/// The fully expanded schedule of the padding block every exactly-64-byte
/// message ends with (`0x80`, zeros, bit length 512) — [`sha256_pair`]
/// skips the expansion entirely for its second compression.
const PAD64_SCHEDULE: [u32; 64] = expand_schedule({
    let mut w = [0u32; 64];
    w[0] = 0x8000_0000;
    w[15] = 512;
    w
});

/// The 64 rounds over an already expanded schedule, unrolled 8-at-a-time
/// with rotating register roles.
fn compress_words(state: &mut [u32; 8], w: &[u32; 64]) {
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    let mut i = 0;
    while i < 64 {
        round!(a, b, c, d, e, f, g, h, K[i].wrapping_add(w[i]));
        round!(h, a, b, c, d, e, f, g, K[i + 1].wrapping_add(w[i + 1]));
        round!(g, h, a, b, c, d, e, f, K[i + 2].wrapping_add(w[i + 2]));
        round!(f, g, h, a, b, c, d, e, K[i + 3].wrapping_add(w[i + 3]));
        round!(e, f, g, h, a, b, c, d, K[i + 4].wrapping_add(w[i + 4]));
        round!(d, e, f, g, h, a, b, c, K[i + 5].wrapping_add(w[i + 5]));
        round!(c, d, e, f, g, h, a, b, K[i + 6].wrapping_add(w[i + 6]));
        round!(b, c, d, e, f, g, h, a, K[i + 7].wrapping_add(w[i + 7]));
        i += 8;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Expands `block`'s message schedule and runs the 64 rounds.
pub(crate) fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    let mut i = 0;
    while i < 16 {
        w[i] = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
        i += 1;
    }
    let w = expand_schedule(w);
    compress_words(state, &w);
}

#[inline]
fn state_to_digest(state: &[u32; 8]) -> Digest32 {
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    Digest32(out)
}

/// `SHA-256(left || right)` for two 32-byte digests in exactly two
/// compressions: one over the data block, one over the compile-time
/// `PAD64_SCHEDULE` padding block. This is the shape of the Lamport
/// public-key fold and of binary-tree node combination, the two inner
/// loops of MSS key generation.
pub fn sha256_pair(left: &Digest32, right: &Digest32) -> Digest32 {
    let mut state = H0;
    let mut block = [0u8; 64];
    block[..32].copy_from_slice(left.as_bytes());
    block[32..].copy_from_slice(right.as_bytes());
    compress_block(&mut state, &block);
    compress_words(&mut state, &PAD64_SCHEDULE);
    state_to_digest(&state)
}

/// `SHA-256(data)` for a 32-byte input in a single compression (message,
/// `0x80`, and the 256-bit length all fit one block). This is the per-value
/// hash of Lamport public-key derivation.
pub fn sha256_32(data: &[u8; 32]) -> Digest32 {
    let mut state = H0;
    let mut block = [0u8; 64];
    block[..32].copy_from_slice(data);
    block[32] = 0x80;
    block[62] = 0x01; // bit length 256, big-endian
    compress_block(&mut state, &block);
    state_to_digest(&state)
}

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use swap_crypto::sha256::{sha256, Sha256};
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), sha256(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0u8; 64], buffered: 0, total_len: 0 }
    }

    /// Resumes hashing from a captured midstate. `total_len` must be the
    /// number of message bytes already compressed into `state` (a multiple
    /// of 64). This is what lets [`crate::hmac::HmacEngine`] pay for its
    /// padded-key blocks once per key instead of once per MAC.
    pub(crate) fn from_midstate(state: [u32; 8], total_len: u64) -> Sha256 {
        debug_assert_eq!(total_len % 64, 0);
        Sha256 { state, buffer: [0u8; 64], buffered: 0, total_len }
    }

    /// The current compression state; only meaningful at a block boundary.
    pub(crate) fn midstate(&self) -> [u32; 8] {
        debug_assert_eq!(self.buffered, 0, "midstate capture requires a block boundary");
        self.state
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len =
            self.total_len.checked_add(data.len() as u64).expect("SHA-256 input exceeds u64 bytes");
        let mut input = data;
        if self.buffered > 0 {
            let want = 64 - self.buffered;
            let take = want.min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                compress_block(&mut self.state, &block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            compress_block(&mut self.state, &b);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest32 {
        let bit_len = self.total_len * 8;
        // Padding: 0x80, zeros, 8-byte big-endian bit length — built as
        // whole blocks rather than byte-at-a-time.
        let mut block = [0u8; 64];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        block[self.buffered] = 0x80;
        if self.buffered >= 56 {
            compress_block(&mut self.state, &block);
            block = [0u8; 64];
        }
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        compress_block(&mut self.state, &block);
        state_to_digest(&self.state)
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest32 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 of the concatenation of several byte slices, without allocating.
pub fn sha256_concat(parts: &[&[u8]]) -> Digest32 {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Domain-separated hash: `SHA-256(tag_len || tag || data)`. Tags keep the
/// workspace's many hash uses (hashlocks, tree nodes, signatures, addresses)
/// from colliding with each other.
pub fn tagged_hash(tag: &str, data: &[u8]) -> Digest32 {
    let tag_bytes = tag.as_bytes();
    let len = [tag_bytes.len() as u8];
    sha256_concat(&[&len, tag_bytes, data])
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 example vectors plus RFC test strings.
    const VECTORS: &[(&[u8], &str)] = &[
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
        (b"The quick brown fox jumps over the lazy dog",
         "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"),
    ];

    #[test]
    fn nist_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(sha256(input).to_hex(), *expected, "input {input:?}");
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-4: one million repetitions of 'a'.
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let msg: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let expected = sha256(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Padding edge cases: 55, 56, 63, 64, 65 bytes.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let msg = vec![0x5au8; len];
            let d1 = sha256(&msg);
            let mut h = Sha256::new();
            for b in &msg {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn concat_helper() {
        assert_eq!(sha256_concat(&[b"ab", b"c"]), sha256(b"abc"));
        assert_eq!(sha256_concat(&[]), sha256(b""));
    }

    #[test]
    fn tagged_hash_domain_separates() {
        let a = tagged_hash("hashlock", b"data");
        let b = tagged_hash("address", b"data");
        assert_ne!(a, b);
        // And differs from untagged.
        assert_ne!(a, sha256(b"data"));
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest32::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest32::from_hex("xy"), None);
        assert_eq!(Digest32::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn digest_display_and_debug() {
        let d = sha256(b"abc");
        assert_eq!(d.to_string().len(), 64);
        assert!(format!("{d:?}").contains("ba7816bf"));
        assert_eq!(d.short().len(), 8);
    }

    #[test]
    fn zero_digest() {
        assert_eq!(Digest32::ZERO.as_bytes(), &[0u8; 32]);
        assert_ne!(sha256(b""), Digest32::ZERO);
    }

    #[test]
    fn pair_matches_streaming_concat() {
        let l = sha256(b"left");
        let r = sha256(b"right");
        assert_eq!(sha256_pair(&l, &r), sha256_concat(&[l.as_bytes(), r.as_bytes()]));
        assert_eq!(sha256_pair(&Digest32::ZERO, &Digest32::ZERO), sha256(&[0u8; 64]));
    }

    #[test]
    fn sha256_32_matches_general_path() {
        for seed in 0..8u8 {
            let data = [seed.wrapping_mul(37); 32];
            assert_eq!(sha256_32(&data), sha256(&data), "seed {seed}");
        }
        assert_eq!(sha256_32(sha256(b"x").as_bytes()), sha256(sha256(b"x").as_bytes()));
    }

    #[test]
    fn midstate_resume_matches_oneshot() {
        let msg: Vec<u8> = (0..192u8).collect();
        let mut h = Sha256::new();
        h.update(&msg[..128]);
        let mut resumed = Sha256::from_midstate(h.midstate(), 128);
        resumed.update(&msg[128..]);
        assert_eq!(resumed.finalize(), sha256(&msg));
    }

    #[test]
    fn from_array() {
        let arr = [9u8; 32];
        let d: Digest32 = arr.into();
        assert_eq!(d.as_bytes(), &arr);
        assert_eq!(d.as_ref(), &arr[..]);
    }
}
