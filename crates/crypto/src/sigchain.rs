//! Nested hashkey signature chains (§4.1 of the paper).
//!
//! A hashkey for hashlock `h` on arc `(u, v)` is a triple `(s, p, σ)` where
//! `p = (u₀, …, u_k)` is a path from the counterparty `u₀ = v` to the leader
//! `u_k` who generated `s`, and
//!
//! ```text
//! σ = sig(··· sig(s, u_k) ···, u₀)
//! ```
//!
//! — the leader signs the secret, then each party along the path (walking
//! outward) signs the previous signature. A [`SigChain`] stores these links
//! innermost-first, so `links[0]` is the leader's signature and
//! `links[k]` belongs to `u₀`.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::mss::{KeysExhaustedError, MssKeypair, MssPublicKey, MssSignature};
use crate::secret::Secret;
use crate::sha256::{tagged_hash, Digest32};

const LEADER_MSG_TAG: &str = "swap/sigchain/leader/v1";
const WRAP_MSG_TAG: &str = "swap/sigchain/wrap/v1";

/// An on-chain party address: a tagged hash of the party's public key.
///
/// # Example
///
/// ```
/// use swap_crypto::MssKeypair;
/// let kp = MssKeypair::from_seed_with_height([1u8; 32], 2);
/// let addr = kp.public_key().address();
/// assert_eq!(addr, kp.public_key().address()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Address(Digest32);

impl Address {
    /// Wraps an already-computed digest as an address.
    pub const fn from_digest(d: Digest32) -> Self {
        Address(d)
    }

    /// The underlying digest.
    pub const fn digest(&self) -> &Digest32 {
        &self.0
    }

    /// Byte size as stored on-chain.
    pub const ENCODED_LEN: usize = 32;
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0.short())
    }
}

/// Why a [`SigChain`] failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigChainError {
    /// The chain's link count differs from the path's vertex count.
    LengthMismatch {
        /// Number of links in the chain.
        links: usize,
        /// Number of vertexes in the path.
        path_vertices: usize,
    },
    /// A link failed signature verification.
    BadSignature {
        /// Zero-based position, innermost (leader) first.
        position: usize,
    },
    /// A signer ran out of one-time keys while extending the chain.
    Exhausted(KeysExhaustedError),
}

impl fmt::Display for SigChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigChainError::LengthMismatch { links, path_vertices } => {
                write!(f, "chain has {links} links but path has {path_vertices} vertexes")
            }
            SigChainError::BadSignature { position } => {
                write!(f, "signature at chain position {position} is invalid")
            }
            SigChainError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SigChainError {}

impl From<KeysExhaustedError> for SigChainError {
    fn from(e: KeysExhaustedError) -> Self {
        SigChainError::Exhausted(e)
    }
}

/// The nested signature `σ` of a hashkey, innermost (leader) link first.
///
/// # Example
///
/// ```
/// use swap_crypto::{MssKeypair, Secret, SigChain};
/// let mut leader = MssKeypair::from_seed_with_height([1u8; 32], 2);
/// let mut relay = MssKeypair::from_seed_with_height([2u8; 32], 2);
/// let s = Secret::from_bytes([9u8; 32]);
///
/// // Leader signs the secret; the relay wraps the leader's signature.
/// let chain = SigChain::sign_secret(&mut leader, &s).unwrap();
/// let chain = chain.extend(&mut relay).unwrap();
///
/// // Path order is (counterparty .. leader) = (relay, leader).
/// let keys = [relay.public_key(), leader.public_key()];
/// assert!(chain.verify(&s, &keys).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SigChain {
    /// Links behind `Arc` so extension shares them with the source chain
    /// instead of deep-copying ~16 KiB of signature per inherited link.
    links: Vec<Arc<MssSignature>>,
}

impl SigChain {
    /// Starts a chain: the leader signs `sig(s, u_k)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the leader's one-time keys are exhausted.
    pub fn sign_secret(leader: &mut MssKeypair, secret: &Secret) -> Result<Self, SigChainError> {
        let msg = leader_message(secret);
        let link = leader.sign(&msg)?;
        Ok(SigChain { links: vec![Arc::new(link)] })
    }

    /// Extends the chain one hop outward: party `v` computes
    /// `sig(σ_prev, v)`, matching the paper's `unlock(s, v + p, sig(σ, v))`
    /// step. The inherited links are shared with `self` (reference-count
    /// bumps), so extension copies O(1) signature bytes regardless of chain
    /// length.
    ///
    /// # Errors
    ///
    /// Returns an error if the signer's one-time keys are exhausted.
    pub fn extend(&self, signer: &mut MssKeypair) -> Result<Self, SigChainError> {
        let msg = wrap_message(self.links.last().expect("chains are non-empty"));
        let link = signer.sign(&msg)?;
        let mut links = Vec::with_capacity(self.links.len() + 1);
        links.extend(self.links.iter().cloned());
        links.push(Arc::new(link));
        Ok(SigChain { links })
    }

    /// The links, innermost (leader) first. Exposed so callers can assert
    /// structural sharing (`Arc::ptr_eq`) and meter real payload sizes.
    pub fn links(&self) -> &[Arc<MssSignature>] {
        &self.links
    }

    /// Verifies the chain against `secret` and the path's public keys.
    ///
    /// `path_keys` is in *path order* `(u₀, …, u_k)`: counterparty first,
    /// leader last — the same order as the hashkey's path argument, so the
    /// contract can zip path vertexes with registered keys directly.
    ///
    /// # Errors
    ///
    /// Returns [`SigChainError::LengthMismatch`] or the first
    /// [`SigChainError::BadSignature`] encountered (checked innermost-out).
    pub fn verify(&self, secret: &Secret, path_keys: &[MssPublicKey]) -> Result<(), SigChainError> {
        if self.links.len() != path_keys.len() {
            return Err(SigChainError::LengthMismatch {
                links: self.links.len(),
                path_vertices: path_keys.len(),
            });
        }
        // links[0] = leader = path_keys[last]; links[i] = path_keys[k - i].
        let k = path_keys.len() - 1;
        let mut expected_msg = leader_message(secret);
        for (i, link) in self.links.iter().enumerate() {
            let key = &path_keys[k - i];
            if !key.verify(&expected_msg, link) {
                return Err(SigChainError::BadSignature { position: i });
            }
            expected_msg = wrap_message(link);
        }
        Ok(())
    }

    /// Number of links (path vertexes covered).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Chains are never empty; this exists for clippy-friendliness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total wire size in bytes.
    pub fn byte_len(&self) -> usize {
        self.links.iter().map(|l| l.byte_len()).sum()
    }
}

fn leader_message(secret: &Secret) -> Digest32 {
    tagged_hash(LEADER_MSG_TAG, secret.reveal())
}

fn wrap_message(prev: &MssSignature) -> Digest32 {
    tagged_hash(WRAP_MSG_TAG, prev.digest().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: u8) -> MssKeypair {
        MssKeypair::from_seed_with_height([seed; 32], 3)
    }

    #[test]
    fn leader_only_chain() {
        let mut leader = kp(1);
        let s = Secret::from_bytes([7u8; 32]);
        let chain = SigChain::sign_secret(&mut leader, &s).unwrap();
        assert_eq!(chain.len(), 1);
        assert!(!chain.is_empty());
        // Degenerate path (leader unlocking its own entering arc).
        assert!(chain.verify(&s, &[leader.public_key()]).is_ok());
    }

    #[test]
    fn three_hop_chain_verifies_in_path_order() {
        let mut leader = kp(1);
        let mut mid = kp(2);
        let mut outer = kp(3);
        let s = Secret::from_bytes([9u8; 32]);
        let chain = SigChain::sign_secret(&mut leader, &s)
            .unwrap()
            .extend(&mut mid)
            .unwrap()
            .extend(&mut outer)
            .unwrap();
        assert_eq!(chain.len(), 3);
        // Path (outer, mid, leader).
        let keys = [outer.public_key(), mid.public_key(), leader.public_key()];
        assert!(chain.verify(&s, &keys).is_ok());
    }

    #[test]
    fn wrong_secret_rejected() {
        let mut leader = kp(1);
        let s = Secret::from_bytes([9u8; 32]);
        let chain = SigChain::sign_secret(&mut leader, &s).unwrap();
        let wrong = Secret::from_bytes([10u8; 32]);
        assert_eq!(
            chain.verify(&wrong, &[leader.public_key()]),
            Err(SigChainError::BadSignature { position: 0 })
        );
    }

    #[test]
    fn shuffled_keys_rejected() {
        let mut leader = kp(1);
        let mut mid = kp(2);
        let s = Secret::from_bytes([9u8; 32]);
        let chain = SigChain::sign_secret(&mut leader, &s).unwrap().extend(&mut mid).unwrap();
        // Keys in the wrong order (leader first).
        let err = chain.verify(&s, &[leader.public_key(), mid.public_key()]).unwrap_err();
        assert!(matches!(err, SigChainError::BadSignature { .. }));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut leader = kp(1);
        let s = Secret::from_bytes([9u8; 32]);
        let chain = SigChain::sign_secret(&mut leader, &s).unwrap();
        let err = chain.verify(&s, &[leader.public_key(), kp(2).public_key()]).unwrap_err();
        assert_eq!(err, SigChainError::LengthMismatch { links: 1, path_vertices: 2 });
        assert!(err.to_string().contains("1 links"));
    }

    #[test]
    fn impostor_extension_detected() {
        // Mallory extends the chain but the path claims Bob signed.
        let mut leader = kp(1);
        let mut mallory = kp(66);
        let bob = kp(2);
        let s = Secret::from_bytes([9u8; 32]);
        let chain = SigChain::sign_secret(&mut leader, &s).unwrap().extend(&mut mallory).unwrap();
        let err = chain.verify(&s, &[bob.public_key(), leader.public_key()]).unwrap_err();
        assert_eq!(err, SigChainError::BadSignature { position: 1 });
    }

    #[test]
    fn middle_link_tamper_detected() {
        let mut leader = kp(1);
        let mut mid = kp(2);
        let mut outer = kp(3);
        let s = Secret::from_bytes([9u8; 32]);
        let good = SigChain::sign_secret(&mut leader, &s)
            .unwrap()
            .extend(&mut mid)
            .unwrap()
            .extend(&mut outer)
            .unwrap();
        // Replace the middle link with a signature over something else.
        let mut evil_mid = kp(2);
        let decoy = SigChain::sign_secret(&mut evil_mid, &Secret::from_bytes([1u8; 32])).unwrap();
        let mut tampered = good.clone();
        tampered.links[1] = decoy.links[0].clone();
        let keys = [outer.public_key(), mid.public_key(), leader.public_key()];
        let err = tampered.verify(&s, &keys).unwrap_err();
        assert!(matches!(err, SigChainError::BadSignature { position } if position >= 1));
    }

    #[test]
    fn byte_len_grows_per_link() {
        let mut leader = kp(1);
        let mut mid = kp(2);
        let s = Secret::from_bytes([9u8; 32]);
        let one = SigChain::sign_secret(&mut leader, &s).unwrap();
        let two = one.extend(&mut mid).unwrap();
        assert!(two.byte_len() > one.byte_len());
        assert_eq!(two.byte_len(), one.byte_len() * 2);
    }

    #[test]
    fn extension_shares_inherited_links() {
        // Extending must bump refcounts on the inherited links, never
        // deep-copy them.
        let mut leader = kp(1);
        let mut mid = kp(2);
        let mut outer = kp(3);
        let s = Secret::from_bytes([9u8; 32]);
        let base = SigChain::sign_secret(&mut leader, &s).unwrap();
        let two = base.extend(&mut mid).unwrap();
        let three = two.extend(&mut outer).unwrap();
        assert!(Arc::ptr_eq(&base.links()[0], &two.links()[0]));
        for (i, link) in two.links().iter().enumerate() {
            assert!(Arc::ptr_eq(link, &three.links()[i]), "link {i} deep-copied");
        }
    }

    #[test]
    fn exhaustion_bubbles_up() {
        let mut tiny = MssKeypair::from_seed_with_height([1u8; 32], 0);
        let s = Secret::from_bytes([9u8; 32]);
        let _ = SigChain::sign_secret(&mut tiny, &s).unwrap();
        let err = SigChain::sign_secret(&mut tiny, &s).unwrap_err();
        assert!(matches!(err, SigChainError::Exhausted(_)));
    }

    #[test]
    fn address_display() {
        let addr = kp(5).public_key().address();
        assert!(addr.to_string().starts_with('@'));
        assert_eq!(Address::ENCODED_LEN, 32);
        assert_eq!(addr.digest().as_bytes().len(), 32);
    }
}
