//! Property tests for the crypto substrate: hashing, commitments, trees,
//! and signatures must hold up under arbitrary inputs, not just vectors.

use proptest::prelude::*;
use swap_crypto::merkle::{leaf_hash, MerkleTree};
use swap_crypto::sha256::{sha256, Sha256};
use swap_crypto::{lamport, MssKeypair, Secret, SigChain};

proptest! {
    /// Incremental hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..512),
        splits in prop::collection::vec(0usize..512, 0..6),
    ) {
        let expected = sha256(&data);
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for &cut in &cuts {
            h.update(&data[prev..cut]);
            prev = cut;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), expected);
    }

    /// Distinct inputs virtually never collide (sanity against a botched
    /// compression function: any collision here is a hard failure).
    #[test]
    fn sha256_injective_on_samples(
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    /// A hashlock matches exactly its own secret.
    #[test]
    fn hashlock_binding(sa in any::<[u8; 32]>(), sb in any::<[u8; 32]>()) {
        let a = Secret::from_bytes(sa);
        let b = Secret::from_bytes(sb);
        prop_assert!(a.hashlock().matches(&a));
        prop_assert_eq!(a.hashlock().matches(&b), sa == sb);
    }

    /// Merkle inclusion proofs verify for every leaf of arbitrary trees,
    /// and fail for every *other* leaf.
    #[test]
    fn merkle_proofs_sound_and_complete(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..24),
    ) {
        let leaves: Vec<_> = payloads.iter().map(|p| leaf_hash(p)).collect();
        let tree = MerkleTree::from_leaves(leaves.clone()).expect("non-empty");
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).expect("in range");
            prop_assert!(proof.verify(leaf, tree.root()));
            for (j, other) in leaves.iter().enumerate() {
                if other != leaf {
                    prop_assert!(!proof.verify(other, tree.root()), "leaf {j} vs proof {i}");
                }
            }
        }
    }

    /// Lamport signatures verify for the signed message only.
    #[test]
    fn lamport_message_binding(
        seed in any::<[u8; 32]>(),
        msg_a in prop::collection::vec(any::<u8>(), 0..32),
        msg_b in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let (sk, pk) = lamport::keygen(&seed, 0);
        let da = sha256(&msg_a);
        let db = sha256(&msg_b);
        let sig = lamport::sign(sk, &da);
        prop_assert!(lamport::verify(&sig, &da, &pk.digest()));
        prop_assert_eq!(lamport::verify(&sig, &db, &pk.digest()), da == db);
    }

    /// MSS: every signature from a keypair verifies under its public key
    /// and fails under an unrelated one.
    #[test]
    fn mss_signature_binding(seed in any::<[u8; 32]>(), other in any::<[u8; 32]>(), n in 1usize..4) {
        prop_assume!(seed != other);
        let mut kp = MssKeypair::from_seed_with_height(seed, 2);
        let pk = kp.public_key();
        let wrong = MssKeypair::from_seed_with_height(other, 2).public_key();
        for i in 0..n {
            let msg = sha256(&[i as u8]);
            let sig = kp.sign(&msg).expect("capacity");
            prop_assert!(pk.verify(&msg, &sig));
            prop_assert!(!wrong.verify(&msg, &sig));
        }
    }

    /// Hashkey chains verify in path order and fail under any key rotation
    /// (a rotated order models a forged path attribution).
    #[test]
    fn sigchain_order_binding(secret_bytes in any::<[u8; 32]>(), links in 2usize..5) {
        let secret = Secret::from_bytes(secret_bytes);
        let mut kps: Vec<MssKeypair> = (0..links)
            .map(|i| MssKeypair::from_seed_with_height([i as u8 + 1; 32], 2))
            .collect();
        let mut chain = SigChain::sign_secret(&mut kps[0], &secret).expect("keys");
        for kp in kps.iter_mut().skip(1) {
            chain = chain.extend(kp).expect("keys");
        }
        // Path order: last signer first, leader last.
        let keys: Vec<_> = kps.iter().rev().map(|k| k.public_key()).collect();
        prop_assert!(chain.verify(&secret, &keys).is_ok());
        // Any rotation of the key order must fail.
        let mut rotated = keys.clone();
        rotated.rotate_left(1);
        prop_assert!(chain.verify(&secret, &rotated).is_err());
        // And a different secret must fail.
        let other = Secret::from_bytes([0xFE; 32]);
        if other != secret {
            prop_assert!(chain.verify(&other, &keys).is_err());
        }
    }
}
