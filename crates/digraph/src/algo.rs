//! Graph algorithms: strong connectivity, acyclicity, condensation,
//! reachability, and the paper's longest-path diameter.

use std::collections::BTreeSet;

use crate::digraph::Digraph;
use crate::ids::VertexId;

/// Largest vertex count for which [`diameter_exact`] runs the exponential
/// longest-path dynamic program. Beyond this, callers fall back to the safe
/// `|V|` upper bound.
pub const EXACT_DIAMETER_LIMIT: usize = 15;

/// Vertexes reachable from `start` (including `start`), as a dense mask.
pub fn reachable_from(d: &Digraph, start: VertexId) -> Vec<bool> {
    let mut seen = vec![false; d.vertex_count()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(v) = stack.pop() {
        for arc in d.out_arcs(v) {
            if !seen[arc.tail.index()] {
                seen[arc.tail.index()] = true;
                stack.push(arc.tail);
            }
        }
    }
    seen
}

/// Whether every vertex reaches every other vertex. Empty and singleton
/// digraphs are vacuously strongly connected.
pub fn is_strongly_connected(d: &Digraph) -> bool {
    let n = d.vertex_count();
    if n <= 1 {
        return true;
    }
    let start = VertexId::new(0);
    if reachable_from(d, start).iter().any(|&r| !r) {
        return false;
    }
    let t = d.transpose();
    reachable_from(&t, start).iter().all(|&r| r)
}

/// Tarjan's strongly connected components, iteratively (no recursion, so
/// large graphs cannot overflow the stack). Components are returned in
/// reverse topological order of the condensation (a component appears before
/// any component it has arcs into... specifically, Tarjan emits sinks first).
pub fn strongly_connected_components(d: &Digraph) -> Vec<Vec<VertexId>> {
    let n = d.vertex_count();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<VertexId>> = Vec::new();

    // Explicit DFS machine: (vertex, iterator position over successors).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let out = &d.out_arcs(VertexId::new(v as u32)).collect::<Vec<_>>();
            if *pos < out.len() {
                let w = out[*pos].tail.index();
                *pos += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                // v finished.
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack[w] = false;
                        comp.push(VertexId::new(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    components.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    components
}

/// The condensation of `d`: one vertex per strongly connected component,
/// one arc per inter-component arc of `d` (parallel condensation arcs are
/// deduplicated). Returns the condensation digraph and, for each original
/// vertex, the index of its component vertex.
pub fn condensation(d: &Digraph) -> (Digraph, Vec<usize>) {
    let comps = strongly_connected_components(d);
    let mut member = vec![0usize; d.vertex_count()];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            member[v.index()] = ci;
        }
    }
    let mut c = Digraph::new();
    for (ci, comp) in comps.iter().enumerate() {
        let names: Vec<&str> = comp.iter().map(|&v| d.name(v)).collect();
        c.add_vertex(format!("scc{}({})", ci, names.join(",")));
    }
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for arc in d.arcs() {
        let (h, t) = (member[arc.head.index()], member[arc.tail.index()]);
        if h != t && seen.insert((h, t)) {
            c.add_arc(VertexId::new(h as u32), VertexId::new(t as u32))
                .expect("condensation arc valid");
        }
    }
    (c, member)
}

/// Whether `d` has no cycles (Kahn's algorithm; parallel arcs are fine).
pub fn is_acyclic(d: &Digraph) -> bool {
    topological_order(d).is_some()
}

/// A topological order of the vertexes, or `None` if `d` has a cycle.
/// Isolated vertexes are included.
pub fn topological_order(d: &Digraph) -> Option<Vec<VertexId>> {
    let n = d.vertex_count();
    let mut indeg: Vec<usize> = (0..n).map(|v| d.in_degree(VertexId::new(v as u32))).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        let vid = VertexId::new(v as u32);
        order.push(vid);
        for arc in d.out_arcs(vid) {
            let w = arc.tail.index();
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// The paper's `diam(D)` computed exactly, or `None` when the digraph exceeds
/// [`EXACT_DIAMETER_LIMIT`] vertexes.
///
/// Definition (§2.1): a path `(u₀, …, u_ℓ)` requires `u₀, …, u_{ℓ-1}`
/// distinct, so the final vertex may close a cycle. `diam(D)` is the maximum
/// path length over all vertex pairs; in the paper's three-party cycle this
/// is 3 (the full cycle), which is exactly what makes Alice's contract
/// timelock 6Δ = (diam + D(B,A) + 1)·Δ work out.
pub fn diameter_exact(d: &Digraph) -> Option<usize> {
    let n = d.vertex_count();
    if n == 0 {
        return Some(0);
    }
    if n > EXACT_DIAMETER_LIMIT {
        return None;
    }
    // Successor masks (dedup parallel arcs).
    let succ: Vec<u32> = (0..n)
        .map(|v| {
            let mut m = 0u32;
            for arc in d.out_arcs(VertexId::new(v as u32)) {
                m |= 1 << arc.tail.index();
            }
            m
        })
        .collect();
    let mut best = 0usize;
    // For each start vertex s, dp[mask] = set of possible end vertexes of a
    // simple path starting at s visiting exactly `mask`.
    for s in 0..n {
        let mut dp = vec![0u32; 1 << n];
        dp[1 << s] = 1 << s;
        for mask in 0u32..(1u32 << n) {
            if mask & (1 << s) == 0 {
                continue;
            }
            let ends = dp[mask as usize];
            if ends == 0 {
                continue;
            }
            let len = mask.count_ones() as usize - 1;
            best = best.max(len);
            let mut rest = ends;
            while rest != 0 {
                let last = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let nexts = succ[last];
                // Closing the cycle back to s: path length = |mask| arcs.
                if nexts & (1 << s) != 0 && mask.count_ones() >= 2 {
                    best = best.max(mask.count_ones() as usize);
                }
                let mut fresh = nexts & !mask;
                while fresh != 0 {
                    let w = fresh.trailing_zeros();
                    fresh &= fresh - 1;
                    dp[(mask | (1 << w)) as usize] |= 1 << w;
                }
            }
        }
    }
    Some(best)
}

/// `D(v, target)`: the length of the longest path from `from` to `target`
/// in which `target` appears only as the final vertex, or `None` if no such
/// path exists.
///
/// This is the quantity in the paper's single-leader timeout formula
/// `(diam(D) + D(v, v̂) + 1)·Δ` (Lemma 4.13). `D(v̂, v̂) = 0` by the trivial
/// path. The computation deletes `target`, requiring the rest of the walk to
/// be a simple path:
///
/// * if `D \ {target}` is acyclic (always true when `target` is the unique
///   leader, i.e. a feedback vertex), longest path is computed on the DAG in
///   linear time;
/// * otherwise an exponential search is used for graphs within
///   [`EXACT_DIAMETER_LIMIT`], and `None` is returned beyond that.
pub fn longest_path_to(d: &Digraph, from: VertexId, target: VertexId) -> Option<usize> {
    if from == target {
        return Some(0);
    }
    let removed: BTreeSet<VertexId> = [target].into_iter().collect();
    let rest = d.delete_vertices(&removed);
    // Predecessors of target in the full digraph (arc u -> target exists).
    let preds: BTreeSet<VertexId> = d.in_arcs(target).map(|a| a.head).collect();
    if preds.is_empty() {
        return None;
    }
    if let Some(order) = topological_order(&rest) {
        // Longest simple path in the DAG from `from`, then +1 hop to target.
        let n = d.vertex_count();
        let mut dist = vec![None::<usize>; n];
        dist[from.index()] = Some(0);
        for &v in &order {
            let Some(dv) = dist[v.index()] else { continue };
            for arc in rest.out_arcs(v) {
                let w = arc.tail.index();
                let cand = dv + 1;
                if dist[w].map_or(true, |old| cand > old) {
                    dist[w] = Some(cand);
                }
            }
        }
        preds.iter().filter_map(|&u| dist[u.index()]).max().map(|len| len + 1)
    } else {
        if d.vertex_count() > EXACT_DIAMETER_LIMIT {
            return None;
        }
        // Exponential DFS over simple paths avoiding target as interior.
        fn dfs(
            d: &Digraph,
            v: VertexId,
            target: VertexId,
            visited: &mut Vec<bool>,
            best: &mut Option<usize>,
            len: usize,
        ) {
            for arc in d.out_arcs(v) {
                let w = arc.tail;
                if w == target {
                    if best.map_or(true, |b| len + 1 > b) {
                        *best = Some(len + 1);
                    }
                } else if !visited[w.index()] {
                    visited[w.index()] = true;
                    dfs(d, w, target, visited, best, len + 1);
                    visited[w.index()] = false;
                }
            }
        }
        let mut visited = vec![false; d.vertex_count()];
        visited[from.index()] = true;
        let mut best = None;
        dfs(d, from, target, &mut visited, &mut best, 0);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DigraphBuilder;
    use crate::generators;

    fn triangle() -> Digraph {
        generators::herlihy_three_party()
    }

    #[test]
    fn reachability_on_path_digraph() {
        let d = DigraphBuilder::new().vertices(["a", "b", "c"]).arc("a", "b").arc("b", "c").build();
        let a = d.vertex_by_name("a").unwrap();
        let c = d.vertex_by_name("c").unwrap();
        assert_eq!(reachable_from(&d, a), vec![true, true, true]);
        assert_eq!(reachable_from(&d, c), vec![false, false, true]);
    }

    #[test]
    fn strong_connectivity() {
        assert!(is_strongly_connected(&triangle()));
        let path = DigraphBuilder::new().vertices(["a", "b"]).arc("a", "b").build();
        assert!(!is_strongly_connected(&path));
    }

    #[test]
    fn scc_of_triangle_is_single_component() {
        let comps = strongly_connected_components(&triangle());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn scc_of_two_cycles_with_bridge() {
        // (a<->b) -> (c<->d)
        let d = DigraphBuilder::new()
            .vertices(["a", "b", "c", "d"])
            .arc("a", "b")
            .arc("b", "a")
            .arc("b", "c")
            .arc("c", "d")
            .arc("d", "c")
            .build();
        let comps = strongly_connected_components(&d);
        assert_eq!(comps.len(), 2);
        // Tarjan emits the sink component {c,d} first.
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![2, 2]);
        let (cond, member) = condensation(&d);
        assert_eq!(cond.vertex_count(), 2);
        assert_eq!(cond.arc_count(), 1);
        assert!(cond.is_acyclic());
        let a = d.vertex_by_name("a").unwrap();
        let c = d.vertex_by_name("c").unwrap();
        assert_ne!(member[a.index()], member[c.index()]);
    }

    #[test]
    fn acyclicity() {
        assert!(!is_acyclic(&triangle()));
        let dag = DigraphBuilder::new()
            .vertices(["a", "b", "c"])
            .arc("a", "b")
            .arc("a", "c")
            .arc("b", "c")
            .build();
        assert!(is_acyclic(&dag));
        let order = topological_order(&dag).unwrap();
        let pos = |name: &str| {
            let v = dag.vertex_by_name(name).unwrap();
            order.iter().position(|&x| x == v).unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn diameter_of_cycle_counts_full_cycle() {
        // The worked example in §1: timelock 6Δ on arc (A,B) implies
        // diam(C₃) = 3.
        assert_eq!(diameter_exact(&triangle()), Some(3));
        let c5 = generators::cycle(5);
        assert_eq!(diameter_exact(&c5), Some(5));
    }

    #[test]
    fn diameter_of_dag_is_longest_simple_path() {
        let dag = DigraphBuilder::new()
            .vertices(["a", "b", "c", "d"])
            .arc("a", "b")
            .arc("b", "c")
            .arc("c", "d")
            .arc("a", "d")
            .build();
        assert_eq!(diameter_exact(&dag), Some(3));
    }

    #[test]
    fn diameter_of_complete_digraph() {
        // K₄ with all ordered pairs: longest path is a Hamiltonian cycle of
        // length 4.
        let k4 = generators::complete(4);
        assert_eq!(diameter_exact(&k4), Some(4));
    }

    #[test]
    fn diameter_bails_out_above_limit() {
        let big = generators::cycle(EXACT_DIAMETER_LIMIT + 1);
        assert_eq!(diameter_exact(&big), None);
        // The public method falls back to |V|, which for a cycle is exact.
        assert_eq!(big.diameter(), EXACT_DIAMETER_LIMIT + 1);
    }

    #[test]
    fn diameter_of_two_cycle() {
        let d = DigraphBuilder::new().vertices(["a", "b"]).arc("a", "b").arc("b", "a").build();
        assert_eq!(diameter_exact(&d), Some(2));
    }

    #[test]
    fn longest_path_to_leader_in_triangle() {
        let d = triangle();
        let a = d.vertex_by_name("alice").unwrap();
        let b = d.vertex_by_name("bob").unwrap();
        let c = d.vertex_by_name("carol").unwrap();
        // Leader v̂ = alice: D(B,A)=2 (B→C→A), D(C,A)=1, D(A,A)=0, matching
        // the 6Δ/5Δ/4Δ timelocks of Figure 1.
        assert_eq!(longest_path_to(&d, b, a), Some(2));
        assert_eq!(longest_path_to(&d, c, a), Some(1));
        assert_eq!(longest_path_to(&d, a, a), Some(0));
    }

    #[test]
    fn longest_path_to_unreachable_is_none() {
        let d = DigraphBuilder::new().vertices(["a", "b"]).arc("a", "b").build();
        let a = d.vertex_by_name("a").unwrap();
        let b = d.vertex_by_name("b").unwrap();
        assert_eq!(longest_path_to(&d, b, a), None);
        assert_eq!(longest_path_to(&d, a, b), Some(1));
    }

    #[test]
    fn longest_path_with_cyclic_remainder_uses_search() {
        // Complete digraph on 4 vertexes: removing the target leaves a
        // 3-vertex cyclic digraph, forcing the exponential fallback.
        let k4 = generators::complete(4);
        let v0 = VertexId::new(0);
        let v1 = VertexId::new(1);
        // Longest: v1 -> x -> y -> v0 visiting the other two first.
        assert_eq!(longest_path_to(&k4, v1, v0), Some(3));
    }

    #[test]
    fn topological_order_none_on_cycle() {
        assert!(topological_order(&triangle()).is_none());
    }

    #[test]
    fn scc_singleton_vertices() {
        let mut d = Digraph::new();
        d.add_vertex("lonely");
        let comps = strongly_connected_components(&d);
        assert_eq!(comps.len(), 1);
        assert!(is_strongly_connected(&d));
        assert!(is_acyclic(&d));
    }

    #[test]
    fn condensation_names_mention_members() {
        let (cond, _) = condensation(&triangle());
        assert_eq!(cond.vertex_count(), 1);
        assert!(cond.name(VertexId::new(0)).contains("alice"));
    }
}
